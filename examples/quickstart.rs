//! Quickstart: build a tiny database, describe the target schema with
//! multiresolution constraints, and discover the mapping query.
//!
//! Run with: `cargo run --example quickstart`

use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::db::{ColumnDef, DataType, DatabaseBuilder, Value};

fn main() {
    // 1. A miniature source database: lakes and where they are.
    let mut b = DatabaseBuilder::new("minimal");
    b.add_table(
        "Lake",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Area", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "geo_lake",
        vec![
            ColumnDef::new("Lake", DataType::Text).not_null(),
            ColumnDef::new("State", DataType::Text).not_null(),
        ],
    )
    .unwrap();
    b.add_rows(
        "Lake",
        vec![
            vec!["Lake Tahoe".into(), Value::Decimal(497.0)],
            vec!["Crater Lake".into(), Value::Decimal(53.2)],
            vec!["Fort Peck Lake".into(), Value::Decimal(981.0)],
        ],
    )
    .unwrap();
    b.add_rows(
        "geo_lake",
        vec![
            vec!["Lake Tahoe".into(), "California".into()],
            vec!["Lake Tahoe".into(), "Nevada".into()],
            vec!["Crater Lake".into(), "Oregon".into()],
            vec!["Fort Peck Lake".into(), "Montana".into()],
        ],
    )
    .unwrap();
    b.add_foreign_key("geo_lake", "Lake", "Lake", "Name")
        .unwrap();
    let db = b.build(); // preprocessing: index, stats, schema graph

    // 2. Describe the desired 3-column target schema at mixed resolution:
    //    a keyword disjunction, an exact keyword, and type-level metadata.
    let constraints = TargetConstraints::parse(
        3,
        &[vec![
            Some("California || Nevada".to_string()), // medium resolution
            Some("Lake Tahoe".to_string()),           // high resolution
            None,                                     // no sample value at all
        ]],
        &[
            None,
            None,
            Some("DataType=='decimal' AND MinValue>='0'".to_string()), // low resolution
        ],
    )
    .expect("constraints parse");

    // 3. Discover satisfying Project-Join queries.
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&constraints);

    println!(
        "discovered {} satisfying schema mapping queries in {:?}:",
        result.queries.len(),
        result.stats.elapsed
    );
    for q in &result.queries {
        println!("  {}", q.sql);
        for row in &q.preview {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("    -> {}", cells.join(" | "));
        }
    }

    // CI runs this example as a smoke test: fail loudly if the walk-through
    // stops producing the join query that recovers Lake Tahoe's states.
    let recovered = result.queries.iter().any(|q| {
        q.preview.iter().any(|row| {
            row.contains(&Value::text("Lake Tahoe")) && row.contains(&Value::text("California"))
        })
    });
    assert!(
        recovered,
        "quickstart discovery lost the (California, Lake Tahoe) walk-through row"
    );
    println!("quickstart OK: walk-through row recovered.");
}
