//! IMDB scenario: a film student wants (movie title, year, director name)
//! but only half-remembers the facts — the paper's "marginal knowledge"
//! setting.
//!
//! She knows the movie is either Seven Samurai or Casablanca, was released
//! somewhere in the 1940s-1950s, and that directors have names — a value
//! disjunction, a numeric range, and a keyword, at three resolutions.
//!
//! Run with: `cargo run --example imdb_exploration`

use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::datasets::imdb;

fn main() {
    let db = imdb(42, 1);
    println!(
        "IMDB: {} tables, {} join edges, {} rows\n",
        db.catalog().table_count(),
        db.graph().edge_count(),
        db.total_rows()
    );

    let constraints = TargetConstraints::parse(
        3,
        &[vec![
            Some("Seven Samurai || Casablanca".to_string()),
            Some(">= 1940 && <= 1959".to_string()),
            Some("Akira Kurosawa".to_string()),
        ]],
        &[],
    )
    .unwrap();
    println!("constraints:");
    println!("  column 0: Seven Samurai || Casablanca   (disjunction)");
    println!("  column 1: >= 1940 && <= 1959             (value range)");
    println!("  column 2: Akira Kurosawa                 (exact keyword)\n");

    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&constraints);
    println!(
        "{} satisfying queries in {:?}:",
        result.queries.len(),
        result.stats.elapsed
    );
    for q in &result.queries {
        println!("  {}", q.sql);
    }

    // The mapping through Directs is the intended one; CastInfo-based
    // queries would also be listed if Kurosawa acted in a 1940s-50s movie.
    let direct = result
        .queries
        .iter()
        .find(|q| q.sql.contains("Directs"))
        .expect("director mapping discovered");
    println!("\nintended mapping:\n  {}", direct.sql);
    println!("\nrows:");
    for row in direct.candidate.query.execute(&db, 5).unwrap() {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
}
