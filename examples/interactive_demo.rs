//! The demonstration walk-through of Section 3, as a scripted CLI that
//! mirrors the web UI's three sections (Configuration → Description →
//! Result, Figures 2–4).
//!
//! Pass a database name to explore the other demo datasets:
//! `cargo run --example interactive_demo -- mondial|imdb|nba`

use prism::core::session::SessionConfig;
use prism::core::DiscoveryConfig;
use prism::datasets::{imdb, mondial, nba};
use prism::DiscoveryService;
use std::sync::Arc;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mondial".into());
    let db = Arc::new(match which.as_str() {
        "imdb" => imdb(42, 1),
        "nba" => nba(42, 1),
        _ => mondial(42, 1),
    });

    banner("Configuration");
    // Step 1: stand up the service over the frozen database (this is where
    // the Bayesian estimator trains, the paper's a-priori preprocessing),
    // then open an owned session — more sessions could run concurrently.
    let service = DiscoveryService::new(Arc::clone(&db), DiscoveryConfig::default());
    let config = SessionConfig::default();
    println!("  source database          : {}", db.name());
    println!("  target schema columns    : {}", config.target_columns);
    println!("  sample constraint rows   : {}", config.sample_rows);
    println!("  metadata constraints     : {}", config.with_metadata);
    println!(
        "  time limit per round     : {:?}",
        config.discovery.time_budget
    );
    println!(
        "  validation thread budget : {}",
        service.thread_budget().total()
    );
    let mut session = service.open_session(config);

    banner("Description");
    // Step 2: the constraint grid. (For IMDB/NBA the script adapts the
    // walk-through to that database's anchors.)
    type Cells<'a> = Vec<(usize, &'a str)>;
    let (cells, metadata): (Cells<'_>, Cells<'_>) = match which.as_str() {
        "imdb" => (
            vec![(0, "Seven Samurai || Casablanca"), (1, "Akira Kurosawa")],
            vec![(2, "DataType=='int' AND MinValue>='1900'")],
        ),
        "nba" => (
            vec![(0, "Lakers")],
            vec![
                (1, "DataType=='date'"),
                (2, "DataType=='int' AND MaxValue<='200'"),
            ],
        ),
        _ => (
            vec![(0, "California || Nevada"), (1, "Lake Tahoe")],
            vec![(2, "DataType=='decimal' AND MinValue>='0'")],
        ),
    };
    for (col, text) in &cells {
        println!("  sample[0][{col}]  := {text}");
        session.set_sample_cell(0, *col, *text).expect("valid cell");
    }
    for (col, text) in &metadata {
        println!("  metadata[{col}]  := {text}");
        session.set_metadata_cell(*col, *text).expect("valid cell");
    }

    // The frozen substrate is fully auditable: per-table column bytes
    // (data + null bitmaps + zone maps) and exact CSR join-index bytes.
    let mem = db.memory_report();
    println!(
        "  memory                   : {} B columns, {} B join indexes \
         ({} indexed columns, {} rows/block)",
        mem.total_column_bytes(),
        mem.total_index_bytes(),
        mem.indexes.len(),
        mem.block_rows,
    );

    banner("Start Searching!");
    // Step 3.
    let (n_queries, timed_out, stats) = {
        let result = session.start_searching().expect("search runs");
        (result.queries.len(), result.timed_out, result.stats.clone())
    };
    if timed_out {
        println!("  TIMEOUT: the round hit its time budget (reported as failure).");
    }
    println!(
        "  {} satisfying schema mapping queries ({} candidates, {} filters, \
         {} validations, {:?})",
        n_queries, stats.candidates, stats.filters, stats.validations, stats.elapsed
    );
    println!(
        "  execution work           : {} rows examined, {} index probes, \
         {} blocks zone-pruned",
        stats.exec.rows_examined, stats.exec.index_probes, stats.exec.blocks_skipped
    );
    let cache = service.plan_cache();
    println!(
        "  service plan cache       : {} classes, {} hits / {} misses \
         (a second session on these constraints compiles nothing)",
        cache.entries, cache.hits, cache.misses
    );

    banner("Result");
    // Step 4: browse queries, view SQL and the explanation graph.
    for i in 0..n_queries.min(5) {
        println!("  [{i}] {}", session.result_sql(i).unwrap());
    }
    if n_queries == 0 {
        return;
    }
    println!("\n-- selecting query #0 (demo step 4.1) --");
    println!("SQL (Figure 4b):\n  {}\n", session.result_sql(0).unwrap());
    println!("query graph with all constraints (Figure 4c):");
    let graph = session.explain_result(0, None).unwrap();
    print!("{}", graph.to_ascii());
    println!("\nDOT:\n{}", graph.to_dot());
}

fn banner(title: &str) {
    println!("\n==================== {title} ====================");
}
