//! Bring your own data: build a source database from CSV, then run the
//! same multiresolution discovery the demo runs on Mondial.
//!
//! The CSVs here are embedded strings; in practice they would be
//! `std::fs::read_to_string(path)?`. Column types are inferred
//! (`int → decimal → date → time → text`), empty fields become NULLs, and
//! declared foreign keys become the schema graph the candidate search walks.
//!
//! Run with: `cargo run --example csv_import`

use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::db::DatabaseBuilder;

const PRODUCTS_CSV: &str = "\
Sku,Name,Category,Price,Introduced
1001,Trail Runner,footwear,129.95,2015-03-01
1002,Summit Boot,footwear,219.00,2012-09-15
1003,Ridge Jacket,apparel,189.50,2018-02-20
1004,Basecamp Tent,equipment,449.00,2010-06-01
1005,Alpine Pole,equipment,59.95,
";

const ORDERS_CSV: &str = "\
OrderId,Sku,Quantity,OrderDate,Region
1,1002,2,2023-11-02,California
2,1001,1,2023-11-03,Nevada
3,1004,1,2023-11-05,Oregon
4,1002,1,2023-11-09,California
5,1003,3,2023-11-11,Texas
6,1005,4,2023-11-12,California
";

fn main() {
    // 1. Load CSVs; schemas are inferred from the data.
    let mut b = DatabaseBuilder::new("shop");
    b.add_table_from_csv("Product", PRODUCTS_CSV)
        .expect("products load");
    b.add_table_from_csv("Orders", ORDERS_CSV)
        .expect("orders load");
    b.add_foreign_key("Orders", "Sku", "Product", "Sku")
        .expect("join edge");
    let db = b.build();

    println!("loaded `{}`:", db.name());
    for (tid, schema) in db.catalog().tables() {
        let cols: Vec<String> = schema
            .columns
            .iter()
            .map(|c| format!("{}:{}", c.name, c.dtype))
            .collect();
        println!(
            "  {} ({} rows): {}",
            schema.name,
            db.row_count(tid),
            cols.join(", ")
        );
    }

    // 2. The analyst wants (product name, region, price) but only knows a
    //    product keyword, a region disjunction, and that prices are
    //    positive decimals.
    let constraints = TargetConstraints::parse(
        3,
        &[vec![
            Some("Summit Boot".to_string()),
            Some("California || Nevada".to_string()),
            None,
        ]],
        &[
            None,
            None,
            Some("DataType=='decimal' AND MinValue>='0'".to_string()),
        ],
    )
    .unwrap();

    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&constraints);
    println!(
        "\n{} satisfying schema mappings in {:?}:",
        result.queries.len(),
        result.stats.elapsed
    );
    for q in &result.queries {
        println!("\n  {}", q.sql);
        for line in q.preview_table(&db).lines() {
            println!("    {line}");
        }
    }
}
