//! The paper's motivating example (Sections 1 and 3) on synthetic Mondial:
//! list all lakes, their area, and the states they belong to — without
//! knowing the schema, using multiresolution constraints.
//!
//! Prints the discovered SQL (Figure 4b), the explanation query graph with
//! all constraints drawn in (Figure 4c, ASCII + Graphviz DOT), and the
//! resulting target table (Table 1).
//!
//! Run with: `cargo run --example mondial_lakes`

use prism::core::explain::{all_picks, explain, ConstraintPick};
use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::datasets::mondial;

fn main() {
    let db = mondial(42, 1);
    println!(
        "Mondial: {} tables, {} join edges, {} rows\n",
        db.catalog().table_count(),
        db.graph().edge_count(),
        db.total_rows()
    );

    // The user knows: Lake Tahoe is near California or Nevada; areas are
    // non-negative decimals. She does NOT know the exact area.
    let constraints = TargetConstraints::parse(
        3,
        &[vec![
            Some("California || Nevada".to_string()),
            Some("Lake Tahoe".to_string()),
            None,
        ]],
        &[
            None,
            None,
            Some("DataType=='decimal' AND MinValue>='0'".to_string()),
        ],
    )
    .unwrap();

    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&constraints);
    println!(
        "{} satisfying queries in {:?} ({} validations over {} filters)",
        result.queries.len(),
        result.stats.elapsed,
        result.stats.validations,
        result.stats.filters
    );

    // The user browses the result list and picks the right one.
    let desired = result
        .queries
        .iter()
        .find(|q| q.sql.contains("Lake.Name") && q.sql.contains("Lake.Area"))
        .expect("desired query discovered");
    println!("\nselected query (Figure 4b):\n  {}\n", desired.sql);

    println!("query graph with all constraints (Figure 4c):");
    let g = explain(
        &db,
        &desired.candidate,
        &constraints,
        &all_picks(&constraints),
    );
    print!("{}", g.to_ascii());

    println!("\nsame graph, single constraint picked (demo step 4.3):");
    let g1 = explain(
        &db,
        &desired.candidate,
        &constraints,
        &[ConstraintPick::Value {
            sample: 0,
            column: 1,
        }],
    );
    print!("{}", g1.to_ascii());

    println!("\nGraphviz DOT (render with `dot -Tpng`):\n{}", g.to_dot());

    println!("target table (first rows):");
    let rows = desired.candidate.query.execute(&db, 8).unwrap();
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
}
