//! NBA scenario: low-resolution, metadata-heavy mapping with ambiguous
//! join routes.
//!
//! The analyst wants (team name, game date, score). She knows team names
//! are text like "Lakers", that the date column really is a date, and that
//! scores are integers in a plausible range — but no exact scores or dates.
//! Because `Game` references `Team` twice (home and away), Prism discovers
//! *both* join routes and the explanation graphs disambiguate them — the
//! exact situation Figure 4's interaction was designed for.
//!
//! Run with: `cargo run --example nba_metadata`

use prism::core::explain::{all_picks, explain};
use prism::core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism::datasets::nba;

fn main() {
    let db = nba(42, 1);
    println!(
        "NBA: {} tables, {} join edges, {} rows\n",
        db.catalog().table_count(),
        db.graph().edge_count(),
        db.total_rows()
    );

    let constraints = TargetConstraints::parse(
        3,
        &[vec![Some("Lakers".to_string()), None, None]],
        &[
            None,
            Some("DataType == 'date'".to_string()),
            Some("DataType == 'int' AND MinValue >= '0' AND MaxValue <= '200'".to_string()),
        ],
    )
    .unwrap();
    println!("constraints:");
    println!("  column 0: Lakers                                    (keyword)");
    println!("  column 1: DataType == 'date'                        (metadata only)");
    println!("  column 2: DataType == 'int' AND 0 <= values <= 200  (metadata only)\n");

    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let result = engine.run(&constraints);
    println!(
        "{} satisfying queries in {:?}:",
        result.queries.len(),
        result.stats.elapsed
    );
    for q in &result.queries {
        println!("  {}", q.sql);
    }

    // Both parallel join routes must be present; explain both.
    let home = result
        .queries
        .iter()
        .find(|q| q.sql.contains("HomeTeam = Team.Id") && q.sql.contains("HomeScore"))
        .expect("home-route query");
    let away = result
        .queries
        .iter()
        .find(|q| q.sql.contains("AwayTeam = Team.Id") && q.sql.contains("AwayScore"))
        .expect("away-route query");

    for (label, q) in [("HOME route", home), ("AWAY route", away)] {
        println!("\n=== {label} ===\n{}\n", q.sql);
        let g = explain(&db, &q.candidate, &constraints, &all_picks(&constraints));
        print!("{}", g.to_ascii());
        for row in q.candidate.query.execute(&db, 3).unwrap() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("  {}", cells.join(" | "));
        }
    }
}
