//! User-defined functions as constraints.
//!
//! Section 2.1 of the paper: *"In the future, we plan to support more
//! metadata constraints, and even user-defined functions."* This module
//! implements that extension. Two kinds are supported, mirroring the
//! language's two constraint classes:
//!
//! * **value UDFs** — cell-level predicates usable in value constraints
//!   (`@is_zip_code`), and
//! * **column UDFs** — column-level predicates over statistics usable in
//!   metadata constraints (`@looks_like_year`).
//!
//! Syntax: `@name` wherever a predicate may appear; UDFs combine freely
//! with the built-in predicates (`@is_zip_code || Lake Tahoe`). Semantics
//! when a name is not registered: the predicate is **false** (conservative
//! for discovery soundness); [`UdfRegistry::missing_names`] lets front-ends
//! report unknown names before searching.

use crate::error::Error;
use prism_db::faults::{self, FaultKind, FaultSite};
use prism_db::stats::ColumnStats;
use prism_db::types::Value;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A cell-level predicate.
pub type ValueUdf = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

/// A column-level predicate over collected statistics.
pub type ColumnUdf = Arc<dyn Fn(&ColumnStats) -> bool + Send + Sync>;

/// Named user-defined predicates available to a discovery round.
///
/// Cloning is cheap (the functions are reference-counted). Equality and
/// hashing consider only the registered *names* — two registries with the
/// same names are interchangeable for constraint-set comparison purposes.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    value: HashMap<String, ValueUdf>,
    column: HashMap<String, ColumnUdf>,
}

impl UdfRegistry {
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Register a cell-level predicate. Names are case-insensitive.
    pub fn register_value(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        self.value.insert(name.into().to_lowercase(), Arc::new(f));
        self
    }

    /// Register a column-level predicate. Names are case-insensitive.
    pub fn register_column(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&ColumnStats) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        self.column.insert(name.into().to_lowercase(), Arc::new(f));
        self
    }

    /// Evaluate a value UDF; unregistered names are false. User code is
    /// untrusted: a panic inside the UDF (or an injected chaos fault at the
    /// `UdfEval` site) is caught and re-raised with the UDF's name
    /// attached, so the validation slot's containment layer above reports
    /// *which* user function faulted instead of an anonymous unwind.
    pub fn eval_value(&self, name: &str, v: &Value) -> bool {
        match self.try_eval_value(name, v) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Panic-contained value-UDF evaluation: `Err(UdfPanic)` instead of an
    /// unwind when the user's closure panics. Unregistered names are
    /// `Ok(false)`.
    pub fn try_eval_value(&self, name: &str, v: &Value) -> Result<bool, Error> {
        let key = name.to_lowercase();
        let Some(f) = self.value.get(&key) else {
            return Ok(false);
        };
        catch_unwind(AssertUnwindSafe(|| {
            inject_udf_fault(&key);
            f(v)
        }))
        .map_err(|_| Error::UdfPanic(key))
    }

    /// Evaluate a column UDF; unregistered names are false. Panic handling
    /// mirrors [`UdfRegistry::eval_value`].
    pub fn eval_column(&self, name: &str, stats: &ColumnStats) -> bool {
        match self.try_eval_column(name, stats) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Panic-contained column-UDF evaluation (see
    /// [`UdfRegistry::try_eval_value`]).
    pub fn try_eval_column(&self, name: &str, stats: &ColumnStats) -> Result<bool, Error> {
        let key = name.to_lowercase();
        let Some(f) = self.column.get(&key) else {
            return Ok(false);
        };
        catch_unwind(AssertUnwindSafe(|| {
            inject_udf_fault(&key);
            f(stats)
        }))
        .map_err(|_| Error::UdfPanic(key))
    }

    pub fn has_value_udf(&self, name: &str) -> bool {
        self.value.contains_key(&name.to_lowercase())
    }

    pub fn has_column_udf(&self, name: &str) -> bool {
        self.column.contains_key(&name.to_lowercase())
    }

    pub fn is_empty(&self) -> bool {
        self.value.is_empty() && self.column.is_empty()
    }

    /// Sorted names, for diagnostics and equality.
    fn names(&self) -> (Vec<&str>, Vec<&str>) {
        let mut v: Vec<&str> = self.value.keys().map(String::as_str).collect();
        let mut c: Vec<&str> = self.column.keys().map(String::as_str).collect();
        v.sort_unstable();
        c.sort_unstable();
        (v, c)
    }

    /// Which of `wanted_value`/`wanted_column` names are not registered.
    pub fn missing_names<'a>(
        &self,
        wanted_value: impl IntoIterator<Item = &'a str>,
        wanted_column: impl IntoIterator<Item = &'a str>,
    ) -> Vec<String> {
        let mut missing = Vec::new();
        for n in wanted_value {
            if !self.has_value_udf(n) {
                missing.push(format!("@{n} (value)"));
            }
        }
        for n in wanted_column {
            if !self.has_column_udf(n) {
                missing.push(format!("@{n} (column)"));
            }
        }
        missing
    }
}

/// The `UdfEval` chaos injection point (`PRISM_FAULT`): fires inside the
/// contained region, keyed by the UDF's name so the same seed always
/// faults the same functions. `Transient` is not meaningful here (UDF
/// evaluation has no retry budget of its own) and is ignored.
fn inject_udf_fault(name: &str) {
    if let Some(spec) = faults::env_spec() {
        let token = faults::name_token(name);
        match spec.check(FaultSite::UdfEval, token) {
            Some(FaultKind::Panic) => faults::injected_panic(FaultSite::UdfEval, token),
            Some(FaultKind::Delay) => faults::delay_steps(2048),
            Some(FaultKind::Transient) | None => {}
        }
    }
}

// The scheduler's parallel validation engine evaluates UDF predicates from
// worker threads through a shared `&UdfRegistry`. The `Send + Sync` bounds
// on `ValueUdf`/`ColumnUdf` make that sound; prove it at the type level so
// a future unsynchronized closure type fails to compile here.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<UdfRegistry>();

// Manual Debug/PartialEq (by registered names only) so the registry can
// live inside constraint sets that derive both.
impl fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (v, c) = self.names();
        f.debug_struct("UdfRegistry")
            .field("value", &v)
            .field("column", &c)
            .finish()
    }
}

impl PartialEq for UdfRegistry {
    fn eq(&self, other: &UdfRegistry) -> bool {
        self.names() == other.names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> UdfRegistry {
        let mut r = UdfRegistry::new();
        r.register_value("is_positive", |v: &Value| {
            v.as_number().is_some_and(|x| x > 0.0)
        });
        r.register_column("mostly_non_null", |s: &ColumnStats| {
            s.null_count * 2 < s.row_count.max(1)
        });
        r
    }

    #[test]
    fn value_udf_evaluates() {
        let r = registry();
        assert!(r.eval_value("is_positive", &Value::Int(5)));
        assert!(!r.eval_value("is_positive", &Value::Int(-5)));
        assert!(!r.eval_value("is_positive", &Value::text("x")));
        assert!(!r.eval_value("is_positive", &Value::Null));
    }

    #[test]
    fn names_are_case_insensitive() {
        let r = registry();
        assert!(r.has_value_udf("IS_POSITIVE"));
        assert!(r.eval_value("Is_Positive", &Value::Int(1)));
    }

    #[test]
    fn unregistered_names_are_false() {
        let r = registry();
        assert!(!r.eval_value("nope", &Value::Int(1)));
    }

    #[test]
    fn missing_names_reports_only_gaps() {
        let r = registry();
        let missing = r.missing_names(["is_positive", "ghost"], ["mostly_non_null", "phantom"]);
        assert_eq!(missing, vec!["@ghost (value)", "@phantom (column)"]);
    }

    #[test]
    fn equality_is_by_name() {
        let a = registry();
        let mut b = UdfRegistry::new();
        b.register_value("is_positive", |_| true); // different body, same name
        b.register_column("mostly_non_null", |_| false);
        assert_eq!(a, b);
        let mut c = UdfRegistry::new();
        c.register_value("other", |_| true);
        assert_ne!(a, c);
    }

    #[test]
    fn debug_lists_names() {
        let r = registry();
        let s = format!("{r:?}");
        assert!(s.contains("is_positive") && s.contains("mostly_non_null"));
    }

    #[test]
    fn panicking_udf_is_contained_as_udf_panic() {
        let mut r = UdfRegistry::new();
        r.register_value("explodes", |_: &Value| -> bool {
            panic!("user bug: index out of bounds")
        });
        let err = r.try_eval_value("Explodes", &Value::Int(1)).unwrap_err();
        assert_eq!(err, Error::UdfPanic("explodes".to_string()));
        assert!(err.to_string().contains("@explodes"));
        // A healthy UDF in the same registry is unaffected afterwards.
        r.register_value("fine", |_: &Value| true);
        assert_eq!(r.try_eval_value("fine", &Value::Int(1)), Ok(true));
    }

    #[test]
    fn panicking_column_udf_is_contained() {
        let mut r = UdfRegistry::new();
        r.register_column("bad_stats", |_: &ColumnStats| -> bool {
            panic!("divide by zero")
        });
        let stats = ColumnStats {
            dtype: prism_db::DataType::Int,
            row_count: 0,
            null_count: 0,
            distinct_count: 0,
            min_num: None,
            max_num: None,
            min_text: None,
            max_text: None,
            max_text_len: None,
            histogram: None,
            most_common: Vec::new(),
            max_key_run: 0,
        };
        let err = r.try_eval_column("bad_stats", &stats).unwrap_err();
        assert_eq!(err, Error::UdfPanic("bad_stats".to_string()));
    }

    #[test]
    #[should_panic(expected = "UDF @explodes panicked")]
    fn bool_interface_reraises_with_the_udf_name() {
        let mut r = UdfRegistry::new();
        r.register_value("explodes", |_: &Value| -> bool { panic!("boom") });
        r.eval_value("explodes", &Value::Int(1));
    }
}
