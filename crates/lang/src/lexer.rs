//! Tokenizer for the constraint language.
//!
//! Tolerant of what demo users actually type: ASCII or curly quotes,
//! `&&`/`AND`/`∧` and `||`/`OR`/`∨` interchangeably, `=` or `==`, `!=` or
//! `<>` or `≠`, and `≥`/`≤` for the ASCII digraphs.

use crate::error::ParseError;

/// One lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub position: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A quoted string: the quotes are stripped, content kept verbatim.
    Quoted(String),
    /// An unquoted word (may be part of a multi-word keyword).
    Word(String),
    And,
    Or,
    LParen,
    RParen,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Contains,
    /// A user-defined function reference: `@name`.
    Udf(String),
}

/// Lex a full constraint string.
pub fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let (pos, c) = chars[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    position: pos,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    position: pos,
                });
                i += 1;
            }
            '\'' | '"' | '\u{2018}' | '\u{201C}' => {
                let closers: &[char] = match c {
                    '\'' => &['\'', '\u{2019}'],
                    '"' => &['"', '\u{201D}'],
                    '\u{2018}' => &['\u{2019}', '\''],
                    _ => &['\u{201D}', '"'],
                };
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && !closers.contains(&chars[j].1) {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(ParseError::new(pos, "unterminated quoted string"));
                }
                let content: String = chars[start..j].iter().map(|&(_, ch)| ch).collect();
                out.push(Token {
                    kind: TokenKind::Quoted(content),
                    position: pos,
                });
                i = j + 1;
            }
            '&' => {
                if matches!(chars.get(i + 1), Some(&(_, '&'))) {
                    out.push(Token {
                        kind: TokenKind::And,
                        position: pos,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(pos, "expected `&&`"));
                }
            }
            '|' => {
                if matches!(chars.get(i + 1), Some(&(_, '|'))) {
                    out.push(Token {
                        kind: TokenKind::Or,
                        position: pos,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(pos, "expected `||`"));
                }
            }
            '\u{2227}' => {
                out.push(Token {
                    kind: TokenKind::And,
                    position: pos,
                });
                i += 1;
            }
            '\u{2228}' => {
                out.push(Token {
                    kind: TokenKind::Or,
                    position: pos,
                });
                i += 1;
            }
            '=' => {
                let len = if matches!(chars.get(i + 1), Some(&(_, '='))) {
                    2
                } else {
                    1
                };
                out.push(Token {
                    kind: TokenKind::Eq,
                    position: pos,
                });
                i += len;
            }
            '!' => {
                if matches!(chars.get(i + 1), Some(&(_, '='))) {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        position: pos,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(pos, "expected `!=`"));
                }
            }
            '\u{2260}' => {
                out.push(Token {
                    kind: TokenKind::Ne,
                    position: pos,
                });
                i += 1;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && !is_word_boundary(chars[j].1) {
                    j += 1;
                }
                if j == start {
                    return Err(ParseError::new(pos, "expected a UDF name after `@`"));
                }
                let name: String = chars[start..j].iter().map(|&(_, ch)| ch).collect();
                out.push(Token {
                    kind: TokenKind::Udf(name),
                    position: pos,
                });
                i = j;
            }
            '<' => match chars.get(i + 1) {
                Some(&(_, '=')) => {
                    out.push(Token {
                        kind: TokenKind::Le,
                        position: pos,
                    });
                    i += 2;
                }
                Some(&(_, '>')) => {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        position: pos,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        position: pos,
                    });
                    i += 1;
                }
            },
            '>' => {
                if matches!(chars.get(i + 1), Some(&(_, '='))) {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        position: pos,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        position: pos,
                    });
                    i += 1;
                }
            }
            '\u{2264}' => {
                out.push(Token {
                    kind: TokenKind::Le,
                    position: pos,
                });
                i += 1;
            }
            '\u{2265}' => {
                out.push(Token {
                    kind: TokenKind::Ge,
                    position: pos,
                });
                i += 1;
            }
            _ => {
                // Bareword: read until whitespace or a structural character.
                let start = i;
                while i < chars.len() && !is_word_boundary(chars[i].1) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().map(|&(_, ch)| ch).collect();
                let kind = match word.to_ascii_uppercase().as_str() {
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    "CONTAINS" => TokenKind::Contains,
                    _ => TokenKind::Word(word),
                };
                out.push(Token {
                    kind,
                    position: chars[start].0,
                });
            }
        }
    }
    Ok(out)
}

fn is_word_boundary(c: char) -> bool {
    c.is_whitespace()
        || matches!(
            c,
            '(' | ')'
                | '@'
                | '\''
                | '"'
                | '&'
                | '|'
                | '='
                | '!'
                | '<'
                | '>'
                | '\u{2018}'
                | '\u{2019}'
                | '\u{201C}'
                | '\u{201D}'
                | '\u{2227}'
                | '\u{2228}'
                | '\u{2260}'
                | '\u{2264}'
                | '\u{2265}'
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_disjunction_of_barewords() {
        assert_eq!(
            kinds("California || Nevada"),
            vec![
                TokenKind::Word("California".into()),
                TokenKind::Or,
                TokenKind::Word("Nevada".into()),
            ]
        );
    }

    #[test]
    fn lexes_multiword_keyword_as_separate_words() {
        assert_eq!(
            kinds("Lake Tahoe"),
            vec![
                TokenKind::Word("Lake".into()),
                TokenKind::Word("Tahoe".into()),
            ]
        );
    }

    #[test]
    fn lexes_the_papers_metadata_constraint() {
        // Verbatim from the demo walk-through (including `==`).
        assert_eq!(
            kinds("DataType=='decimal' AND MinValue>='0'"),
            vec![
                TokenKind::Word("DataType".into()),
                TokenKind::Eq,
                TokenKind::Quoted("decimal".into()),
                TokenKind::And,
                TokenKind::Word("MinValue".into()),
                TokenKind::Ge,
                TokenKind::Quoted("0".into()),
            ]
        );
    }

    #[test]
    fn curly_quotes_accepted() {
        assert_eq!(
            kinds("DataType==\u{2018}decimal\u{2019}"),
            vec![
                TokenKind::Word("DataType".into()),
                TokenKind::Eq,
                TokenKind::Quoted("decimal".into()),
            ]
        );
    }

    #[test]
    fn unicode_logic_and_comparison_symbols() {
        assert_eq!(
            kinds("\u{2265} 5 \u{2227} \u{2264} 10"),
            vec![
                TokenKind::Ge,
                TokenKind::Word("5".into()),
                TokenKind::And,
                TokenKind::Le,
                TokenKind::Word("10".into()),
            ]
        );
        assert_eq!(
            kinds("\u{2260} 3"),
            vec![TokenKind::Ne, TokenKind::Word("3".into())]
        );
    }

    #[test]
    fn ne_spellings() {
        assert_eq!(kinds("!= 1")[0], TokenKind::Ne);
        assert_eq!(kinds("<> 1")[0], TokenKind::Ne);
    }

    #[test]
    fn and_or_keywords_case_insensitive() {
        assert_eq!(kinds("a and b")[1], TokenKind::And);
        assert_eq!(kinds("a Or b")[1], TokenKind::Or);
        assert_eq!(kinds("x CONTAINS y")[1], TokenKind::Contains);
    }

    #[test]
    fn quoted_strings_preserve_operators_inside() {
        assert_eq!(kinds("'a || b'"), vec![TokenKind::Quoted("a || b".into())]);
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("abc & def").unwrap_err();
        assert_eq!(err.position, 4);
        let err = lex("'unterminated").unwrap_err();
        assert_eq!(err.position, 0);
        assert!(lex("a | b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn parens_and_empty_input() {
        assert_eq!(
            kinds("( x )"),
            vec![
                TokenKind::LParen,
                TokenKind::Word("x".into()),
                TokenKind::RParen
            ]
        );
        assert!(kinds("").is_empty());
        assert!(kinds("   ").is_empty());
    }

    #[test]
    fn hyphenated_and_accented_words_stay_whole() {
        assert_eq!(
            kinds("Baden-W\u{fc}rttemberg"),
            vec![TokenKind::Word("Baden-W\u{fc}rttemberg".into())]
        );
    }
}
