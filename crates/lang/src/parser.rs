//! Recursive-descent parser for value and metadata constraints.
//!
//! Operator precedence follows SQL convention: `AND` binds tighter than
//! `OR`; parentheses group. A value predicate's comparison operator is
//! optional and defaults to equality, so `California || Nevada` means
//! `= 'California' OR = 'Nevada'`.

use crate::ast::{
    CmpOp, ConstraintExpr, Literal, MetaField, MetaPred, MetadataConstraint, ValueConstraint,
    ValuePred,
};
use crate::error::ParseError;
use crate::lexer::{lex, Token, TokenKind};

/// Parse a row-cell value constraint, e.g. `California || Nevada`,
/// `>= 100 && <= 600`, `Lake Tahoe`.
pub fn parse_value_constraint(input: &str) -> Result<ValueConstraint, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new(0, "empty constraint"));
    }
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.value_expr()?;
    p.expect_end()?;
    Ok(expr)
}

/// Parse a column metadata constraint, e.g.
/// `DataType == 'decimal' AND MinValue >= '0'`.
pub fn parse_metadata_constraint(input: &str) -> Result<MetadataConstraint, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new(0, "empty constraint"));
    }
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.meta_expr()?;
    p.expect_end()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.position)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.position + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(ParseError::new(
                self.position(),
                "unexpected trailing input",
            ))
        }
    }

    // ---- shared ----

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek()? {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Contains => CmpOp::Contains,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    /// A constant: one quoted string, or a run of barewords joined by single
    /// spaces (`Lake Tahoe`).
    fn constant(&mut self) -> Result<Literal, ParseError> {
        match self.peek() {
            Some(TokenKind::Quoted(_)) => {
                let Some(TokenKind::Quoted(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(Literal::new(s))
            }
            Some(TokenKind::Word(_)) => {
                let mut words = Vec::new();
                while let Some(TokenKind::Word(_)) = self.peek() {
                    let Some(TokenKind::Word(w)) = self.bump() else {
                        unreachable!()
                    };
                    words.push(w);
                }
                Ok(Literal::new(words.join(" ")))
            }
            _ => Err(ParseError::new(self.position(), "expected a constant")),
        }
    }

    // ---- value constraints ----

    fn value_expr(&mut self) -> Result<ValueConstraint, ParseError> {
        let mut left = self.value_term()?;
        while self.eat(&TokenKind::Or) {
            let right = self.value_term()?;
            left = ConstraintExpr::or(left, right);
        }
        Ok(left)
    }

    fn value_term(&mut self) -> Result<ValueConstraint, ParseError> {
        let mut left = self.value_factor()?;
        while self.eat(&TokenKind::And) {
            let right = self.value_factor()?;
            left = ConstraintExpr::and(left, right);
        }
        Ok(left)
    }

    fn value_factor(&mut self) -> Result<ValueConstraint, ParseError> {
        if self.eat(&TokenKind::LParen) {
            let inner = self.value_expr()?;
            if !self.eat(&TokenKind::RParen) {
                return Err(ParseError::new(self.position(), "expected `)`"));
            }
            return Ok(inner);
        }
        if let Some(TokenKind::Udf(_)) = self.peek() {
            let Some(TokenKind::Udf(name)) = self.bump() else {
                unreachable!()
            };
            return Ok(ConstraintExpr::Pred(ValuePred {
                op: CmpOp::Udf,
                lit: Literal::new(name),
            }));
        }
        let op = self.cmp_op().unwrap_or(CmpOp::Eq);
        let lit = self.constant()?;
        Ok(ConstraintExpr::Pred(ValuePred { op, lit }))
    }

    // ---- metadata constraints ----

    fn meta_expr(&mut self) -> Result<MetadataConstraint, ParseError> {
        let mut left = self.meta_term()?;
        while self.eat(&TokenKind::Or) {
            let right = self.meta_term()?;
            left = ConstraintExpr::or(left, right);
        }
        Ok(left)
    }

    fn meta_term(&mut self) -> Result<MetadataConstraint, ParseError> {
        let mut left = self.meta_factor()?;
        while self.eat(&TokenKind::And) {
            let right = self.meta_factor()?;
            left = ConstraintExpr::and(left, right);
        }
        Ok(left)
    }

    fn meta_factor(&mut self) -> Result<MetadataConstraint, ParseError> {
        if self.eat(&TokenKind::LParen) {
            let inner = self.meta_expr()?;
            if !self.eat(&TokenKind::RParen) {
                return Err(ParseError::new(self.position(), "expected `)`"));
            }
            return Ok(inner);
        }
        if let Some(TokenKind::Udf(_)) = self.peek() {
            let Some(TokenKind::Udf(name)) = self.bump() else {
                unreachable!()
            };
            return Ok(ConstraintExpr::Pred(MetaPred {
                field: MetaField::Udf,
                op: CmpOp::Udf,
                lit: Literal::new(name),
            }));
        }
        let pos = self.position();
        let field = match self.bump() {
            Some(TokenKind::Word(w)) => MetaField::parse(&w).ok_or_else(|| {
                ParseError::new(
                    pos,
                    format!(
                        "unknown metadata type `{w}` (expected DataType, ColumnName, \
                         MinValue, MaxValue, or MaxLength)"
                    ),
                )
            })?,
            _ => return Err(ParseError::new(
                pos,
                "expected a metadata type (DataType, ColumnName, MinValue, MaxValue, MaxLength)",
            )),
        };
        let op = self
            .cmp_op()
            .ok_or_else(|| ParseError::new(self.position(), "expected a comparison operator"))?;
        let lit = self.constant()?;
        Ok(ConstraintExpr::Pred(MetaPred { field, op, lit }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_keyword_is_equality() {
        let c = parse_value_constraint("Lake Tahoe").unwrap();
        match &c {
            ConstraintExpr::Pred(p) => {
                assert_eq!(p.op, CmpOp::Eq);
                assert_eq!(p.lit.raw, "Lake Tahoe");
            }
            _ => panic!("expected a single predicate"),
        }
    }

    #[test]
    fn disjunction_of_keywords() {
        let c = parse_value_constraint("California || Nevada").unwrap();
        let kws: Vec<String> = c
            .eq_keywords()
            .unwrap()
            .iter()
            .map(|l| l.raw.clone())
            .collect();
        assert_eq!(kws, vec!["California", "Nevada"]);
    }

    #[test]
    fn value_range_conjunction() {
        let c = parse_value_constraint(">= 100 && <= 600").unwrap();
        match &c {
            ConstraintExpr::And(a, b) => {
                match (a.as_ref(), b.as_ref()) {
                    (ConstraintExpr::Pred(pa), ConstraintExpr::Pred(pb)) => {
                        assert_eq!(pa.op, CmpOp::Ge);
                        assert_eq!(pa.lit.num, Some(100.0));
                        assert_eq!(pb.op, CmpOp::Le);
                        assert_eq!(pb.lit.num, Some(600.0));
                    }
                    _ => panic!("expected two predicates"),
                };
            }
            _ => panic!("expected a conjunction"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let c = parse_value_constraint("a || b && c").unwrap();
        assert!(matches!(c, ConstraintExpr::Or(_, _)));
        if let ConstraintExpr::Or(_, right) = &c {
            assert!(matches!(right.as_ref(), ConstraintExpr::And(_, _)));
        }
    }

    #[test]
    fn parens_override_precedence() {
        let c = parse_value_constraint("(a || b) && c").unwrap();
        assert!(matches!(c, ConstraintExpr::And(_, _)));
    }

    #[test]
    fn quoted_constants_keep_content_verbatim() {
        let c = parse_value_constraint("'a || b'").unwrap();
        match &c {
            ConstraintExpr::Pred(p) => assert_eq!(p.lit.raw, "a || b"),
            _ => panic!(),
        }
    }

    #[test]
    fn contains_operator() {
        let c = parse_value_constraint("CONTAINS Tahoe").unwrap();
        match &c {
            ConstraintExpr::Pred(p) => {
                assert_eq!(p.op, CmpOp::Contains);
                assert_eq!(p.lit.raw, "Tahoe");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn papers_metadata_constraint_parses() {
        // Verbatim step 2.3 of the demonstration walk-through.
        let c = parse_metadata_constraint("DataType=='decimal' AND MinValue>='0'").unwrap();
        let preds = c.predicates();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].field, MetaField::DataType);
        assert_eq!(preds[0].op, CmpOp::Eq);
        assert_eq!(preds[0].lit.raw, "decimal");
        assert_eq!(preds[1].field, MetaField::MinValue);
        assert_eq!(preds[1].op, CmpOp::Ge);
        assert_eq!(preds[1].lit.num, Some(0.0));
    }

    #[test]
    fn metadata_disjunction_of_types() {
        // "Ambiguous" metadata knowledge: the column is int OR decimal.
        let c = parse_metadata_constraint("DataType = 'int' OR DataType = 'decimal'").unwrap();
        assert!(matches!(c, ConstraintExpr::Or(_, _)));
    }

    #[test]
    fn unknown_metadata_type_is_an_error() {
        let err = parse_metadata_constraint("Widget == 'x'").unwrap_err();
        assert!(err.message.contains("Widget"));
    }

    #[test]
    fn metadata_requires_operator() {
        assert!(parse_metadata_constraint("DataType 'decimal'").is_err());
    }

    #[test]
    fn empty_and_trailing_inputs_error() {
        assert!(parse_value_constraint("").is_err());
        assert!(parse_value_constraint("   ").is_err());
        assert!(parse_value_constraint("a ||").is_err());
        assert!(parse_value_constraint("(a").is_err());
        assert!(parse_value_constraint("a ) b").is_err());
        assert!(parse_metadata_constraint("").is_err());
    }

    #[test]
    fn multiword_disjunction() {
        let c = parse_value_constraint("Lake Tahoe || Crater Lake").unwrap();
        let kws: Vec<String> = c
            .eq_keywords()
            .unwrap()
            .iter()
            .map(|l| l.raw.clone())
            .collect();
        assert_eq!(kws, vec!["Lake Tahoe", "Crater Lake"]);
    }

    #[test]
    fn display_reparses_to_same_ast() {
        for src in [
            "California || Nevada",
            ">= 100 && <= 600",
            "(a || b) && c",
            "Lake Tahoe",
        ] {
            let c1 = parse_value_constraint(src).unwrap();
            let c2 = parse_value_constraint(&c1.to_string()).unwrap();
            assert_eq!(c1, c2, "round-trip failed for {src}");
        }
        for src in [
            "DataType=='decimal' AND MinValue>='0'",
            "DataType='int' OR DataType='decimal'",
            "MaxLength <= '32'",
        ] {
            let c1 = parse_metadata_constraint(src).unwrap();
            let c2 = parse_metadata_constraint(&c1.to_string()).unwrap();
            assert_eq!(c1, c2, "round-trip failed for {src}");
        }
    }
}
