//! Evaluation of constraints against cells and column statistics, plus
//! selectivity estimation for the Bayesian filter scheduler.
//!
//! Semantics notes:
//!
//! * NULL cells satisfy **no** value predicate (SQL-style), including `!=`.
//! * Equality on text is case-insensitive and whitespace-trimmed — the demo's
//!   users type keywords, not exact byte strings.
//! * Equality between a numeric cell and a numeric constant uses a tiny
//!   relative epsilon so `497` matches a decimal cell printed as `497`.
//! * `DataType == 'decimal'` also accepts `int` columns: every integer is a
//!   valid decimal, and a user asserting "this column is decimal" should not
//!   be punished when the warehouse declared the column `int`. The reverse
//!   (`DataType == 'int'` on a decimal column) does **not** hold.

use crate::ast::{
    CmpOp, ConstraintExpr, Literal, MetaField, MetaPred, MetadataConstraint, ValueConstraint,
    ValuePred,
};
use crate::udf::UdfRegistry;
use prism_db::stats::ColumnStats;
use prism_db::types::{DataType, Date, Time, Value, ValueRef};
use std::cmp::Ordering;
use std::sync::OnceLock;

/// Shared empty registry for the registry-free entry points.
fn empty_registry() -> &'static UdfRegistry {
    static EMPTY: OnceLock<UdfRegistry> = OnceLock::new();
    EMPTY.get_or_init(UdfRegistry::new)
}

/// Does the cell `v` satisfy the value constraint? UDF predicates evaluate
/// against `udfs` (unregistered names are false).
pub fn matches_value_with(c: &ValueConstraint, v: &Value, udfs: &UdfRegistry) -> bool {
    matches_value_ref_with(c, v.as_value_ref(), udfs)
}

/// Does the cell `v` satisfy the value constraint? (No UDFs available —
/// any `@name` predicate is false.)
pub fn matches_value(c: &ValueConstraint, v: &Value) -> bool {
    matches_value_with(c, v, empty_registry())
}

/// Zero-copy variant of [`matches_value_with`] for the validation hot path:
/// the cell arrives as a borrowed [`ValueRef`] straight out of typed column
/// storage, and no text is cloned to evaluate the constraint (UDF
/// predicates, which take owned values, are the one exception).
pub fn matches_value_ref_with(c: &ValueConstraint, v: ValueRef<'_>, udfs: &UdfRegistry) -> bool {
    c.eval(&|p| value_pred_matches_ref_with(p, v, udfs))
}

/// Zero-copy variant of [`matches_value`].
pub fn matches_value_ref(c: &ValueConstraint, v: ValueRef<'_>) -> bool {
    matches_value_ref_with(c, v, empty_registry())
}

/// Does one value predicate hold on cell `v`?
pub fn value_pred_matches(p: &ValuePred, v: &Value) -> bool {
    value_pred_matches_with(p, v, empty_registry())
}

/// Does one value predicate hold on cell `v`, with UDFs from `udfs`?
pub fn value_pred_matches_with(p: &ValuePred, v: &Value, udfs: &UdfRegistry) -> bool {
    value_pred_matches_ref_with(p, v.as_value_ref(), udfs)
}

/// Does one value predicate hold on the borrowed cell `v`, with UDFs from
/// `udfs`?
pub fn value_pred_matches_ref_with(p: &ValuePred, v: ValueRef<'_>, udfs: &UdfRegistry) -> bool {
    if v.is_null() {
        return false;
    }
    match p.op {
        // UDFs take owned values; materialize only on this (rare) path.
        CmpOp::Udf => udfs.eval_value(&p.lit.raw, &v.to_value()),
        CmpOp::Eq => value_equals(v, &p.lit),
        CmpOp::Ne => !value_equals(v, &p.lit),
        CmpOp::Contains => match v {
            ValueRef::Text(s) => s.to_lowercase().contains(&p.lit.raw.trim().to_lowercase()),
            _ => false,
        },
        op => match compare(v, &p.lit) {
            Some(ord) => match op {
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                _ => unreachable!("Eq/Ne/Contains handled above"),
            },
            None => false,
        },
    }
}

fn value_equals(v: ValueRef<'_>, lit: &Literal) -> bool {
    match v {
        ValueRef::Int(_) | ValueRef::Decimal(_) => match lit.num {
            Some(n) => approx_eq(v.as_number().expect("numeric"), n),
            None => false,
        },
        ValueRef::Text(s) => s.trim().eq_ignore_ascii_case(lit.raw.trim()),
        ValueRef::Date(d) => Date::parse(lit.raw.trim()).is_some_and(|ld| d == ld),
        ValueRef::Time(t) => Time::parse(lit.raw.trim()).is_some_and(|lt| t == lt),
        ValueRef::Null => false,
    }
}

/// Three-way comparison of a cell against a literal, when the two are
/// comparable. Numeric cells compare against numeric literals; text compares
/// lexicographically (case-insensitive); dates/times compare against parsed
/// date/time literals (falling back to a raw numeric ordinal).
fn compare(v: ValueRef<'_>, lit: &Literal) -> Option<Ordering> {
    match v {
        ValueRef::Int(_) | ValueRef::Decimal(_) => {
            let n = lit.num?;
            v.as_number().expect("numeric").partial_cmp(&n)
        }
        ValueRef::Text(s) => Some(s.trim().to_lowercase().cmp(&lit.raw.trim().to_lowercase())),
        ValueRef::Date(d) => {
            let target = Date::parse(lit.raw.trim())
                .map(|x| x.ordinal())
                .or(lit.num)?;
            d.ordinal().partial_cmp(&target)
        }
        ValueRef::Time(t) => {
            let target = Time::parse(lit.raw.trim())
                .map(|x| x.ordinal())
                .or(lit.num)?;
            t.ordinal().partial_cmp(&target)
        }
        ValueRef::Null => None,
    }
}

fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= scale * 1e-9
}

/// Conservative numeric hull of a value constraint: a closed interval
/// `[lo, hi]` such that a non-NULL **numeric** cell (`Int`/`Decimal` view)
/// can satisfy the constraint only if its value lies inside. The executor
/// prunes scan blocks of numeric columns against zone maps with it
/// ([`prism_db::ScanPred::with_range`]).
///
/// `lo > hi` (an empty interval) means no numeric cell can ever satisfy the
/// constraint — e.g. a bare text keyword, or `CONTAINS`, which is false on
/// numbers. `(-∞, +∞)` means the constraint proves nothing about numeric
/// cells (e.g. `!=`, or a UDF). The hull says nothing about text, date, or
/// time cells; callers must only apply it to numeric columns.
pub fn numeric_hull(c: &ValueConstraint) -> (f64, f64) {
    const FULL: (f64, f64) = (f64::NEG_INFINITY, f64::INFINITY);
    const EMPTY: (f64, f64) = (f64::INFINITY, f64::NEG_INFINITY);
    match c {
        ConstraintExpr::And(a, b) => {
            let (la, ha) = numeric_hull(a);
            let (lb, hb) = numeric_hull(b);
            (la.max(lb), ha.min(hb))
        }
        ConstraintExpr::Or(a, b) => {
            let (la, ha) = numeric_hull(a);
            let (lb, hb) = numeric_hull(b);
            (la.min(lb), ha.max(hb))
        }
        ConstraintExpr::Pred(p) => match p.op {
            // `!=` admits almost every number; a UDF is opaque.
            CmpOp::Ne | CmpOp::Udf => FULL,
            // `CONTAINS` is false on numeric cells; so is equality/ordering
            // against a non-numeric literal (`compare` yields None).
            CmpOp::Contains => EMPTY,
            CmpOp::Eq => match p.lit.num {
                // Numeric equality is approximate (relative epsilon 1e-9 on
                // the larger magnitude, floored at 1): widen the point to
                // the sound hull of everything `approx_eq` accepts.
                Some(n) => {
                    let eps = (2.0 * n.abs() + 1.0) * 1e-9;
                    (n - eps, n + eps)
                }
                None => EMPTY,
            },
            CmpOp::Lt | CmpOp::Le => match p.lit.num {
                Some(n) => (f64::NEG_INFINITY, n),
                None => EMPTY,
            },
            CmpOp::Gt | CmpOp::Ge => match p.lit.num {
                Some(n) => (n, f64::INFINITY),
                None => EMPTY,
            },
        },
    }
}

/// Does the column described by (`name`, `stats`) satisfy the metadata
/// constraint? Column UDFs evaluate against `udfs`.
pub fn metadata_satisfied_with(
    c: &MetadataConstraint,
    name: &str,
    stats: &ColumnStats,
    udfs: &UdfRegistry,
) -> bool {
    c.eval(&|p| meta_pred_satisfied_with(p, name, stats, udfs))
}

/// Does the column described by (`name`, `stats`) satisfy the metadata
/// constraint? (No UDFs available.)
pub fn metadata_satisfied(c: &MetadataConstraint, name: &str, stats: &ColumnStats) -> bool {
    metadata_satisfied_with(c, name, stats, empty_registry())
}

/// Does one metadata predicate hold on the column?
pub fn meta_pred_satisfied(p: &MetaPred, name: &str, stats: &ColumnStats) -> bool {
    meta_pred_satisfied_with(p, name, stats, empty_registry())
}

/// Does one metadata predicate hold on the column, with UDFs from `udfs`?
pub fn meta_pred_satisfied_with(
    p: &MetaPred,
    name: &str,
    stats: &ColumnStats,
    udfs: &UdfRegistry,
) -> bool {
    match p.field {
        MetaField::Udf => udfs.eval_column(&p.lit.raw, stats),
        MetaField::DataType => {
            let Some(target) = DataType::parse(p.lit.raw.trim()) else {
                return false;
            };
            let matches = stats.dtype == target
                || (target == DataType::Decimal && stats.dtype == DataType::Int);
            match p.op {
                CmpOp::Eq => matches,
                CmpOp::Ne => !matches,
                _ => false,
            }
        }
        MetaField::ColumnName => {
            let lhs = name.trim().to_lowercase();
            let rhs = p.lit.raw.trim().to_lowercase();
            match p.op {
                CmpOp::Eq => lhs == rhs,
                CmpOp::Ne => lhs != rhs,
                CmpOp::Contains => lhs.contains(&rhs),
                CmpOp::Lt => lhs < rhs,
                CmpOp::Le => lhs <= rhs,
                CmpOp::Gt => lhs > rhs,
                CmpOp::Ge => lhs >= rhs,
                CmpOp::Udf => false,
            }
        }
        MetaField::MinValue => bound_satisfied(p, stats.min_num, stats.min_text.as_deref()),
        MetaField::MaxValue => bound_satisfied(p, stats.max_num, stats.max_text.as_deref()),
        MetaField::MaxLength => {
            let Some(len) = stats.max_text_len else {
                return false;
            };
            let Some(target) = p.lit.num else {
                return false;
            };
            cmp_holds(p.op, (len as f64).partial_cmp(&target))
        }
    }
}

/// Compare a numeric (or lexicographic, for text columns) column bound
/// against the literal.
fn bound_satisfied(p: &MetaPred, num_bound: Option<f64>, text_bound: Option<&str>) -> bool {
    if let (Some(bound), Some(target)) = (num_bound, lit_ordinal(&p.lit)) {
        return cmp_holds(p.op, bound.partial_cmp(&target));
    }
    if let Some(tb) = text_bound {
        let ord = tb
            .trim()
            .to_lowercase()
            .cmp(&p.lit.raw.trim().to_lowercase());
        return cmp_holds(p.op, Some(ord));
    }
    false
}

/// Numeric view of a literal: a number, or the ordinal of a date/time
/// spelling (so `MinValue >= '1990-01-01'` works on date columns).
fn lit_ordinal(lit: &Literal) -> Option<f64> {
    lit.num
        .or_else(|| Date::parse(lit.raw.trim()).map(|d| d.ordinal()))
        .or_else(|| Time::parse(lit.raw.trim()).map(|t| t.ordinal()))
}

fn cmp_holds(op: CmpOp, ord: Option<Ordering>) -> bool {
    let Some(ord) = ord else { return false };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        CmpOp::Contains | CmpOp::Udf => false,
    }
}

/// Estimate the fraction of a column's rows whose cell satisfies the value
/// constraint, from statistics alone. Used by the Bayesian scheduler as the
/// per-column predicate selectivity.
///
/// Conjunctions multiply (attribute-independence assumption — the Chow–Liu
/// models in `prism-bayes` refine this within a relation); disjunctions
/// combine by inclusion–exclusion.
pub fn estimate_selectivity(c: &ValueConstraint, stats: &ColumnStats) -> f64 {
    let non_null_frac = if stats.row_count == 0 {
        0.0
    } else {
        stats.non_null_count() as f64 / stats.row_count as f64
    };
    selectivity_inner(c, stats) * non_null_frac
}

fn selectivity_inner(c: &ValueConstraint, stats: &ColumnStats) -> f64 {
    match c {
        ConstraintExpr::Pred(p) => pred_selectivity(p, stats),
        ConstraintExpr::And(a, b) => selectivity_inner(a, stats) * selectivity_inner(b, stats),
        ConstraintExpr::Or(a, b) => {
            let (sa, sb) = (selectivity_inner(a, stats), selectivity_inner(b, stats));
            (sa + sb - sa * sb).clamp(0.0, 1.0)
        }
    }
}

fn pred_selectivity(p: &ValuePred, stats: &ColumnStats) -> f64 {
    match p.op {
        // Without the registry a UDF's selectivity is unknowable; a third
        // is the conventional optimizer guess for opaque predicates.
        CmpOp::Udf => 1.0 / 3.0,
        CmpOp::Eq => eq_selectivity(p, stats),
        CmpOp::Ne => 1.0 - eq_selectivity(p, stats),
        CmpOp::Contains => {
            // Fraction of MCV mass containing the keyword, floored at a
            // small default for unlisted matches.
            let needle = p.lit.raw.trim().to_lowercase();
            let mcv_mass: u32 = stats.most_common.iter().map(|(_, c)| *c).sum();
            let hit_mass: u32 = stats
                .most_common
                .iter()
                .filter(|(v, _)| {
                    v.as_text()
                        .is_some_and(|s| s.to_lowercase().contains(&needle))
                })
                .map(|(_, c)| *c)
                .sum();
            let base = if mcv_mass > 0 {
                hit_mass as f64 / stats.non_null_count().max(1) as f64
            } else {
                0.0
            };
            base.max(0.01)
        }
        CmpOp::Lt | CmpOp::Le => match lit_ordinal(&p.lit) {
            Some(x) => stats.selectivity_range(f64::MIN, x),
            None => text_order_selectivity(p, stats),
        },
        CmpOp::Gt | CmpOp::Ge => match lit_ordinal(&p.lit) {
            Some(x) => stats.selectivity_range(x, f64::MAX),
            None => text_order_selectivity(p, stats),
        },
    }
}

fn eq_selectivity(p: &ValuePred, stats: &ColumnStats) -> f64 {
    let v = if stats.dtype.is_numeric() {
        match p.lit.num {
            Some(n) => Value::Decimal(n),
            None => return 0.0,
        }
    } else {
        Value::Text(p.lit.raw.trim().to_string())
    };
    stats.selectivity_eq(&v)
}

/// Coarse estimate for ordering predicates on text columns: fraction of MCV
/// mass on the satisfying side, default 1/3 when the MCV list is empty.
fn text_order_selectivity(p: &ValuePred, stats: &ColumnStats) -> f64 {
    let mass: u32 = stats.most_common.iter().map(|(_, c)| *c).sum();
    if mass == 0 {
        return 1.0 / 3.0;
    }
    let hits: u32 = stats
        .most_common
        .iter()
        .filter(|(v, _)| value_pred_matches(p, v))
        .map(|(_, c)| *c)
        .sum();
    hits as f64 / mass as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_metadata_constraint, parse_value_constraint};
    use prism_db::database::DatabaseBuilder;
    use prism_db::schema::ColumnDef;
    use prism_db::Database;

    fn db_with_areas() -> Database {
        let mut b = DatabaseBuilder::new("t");
        b.add_table(
            "Lake",
            vec![
                ColumnDef::new("Name", DataType::Text).not_null(),
                ColumnDef::new("Area", DataType::Decimal),
            ],
        )
        .unwrap();
        for (n, a) in [
            ("Lake Tahoe", Some(497.0)),
            ("Crater Lake", Some(53.2)),
            ("Fort Peck Lake", Some(981.0)),
            ("Dead Lake", None),
        ] {
            b.add_row(
                "Lake",
                vec![n.into(), a.map(Value::Decimal).unwrap_or(Value::Null)],
            )
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn keyword_matches_case_insensitively() {
        let c = parse_value_constraint("lake tahoe").unwrap();
        assert!(matches_value(&c, &Value::text("Lake Tahoe")));
        assert!(!matches_value(&c, &Value::text("Crater Lake")));
    }

    #[test]
    fn disjunction_matches_either_value() {
        let c = parse_value_constraint("California || Nevada").unwrap();
        assert!(matches_value(&c, &Value::text("Nevada")));
        assert!(matches_value(&c, &Value::text("California")));
        assert!(!matches_value(&c, &Value::text("Oregon")));
    }

    #[test]
    fn numeric_equality_crosses_int_decimal() {
        let c = parse_value_constraint("497").unwrap();
        assert!(matches_value(&c, &Value::Int(497)));
        assert!(matches_value(&c, &Value::Decimal(497.0)));
        assert!(!matches_value(&c, &Value::Decimal(497.5)));
        // Numeric keyword also matches its text spelling? No: text cells
        // compare textually.
        assert!(matches_value(&c, &Value::text("497")));
    }

    #[test]
    fn range_constraint_on_numbers() {
        let c = parse_value_constraint(">= 100 && <= 600").unwrap();
        assert!(matches_value(&c, &Value::Decimal(497.0)));
        assert!(!matches_value(&c, &Value::Decimal(53.2)));
        assert!(!matches_value(&c, &Value::Decimal(981.0)));
        assert!(!matches_value(&c, &Value::text("Lake Tahoe")));
    }

    #[test]
    fn nulls_satisfy_nothing() {
        for src in ["x", "!= x", ">= 0", "CONTAINS x"] {
            let c = parse_value_constraint(src).unwrap();
            assert!(!matches_value(&c, &Value::Null), "{src} matched NULL");
        }
    }

    #[test]
    fn contains_is_substring_on_text() {
        let c = parse_value_constraint("CONTAINS tahoe").unwrap();
        assert!(matches_value(&c, &Value::text("Lake Tahoe")));
        assert!(!matches_value(&c, &Value::text("Crater Lake")));
        assert!(!matches_value(&c, &Value::Int(5)));
    }

    #[test]
    fn date_constraints() {
        let c = parse_value_constraint(">= '1990-01-01'").unwrap();
        assert!(matches_value(&c, &Value::Date(Date::new(1995, 6, 1))));
        assert!(!matches_value(&c, &Value::Date(Date::new(1980, 6, 1))));
        let eq = parse_value_constraint("1995-06-01").unwrap();
        assert!(matches_value(&eq, &Value::Date(Date::new(1995, 6, 1))));
    }

    #[test]
    fn time_constraints() {
        let c = parse_value_constraint("< '12:00'").unwrap();
        assert!(matches_value(&c, &Value::Time(Time::new(9, 30, 0))));
        assert!(!matches_value(&c, &Value::Time(Time::new(14, 0, 0))));
    }

    #[test]
    fn ne_holds_on_type_mismatch() {
        let c = parse_value_constraint("!= California").unwrap();
        assert!(matches_value(&c, &Value::Int(5)));
        assert!(matches_value(&c, &Value::text("Oregon")));
        assert!(!matches_value(&c, &Value::text("California")));
    }

    #[test]
    fn papers_metadata_constraint_accepts_area_column() {
        let db = db_with_areas();
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        let stats = db.stats().column(area);
        let c = parse_metadata_constraint("DataType=='decimal' AND MinValue>='0'").unwrap();
        assert!(metadata_satisfied(&c, "Area", stats));
        // A text column does not satisfy it.
        let name = db.catalog().column_ref("Lake", "Name").unwrap();
        assert!(!metadata_satisfied(&c, "Name", db.stats().column(name)));
    }

    #[test]
    fn datatype_decimal_accepts_int_columns_but_not_vice_versa() {
        let mut b = DatabaseBuilder::new("t");
        b.add_table("T", vec![ColumnDef::new("n", DataType::Int)])
            .unwrap();
        b.add_row("T", vec![Value::Int(1)]).unwrap();
        let db = b.build();
        let col = db.catalog().column_ref("T", "n").unwrap();
        let st = db.stats().column(col);
        let dec = parse_metadata_constraint("DataType == 'decimal'").unwrap();
        assert!(metadata_satisfied(&dec, "n", st));
        let int_on_dec = parse_metadata_constraint("DataType == 'int'").unwrap();
        let db2 = db_with_areas();
        let area = db2.catalog().column_ref("Lake", "Area").unwrap();
        assert!(!metadata_satisfied(
            &int_on_dec,
            "Area",
            db2.stats().column(area)
        ));
    }

    #[test]
    fn column_name_predicates() {
        let db = db_with_areas();
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        let st = db.stats().column(area);
        assert!(metadata_satisfied(
            &parse_metadata_constraint("ColumnName == 'area'").unwrap(),
            "Area",
            st
        ));
        assert!(metadata_satisfied(
            &parse_metadata_constraint("ColumnName CONTAINS re").unwrap(),
            "Area",
            st
        ));
        assert!(!metadata_satisfied(
            &parse_metadata_constraint("ColumnName == 'name'").unwrap(),
            "Area",
            st
        ));
    }

    #[test]
    fn max_length_predicate() {
        let db = db_with_areas();
        let name = db.catalog().column_ref("Lake", "Name").unwrap();
        let st = db.stats().column(name);
        // Longest lake name is "Fort Peck Lake" (14 chars).
        assert!(metadata_satisfied(
            &parse_metadata_constraint("MaxLength <= '20'").unwrap(),
            "Name",
            st
        ));
        assert!(!metadata_satisfied(
            &parse_metadata_constraint("MaxLength <= '5'").unwrap(),
            "Name",
            st
        ));
        // MaxLength on a numeric column is unsatisfiable.
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        assert!(!metadata_satisfied(
            &parse_metadata_constraint("MaxLength <= '20'").unwrap(),
            "Area",
            db.stats().column(area)
        ));
    }

    #[test]
    fn min_max_value_on_text_columns_compare_lexicographically() {
        let db = db_with_areas();
        let name = db.catalog().column_ref("Lake", "Name").unwrap();
        let st = db.stats().column(name);
        // min_text = "Crater Lake" >= 'A'.
        assert!(metadata_satisfied(
            &parse_metadata_constraint("MinValue >= 'A'").unwrap(),
            "Name",
            st
        ));
    }

    #[test]
    fn selectivity_of_equality_and_range() {
        let db = db_with_areas();
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        let st = db.stats().column(area);
        let eq = parse_value_constraint("497").unwrap();
        let s_eq = estimate_selectivity(&eq, st);
        // One of four rows (one NULL): 1/4.
        assert!((s_eq - 0.25).abs() < 0.01, "eq selectivity {s_eq}");
        let range = parse_value_constraint(">= 0").unwrap();
        let s_r = estimate_selectivity(&range, st);
        assert!(s_r > 0.5, "range selectivity {s_r}");
        let nothing = parse_value_constraint(">= 99999").unwrap();
        assert!(estimate_selectivity(&nothing, st) < 0.05);
    }

    #[test]
    fn selectivity_or_uses_inclusion_exclusion() {
        let db = db_with_areas();
        let name = db.catalog().column_ref("Lake", "Name").unwrap();
        let st = db.stats().column(name);
        let one = parse_value_constraint("Lake Tahoe").unwrap();
        let two = parse_value_constraint("Lake Tahoe || Crater Lake").unwrap();
        let s1 = estimate_selectivity(&one, st);
        let s2 = estimate_selectivity(&two, st);
        assert!(s2 > s1);
        assert!(s2 <= 1.0);
    }

    #[test]
    fn numeric_hull_bounds_every_accepted_numeric_cell() {
        let probes: Vec<f64> = vec![
            -1e12,
            -981.0,
            -0.5,
            -0.0,
            0.0,
            1e-9,
            53.2,
            497.0,
            497.0000001,
            981.0,
            1e12,
        ];
        for src in [
            "497",
            ">= 100",
            "<= 600",
            ">= 100 && <= 600",
            "< 100 || > 900",
            "!= 497",
            "497 || 53.2",
            "Lake Tahoe",
            "CONTAINS tahoe",
            "('a' OR >= '10') AND <= '20'",
        ] {
            let c = parse_value_constraint(src).unwrap();
            let (lo, hi) = numeric_hull(&c);
            for &x in &probes {
                for v in [Value::Decimal(x), Value::Int(x as i64)] {
                    if matches_value(&c, &v) {
                        let n = v.as_number().unwrap();
                        assert!(
                            lo <= n && n <= hi,
                            "{src}: accepted {n} outside hull [{lo}, {hi}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn numeric_hull_shapes() {
        let hull = |s: &str| numeric_hull(&parse_value_constraint(s).unwrap());
        // A bare text keyword can never accept a number.
        let (lo, hi) = hull("Lake Tahoe");
        assert!(lo > hi, "text keyword hull must be empty");
        let (lo, hi) = hull("CONTAINS tahoe");
        assert!(lo > hi);
        // Ranges and intersections.
        assert_eq!(hull(">= 100 && <= 600"), (100.0, 600.0));
        let (lo, hi) = hull("497");
        assert!(lo <= 497.0 && 497.0 <= hi && hi - lo < 1e-5);
        // Disjunction takes the union hull.
        let (lo, hi) = hull("53.2 || 497");
        assert!(lo < 53.3 && hi > 496.9);
        // Opaque shapes prove nothing.
        assert_eq!(hull("!= 497"), (f64::NEG_INFINITY, f64::INFINITY));
        // Ordering against a non-numeric literal is false on numbers.
        let (lo, hi) = hull(">= 'abc'");
        assert!(lo > hi);
    }

    #[test]
    fn selectivity_is_bounded() {
        let db = db_with_areas();
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        let st = db.stats().column(area);
        for src in ["497", ">= 0", "< 100 || > 900", "!= 497", "CONTAINS x"] {
            let c = parse_value_constraint(src).unwrap();
            let s = estimate_selectivity(&c, st);
            assert!((0.0..=1.0).contains(&s), "{src} -> {s}");
        }
    }
}
