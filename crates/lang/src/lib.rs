//! # prism-lang — the multiresolution schema mapping language
//!
//! Figure 1 of the Prism paper defines the constraint language users write:
//!
//! ```text
//! Value Constraint    ck := pv | pv logicalop pv | …
//! Metadata Constraint cm := pm | pm logicalop pm | …
//! logicalop           := ∧ | ∨
//! Value Predicate     pv := binop const
//! Metadata Predicate  pm := type binop const
//! Metadata Type       type := DataType | ColumnName | MaxValue | MinValue
//! binop               := > | ≥ | < | ≤ | = | ≠
//! ```
//!
//! This crate implements that language: a lexer and recursive-descent parser
//! into an AST ([`ValueConstraint`], [`MetadataConstraint`]), evaluation of
//! value constraints against cells and of metadata constraints against
//! column statistics, and selectivity estimation used by the Bayesian filter
//! scheduler.
//!
//! Concrete syntax follows the paper's demo walk-through: a bare keyword is
//! an equality predicate (`Lake Tahoe` ≡ `= 'Lake Tahoe'`), `||`/`OR` and
//! `&&`/`AND` are the logical operators (`California || Nevada`), and
//! metadata constraints name a metadata type explicitly
//! (`DataType == 'decimal' AND MinValue >= '0'`). `MaxLength` extends the
//! grammar with the paper's "maximum text length" metadata, and `CONTAINS`
//! adds keyword-containment matching.

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod udf;

pub use ast::{
    CmpOp, ConstraintExpr, Literal, MetaField, MetaPred, MetadataConstraint, ValueConstraint,
    ValuePred,
};
pub use error::{Error, ParseError};
pub use eval::{
    estimate_selectivity, matches_value, matches_value_ref, matches_value_ref_with,
    matches_value_with, metadata_satisfied, metadata_satisfied_with, numeric_hull,
};
pub use parser::{parse_metadata_constraint, parse_value_constraint};
pub use udf::UdfRegistry;
