//! Abstract syntax of the multiresolution constraint language.

use std::fmt;

/// Comparison operators (`binop` in Figure 1, plus the `CONTAINS` extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Keyword containment in a text cell (extension; Figure 1's grammar is
    /// equality-based, but the demo narrative — "contain a given keyword" —
    /// motivates it).
    Contains,
    /// A user-defined function call (`@name`) — the paper's announced
    /// future-work extension. The predicate's literal holds the UDF name.
    Udf,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "CONTAINS",
            CmpOp::Udf => "@",
        }
    }

    /// True for operators that constrain an ordering (`<`, `<=`, `>`, `>=`).
    pub fn is_ordering(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }
}

/// A constant written by the user. The raw spelling is kept verbatim —
/// `'0'` in `MinValue >= '0'` is numeric by context — and a numeric parse is
/// cached when the spelling is a number.
#[derive(Debug, Clone, PartialEq)]
pub struct Literal {
    /// The text between quotes, or the bareword sequence as typed.
    pub raw: String,
    /// `Some` when `raw` parses as a finite number.
    pub num: Option<f64>,
}

impl Literal {
    pub fn new(raw: impl Into<String>) -> Literal {
        let raw = raw.into();
        let num = raw.trim().parse::<f64>().ok().filter(|n| n.is_finite());
        Literal { raw, num }
    }

    pub fn is_numeric(&self) -> bool {
        self.num.is_some()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}'", self.raw)
    }
}

/// `pv := binop const` — a predicate over one cell of the target schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ValuePred {
    pub op: CmpOp,
    pub lit: Literal,
}

impl fmt::Display for ValuePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            // Bare keyword form, as users write it.
            CmpOp::Eq => write!(f, "{}", self.lit),
            CmpOp::Udf => write!(f, "@{}", self.lit.raw),
            _ => write!(f, "{} {}", self.op.symbol(), self.lit),
        }
    }
}

/// The metadata types of Figure 1 plus `MaxLength` (the paper's "maximum
/// text length" metadata, named in Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaField {
    DataType,
    ColumnName,
    MinValue,
    MaxValue,
    MaxLength,
    /// A column-level user-defined function (`@name`); the predicate's
    /// literal holds the UDF name.
    Udf,
}

impl MetaField {
    pub fn name(self) -> &'static str {
        match self {
            MetaField::DataType => "DataType",
            MetaField::ColumnName => "ColumnName",
            MetaField::MinValue => "MinValue",
            MetaField::MaxValue => "MaxValue",
            MetaField::MaxLength => "MaxLength",
            MetaField::Udf => "@",
        }
    }

    pub fn parse(s: &str) -> Option<MetaField> {
        match s.to_ascii_lowercase().as_str() {
            "datatype" | "type" => Some(MetaField::DataType),
            "columnname" | "column" | "name" => Some(MetaField::ColumnName),
            "minvalue" | "min" => Some(MetaField::MinValue),
            "maxvalue" | "max" => Some(MetaField::MaxValue),
            "maxlength" | "maxtextlength" | "length" => Some(MetaField::MaxLength),
            _ => None,
        }
    }
}

/// `pm := type binop const` — factual knowledge about a source column.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaPred {
    pub field: MetaField,
    pub op: CmpOp,
    pub lit: Literal,
}

impl fmt::Display for MetaPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.field == MetaField::Udf {
            write!(f, "@{}", self.lit.raw)
        } else {
            write!(f, "{} {} {}", self.field.name(), self.op.symbol(), self.lit)
        }
    }
}

/// A boolean combination of predicates — the `p | p logicalop p | …`
/// production, generic over the predicate kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintExpr<P> {
    Pred(P),
    And(Box<ConstraintExpr<P>>, Box<ConstraintExpr<P>>),
    Or(Box<ConstraintExpr<P>>, Box<ConstraintExpr<P>>),
}

impl<P> ConstraintExpr<P> {
    pub fn and(a: ConstraintExpr<P>, b: ConstraintExpr<P>) -> ConstraintExpr<P> {
        ConstraintExpr::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: ConstraintExpr<P>, b: ConstraintExpr<P>) -> ConstraintExpr<P> {
        ConstraintExpr::Or(Box::new(a), Box::new(b))
    }

    /// Evaluate with a predicate oracle.
    pub fn eval(&self, test: &impl Fn(&P) -> bool) -> bool {
        match self {
            ConstraintExpr::Pred(p) => test(p),
            ConstraintExpr::And(a, b) => a.eval(test) && b.eval(test),
            ConstraintExpr::Or(a, b) => a.eval(test) || b.eval(test),
        }
    }

    /// All predicates, left to right.
    pub fn predicates(&self) -> Vec<&P> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a P>) {
        match self {
            ConstraintExpr::Pred(p) => out.push(p),
            ConstraintExpr::And(a, b) | ConstraintExpr::Or(a, b) => {
                a.collect(out);
                b.collect(out);
            }
        }
    }

    /// Number of predicate leaves.
    pub fn predicate_count(&self) -> usize {
        match self {
            ConstraintExpr::Pred(_) => 1,
            ConstraintExpr::And(a, b) | ConstraintExpr::Or(a, b) => {
                a.predicate_count() + b.predicate_count()
            }
        }
    }
}

/// A row-level value constraint (`ck`).
pub type ValueConstraint = ConstraintExpr<ValuePred>;

/// A column-level metadata constraint (`cm`).
pub type MetadataConstraint = ConstraintExpr<MetaPred>;

impl ValueConstraint {
    /// When the constraint is a pure disjunction of equality keywords
    /// (`a || b || c` or a single keyword), return them. Related-column
    /// discovery uses this to answer the constraint entirely from the
    /// inverted index; anything else falls back to a scan.
    pub fn eq_keywords(&self) -> Option<Vec<&Literal>> {
        match self {
            ConstraintExpr::Pred(ValuePred { op: CmpOp::Eq, lit }) => Some(vec![lit]),
            ConstraintExpr::Or(a, b) => {
                let mut left = a.eq_keywords()?;
                left.extend(b.eq_keywords()?);
                Some(left)
            }
            _ => None,
        }
    }
}

impl<P: fmt::Display> fmt::Display for ConstraintExpr<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintExpr::Pred(p) => write!(f, "{p}"),
            ConstraintExpr::And(a, b) => {
                write_operand(f, a)?;
                write!(f, " AND ")?;
                write_operand(f, b)
            }
            ConstraintExpr::Or(a, b) => {
                write_operand(f, a)?;
                write!(f, " OR ")?;
                write_operand(f, b)
            }
        }
    }
}

fn write_operand<P: fmt::Display>(
    f: &mut fmt::Formatter<'_>,
    e: &ConstraintExpr<P>,
) -> fmt::Result {
    match e {
        ConstraintExpr::Pred(_) => write!(f, "{e}"),
        _ => write!(f, "({e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(s: &str) -> ValueConstraint {
        ConstraintExpr::Pred(ValuePred {
            op: CmpOp::Eq,
            lit: Literal::new(s),
        })
    }

    #[test]
    fn literal_caches_numeric_parse() {
        assert_eq!(Literal::new("497").num, Some(497.0));
        assert_eq!(Literal::new("53.2").num, Some(53.2));
        assert_eq!(Literal::new("Lake Tahoe").num, None);
        assert_eq!(Literal::new("  0 ").num, Some(0.0));
        assert_eq!(Literal::new("NaN").num, None, "non-finite rejected");
    }

    #[test]
    fn eval_respects_boolean_structure() {
        let c = ConstraintExpr::or(kw("California"), kw("Nevada"));
        let hits_cal = |p: &ValuePred| p.lit.raw == "California";
        assert!(c.eval(&hits_cal));
        let c2 = ConstraintExpr::and(kw("California"), kw("Nevada"));
        assert!(!c2.eval(&hits_cal));
    }

    #[test]
    fn eq_keywords_extracts_pure_disjunctions() {
        let c = ConstraintExpr::or(kw("California"), kw("Nevada"));
        let kws: Vec<&str> = c
            .eq_keywords()
            .unwrap()
            .iter()
            .map(|l| l.raw.as_str())
            .collect();
        assert_eq!(kws, vec!["California", "Nevada"]);
        // A range predicate defeats keyword extraction.
        let range = ConstraintExpr::Pred(ValuePred {
            op: CmpOp::Ge,
            lit: Literal::new("0"),
        });
        assert!(ConstraintExpr::or(kw("a"), range.clone())
            .eq_keywords()
            .is_none());
        assert!(range.eq_keywords().is_none());
        // Conjunctions also defeat it.
        assert!(ConstraintExpr::and(kw("a"), kw("b"))
            .eq_keywords()
            .is_none());
    }

    #[test]
    fn display_round_trips_shape() {
        let c = ConstraintExpr::or(kw("California"), kw("Nevada"));
        assert_eq!(c.to_string(), "'California' OR 'Nevada'");
        let nested = ConstraintExpr::and(
            c,
            ConstraintExpr::Pred(ValuePred {
                op: CmpOp::Ge,
                lit: Literal::new("0"),
            }),
        );
        assert_eq!(nested.to_string(), "('California' OR 'Nevada') AND >= '0'");
    }

    #[test]
    fn predicates_enumerates_leaves_in_order() {
        let c = ConstraintExpr::or(ConstraintExpr::and(kw("a"), kw("b")), kw("c"));
        let raws: Vec<&str> = c.predicates().iter().map(|p| p.lit.raw.as_str()).collect();
        assert_eq!(raws, vec!["a", "b", "c"]);
        assert_eq!(c.predicate_count(), 3);
    }

    #[test]
    fn meta_field_parse_aliases() {
        assert_eq!(MetaField::parse("DataType"), Some(MetaField::DataType));
        assert_eq!(MetaField::parse("MINVALUE"), Some(MetaField::MinValue));
        assert_eq!(MetaField::parse("maxlength"), Some(MetaField::MaxLength));
        assert_eq!(MetaField::parse("colour"), None);
    }

    #[test]
    fn meta_pred_display() {
        let p = MetaPred {
            field: MetaField::MinValue,
            op: CmpOp::Ge,
            lit: Literal::new("0"),
        };
        assert_eq!(p.to_string(), "MinValue >= '0'");
    }
}
