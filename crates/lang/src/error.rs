//! Parse errors with source positions.

use std::fmt;

/// An error encountered while lexing or parsing a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the constraint text where the problem was noticed.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub fn new(position: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors raised while evaluating user-supplied predicates at runtime (as
/// opposed to [`ParseError`], which covers constraint text). User code is
/// untrusted by construction: a registered UDF may panic on inputs its
/// author never considered, and the engine must degrade that one
/// evaluation, not the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A registered UDF panicked while evaluating a cell or column. Carries
    /// the UDF's (lowercased) registered name.
    UdfPanic(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UdfPanic(name) => write!(f, "UDF @{name} panicked during evaluation"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_message() {
        let e = ParseError::new(7, "expected a constant");
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("expected a constant"));
    }
}
