//! T1 — end-to-end discovery latency on the paper's walk-through and on
//! representative tasks of each demo database.
//!
//! The paper's interactive budget is 60 seconds per round; these benches
//! show the synthetic reproduction resolves the same workloads in
//! milliseconds, leaving the budget as slack for much larger databases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prism_core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism_datasets::{imdb, mondial, nba};
use std::time::Duration;

fn walkthrough_constraints() -> TargetConstraints {
    TargetConstraints::parse(
        3,
        &[vec![
            Some("California || Nevada".to_string()),
            Some("Lake Tahoe".to_string()),
            None,
        ]],
        &[
            None,
            None,
            Some("DataType=='decimal' AND MinValue>='0'".to_string()),
        ],
    )
    .unwrap()
}

fn bench_table1(c: &mut Criterion) {
    let db = mondial(42, 1);
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let constraints = walkthrough_constraints();
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("table1_motivating_example", |b| {
        b.iter(|| {
            let result = engine.run(&constraints);
            assert!(!result.queries.is_empty());
            result.queries.len()
        })
    });
    group.finish();
}

fn bench_per_database(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery_per_database");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(6));
    let cases = vec![
        (
            "Mondial",
            mondial(42, 1),
            TargetConstraints::parse(
                2,
                &[vec![
                    Some("Mississippi".into()),
                    Some("United States".into()),
                ]],
                &[],
            )
            .unwrap(),
        ),
        (
            "IMDB",
            imdb(42, 1),
            TargetConstraints::parse(
                2,
                &[vec![
                    Some("Seven Samurai || Casablanca".into()),
                    Some("Akira Kurosawa".into()),
                ]],
                &[],
            )
            .unwrap(),
        ),
        (
            "NBA",
            nba(42, 1),
            TargetConstraints::parse(
                2,
                &[vec![Some("Lakers".into()), None]],
                &[None, Some("DataType=='date'".into())],
            )
            .unwrap(),
        ),
    ];
    for (name, db, constraints) in &cases {
        let engine = Discovery::new(db, DiscoveryConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(*name), name, |b, _| {
            b.iter(|| engine.run(constraints).queries.len())
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Discovery latency versus database scale (the interactivity claim).
    let mut group = c.benchmark_group("discovery_vs_scale");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for scale in [1usize, 2, 4] {
        let db = mondial(42, scale);
        let engine = Discovery::new(&db, DiscoveryConfig::default());
        let constraints = walkthrough_constraints();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("scale{scale}_rows{}", db.total_rows())),
            &scale,
            |b, _| b.iter(|| engine.run(&constraints).queries.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1, bench_per_database, bench_scaling);
criterion_main!(benches);
