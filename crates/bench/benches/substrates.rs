//! Micro-benchmarks of the substrate layers: the inverted index, schema
//! graph enumeration, PJ execution, statistics, and the constraint parser.
//!
//! These are the pieces the paper assumes a DBMS provides ("the inverted
//! index provided in most DBMS systems", "metadata … collected during
//! preprocessing"); the benches document that our own implementations are
//! fast enough to never dominate a discovery round.

use criterion::{criterion_group, criterion_main, Criterion};
use prism_datasets::mondial;
use prism_db::{ExecStats, JoinCond, PjQuery, ValueRef};
use prism_lang::{parse_metadata_constraint, parse_value_constraint};
use std::time::Duration;

fn bench_index(c: &mut Criterion) {
    let db = mondial(42, 4);
    c.bench_function("index_cell_lookup_hit", |b| {
        b.iter(|| db.index().lookup_cell("lake tahoe").len())
    });
    c.bench_function("index_cell_lookup_miss", |b| {
        b.iter(|| db.index().lookup_cell("no such keyword").len())
    });
    c.bench_function("index_contains_lookup", |b| {
        b.iter(|| db.index().lookup_contains("lake").len())
    });
}

fn bench_graph(c: &mut Criterion) {
    let db = mondial(42, 1);
    let anchors: Vec<_> = db.catalog().tables().map(|(t, _)| t).collect();
    c.bench_function("join_tree_enumeration_4tables", |b| {
        b.iter(|| db.graph().enumerate_trees(4, &anchors).len())
    });
    let tree = db
        .graph()
        .enumerate_trees(4, &anchors)
        .into_iter()
        .max_by_key(|t| t.table_count())
        .unwrap();
    c.bench_function("subtree_enumeration", |b| {
        b.iter(|| db.graph().subtrees(&tree).len())
    });
}

fn bench_execution(c: &mut Criterion) {
    let db = mondial(42, 4);
    let lake = db.catalog().table_id("Lake").unwrap();
    let geo = db.catalog().table_id("geo_lake").unwrap();
    let q = PjQuery {
        nodes: vec![lake, geo],
        joins: vec![JoinCond {
            left_node: 1,
            left_col: 0,
            right_node: 0,
            right_col: 0,
        }],
        projection: vec![(1, 2), (0, 0), (0, 1)],
    };
    let is_cal = |v: ValueRef<'_>| v == ValueRef::Text("California");
    let is_tahoe = |v: ValueRef<'_>| v == ValueRef::Text("Lake Tahoe");
    c.bench_function("pj_exists_matching_hit", |b| {
        b.iter(|| {
            let mut stats = ExecStats::default();
            q.exists_matching(
                &db,
                &[
                    Some(prism_db::ScanPred::new(&is_cal)),
                    Some(prism_db::ScanPred::new(&is_tahoe)),
                    None,
                ],
                &mut stats,
            )
            .unwrap()
        })
    });
    let is_nowhere = |v: ValueRef<'_>| v == ValueRef::Text("Atlantis");
    c.bench_function("pj_exists_matching_miss_full_scan", |b| {
        b.iter(|| {
            let mut stats = ExecStats::default();
            q.exists_matching(
                &db,
                &[Some(prism_db::ScanPred::new(&is_nowhere)), None, None],
                &mut stats,
            )
            .unwrap()
        })
    });
    // The prepare/execute split: plan compiled once, scratch reused — the
    // shape filter validation actually runs in (PR 5).
    let miss_preds = [Some(prism_db::ScanPred::new(&is_nowhere)), None, None];
    let prepared = q.prepare(&db, &miss_preds).unwrap();
    let mut scratch = prism_db::ExecScratch::new();
    c.bench_function("pj_exists_matching_miss_prepared", |b| {
        b.iter(|| {
            let mut stats = ExecStats::default();
            prepared
                .exists_matching(&db, &miss_preds, &mut scratch, &mut stats)
                .unwrap()
        })
    });
    c.bench_function("pj_full_execution", |b| {
        b.iter(|| q.execute(&db, usize::MAX).unwrap().len())
    });
}

fn bench_stats_and_lang(c: &mut Criterion) {
    let db = mondial(42, 4);
    let area = db.catalog().column_ref("Lake", "Area").unwrap();
    let stats = db.stats().column(area);
    let range = parse_value_constraint(">= 100 && <= 600").unwrap();
    c.bench_function("stats_selectivity_estimate", |b| {
        b.iter(|| prism_lang::estimate_selectivity(&range, stats))
    });
    c.bench_function("parse_value_constraint", |b| {
        b.iter(|| parse_value_constraint("California || Nevada || 'New Mexico'").unwrap())
    });
    c.bench_function("parse_metadata_constraint", |b| {
        b.iter(|| {
            parse_metadata_constraint("DataType=='decimal' AND MinValue>='0' AND MaxValue<='99'")
                .unwrap()
        })
    });
    let mut group = c.benchmark_group("preprocessing");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(6));
    group.bench_function("database_build_preprocessing", |b| {
        b.iter(|| mondial(42, 1).total_rows())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index,
    bench_graph,
    bench_execution,
    bench_stats_and_lang
);
criterion_main!(benches);
