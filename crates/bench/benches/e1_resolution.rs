//! E1 — discovery time as constraints loosen.
//!
//! The paper's claim: execution time *"did not grow significantly as user
//! constraints became loose"*. One Criterion group, one benchmark per
//! resolution level, on a fixed set of synthesized Mondial tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prism_bench::task_constraints;
use prism_core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism_datasets::{mondial, Resolution, TaskGenConfig, TaskGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_resolutions(c: &mut Criterion) {
    let db = mondial(42, 1);
    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let taskgen = TaskGenerator::new(&db, TaskGenConfig::default());
    let mut group = c.benchmark_group("e1_time_vs_resolution");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(12));
    for resolution in Resolution::ALL {
        // A fixed batch of 5 tasks per level; the benchmark measures the
        // whole batch so per-level numbers are comparable.
        let mut rng = StdRng::seed_from_u64(0xE1);
        let tasks: Vec<TargetConstraints> = taskgen
            .generate_many(resolution, 5, &mut rng)
            .iter()
            .map(task_constraints)
            .collect();
        assert!(!tasks.is_empty());
        group.bench_with_input(
            BenchmarkId::from_parameter(resolution.name()),
            &tasks,
            |b, tasks| {
                b.iter(|| {
                    let mut total = 0usize;
                    for t in tasks {
                        total += engine.run(t).queries.len();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_resolutions);
criterion_main!(benches);
