//! E4 — the parallel validation engine versus the sequential greedy loop
//! on identical filter sets.
//!
//! E3 (`e3_scheduling`) compares *schedulers* (failure models) at fixed
//! sequential execution; this bench fixes the scheduler and compares the
//! *execution engines*: one validation per round on the calling thread
//! versus batches of mutually non-implying validations sharded across a
//! worker pool. Both must accept identical candidate sets — the assertion
//! runs inside the measured loop as a cheap integrity check — so the only
//! degree of freedom is wall-clock.
//!
//! Absolute speedups depend on the machine's core count; see
//! `BENCH_parallel.json` (written by the `bench_json` binary) for tracked
//! numbers with the core count recorded alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prism_bayes::{BayesEstimator, TrainConfig};
use prism_bench::scheduling_cases;
use prism_core::scheduler::{BayesModel, Engine, SchedCtx, Scheduler};
use prism_core::DiscoveryConfig;
use prism_datasets::{imdb, Resolution};
use std::time::Duration;

fn bench_parallel_engine(c: &mut Criterion) {
    // IMDB-scale generated workload: big enough that single validations
    // carry real row effort, so batching has something to overlap.
    let db = imdb(42, 8);
    let config = DiscoveryConfig::default();
    let est = BayesEstimator::train(&db, &TrainConfig::default());
    let cases = scheduling_cases(&db, Resolution::Disjunction, 4, 0xE4, &config);
    assert!(!cases.is_empty());
    let baseline: Vec<Vec<u32>> = cases
        .iter()
        .map(|(tc, fs)| {
            let ctx = SchedCtx::new(&db, tc, fs);
            let model = BayesModel::new(&est, tc);
            let engine = Engine::Greedy {
                model: &model,
                threads: 1,
            };
            Scheduler::run(&ctx, engine).accepted
        })
        .collect();

    let mut group = c.benchmark_group("e4_parallel_validation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_with_input(
        BenchmarkId::from_parameter("sequential"),
        &cases,
        |b, cases| {
            b.iter(|| {
                let mut v = 0u64;
                for (tc, fs) in cases {
                    let ctx = SchedCtx::new(&db, tc, fs);
                    let model = BayesModel::new(&est, tc);
                    let engine = Engine::Greedy {
                        model: &model,
                        threads: 1,
                    };
                    v += Scheduler::run(&ctx, engine).validations;
                }
                v
            })
        },
    );
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &cases, |b, cases| {
            b.iter(|| {
                let mut v = 0u64;
                for ((tc, fs), accepted) in cases.iter().zip(&baseline) {
                    let ctx = SchedCtx::new(&db, tc, fs);
                    let model = BayesModel::new(&est, tc);
                    let engine = Engine::Greedy {
                        model: &model,
                        threads,
                    };
                    let outcome = Scheduler::run(&ctx, engine);
                    assert_eq!(&outcome.accepted, accepted, "engines must agree");
                    v += outcome.validations;
                }
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_engine);
criterion_main!(benches);
