//! E3 — wall-clock cost of the filter schedulers on identical filter sets.
//!
//! Complements `exp-scheduling` (which reports validation *counts*, the
//! paper's metric) with the time axis: Naive whole-query validation versus
//! the PathLength baseline versus Prism's Bayesian scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prism_bayes::{BayesEstimator, TrainConfig};
use prism_bench::scheduling_cases;
use prism_core::scheduler::{BayesModel, Engine, PathLengthModel, SchedCtx, Scheduler};
use prism_core::DiscoveryConfig;
use prism_datasets::{mondial, Resolution};
use std::time::Duration;

fn bench_schedulers(c: &mut Criterion) {
    let db = mondial(42, 1);
    let config = DiscoveryConfig::default();
    let est = BayesEstimator::train(&db, &TrainConfig::default());
    // Pre-build candidate/filter sets once; scheduling is what's measured.
    let cases = scheduling_cases(&db, Resolution::Disjunction, 5, 0xE3, &config);
    assert!(!cases.is_empty());

    let mut group = c.benchmark_group("e3_scheduler_time");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_with_input(BenchmarkId::from_parameter("naive"), &cases, |b, cases| {
        b.iter(|| {
            let mut v = 0u64;
            for (tc, fs) in cases {
                let ctx = SchedCtx::new(&db, tc, fs);
                v += Scheduler::run(&ctx, Engine::Naive).validations;
            }
            v
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("filter_path_length"),
        &cases,
        |b, cases| {
            b.iter(|| {
                let mut v = 0u64;
                for (tc, fs) in cases {
                    let ctx = SchedCtx::new(&db, tc, fs);
                    let engine = Engine::Greedy {
                        model: &PathLengthModel,
                        threads: 1,
                    };
                    v += Scheduler::run(&ctx, engine).validations;
                }
                v
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("prism_bayes"),
        &cases,
        |b, cases| {
            b.iter(|| {
                let mut v = 0u64;
                for (tc, fs) in cases {
                    let ctx = SchedCtx::new(&db, tc, fs);
                    let model = BayesModel::new(&est, tc);
                    let engine = Engine::Greedy {
                        model: &model,
                        threads: 1,
                    };
                    v += Scheduler::run(&ctx, engine).validations;
                }
                v
            })
        },
    );
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    // The per-filter probability query must be cheap enough to run inside
    // the scheduling loop; also benchmark a priori training.
    let db = mondial(42, 1);
    let est = BayesEstimator::train(&db, &TrainConfig::default());
    let tree = db
        .graph()
        .enumerate_trees(2, &[db.catalog().table_id("Lake").unwrap()])
        .into_iter()
        .find(|t| t.table_count() == 2)
        .unwrap();
    let constraint = prism_lang::parse_value_constraint("California || Nevada").unwrap();
    let col = db.catalog().column_ref("geo_lake", "Province").unwrap();
    c.bench_function("bayes_failure_probability", |b| {
        b.iter(|| est.failure_probability(&db, &tree, &[(col, &constraint)]))
    });
    let mut group = c.benchmark_group("bayes_training");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("bayes_training_a_priori", |b| {
        b.iter(|| BayesEstimator::train(&db, &TrainConfig::default()).has_join_indicators())
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_estimator);
criterion_main!(benches);
