//! Machine-readable substrate benchmark: E1/E3-style timings plus
//! microbenchmarks of the validation hot path, appended to
//! `BENCH_substrate.json` (and scan-layer microbenches to
//! `BENCH_scan.json`) so the perf trajectory of the storage substrate is
//! tracked across refactors.
//!
//! Usage: `cargo run --release -p prism_bench --bin bench_json -- <phase>
//! [scale]` where `<phase>` labels the run (e.g. `pre_refactor`,
//! `pr5_prepared`) and `[scale]` overrides the mondial replication factor
//! (default 4). The file holds a JSON array; each run appends one entry
//! without disturbing earlier ones, so before/after comparisons are one
//! `diff` away.
//!
//! The existence-probe microbenches measure both execution paths,
//! interleaved (machine drift hits both alike):
//!
//! * **per-call** ("pre") — `PjQuery::exists_matching`, which validates,
//!   plans, and allocates scratch on every call (the engine's shape before
//!   the PR 5 prepare/execute split), and
//! * **prepared** ("post") — `PjQuery::prepare` once + a reused
//!   [`prism_db::ExecScratch`], which is how filter validation actually
//!   runs now (shared plan cache + per-worker scratch).
//!
//! `exists_hit_per_s` / `exists_miss_per_s` report the prepared path (the
//! hot path the engine really takes); the `*_percall_*` fields keep the
//! one-shot numbers honest. Environment knobs for CI smoke:
//! `PRISM_BENCH_SUBSTRATE_ONLY=1` skips the IMDB and scan sections;
//! `PRISM_BENCH_MIN_PREPARED_SPEEDUP=<x>` exits non-zero unless prepared
//! throughput ≥ x · per-call throughput on the **hit** probe — the probe
//! that early-exits after a handful of rows, so per-call compilation
//! dominates it and the ratio directly measures amortization. (The miss
//! probe is scan-bound by design — a small ratio there means the scan,
//! not setup, is where time goes.)

use prism_bayes::{BayesEstimator, TrainConfig};
use prism_bench::{resolution_sweep, scheduling_cases, scheduling_comparison, timed};
use prism_core::scheduler::{BayesModel, Engine, SchedCtx, Scheduler};
use prism_core::{DiscoveryConfig, DiscoveryService, SessionConfig, SessionHandle};
use prism_datasets::{imdb, mondial, Resolution};
use prism_db::{ExecScratch, ExecStats, JoinCond, PjQuery, ScanPred};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default substrate scale factor (mondial replication); arg 2 overrides.
const DEFAULT_SCALE: usize = 4;
/// Tasks per resolution for the E1/E3-style sweeps.
const TASKS: usize = 3;
/// IMDB replication factor for the parallel-engine comparison.
const IMDB_SCALE: usize = 8;
/// Worker threads for the parallel side of the comparison.
const PAR_THREADS: usize = 4;
/// Interleaved repetitions per engine (medians reported).
const REPS: usize = 5;
/// Interleaved repetitions of each existence-probe path.
const PROBE_REPS: usize = 3;

fn main() {
    let phase = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "adhoc".to_string());
    let scale: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE);
    let substrate_only = std::env::var("PRISM_BENCH_SUBSTRATE_ONLY").is_ok_and(|v| v == "1");

    // --- Substrate microbenchmarks (the validation hot path) ---
    let (db, build_time) = timed(|| mondial(42, scale));
    let lake = db.catalog().table_id("Lake").unwrap();
    let geo = db.catalog().table_id("geo_lake").unwrap();
    let q = PjQuery {
        nodes: vec![lake, geo],
        joins: vec![JoinCond {
            left_node: 1,
            left_col: 0,
            right_node: 0,
            right_col: 0,
        }],
        projection: vec![(1, 2), (0, 0), (0, 1)],
    };
    // Hit probe: per-call vs prepared, interleaved.
    let is_cal = pred_eq_text("California");
    let is_tahoe = pred_eq_text("Lake Tahoe");
    let hit_preds = [
        Some(ScanPred::new(&is_cal)),
        Some(ScanPred::new(&is_tahoe)),
        None,
    ];
    let nowhere = pred_eq_text("Atlantis");
    let miss_preds = [Some(ScanPred::new(&nowhere)), None, None];
    let hit_prepared_q = q.prepare(&db, &hit_preds).unwrap();
    let miss_prepared_q = q.prepare(&db, &miss_preds).unwrap();
    let mut scratch = ExecScratch::new();
    let mut hit_percall = Vec::new();
    let mut hit_prepared = Vec::new();
    let mut miss_percall = Vec::new();
    let mut miss_prepared = Vec::new();
    for _ in 0..PROBE_REPS {
        hit_percall.push(throughput(|| {
            let mut stats = ExecStats::default();
            assert!(q.exists_matching(&db, &hit_preds, &mut stats).unwrap());
        }));
        hit_prepared.push(throughput(|| {
            let mut stats = ExecStats::default();
            assert!(hit_prepared_q
                .exists_matching(&db, &hit_preds, &mut scratch, &mut stats)
                .unwrap());
        }));
        miss_percall.push(throughput(|| {
            let mut stats = ExecStats::default();
            assert!(!q.exists_matching(&db, &miss_preds, &mut stats).unwrap());
        }));
        miss_prepared.push(throughput(|| {
            let mut stats = ExecStats::default();
            assert!(!miss_prepared_q
                .exists_matching(&db, &miss_preds, &mut scratch, &mut stats)
                .unwrap());
        }));
    }
    let exists_hit = median(&mut hit_prepared);
    let exists_hit_percall = median(&mut hit_percall);
    let exists_miss = median(&mut miss_prepared);
    let exists_miss_percall = median(&mut miss_percall);
    let prepared_hit_speedup = exists_hit / exists_hit_percall;
    let prepared_miss_speedup = exists_miss / exists_miss_percall;
    let (nrows, full_eval) = timed(|| q.execute(&db, usize::MAX).unwrap().len());

    // --- E1-style: discovery round wall-clock across resolutions ---
    let db1 = mondial(42, 1);
    let (e1_rows, e1_wall) = timed(|| {
        resolution_sweep(
            &db1,
            &[Resolution::Exact, Resolution::Disjunction],
            TASKS,
            7,
            &DiscoveryConfig::default(),
        )
    });
    let e1_avg_ms: f64 = e1_rows
        .iter()
        .map(|r| r.avg_time.as_secs_f64() * 1e3)
        .sum::<f64>()
        / e1_rows.len().max(1) as f64;

    // --- E3-style: filter-scheduling comparison wall-clock ---
    let (e3_samples, e3_wall) =
        timed(|| scheduling_comparison(&[&db1], &[Resolution::Disjunction], TASKS, 13));
    let e3_bayes_validations: f64 =
        e3_samples.iter().map(|s| s.bayes as f64).sum::<f64>() / e3_samples.len().max(1) as f64;

    let entry = format!(
        "{{\n    \"phase\": \"{phase}\",\n    \"scale\": {scale},\n    \
         \"total_rows\": {},\n    \"build_ms\": {:.3},\n    \
         \"exists_hit_per_s\": {:.1},\n    \"exists_miss_per_s\": {:.1},\n    \
         \"exists_hit_percall_per_s\": {exists_hit_percall:.1},\n    \
         \"exists_miss_percall_per_s\": {exists_miss_percall:.1},\n    \
         \"prepared_hit_speedup\": {prepared_hit_speedup:.3},\n    \
         \"prepared_miss_speedup\": {prepared_miss_speedup:.3},\n    \
         \"full_eval_ms\": {:.3},\n    \"full_eval_rows\": {nrows},\n    \
         \"e1_avg_round_ms\": {:.3},\n    \"e1_wall_ms\": {:.3},\n    \
         \"e3_wall_ms\": {:.3},\n    \"e3_bayes_validations\": {:.2}\n  }}",
        db.total_rows(),
        build_time.as_secs_f64() * 1e3,
        exists_hit,
        exists_miss,
        full_eval.as_secs_f64() * 1e3,
        e1_avg_ms,
        e1_wall.as_secs_f64() * 1e3,
        e3_wall.as_secs_f64() * 1e3,
        e3_bayes_validations,
    );
    append_entry("BENCH_substrate.json", &entry);
    println!("appended phase `{phase}` to BENCH_substrate.json:\n{entry}");

    // CI smoke gate: on the setup-dominated hit probe, the prepared path
    // must beat per-call compilation by the requested factor, or the run
    // (and the CI leg) fails.
    if let Ok(min) = std::env::var("PRISM_BENCH_MIN_PREPARED_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("PRISM_BENCH_MIN_PREPARED_SPEEDUP is a number");
        assert!(
            prepared_hit_speedup >= min,
            "prepared hit probes at {prepared_hit_speedup:.2}x per-call, need >= {min}x"
        );
        println!("prepared-speedup gate passed: {prepared_hit_speedup:.2}x >= {min}x");
    }

    // Service-layer throughput + warm-cache proof (BENCH_service.json).
    // Cheap (mondial scale 1), so it runs in the smoke leg too — CI gates
    // on the warm sessions compiling zero plans.
    service_bench(&phase);

    // Phased-vs-pipelined round scheduling through the service layer
    // (appended to BENCH_service.json). Cheap, and the pipeline gate runs
    // in the smoke leg on multi-core machines.
    pipeline_bench(&phase);

    // Join-ordering on adversarial skew (BENCH_join.json). Also cheap, and
    // the cost-over-fixed gate runs in the smoke leg.
    join_order_bench(&phase);

    // Streaming-vs-legacy CSV ingest (BENCH_ingest.json). The old-vs-new
    // gate runs in the smoke leg; the 10M tier only when asked.
    ingest_bench(&phase);

    if substrate_only {
        return;
    }

    // --- Sequential vs parallel E3 scheduling (BENCH_parallel.json) ---
    // Same methodology as the substrate entries: the two engines run
    // interleaved (machine drift hits both alike) and medians are
    // reported. The filter sets are pre-built once and identical for both
    // engines; the accepted sets are asserted equal every repetition.
    let imdb_db = imdb(42, IMDB_SCALE);
    let est = BayesEstimator::train(&imdb_db, &TrainConfig::default());
    let cases = scheduling_cases(
        &imdb_db,
        Resolution::Disjunction,
        TASKS + 1,
        17,
        &DiscoveryConfig::default(),
    );
    assert!(!cases.is_empty());
    let mut seq_ms: Vec<f64> = Vec::new();
    let mut par_ms: Vec<f64> = Vec::new();
    let mut seq_validations = 0u64;
    let mut par_validations = 0u64;
    for _ in 0..REPS {
        let mut accepted_seq = Vec::new();
        let (_, d_seq) = timed(|| {
            for (tc, fs) in &cases {
                let model = BayesModel::new(&est, tc);
                let ctx = SchedCtx::new(&imdb_db, tc, fs);
                let o = Scheduler::run(
                    &ctx,
                    Engine::Greedy {
                        model: &model,
                        threads: 1,
                    },
                );
                seq_validations = o.validations;
                accepted_seq.push(o.accepted);
            }
        });
        seq_ms.push(d_seq.as_secs_f64() * 1e3);
        let (_, d_par) = timed(|| {
            for ((tc, fs), accepted) in cases.iter().zip(&accepted_seq) {
                let model = BayesModel::new(&est, tc);
                let ctx = SchedCtx::new(&imdb_db, tc, fs);
                let o = Scheduler::run(
                    &ctx,
                    Engine::Greedy {
                        model: &model,
                        threads: PAR_THREADS,
                    },
                );
                par_validations = o.validations;
                assert_eq!(&o.accepted, accepted, "engines must accept identically");
            }
        });
        par_ms.push(d_par.as_secs_f64() * 1e3);
    }
    let seq_median = median(&mut seq_ms);
    let par_median = median(&mut par_ms);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Honesty: a speedup ratio measured on one core is coordination
    // overhead, not parallelism — record `null` there and only gate on the
    // ratio when the machine can actually run workers side by side.
    let speedup_field = if cores > 1 {
        format!("{:.3}", seq_median / par_median)
    } else {
        "null".to_string()
    };
    let par_entry = format!(
        "{{\n    \"phase\": \"{phase}\",\n    \"database\": \"imdb\",\n    \
         \"scale\": {IMDB_SCALE},\n    \"total_rows\": {},\n    \
         \"tasks\": {},\n    \"cores\": {cores},\n    \
         \"threads\": {PAR_THREADS},\n    \"reps\": {REPS},\n    \
         \"seq_median_ms\": {seq_median:.3},\n    \
         \"par_median_ms\": {par_median:.3},\n    \
         \"speedup\": {speedup_field},\n    \
         \"seq_validations_last_task\": {seq_validations},\n    \
         \"par_validations_last_task\": {par_validations}\n  }}",
        imdb_db.total_rows(),
        cases.len(),
    );
    append_entry("BENCH_parallel.json", &par_entry);
    println!("appended phase `{phase}` to BENCH_parallel.json:\n{par_entry}");
    if let Ok(min) = std::env::var("PRISM_BENCH_MIN_PAR_SPEEDUP") {
        if cores > 1 {
            let min: f64 = min
                .parse()
                .expect("PRISM_BENCH_MIN_PAR_SPEEDUP is a number");
            let speedup = seq_median / par_median;
            assert!(
                speedup >= min,
                "parallel engine at {speedup:.2}x sequential, need >= {min}x"
            );
            println!("parallel-speedup gate passed: {speedup:.2}x >= {min}x");
        } else {
            println!("parallel-speedup gate skipped: {cores} core(s) detected");
        }
    }

    scan_bench(&phase);
}

/// Warm sessions in the service-layer bench (`PRISM_SERVICE_SESSIONS`
/// overrides).
const DEFAULT_SERVICE_SESSIONS: usize = 4;

/// Service-layer bench (`BENCH_service.json`): one [`DiscoveryService`]
/// over the walkthrough database, a cold session that populates the
/// service-global plan cache, then `PRISM_SERVICE_SESSIONS` (default 4)
/// warm sessions each running a round on its own thread. Reports
/// multi-session throughput (rounds/s across the warm sessions, cores
/// recorded so single-core numbers read as concurrency-overhead checks,
/// not parallel speedups) and the cross-session plan-cache counters.
/// `PRISM_BENCH_REQUIRE_WARM_SERVICE=1` turns "every warm session compiles
/// zero plans" into a hard gate for CI smoke.
/// `PRISM_BENCH_REQUIRE_FAULT_FREE=1` asserts the fault-isolation layer
/// is zero-cost when disarmed: with `PRISM_FAULT` unset, every benched
/// round must report zero injected faults, zero retries, and an
/// undegraded result — the containment layer may cost one branch, never
/// a verdict.
fn service_bench(phase: &str) {
    let sessions: usize = std::env::var("PRISM_SERVICE_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SERVICE_SESSIONS);
    let require_fault_free =
        std::env::var("PRISM_BENCH_REQUIRE_FAULT_FREE").is_ok_and(|v| v == "1");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let db = Arc::new(mondial(42, 1));
    let total_rows = db.total_rows();
    let svc = DiscoveryService::new(db, DiscoveryConfig::default());
    let describe = |s: &mut SessionHandle| {
        s.set_sample_cell(0, 0, "California || Nevada").unwrap();
        s.set_sample_cell(0, 1, "Lake Tahoe").unwrap();
        s.set_metadata_cell(2, "DataType=='decimal' AND MinValue>='0'")
            .unwrap();
    };

    // Cold session: compiles every query class into the shared cache once.
    let mut cold = svc.open_default_session();
    describe(&mut cold);
    let (_, cold_wall) = timed(|| {
        cold.start_searching().unwrap();
    });
    let cold_result = cold.result().expect("cold round ran");
    let cold_plans_built = cold_result.stats.exec.plans_built;
    let expected_queries = cold_result.queries.len();
    assert!(expected_queries > 0, "walkthrough discovers queries");
    if require_fault_free {
        assert_eq!(
            cold_result.stats.faults_injected, 0,
            "fault injector fired with PRISM_FAULT unset"
        );
        assert_eq!(cold_result.stats.fault_retries, 0);
        assert!(
            !cold_result.degraded && cold_result.fault_reports.is_empty(),
            "undisturbed round reported degradation"
        );
    }

    // Warm sessions: identical query classes, one thread per session. The
    // handles are owned, so moving each into its thread is the API working
    // as designed — no scoped borrows of a session.
    let mut handles: Vec<SessionHandle> =
        (0..sessions).map(|_| svc.open_default_session()).collect();
    for h in &mut handles {
        describe(h);
    }
    let (warm_plans_built, warm_wall) = timed(|| {
        std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|mut s| {
                    scope.spawn(move || {
                        let r = s.start_searching().unwrap();
                        assert_eq!(
                            r.queries.len(),
                            expected_queries,
                            "warm session diverged from the cold round"
                        );
                        if require_fault_free {
                            assert_eq!(
                                r.stats.faults_injected, 0,
                                "fault injector fired with PRISM_FAULT unset"
                            );
                            assert!(
                                !r.degraded && r.fault_reports.is_empty(),
                                "undisturbed warm round reported degradation"
                            );
                        }
                        r.stats.exec.plans_built
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).sum::<u64>()
        })
    });
    let rounds_per_s = sessions as f64 / warm_wall.as_secs_f64();
    let cache = svc.plan_cache();

    let entry = format!(
        "{{\n    \"phase\": \"{phase}\",\n    \"database\": \"mondial\",\n    \
         \"scale\": 1,\n    \"total_rows\": {total_rows},\n    \
         \"cores\": {cores},\n    \"thread_budget\": {},\n    \
         \"sessions\": {sessions},\n    \
         \"cold_round_ms\": {:.3},\n    \
         \"cold_plans_built\": {cold_plans_built},\n    \
         \"warm_wall_ms\": {:.3},\n    \
         \"warm_rounds_per_s\": {rounds_per_s:.2},\n    \
         \"warm_plans_built\": {warm_plans_built},\n    \
         \"cache_hits\": {},\n    \"cache_misses\": {},\n    \
         \"cache_entries\": {}\n  }}",
        svc.thread_budget().total(),
        cold_wall.as_secs_f64() * 1e3,
        warm_wall.as_secs_f64() * 1e3,
        cache.hits,
        cache.misses,
        cache.entries,
    );
    append_entry("BENCH_service.json", &entry);
    println!("appended phase `{phase}` to BENCH_service.json:\n{entry}");

    if std::env::var("PRISM_BENCH_REQUIRE_WARM_SERVICE").is_ok_and(|v| v == "1") {
        assert_eq!(
            warm_plans_built, 0,
            "warm sessions must be served entirely by the shared plan cache"
        );
        println!("warm-service gate passed: {sessions} warm sessions compiled 0 plans");
    }
    if require_fault_free {
        println!(
            "fault-free gate passed: {} rounds, 0 faults injected, 0 degraded",
            sessions + 1
        );
    }
}

/// Pipeline bench (appended to `BENCH_service.json`): phased vs pipelined
/// round scheduling on one warm [`DiscoveryService`] at [`PAR_THREADS`]
/// validation threads. A cold round compiles every query class into the
/// shared cache, then the two modes run interleaved (machine drift hits
/// both alike) — each repetition times one phased round
/// (`pipeline: false`, the exact pre-pipeline path) and one pipelined
/// round — and medians are reported. The accepted query count is asserted
/// identical every repetition. On one core the coordinator's overlap
/// cannot buy wall-clock, so `"speedup"` records `null` there and
/// `PRISM_BENCH_MIN_PIPELINE_SPEEDUP=<x>` (which exits non-zero unless
/// pipelined throughput ≥ x · phased) only gates on multi-core machines.
fn pipeline_bench(phase: &str) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let db = Arc::new(mondial(42, 1));
    let total_rows = db.total_rows();
    let engine = |pipeline: bool| DiscoveryConfig {
        validation_threads: PAR_THREADS,
        pipeline,
        ..DiscoveryConfig::default()
    };
    let svc = DiscoveryService::with_thread_budget(Arc::clone(&db), engine(true), PAR_THREADS);
    let round = |pipeline: bool| {
        let mut s = svc.open_session(SessionConfig {
            target_columns: 3,
            sample_rows: 1,
            with_metadata: true,
            discovery: engine(pipeline),
        });
        s.set_sample_cell(0, 0, "California || Nevada").unwrap();
        s.set_sample_cell(0, 1, "Lake Tahoe").unwrap();
        s.set_metadata_cell(2, "DataType=='decimal' AND MinValue>='0'")
            .unwrap();
        let (queries, wall) = timed(|| {
            s.start_searching().unwrap();
            s.result().expect("round ran").queries.len()
        });
        let stats = s.result().expect("round ran").stats.clone();
        (queries, stats, wall)
    };

    // Cold round: fills the shared plan cache so the timed repetitions
    // compare scheduling, not compilation.
    let (expected_queries, _, _) = round(false);
    assert!(expected_queries > 0, "walkthrough discovers queries");

    let mut phased_ms: Vec<f64> = Vec::new();
    let mut pipelined_ms: Vec<f64> = Vec::new();
    let mut overlap = (0u64, 0u64, 0u64);
    for _ in 0..REPS {
        let (q, stats, wall) = round(false);
        assert_eq!(q, expected_queries, "phased round diverged");
        assert_eq!(stats.rounds_overlapped, 0, "phased round must not overlap");
        phased_ms.push(wall.as_secs_f64() * 1e3);
        let (q, stats, wall) = round(true);
        assert_eq!(q, expected_queries, "pipelined round diverged");
        overlap = (
            stats.rounds_overlapped,
            stats.speculative_scores,
            stats.speculative_wasted,
        );
        pipelined_ms.push(wall.as_secs_f64() * 1e3);
    }
    let phased_median = median(&mut phased_ms);
    let pipelined_median = median(&mut pipelined_ms);
    let phased_rounds_per_s = 1e3 / phased_median;
    let pipelined_rounds_per_s = 1e3 / pipelined_median;
    // Honesty: on one core the overlap is time-sliced, not concurrent —
    // record `null` and let the gate skip (mirrors BENCH_parallel).
    let speedup_field = if cores > 1 {
        format!("{:.3}", pipelined_rounds_per_s / phased_rounds_per_s)
    } else {
        "null".to_string()
    };
    let entry = format!(
        "{{\n    \"phase\": \"{phase}\",\n    \"database\": \"mondial\",\n    \
         \"scale\": 1,\n    \"total_rows\": {total_rows},\n    \
         \"cores\": {cores},\n    \"threads\": {PAR_THREADS},\n    \
         \"reps\": {REPS},\n    \
         \"phased_round_ms\": {phased_median:.3},\n    \
         \"pipelined_round_ms\": {pipelined_median:.3},\n    \
         \"phased_rounds_per_s\": {phased_rounds_per_s:.2},\n    \
         \"pipelined_rounds_per_s\": {pipelined_rounds_per_s:.2},\n    \
         \"speedup\": {speedup_field},\n    \
         \"rounds_overlapped\": {},\n    \
         \"speculative_scores\": {},\n    \
         \"speculative_wasted\": {}\n  }}",
        overlap.0, overlap.1, overlap.2,
    );
    append_entry("BENCH_service.json", &entry);
    println!("appended phase `{phase}` to BENCH_service.json:\n{entry}");

    if let Ok(min) = std::env::var("PRISM_BENCH_MIN_PIPELINE_SPEEDUP") {
        if cores > 1 {
            let min: f64 = min
                .parse()
                .expect("PRISM_BENCH_MIN_PIPELINE_SPEEDUP is a number");
            let speedup = pipelined_rounds_per_s / phased_rounds_per_s;
            assert!(
                speedup >= min,
                "pipelined rounds at {speedup:.2}x phased, need >= {min}x"
            );
            println!("pipeline-speedup gate passed: {speedup:.2}x >= {min}x");
        } else {
            println!("pipeline-speedup gate skipped: {cores} core(s) detected");
        }
    }
}

/// Skewed-scenario replication for the join-order bench (≈61k rows).
const JOIN_SCALE: usize = 10;
/// Zipf exponent: the hottest tag owns ≈20% of all item rows.
const JOIN_SKEW: f64 = 1.2;

/// Join-order bench (`BENCH_join.json`): the skewed taskgen scenario with a
/// hub predicate (`Tag.name == 'tag1'`) plus a narrow score hull. The fixed
/// (declaration-order) plan starts at the small predicated `Tag` table and
/// probes straight through the hot tag's CSR posting run; the cost-ordered
/// plan starts from the zone-pruned score range instead. Both plans are
/// prepared once, the counts are asserted identical, and the two paths run
/// interleaved (machine drift hits both alike); medians of `REPS`.
/// `PRISM_BENCH_MIN_JOINORDER_SPEEDUP=<x>` exits non-zero unless the
/// cost-ordered throughput ≥ x · fixed throughput.
fn join_order_bench(phase: &str) {
    use prism_datasets::skewed;
    use prism_db::types::ValueRef;
    use prism_db::JoinOrder;

    let db = skewed(42, JOIN_SCALE, JOIN_SKEW);
    let tag = db.catalog().table_id("Tag").unwrap();
    let item = db.catalog().table_id("Item").unwrap();
    let q = PjQuery {
        nodes: vec![tag, item],
        joins: vec![JoinCond {
            left_node: 0,
            left_col: 1, // Tag.id
            right_node: 1,
            right_col: 0, // Item.tag
        }],
        projection: vec![(0, 0), (1, 1)], // Tag.name, Item.score
    };
    let is_hub = |v: ValueRef<'_>| v.as_text() == Some("tag1");
    let (lo, hi) = (1_000.0, 1_100.0);
    let in_range = |v: ValueRef<'_>| v.as_number().is_some_and(|x| (lo..=hi).contains(&x));
    let preds = [
        Some(ScanPred::new(&is_hub)),
        Some(ScanPred::new(&in_range).with_range(lo, hi)),
    ];
    let fixed_q = q.prepare_with(&db, &preds, JoinOrder::Fixed).unwrap();
    let cost_q = q.prepare_with(&db, &preds, JoinOrder::Cost).unwrap();
    assert!(cost_q.nodes_reordered() > 0, "skew must trigger a reorder");

    let count = |prepared: &prism_db::PreparedQuery, scratch: &mut ExecScratch| {
        let mut stats = ExecStats::default();
        let n = prepared
            .count_matching(&db, &preds, u64::MAX, scratch, &mut stats)
            .unwrap();
        (n, stats)
    };
    let mut fixed_scratch = ExecScratch::new();
    let mut cost_scratch = ExecScratch::new();
    let (matches, fixed_stats) = count(&fixed_q, &mut fixed_scratch);
    let (cost_matches, cost_stats) = count(&cost_q, &mut cost_scratch);
    assert_eq!(matches, cost_matches, "join orders must agree on rows");
    assert!(matches > 0, "the hub owns rows in every score range");

    let mut fixed_per_s = Vec::new();
    let mut cost_per_s = Vec::new();
    for _ in 0..REPS {
        fixed_per_s.push(throughput(|| {
            assert_eq!(count(&fixed_q, &mut fixed_scratch).0, matches);
        }));
        cost_per_s.push(throughput(|| {
            assert_eq!(count(&cost_q, &mut cost_scratch).0, matches);
        }));
    }
    let fixed_median = median(&mut fixed_per_s);
    let cost_median = median(&mut cost_per_s);
    let speedup = cost_median / fixed_median;
    let rows_ratio = fixed_stats.rows_examined as f64 / cost_stats.rows_examined.max(1) as f64;

    let entry = format!(
        "{{\n    \"phase\": \"{phase}\",\n    \"database\": \"skewed\",\n    \
         \"scale\": {JOIN_SCALE},\n    \"skew\": {JOIN_SKEW},\n    \
         \"total_rows\": {},\n    \"matches\": {matches},\n    \
         \"reps\": {REPS},\n    \
         \"fixed_per_s\": {fixed_median:.1},\n    \
         \"cost_per_s\": {cost_median:.1},\n    \
         \"cost_speedup\": {speedup:.3},\n    \
         \"fixed_rows_examined\": {},\n    \
         \"cost_rows_examined\": {},\n    \
         \"rows_examined_ratio\": {rows_ratio:.3},\n    \
         \"nodes_reordered\": {}\n  }}",
        db.total_rows(),
        fixed_stats.rows_examined,
        cost_stats.rows_examined,
        cost_q.nodes_reordered(),
    );
    append_entry("BENCH_join.json", &entry);
    println!("appended phase `{phase}` to BENCH_join.json:\n{entry}");

    if let Ok(min) = std::env::var("PRISM_BENCH_MIN_JOINORDER_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("PRISM_BENCH_MIN_JOINORDER_SPEEDUP is a number");
        assert!(
            speedup >= min,
            "cost order at {speedup:.2}x fixed on skew, need >= {min}x"
        );
        println!("join-order gate passed: {speedup:.2}x >= {min}x");
    }
}

/// Data rows in the generated ingest-bench CSV (≈8 MB of text).
const INGEST_ROWS: usize = 150_000;

/// CSV-ingest bench (`BENCH_ingest.json`): the streaming zero-`Value`
/// loader against the legacy per-row loader on one generated CSV
/// (int/decimal/date/text columns, a slice of quoted fields with embedded
/// commas). Both loaders run interleaved (machine drift hits both alike);
/// medians of `REPS`, with the built databases asserted row-identical each
/// repetition. `PRISM_BENCH_MIN_INGEST_SPEEDUP=<x>` exits non-zero unless
/// streaming ≥ x · legacy throughput, and `PRISM_BENCH_INGEST_10M=1` also
/// times the 10M-row `imdb_large` tier through the typed bulk path.
fn ingest_bench(phase: &str) {
    use prism_datasets::{imdb_large, vocab};
    use prism_db::DatabaseBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x494e47 /* "ING" */);
    let mut csv = String::with_capacity(INGEST_ROWS * 56);
    csv.push_str("id,score,label,city,founded\n");
    for i in 0..INGEST_ROWS {
        let city = vocab::CITIES[rng.gen_range(0..vocab::CITIES.len())];
        let score = rng.gen_range(0.0..100.0f64);
        if i % 7 == 0 {
            // Quoted label with an embedded comma: the slow unescape lane.
            csv.push_str(&format!(
                "{i},{score:.3},\"label {}, east\",{city},19{:02}-{:02}-{:02}\n",
                i % 97,
                rng.gen_range(10..99),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            ));
        } else {
            csv.push_str(&format!(
                "{i},{score:.3},label{},{city},19{:02}-{:02}-{:02}\n",
                i % 97,
                rng.gen_range(10..99),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            ));
        }
    }

    let mut legacy_ms = Vec::new();
    let mut streaming_ms = Vec::new();
    let mut streamed = None;
    for _ in 0..REPS {
        let (bl, d_legacy) = timed(|| {
            let mut b = DatabaseBuilder::new("ingest_legacy");
            b.add_table_from_csv_legacy("T", &csv).unwrap();
            b
        });
        legacy_ms.push(d_legacy.as_secs_f64() * 1e3);
        let (bs, d_streaming) = timed(|| {
            let mut b = DatabaseBuilder::new("ingest");
            b.add_table_from_csv("T", &csv).unwrap();
            b
        });
        streaming_ms.push(d_streaming.as_secs_f64() * 1e3);
        let (legacy_db, streaming_db) = (bl.build(), bs.build());
        assert_eq!(legacy_db.total_rows(), streaming_db.total_rows());
        let t = streaming_db.catalog().table_id("T").unwrap();
        for r in [0u32, INGEST_ROWS as u32 / 2, INGEST_ROWS as u32 - 1] {
            assert_eq!(
                legacy_db.table(t).row(legacy_db.symbols(), r),
                streaming_db.table(t).row(streaming_db.symbols(), r),
                "loaders disagree on row {r}"
            );
        }
        streamed = Some(streaming_db);
    }
    let streaming_db = streamed.expect("REPS >= 1");
    let report = streaming_db.ingest_report();
    let peak_mb = streaming_db.memory_report().peak_column_bytes() as f64 / 1e6;
    let legacy_median = median(&mut legacy_ms);
    let streaming_median = median(&mut streaming_ms);
    let speedup = legacy_median / streaming_median;

    // Optional 10M-row scale tier through the typed bulk-append path.
    let tier10m = std::env::var("PRISM_BENCH_INGEST_10M").is_ok_and(|v| v == "1");
    let tier_fields = if tier10m {
        const TARGET: usize = 10_000_000;
        let (db, d) = timed(|| imdb_large(42, TARGET));
        let rows = db.total_rows();
        let build_ms = d.as_secs_f64() * 1e3;
        let peak = db.memory_report().peak_column_bytes() as f64 / 1e6;
        format!(
            "{rows},\n    \"tier10m_build_ms\": {build_ms:.1},\n    \
             \"tier10m_rows_per_s\": {:.0},\n    \
             \"tier10m_peak_column_mb\": {peak:.1}",
            rows as f64 / d.as_secs_f64(),
        )
    } else {
        "null,\n    \"tier10m_build_ms\": null,\n    \
         \"tier10m_rows_per_s\": null,\n    \"tier10m_peak_column_mb\": null"
            .to_string()
    };

    let entry = format!(
        "{{\n    \"phase\": \"{phase}\",\n    \"csv_rows\": {INGEST_ROWS},\n    \
         \"csv_bytes\": {},\n    \"reps\": {REPS},\n    \
         \"legacy_median_ms\": {legacy_median:.1},\n    \
         \"streaming_median_ms\": {streaming_median:.1},\n    \
         \"ingest_speedup\": {speedup:.3},\n    \
         \"streaming_mb_per_s\": {:.1},\n    \
         \"streaming_rows_per_s\": {:.0},\n    \
         \"parse_threads\": {},\n    \
         \"peak_column_mb\": {peak_mb:.1},\n    \
         \"tier10m_rows\": {tier_fields}\n  }}",
        csv.len(),
        report.mb_per_sec().unwrap_or(0.0),
        report.rows_per_sec().unwrap_or(0.0),
        report.parse_threads,
    );
    append_entry("BENCH_ingest.json", &entry);
    println!("appended phase `{phase}` to BENCH_ingest.json:\n{entry}");

    if let Ok(min) = std::env::var("PRISM_BENCH_MIN_INGEST_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("PRISM_BENCH_MIN_INGEST_SPEEDUP is a number");
        assert!(
            speedup >= min,
            "streaming ingest at {speedup:.2}x legacy, need >= {min}x"
        );
        println!("ingest-speedup gate passed: {speedup:.2}x >= {min}x");
    }
}

/// Rows in the synthetic scan-layer tables.
const SCAN_ROWS: i64 = 200_000;
/// Distinct tags in the text-scan table (well above the memo warmup).
const SCAN_TAGS: i64 = 64;
/// Distinct keys in the join-probe table.
const PROBE_KEYS: i64 = 20_000;

/// Scan-layer microbenches (`BENCH_scan.json`): selective and unselective
/// range scans with and without zone-map pruning, dictionary-memoized text
/// scans against a per-row baseline, and CSR join probes against the old
/// `HashMap<u64, Vec<u32>>` layout rebuilt by hand. "pre" re-creates the
/// pre-refactor behavior inside the current binary, and the two sides run
/// interleaved so machine drift hits both alike; medians of `REPS`.
fn scan_bench(phase: &str) {
    use prism_db::schema::ColumnDef;
    use prism_db::types::{DataType, Value, ValueRef};
    use prism_db::{DatabaseBuilder, PjQuery, ScanPred};
    use std::collections::HashMap;

    let mut b = DatabaseBuilder::new("scan_bench");
    b.add_table(
        "T",
        vec![
            ColumnDef::new("x", DataType::Int).not_null(),
            ColumnDef::new("tag", DataType::Text).not_null(),
        ],
    )
    .unwrap();
    b.add_table("F", vec![ColumnDef::new("p", DataType::Int).not_null()])
        .unwrap();
    b.add_foreign_key("F", "p", "T", "x").unwrap();
    for i in 0..SCAN_ROWS {
        // x ascending (zone maps bite); tags cycle through a small dictionary.
        b.add_row(
            "T",
            vec![Value::Int(i), format!("tag{:02}", i % SCAN_TAGS).into()],
        )
        .unwrap();
        b.add_row("F", vec![Value::Int(i % PROBE_KEYS)]).unwrap();
    }
    let db = b.build();
    let t = db.catalog().table_id("T").unwrap();
    let scan = PjQuery {
        nodes: vec![t],
        joins: vec![],
        projection: vec![(0, 0)],
    };
    let count = |pred: ScanPred<'_>| {
        let mut stats = ExecStats::default();
        let n = scan
            .count_matching(&db, &[Some(pred)], u64::MAX, &mut stats)
            .unwrap();
        (n, stats)
    };

    // Selective range (~1% of rows) and unselective range (~90%).
    let (sel_lo, sel_hi) = (100_000.0, 102_000.0);
    let (un_lo, un_hi) = (10_000.0, 190_000.0);
    let selective = |v: ValueRef<'_>| {
        v.as_number()
            .is_some_and(|x| (sel_lo..=sel_hi).contains(&x))
    };
    let unselective = |v: ValueRef<'_>| v.as_number().is_some_and(|x| (un_lo..=un_hi).contains(&x));
    let mut sel_pre = Vec::new();
    let mut sel_post = Vec::new();
    let mut un_pre = Vec::new();
    let mut un_post = Vec::new();
    let mut blocks_skipped = 0u64;
    for _ in 0..REPS {
        let ((a, _), d) = timed(|| count(ScanPred::new(&selective)));
        sel_pre.push(d.as_secs_f64() * 1e3);
        let ((b_, st), d) = timed(|| count(ScanPred::new(&selective).with_range(sel_lo, sel_hi)));
        sel_post.push(d.as_secs_f64() * 1e3);
        assert_eq!(a, b_, "pruning changed the selective result");
        blocks_skipped = st.blocks_skipped;
        let ((a, _), d) = timed(|| count(ScanPred::new(&unselective)));
        un_pre.push(d.as_secs_f64() * 1e3);
        let ((b_, _), d) = timed(|| count(ScanPred::new(&unselective).with_range(un_lo, un_hi)));
        un_post.push(d.as_secs_f64() * 1e3);
        assert_eq!(a, b_, "pruning changed the unselective result");
    }

    // Text-predicate scan: a CONTAINS-style predicate (lowercases the cell,
    // i.e. allocates per evaluation — what the constraint language does)
    // through the memoizing executor vs the same closure applied per row,
    // which is exactly what the engine did before dictionary pushdown. The
    // memo pays the closure once per distinct code instead of once per row.
    let tag_contains = |v: ValueRef<'_>| {
        v.as_text()
            .is_some_and(|s| s.to_lowercase().contains("ag17"))
    };
    let scan_tag = PjQuery {
        nodes: vec![t],
        joins: vec![],
        projection: vec![(0, 1)],
    };
    let column = db.table(t).column(1);
    let syms = db.symbols();
    let mut text_pre = Vec::new();
    let mut text_post = Vec::new();
    for _ in 0..REPS {
        let (a, d) = timed(|| {
            (0..column.len())
                .filter(|&r| tag_contains(column.value_ref(syms, r)))
                .count() as u64
        });
        text_pre.push(d.as_secs_f64() * 1e3);
        let (b_, d) = timed(|| {
            let mut stats = ExecStats::default();
            scan_tag
                .count_matching(
                    &db,
                    &[Some(ScanPred::new(&tag_contains))],
                    u64::MAX,
                    &mut stats,
                )
                .unwrap()
        });
        text_post.push(d.as_secs_f64() * 1e3);
        assert_eq!(a, b_, "memoized scan changed the text result");
    }

    // Join probes: CSR index vs the old HashMap layout rebuilt by hand.
    let t_x = db.catalog().column_ref("T", "x").unwrap();
    let csr = db.join_index(t_x).expect("FK endpoint indexed");
    let x_col = db.table(t).column(0);
    let mut hashmap: HashMap<u64, Vec<u32>> = HashMap::new();
    for r in 0..x_col.len() {
        if let Some(k) = db.join_key(t_x, r as u32) {
            hashmap.entry(k).or_default().push(r as u32);
        }
    }
    let mut probe_pre = Vec::new();
    let mut probe_post = Vec::new();
    for _ in 0..REPS {
        let (a, d) = timed(|| {
            let mut hits = 0usize;
            for k in 0..SCAN_ROWS {
                hits += hashmap.get(&(k as u64)).map(|v| v.len()).unwrap_or(0);
            }
            hits
        });
        probe_pre.push(d.as_secs_f64() * 1e3);
        let (b_, d) = timed(|| {
            let mut hits = 0usize;
            for k in 0..SCAN_ROWS {
                hits += csr.rows(k as u64).len();
            }
            hits
        });
        probe_post.push(d.as_secs_f64() * 1e3);
        assert_eq!(a, b_, "CSR probes disagree with the HashMap layout");
    }

    let report = db.memory_report();
    let entry = format!(
        "{{\n    \"phase\": \"{phase}\",\n    \"rows\": {SCAN_ROWS},\n    \
         \"block_rows\": {},\n    \"blocks_skipped_selective\": {blocks_skipped},\n    \
         \"range_selective_pre_ms\": {:.3},\n    \"range_selective_post_ms\": {:.3},\n    \
         \"range_selective_speedup\": {:.3},\n    \
         \"range_unselective_pre_ms\": {:.3},\n    \"range_unselective_post_ms\": {:.3},\n    \
         \"text_scan_per_row_ms\": {:.3},\n    \"text_scan_memo_ms\": {:.3},\n    \
         \"text_scan_speedup\": {:.3},\n    \
         \"join_probe_hashmap_ms\": {:.3},\n    \"join_probe_csr_ms\": {:.3},\n    \
         \"join_probe_speedup\": {:.3},\n    \
         \"index_bytes_csr\": {}\n  }}",
        db.block_rows(),
        median(&mut sel_pre),
        median(&mut sel_post),
        median(&mut sel_pre) / median(&mut sel_post),
        median(&mut un_pre),
        median(&mut un_post),
        median(&mut text_pre),
        median(&mut text_post),
        median(&mut text_pre) / median(&mut text_post),
        median(&mut probe_pre),
        median(&mut probe_post),
        median(&mut probe_pre) / median(&mut probe_post),
        report.total_index_bytes(),
    );
    append_entry("BENCH_scan.json", &entry);
    println!("appended phase `{phase}` to BENCH_scan.json:\n{entry}");
}

/// Median (sorts in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Existence-check predicate over borrowed cell views (zero-copy).
fn pred_eq_text(s: &str) -> impl for<'v> Fn(prism_db::ValueRef<'v>) -> bool + '_ {
    move |v: prism_db::ValueRef<'_>| v.as_text().is_some_and(|t| t == s)
}

/// Calls/sec of `f`, measured over at least 0.5 s of repetitions.
fn throughput(mut f: impl FnMut()) -> f64 {
    // Warm up.
    for _ in 0..10 {
        f();
    }
    let budget = Duration::from_millis(500);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        for _ in 0..50 {
            f();
        }
        iters += 50;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Append one JSON object to the array in `path`, creating the file on first
/// use. The array is maintained textually (strip the closing bracket, append)
/// to avoid needing a JSON parser dependency.
fn append_entry(path: &str, entry: &str) {
    let new_content = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let body = trimmed
                .strip_suffix(']')
                .unwrap_or_else(|| panic!("{path} must hold a JSON array"))
                .trim_end();
            if body.ends_with('[') {
                format!("{body}\n  {entry}\n]\n")
            } else {
                format!("{body},\n  {entry}\n]\n")
            }
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    std::fs::write(path, new_content).unwrap_or_else(|e| panic!("write {path}: {e}"));
}
