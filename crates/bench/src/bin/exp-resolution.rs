//! E1/E2 — execution time and number of satisfying queries as user
//! constraints become loose.
//!
//! Paper (Section 2.4): *"the overall execution time of user constraints
//! did not grow significantly as user constraints became loose … Meanwhile,
//! the number of satisfying schema mapping queries discovered did not
//! increase much."*
//!
//! Sweeps the five resolution levels over synthesized Mondial tasks (plus
//! IMDB and NBA for breadth) and prints one row per level.
//!
//! Usage: `cargo run --release -p prism-bench --bin exp-resolution [tasks]`

use prism_bench::{render_table, resolution_sweep};
use prism_core::DiscoveryConfig;
use prism_datasets::{imdb, mondial, nba, Resolution};

fn main() {
    let n_tasks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    // Experiments report the full satisfying set, not the UI's capped list.
    let config = DiscoveryConfig {
        result_limit: 100_000,
        ..DiscoveryConfig::default()
    };

    for db in [mondial(42, 1), imdb(42, 1), nba(42, 1)] {
        println!(
            "== E1/E2: resolution sweep on {} ({} tasks per level) ==\n",
            db.name(),
            n_tasks
        );
        let rows = resolution_sweep(&db, &Resolution::ALL, n_tasks, 0xE1E2, &config);
        let mut table = vec![vec![
            "resolution".to_string(),
            "tasks".to_string(),
            "truth found".to_string(),
            "avg #queries".to_string(),
            "avg time".to_string(),
            "avg validations".to_string(),
            "timeouts".to_string(),
        ]];
        for r in &rows {
            table.push(vec![
                r.resolution.name().to_string(),
                r.tasks.to_string(),
                format!("{:.0}%", r.truth_found * 100.0),
                format!("{:.1}", r.avg_queries),
                format!("{:.1?}", r.avg_time),
                format!("{:.1}", r.avg_validations),
                r.timeouts.to_string(),
            ]);
        }
        print!("{}", render_table(&table));

        // The paper's two claims, checked mechanically.
        let exact = &rows[0];
        let loosest_constrained = &rows[3]; // metadata level
        let time_ratio =
            loosest_constrained.avg_time.as_secs_f64() / exact.avg_time.as_secs_f64().max(1e-9);
        let query_ratio = loosest_constrained.avg_queries / exact.avg_queries.max(1e-9);
        println!(
            "\nE1 check: metadata-level time is {time_ratio:.2}x exact-level time \
             (paper: 'did not grow significantly')"
        );
        println!(
            "E2 check: metadata-level #queries is {query_ratio:.2}x exact-level \
             (paper: 'did not increase much')\n"
        );
    }
}
