//! E2 (missing-value corner) — satisfying-query count as cells go missing.
//!
//! Paper (Section 2.4): the number of satisfying queries *"did not increase
//! much (unless when there were too many missing values)"*. This harness
//! sweeps the number of blanked-out cells per sample row (0 = exact) and
//! reports the blow-up.
//!
//! Usage: `cargo run --release -p prism-bench --bin exp-missing [tasks]`

use prism_bench::{render_table, task_constraints};
use prism_core::{Discovery, DiscoveryConfig};
use prism_datasets::{mondial, Resolution, TaskGenConfig, TaskGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n_tasks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let db = mondial(42, 1);
    // Report the full satisfying set, not the UI's capped list.
    let engine = Discovery::new(
        &db,
        DiscoveryConfig {
            result_limit: 100_000,
            ..DiscoveryConfig::default()
        },
    );
    println!("== E2: missing-value sweep on Mondial ({n_tasks} tasks per level) ==\n");

    let mut table = vec![vec![
        "missing cells".to_string(),
        "tasks".to_string(),
        "truth found".to_string(),
        "avg #queries".to_string(),
        "max #queries".to_string(),
        "avg time".to_string(),
    ]];
    // Tasks project 3 columns (min=max=3) so up to 2 cells can be blanked.
    for missing in 0..=2usize {
        let taskgen = TaskGenerator::new(
            &db,
            TaskGenConfig {
                min_columns: 3,
                max_columns: 3,
                missing_cells: missing,
                ..TaskGenConfig::default()
            },
        );
        let resolution = if missing == 0 {
            Resolution::Exact
        } else {
            Resolution::Missing
        };
        let mut rng = StdRng::seed_from_u64(0xE2);
        let tasks = taskgen.generate_many(resolution, n_tasks, &mut rng);
        let mut found = 0usize;
        let mut total_q = 0usize;
        let mut max_q = 0usize;
        let mut total_time = std::time::Duration::ZERO;
        for task in &tasks {
            let result = engine.run(&task_constraints(task));
            if result.queries.iter().any(|q| q.key == task.truth_key) {
                found += 1;
            }
            total_q += result.queries.len();
            max_q = max_q.max(result.queries.len());
            total_time += result.stats.elapsed;
        }
        let n = tasks.len().max(1);
        table.push(vec![
            missing.to_string(),
            tasks.len().to_string(),
            format!("{:.0}%", found as f64 / n as f64 * 100.0),
            format!("{:.1}", total_q as f64 / n as f64),
            max_q.to_string(),
            format!("{:.1?}", total_time / n as u32),
        ]);
    }
    print!("{}", render_table(&table));
    println!(
        "\nPaper claim: query count stays modest until 'too many missing values' —\n\
         expect the 2-missing row (only one anchored cell left) to blow up."
    );
}
