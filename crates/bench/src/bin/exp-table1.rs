//! T1 — reproduce Table 1 and the Section 3 demonstration walk-through.
//!
//! Runs the exact constraint set of the paper's demo against synthetic
//! Mondial, verifies the desired SQL query is discovered, and prints the
//! target-schema rows of Table 1 as produced by that query.
//!
//! Usage: `cargo run --release -p prism-bench --bin exp-table1`

use prism_bench::{render_table, timed};

use prism_core::explain::all_picks;
use prism_core::{Discovery, DiscoveryConfig, TargetConstraints};
use prism_datasets::mondial;

fn main() {
    let db = mondial(42, 1);
    println!("== T1: Table 1 / Section 3 walk-through (Mondial) ==\n");
    println!(
        "database: {} tables, {} join edges, {} rows",
        db.catalog().table_count(),
        db.graph().edge_count(),
        db.total_rows()
    );

    // Section 3 step 2: the user's multiresolution constraints.
    let constraints = TargetConstraints::parse(
        3,
        &[vec![
            Some("California || Nevada".to_string()),
            Some("Lake Tahoe".to_string()),
            None,
        ]],
        &[
            None,
            None,
            Some("DataType=='decimal' AND MinValue>='0'".to_string()),
        ],
    )
    .expect("walk-through constraints parse");
    println!("\nconstraints:");
    println!("  sample row:  [\"California || Nevada\", \"Lake Tahoe\", <empty>]");
    println!("  metadata  :  [ , , \"DataType=='decimal' AND MinValue>='0'\"]");

    let engine = Discovery::new(&db, DiscoveryConfig::default());
    let (result, wall) = timed(|| engine.run(&constraints));
    println!(
        "\ndiscovered {} satisfying schema mapping queries in {:?} \
         ({} candidates, {} filters, {} validations):",
        result.queries.len(),
        result.stats.elapsed,
        result.stats.candidates,
        result.stats.filters,
        result.stats.validations
    );
    println!("wall clock including result materialization: {wall:?} (budget: 60s)");
    for (i, q) in result.queries.iter().enumerate() {
        println!("  #{i}: {}", q.sql);
    }

    let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
    let hit = result
        .queries
        .iter()
        .find(|q| q.sql == want)
        .expect("the paper's desired query must be discovered");

    // Table 1: execute the desired query and print the paper's rows.
    println!("\nTable 1 (desired target schema), as produced by the discovered query:");
    let rows = hit.candidate.query.execute(&db, 10_000).unwrap();
    let mut table = vec![vec![
        "State".to_string(),
        "Lake Name".to_string(),
        "Area (km2)".to_string(),
    ]];
    for (state, lake) in [
        ("California", "Lake Tahoe"),
        ("Oregon", "Crater Lake"),
        ("Florida", "Fort Peck Lake"),
    ] {
        let row = rows
            .iter()
            .find(|r| r[0] == prism_db::Value::text(state) && r[1] == prism_db::Value::text(lake))
            .unwrap_or_else(|| panic!("Table 1 row ({state}, {lake}) missing"));
        table.push(vec![
            row[0].to_string(),
            row[1].to_string(),
            row[2].to_string(),
        ]);
    }
    print!("{}", render_table(&table));

    // Figure 4b/4c: SQL + explanation graph with all constraints drawn.
    println!("\nFigure 4b (SQL of the selected query):\n  {}", hit.sql);
    let graph =
        prism_core::explain::explain(&db, &hit.candidate, &constraints, &all_picks(&constraints));
    println!("\nFigure 4c (query graph with all constraints):");
    print!("{}", graph.to_ascii());
    println!("\nGraphviz DOT:\n{}", graph.to_dot());
    println!("T1 PASS: desired query discovered and Table 1 reproduced.");
}
