//! E3 — filter-validation counts: Filter baseline vs Prism vs optimum.
//!
//! Paper (Section 2.4): *"our approach significantly reduced the gap of the
//! required number of filter validations between Filter and the optimum (up
//! to ∼70%; on average ∼30%), which shows our Bayesian-model-based approach
//! can effectively improve the filter scheduling."*
//!
//! For each synthesized task the harness runs four schedulers over the SAME
//! candidate/filter sets — Naive (A2 ablation), PathLength ("Filter" \[8\]),
//! Bayes without join indicators (A1 ablation), Bayes (Prism) — plus the
//! hindsight Oracle, and reports validation counts and the gap-reduction
//! summary.
//!
//! Usage: `cargo run --release -p prism-bench --bin exp-scheduling [tasks]`

use prism_bench::{render_table, scheduling_comparison, summarize_gaps};
use prism_datasets::{imdb, mondial, nba, Resolution};

fn main() {
    let n_tasks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let mondial = mondial(42, 2);
    let imdb = imdb(42, 2);
    let nba = nba(42, 2);
    let dbs = [&mondial, &imdb, &nba];
    let resolutions = [
        Resolution::Exact,
        Resolution::Disjunction,
        Resolution::Range,
    ];
    println!(
        "== E3: scheduler comparison ({} tasks x {} resolutions x {} databases) ==\n",
        n_tasks,
        resolutions.len(),
        dbs.len()
    );
    let samples = scheduling_comparison(&dbs, &resolutions, n_tasks, 0xE3);

    let mut table = vec![vec![
        "db".to_string(),
        "resolution".to_string(),
        "cands".to_string(),
        "filters".to_string(),
        "naive(A2)".to_string(),
        "filter[8]".to_string(),
        "bayes-noJI(A1)".to_string(),
        "prism".to_string(),
        "optimum".to_string(),
        "gap red.".to_string(),
    ]];
    for s in &samples {
        table.push(vec![
            s.database.clone(),
            s.resolution.name().to_string(),
            s.candidates.to_string(),
            s.filters.to_string(),
            s.naive.to_string(),
            s.path_length.to_string(),
            s.bayes_no_ji.to_string(),
            s.bayes.to_string(),
            s.oracle.to_string(),
            s.gap_reduction()
                .map(|g| format!("{:.0}%", g * 100.0))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    print!("{}", render_table(&table));

    let summary = summarize_gaps(&samples);
    let avg = |f: fn(&prism_bench::SchedulingSample) -> u64| -> f64 {
        samples.iter().map(|s| f(s) as f64).sum::<f64>() / samples.len().max(1) as f64
    };
    println!(
        "\ntasks: {} ({} with a baseline gap)",
        samples.len(),
        summary.tasks_with_gap
    );
    println!(
        "avg validations: naive {:.1} | filter[8] {:.1} | bayes-noJI {:.1} | prism {:.1} | optimum {:.1}",
        avg(|s| s.naive),
        avg(|s| s.path_length),
        avg(|s| s.bayes_no_ji),
        avg(|s| s.bayes),
        avg(|s| s.oracle),
    );
    println!(
        "gap reduction (Filter -> Prism): mean {:.0}%, max {:.0}%   \
         [paper: average ~30%, up to ~70%]",
        summary.mean_reduction * 100.0,
        summary.max_reduction * 100.0
    );
}
