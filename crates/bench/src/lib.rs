//! # prism-bench — experiment harness for the Prism paper's evaluation
//!
//! Shared machinery behind the `exp-*` binaries and Criterion benches that
//! regenerate every quantitative claim of the paper (see `DESIGN.md`'s
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured results):
//!
//! * **T1** — the Table 1 / Section 3 walk-through (`exp-table1`),
//! * **E1/E2** — execution time and number of satisfying queries as
//!   constraints loosen (`exp-resolution`, `exp-missing`),
//! * **E3** — filter-validation gap versus the optimum for the Filter
//!   baseline and Prism's Bayesian scheduler (`exp-scheduling`), with the
//!   A1 (no join indicators) and A2 (naive validation) ablations.

use prism_bayes::{BayesEstimator, TrainConfig};
use prism_core::scheduler::{
    oracle_schedule, BayesModel, Engine, PathLengthModel, SchedCtx, Scheduler,
};
use prism_core::{
    candidates::enumerate_candidates, filters::build_filters, related::find_related,
    DiscoveryConfig, TargetConstraints,
};
use prism_datasets::{MappingTask, Resolution, TaskGenConfig, TaskGenerator};
use prism_db::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Convert a synthesized task into engine constraints.
pub fn task_constraints(task: &MappingTask) -> TargetConstraints {
    TargetConstraints::parse(task.column_count, &task.samples, &task.metadata)
        .expect("taskgen emits parseable constraints")
}

/// One row of the E1/E2 sweep.
#[derive(Debug, Clone)]
pub struct ResolutionRow {
    pub resolution: Resolution,
    pub tasks: usize,
    /// Fraction of tasks whose ground-truth query was discovered.
    pub truth_found: f64,
    /// Mean number of satisfying queries returned.
    pub avg_queries: f64,
    /// Mean wall-clock time per discovery round.
    pub avg_time: Duration,
    /// Mean filter validations per round.
    pub avg_validations: f64,
    /// Rounds that hit the time budget.
    pub timeouts: usize,
}

/// Run the E1/E2 sweep: `n_tasks` discovery rounds at each resolution.
pub fn resolution_sweep(
    db: &Database,
    resolutions: &[Resolution],
    n_tasks: usize,
    seed: u64,
    config: &DiscoveryConfig,
) -> Vec<ResolutionRow> {
    let engine = prism_core::Discovery::new(db, config.clone());
    let taskgen = TaskGenerator::new(db, TaskGenConfig::default());
    let mut rows = Vec::new();
    for &resolution in resolutions {
        // Same task seed per resolution: each level re-derives constraints
        // from the same ground-truth population.
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks = taskgen.generate_many(resolution, n_tasks, &mut rng);
        let mut truth_found = 0usize;
        let mut total_queries = 0usize;
        let mut total_time = Duration::ZERO;
        let mut total_validations = 0u64;
        let mut timeouts = 0usize;
        for task in &tasks {
            let constraints = task_constraints(task);
            let result = engine.run(&constraints);
            if result.queries.iter().any(|q| q.key == task.truth_key) {
                truth_found += 1;
            }
            total_queries += result.queries.len();
            total_time += result.stats.elapsed;
            total_validations += result.stats.validations;
            if result.timed_out {
                timeouts += 1;
            }
        }
        let n = tasks.len().max(1);
        rows.push(ResolutionRow {
            resolution,
            tasks: tasks.len(),
            truth_found: truth_found as f64 / n as f64,
            avg_queries: total_queries as f64 / n as f64,
            avg_time: total_time / n as u32,
            avg_validations: total_validations as f64 / n as f64,
            timeouts,
        });
    }
    rows
}

/// Pre-built scheduling cases for one database: parsed constraints plus the
/// deduplicated filter set of every generated task that enumerates at least
/// one candidate. Benches of the *scheduling* phase (E3 wall-clock, the
/// sequential-vs-parallel engine comparison) share this so candidate
/// enumeration and filter decomposition stay out of what they measure.
pub fn scheduling_cases(
    db: &Database,
    resolution: Resolution,
    n_tasks: usize,
    seed: u64,
    config: &DiscoveryConfig,
) -> Vec<(TargetConstraints, prism_core::filters::FilterSet)> {
    let taskgen = TaskGenerator::new(db, TaskGenConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    taskgen
        .generate_many(resolution, n_tasks, &mut rng)
        .iter()
        .filter_map(|task| {
            let constraints = task_constraints(task);
            let related = find_related(db, &constraints, config);
            let cands = enumerate_candidates(db, &related, config, None).candidates;
            if cands.is_empty() {
                return None;
            }
            let fs = build_filters(db, &cands, &constraints, None);
            Some((constraints, fs))
        })
        .collect()
}

/// Per-task validation counts of every scheduler (E3 + ablations).
#[derive(Debug, Clone)]
pub struct SchedulingSample {
    pub database: String,
    pub resolution: Resolution,
    pub candidates: usize,
    pub filters: usize,
    pub naive: u64,
    pub path_length: u64,
    pub bayes: u64,
    /// A1 ablation: Bayesian models without join indicators.
    pub bayes_no_ji: u64,
    pub oracle: u64,
}

impl SchedulingSample {
    /// gap(X) = validations(X) − validations(optimum).
    pub fn gap_path(&self) -> i64 {
        self.path_length as i64 - self.oracle as i64
    }

    pub fn gap_bayes(&self) -> i64 {
        self.bayes as i64 - self.oracle as i64
    }

    /// The paper's headline metric: how much of the Filter-vs-optimum gap
    /// Prism's Bayesian scheduling closes. `None` when the baseline already
    /// matches the optimum (no gap to close).
    pub fn gap_reduction(&self) -> Option<f64> {
        let gp = self.gap_path();
        if gp <= 0 {
            return None;
        }
        Some((gp - self.gap_bayes()) as f64 / gp as f64)
    }
}

/// Run the E3 comparison over `n_tasks` tasks per database and resolution.
pub fn scheduling_comparison(
    dbs: &[&Database],
    resolutions: &[Resolution],
    n_tasks: usize,
    seed: u64,
) -> Vec<SchedulingSample> {
    let config = DiscoveryConfig::default();
    let mut out = Vec::new();
    for db in dbs {
        let est = BayesEstimator::train(db, &TrainConfig::default());
        let est_no_ji = BayesEstimator::train(
            db,
            &TrainConfig {
                use_join_indicators: false,
                ..TrainConfig::default()
            },
        );
        let taskgen = TaskGenerator::new(db, TaskGenConfig::default());
        for &resolution in resolutions {
            let mut rng = StdRng::seed_from_u64(seed);
            let tasks = taskgen.generate_many(resolution, n_tasks, &mut rng);
            for task in &tasks {
                let constraints = task_constraints(task);
                let related = find_related(db, &constraints, &config);
                let cands = enumerate_candidates(db, &related, &config, None).candidates;
                if cands.is_empty() {
                    continue;
                }
                let fs = build_filters(db, &cands, &constraints, None);
                let ctx = SchedCtx::new(db, &constraints, &fs);
                let greedy = |model: &dyn prism_core::scheduler::FailureModel| {
                    Scheduler::run(&ctx, Engine::Greedy { model, threads: 1 })
                };
                let naive = Scheduler::run(&ctx, Engine::Naive);
                let path = greedy(&PathLengthModel);
                let bayes = greedy(&BayesModel::new(&est, &constraints));
                let bayes_no_ji = greedy(&BayesModel::new(&est_no_ji, &constraints));
                let (oracle, _) = oracle_schedule(db, &constraints, &fs);
                out.push(SchedulingSample {
                    database: db.name().to_string(),
                    resolution,
                    candidates: cands.len(),
                    filters: fs.len(),
                    naive: naive.validations,
                    path_length: path.validations,
                    bayes: bayes.validations,
                    bayes_no_ji: bayes_no_ji.validations,
                    oracle,
                });
            }
        }
    }
    out
}

/// Aggregate gap-reduction statistics over scheduling samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapSummary {
    /// Tasks where the baseline had a gap to close.
    pub tasks_with_gap: usize,
    pub mean_reduction: f64,
    pub max_reduction: f64,
}

pub fn summarize_gaps(samples: &[SchedulingSample]) -> GapSummary {
    let reductions: Vec<f64> = samples.iter().filter_map(|s| s.gap_reduction()).collect();
    if reductions.is_empty() {
        return GapSummary {
            tasks_with_gap: 0,
            mean_reduction: 0.0,
            max_reduction: 0.0,
        };
    }
    GapSummary {
        tasks_with_gap: reductions.len(),
        mean_reduction: reductions.iter().sum::<f64>() / reductions.len() as f64,
        max_reduction: reductions.iter().cloned().fold(f64::MIN, f64::max),
    }
}

/// Render an aligned text table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| format!("{cell:<width$}", width = widths[i]))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if ri == 0 {
            let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&sep.join("  "));
            out.push('\n');
        }
    }
    out
}

/// Timed helper for harness binaries.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_datasets::mondial;

    #[test]
    fn resolution_sweep_produces_rows_with_found_truths() {
        let db = mondial(42, 1);
        let rows = resolution_sweep(
            &db,
            &[Resolution::Exact, Resolution::Disjunction],
            4,
            7,
            &DiscoveryConfig::default(),
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.tasks >= 3, "{:?}", r);
            assert!(r.truth_found > 0.5, "{:?}", r);
            assert!(r.avg_queries >= 1.0);
        }
    }

    #[test]
    fn scheduling_comparison_orders_hold() {
        let db = mondial(42, 1);
        let samples = scheduling_comparison(&[&db], &[Resolution::Disjunction], 5, 13);
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(s.oracle <= s.path_length, "{s:?}");
            assert!(s.oracle <= s.bayes, "{s:?}");
            assert!(s.oracle <= s.naive, "{s:?}");
        }
        let summary = summarize_gaps(&samples);
        assert!(summary.mean_reduction <= 1.0 + 1e-9);
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(&[
            vec!["a".into(), "long header".into()],
            vec!["xyz".into(), "1".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("---"));
        assert!(lines[0].contains("long header"));
    }

    #[test]
    fn gap_reduction_math() {
        let s = SchedulingSample {
            database: "x".into(),
            resolution: Resolution::Exact,
            candidates: 1,
            filters: 1,
            naive: 20,
            path_length: 15,
            bayes: 8,
            bayes_no_ji: 10,
            oracle: 5,
        };
        assert_eq!(s.gap_path(), 10);
        assert_eq!(s.gap_bayes(), 3);
        assert!((s.gap_reduction().unwrap() - 0.7).abs() < 1e-9);
        let no_gap = SchedulingSample {
            path_length: 5,
            ..s
        };
        assert!(no_gap.gap_reduction().is_none());
    }
}
