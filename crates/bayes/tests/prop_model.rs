//! Property-based tests of the Bayesian estimator's probabilistic
//! invariants on randomized relations.

use prism_bayes::{BayesEstimator, RelationModel, TrainConfig};
use prism_db::schema::ColumnDef;
use prism_db::types::{DataType, Value};
use prism_db::{Database, DatabaseBuilder};
use prism_lang::parse_value_constraint;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A two-column relation with controllable correlation.
fn build_relation(rows: &[(i64, i64)]) -> (prism_db::Table, prism_db::SymbolTable, usize) {
    let schema = prism_db::TableSchema {
        name: "T".into(),
        columns: vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ],
    };
    let mut syms = prism_db::SymbolTable::new();
    let mut t = prism_db::Table::new(&schema);
    for &(a, b) in rows {
        t.push_row(&schema, &mut syms, vec![Value::Int(a), Value::Int(b)])
            .unwrap();
    }
    (t, syms, 2)
}

fn two_table_db(a_rows: &[(i64, i64)], b_keys: &[i64]) -> Database {
    let mut builder = DatabaseBuilder::new("p");
    builder
        .add_table(
            "A",
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("x", DataType::Int),
            ],
        )
        .unwrap();
    builder
        .add_table("B", vec![ColumnDef::new("k", DataType::Int)])
        .unwrap();
    for &(k, x) in a_rows {
        builder
            .add_row("A", vec![Value::Int(k), Value::Int(x)])
            .unwrap();
    }
    for &k in b_keys {
        builder.add_row("B", vec![Value::Int(k)]).unwrap();
    }
    builder.add_foreign_key("A", "k", "B", "k").unwrap();
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relation_probability_is_a_probability(
        rows in proptest::collection::vec((0i64..6, 0i64..6), 1..200),
        probe in 0i64..6,
    ) {
        let (t, syms, cols) = build_relation(&rows);
        let mut rng = StdRng::seed_from_u64(7);
        let m = RelationModel::train(&t, &syms, cols, 8, &mut rng);
        let c = parse_value_constraint(&probe.to_string()).unwrap();
        let p = m.probability(&[(0, &c)]);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn disjunction_never_decreases_probability(
        rows in proptest::collection::vec((0i64..6, 0i64..6), 10..200),
    ) {
        let (t, syms, cols) = build_relation(&rows);
        let mut rng = StdRng::seed_from_u64(7);
        let m = RelationModel::train(&t, &syms, cols, 8, &mut rng);
        let single = parse_value_constraint("2").unwrap();
        let wide = parse_value_constraint("2 || 3").unwrap();
        let p1 = m.probability(&[(0, &single)]);
        let p2 = m.probability(&[(0, &wide)]);
        prop_assert!(p2 + 1e-9 >= p1, "P(2||3)={p2} < P(2)={p1}");
    }

    #[test]
    fn conjunction_never_exceeds_marginal(
        rows in proptest::collection::vec((0i64..6, 0i64..6), 10..200),
    ) {
        let (t, syms, cols) = build_relation(&rows);
        let mut rng = StdRng::seed_from_u64(9);
        let m = RelationModel::train(&t, &syms, cols, 8, &mut rng);
        let ca = parse_value_constraint("1").unwrap();
        let cb = parse_value_constraint("4").unwrap();
        let joint = m.probability(&[(0, &ca), (1, &cb)]);
        let marginal = m.probability(&[(0, &ca)]);
        prop_assert!(joint <= marginal + 1e-9, "joint {joint} > marginal {marginal}");
    }

    #[test]
    fn marginal_tracks_empirical_frequency(
        rows in proptest::collection::vec((0i64..4, 0i64..4), 50..300),
    ) {
        let (t, syms, cols) = build_relation(&rows);
        let mut rng = StdRng::seed_from_u64(11);
        let m = RelationModel::train(&t, &syms, cols, 8, &mut rng);
        let c = parse_value_constraint("1").unwrap();
        let p = m.probability(&[(0, &c)]);
        let truth = rows.iter().filter(|(a, _)| *a == 1).count() as f64 / rows.len() as f64;
        prop_assert!((p - truth).abs() < 0.25, "model {p} vs empirical {truth}");
    }

    #[test]
    fn failure_probability_is_exp_of_negative_expectation(
        a_rows in proptest::collection::vec((0i64..5, 0i64..10), 5..80),
        b_keys in proptest::collection::vec(0i64..5, 1..40),
    ) {
        let db = two_table_db(&a_rows, &b_keys);
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        let anchors: Vec<prism_db::TableId> =
            db.catalog().tables().map(|(t, _)| t).collect();
        let tree = db
            .graph()
            .enumerate_trees(2, &anchors)
            .into_iter()
            .find(|t| t.table_count() == 2)
            .unwrap();
        let c = parse_value_constraint(">= 3").unwrap();
        let col = db.catalog().column_ref("A", "x").unwrap();
        let e = est.expected_matches(&db, &tree, &[(col, &c)]);
        let p = est.failure_probability(&db, &tree, &[(col, &c)]);
        prop_assert!(e >= 0.0);
        prop_assert!((p - (-e).exp()).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn tighter_predicates_never_raise_expected_matches(
        a_rows in proptest::collection::vec((0i64..5, 0i64..10), 5..80),
        b_keys in proptest::collection::vec(0i64..5, 1..40),
    ) {
        let db = two_table_db(&a_rows, &b_keys);
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        let anchors: Vec<prism_db::TableId> =
            db.catalog().tables().map(|(t, _)| t).collect();
        let tree = db
            .graph()
            .enumerate_trees(2, &anchors)
            .into_iter()
            .find(|t| t.table_count() == 2)
            .unwrap();
        let col = db.catalog().column_ref("A", "x").unwrap();
        let loose = parse_value_constraint(">= 2").unwrap();
        let tight = parse_value_constraint(">= 2 && <= 4").unwrap();
        let e_loose = est.expected_matches(&db, &tree, &[(col, &loose)]);
        let e_tight = est.expected_matches(&db, &tree, &[(col, &tight)]);
        // The per-bin weights of the conjunction are pointwise ≤ those of
        // the single predicate, and the lift clamp is shared, so expectation
        // must not grow. Allow tiny numerical slack.
        prop_assert!(e_tight <= e_loose * 1.5 + 1e-6,
            "tight {e_tight} >> loose {e_loose}");
    }
}
