//! Column discretization for Bayesian network learning.
//!
//! Each column is mapped into a small number of bins: bin 0 is reserved for
//! NULL; text columns get one bin per most-common value plus an `OTHER`
//! bin; numeric (and date/time, via ordinals) columns get equi-depth
//! quantile bins. Every bin keeps a small reservoir of example values so
//! that arbitrary value constraints can be scored per bin at query time.

use prism_db::column::ColumnData;
use prism_db::interner::SymbolTable;
use prism_db::table::Table;
use prism_db::types::{DataType, Value, ValueRef};
use prism_lang::{matches_value, ValueConstraint};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Reserved bin id for NULL cells.
pub const NULL_BIN: u8 = 0;

const SAMPLES_PER_BIN: usize = 8;

/// The binning rule for one column.
#[derive(Debug, Clone)]
enum Binning {
    /// Exact-value bins (text MCVs): value -> bin, else OTHER bin.
    Exact { values: Vec<Value>, other: u8 },
    /// Quantile bins over the numeric view: `cuts[i]` is the inclusive upper
    /// bound of bin `i+1` (bins start after the NULL bin).
    Quantile { cuts: Vec<f64> },
}

/// A trained discretizer for one column.
#[derive(Debug, Clone)]
pub struct Discretizer {
    binning: Binning,
    bin_count: u8,
    /// Reservoir of observed values per bin (index = bin id).
    samples: Vec<Vec<Value>>,
    /// Observed row count per bin, for exact per-bin predicate fractions.
    bin_rows: Vec<u32>,
}

impl Discretizer {
    /// Learn a discretizer from a typed column, then assign each row a bin.
    /// Returns the discretizer and the per-row bin ids.
    pub fn fit(
        table: &Table,
        syms: &SymbolTable,
        column: u32,
        max_bins: usize,
        rng: &mut StdRng,
    ) -> (Discretizer, Vec<u8>) {
        let col = table.column(column);
        let n = col.len();
        let non_null_count = n as u32 - col.null_count();

        // Every non-text type has a numeric view (date/time via ordinals),
        // so the declared type decides the binning rule.
        let numeric = col.dtype() != DataType::Text && non_null_count > 0;
        let binning = if numeric {
            let mut nums: Vec<f64> = (0..n)
                .filter_map(|r| col.value_ref(syms, r).as_number())
                .collect();
            nums.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            nums.dedup();
            let b = max_bins.max(1).min(nums.len());
            let mut cuts = Vec::with_capacity(b);
            for i in 1..=b {
                let idx = (i * nums.len() / b).saturating_sub(1);
                let cut = nums[idx];
                if cuts.last() != Some(&cut) {
                    cuts.push(cut);
                }
            }
            Binning::Quantile { cuts }
        } else {
            // Frequency-ranked distinct values, capped; the rest fold into
            // the OTHER bin. Dictionary columns count per symbol code and
            // materialize only the ranked distinct values.
            let mut ranked: Vec<(Value, u32)> = match col.data() {
                ColumnData::Sym(codes) => {
                    let mut freq: HashMap<u32, u32> = HashMap::new();
                    for (r, &code) in codes.iter().enumerate() {
                        if !col.is_null(r) {
                            *freq.entry(code).or_insert(0) += 1;
                        }
                    }
                    freq.into_iter()
                        .map(|(code, c)| (syms.value(col.dtype(), code), c))
                        .collect()
                }
                // Numeric columns reach here only when fully NULL.
                _ => Vec::new(),
            };
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            ranked.truncate(max_bins.max(1));
            let values: Vec<Value> = ranked.into_iter().map(|(v, _)| v).collect();
            let other = (values.len() + 1) as u8;
            Binning::Exact { values, other }
        };

        let bin_count = match &binning {
            Binning::Exact { values, .. } => values.len() as u8 + 2, // null + values + other
            Binning::Quantile { cuts } => cuts.len() as u8 + 1,      // null + quantile bins
        };

        let mut disc = Discretizer {
            binning,
            bin_count,
            samples: vec![Vec::new(); bin_count as usize],
            bin_rows: vec![0; bin_count as usize],
        };

        let mut assignments = Vec::with_capacity(n);
        for r in 0..n {
            let v = col.value_ref(syms, r);
            let bin = disc.bin_of_ref(v);
            assignments.push(bin);
            let seen = disc.bin_rows[bin as usize];
            disc.bin_rows[bin as usize] += 1;
            // Reservoir sampling keeps a uniform sample per bin; values are
            // materialized only when they actually enter the reservoir.
            let slot = &mut disc.samples[bin as usize];
            if slot.len() < SAMPLES_PER_BIN {
                slot.push(v.to_value());
            } else {
                let j = rng.gen_range(0..=seen as usize);
                if j < SAMPLES_PER_BIN {
                    slot[j] = v.to_value();
                }
            }
        }
        (disc, assignments)
    }

    /// Number of bins, including the NULL bin.
    pub fn bin_count(&self) -> u8 {
        self.bin_count
    }

    /// The bin of a value.
    pub fn bin_of(&self, v: &Value) -> u8 {
        self.bin_of_ref(v.as_value_ref())
    }

    /// The bin of a borrowed cell view (no materialization).
    pub fn bin_of_ref(&self, v: ValueRef<'_>) -> u8 {
        if v.is_null() {
            return NULL_BIN;
        }
        match &self.binning {
            Binning::Exact { values, other } => values
                .iter()
                .position(|x| x.as_value_ref() == v)
                .map(|i| (i + 1) as u8)
                .unwrap_or(*other),
            Binning::Quantile { cuts } => {
                let Some(x) = v.as_number() else {
                    // A stray non-numeric value in a numeric column: last bin.
                    return self.bin_count - 1;
                };
                match cuts.iter().position(|&c| x <= c) {
                    Some(i) => (i + 1) as u8,
                    None => cuts.len() as u8, // above the top cut: clamp
                }
            }
        }
    }

    /// Estimated fraction of this bin's rows that satisfy `c`, from the
    /// bin's reservoir sample. NULL bins satisfy nothing.
    pub fn bin_match_fraction(&self, bin: u8, c: &ValueConstraint) -> f64 {
        if bin == NULL_BIN {
            return 0.0;
        }
        let sample = &self.samples[bin as usize];
        if sample.is_empty() {
            return 0.0;
        }
        let hits = sample.iter().filter(|v| matches_value(c, v)).count();
        hits as f64 / sample.len() as f64
    }

    /// Observed rows in each bin during training.
    pub fn bin_rows(&self) -> &[u32] {
        &self.bin_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_db::schema::{ColumnDef, TableSchema};
    use prism_db::types::DataType;
    use prism_lang::parse_value_constraint;
    use rand::SeedableRng;

    fn text_table(values: &[Option<&str>]) -> (TableSchema, Table, SymbolTable) {
        let s = TableSchema {
            name: "T".into(),
            columns: vec![ColumnDef::new("c", DataType::Text)],
        };
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        for v in values {
            t.push_row(
                &s,
                &mut syms,
                vec![v.map(Value::text).unwrap_or(Value::Null)],
            )
            .unwrap();
        }
        (s, t, syms)
    }

    fn num_table(values: &[Option<f64>]) -> (TableSchema, Table, SymbolTable) {
        let s = TableSchema {
            name: "T".into(),
            columns: vec![ColumnDef::new("c", DataType::Decimal)],
        };
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        for v in values {
            t.push_row(
                &s,
                &mut syms,
                vec![v.map(Value::Decimal).unwrap_or(Value::Null)],
            )
            .unwrap();
        }
        (s, t, syms)
    }

    #[test]
    fn text_column_gets_exact_bins_plus_other() {
        let (_, t, syms) =
            text_table(&[Some("a"), Some("a"), Some("b"), Some("c"), Some("d"), None]);
        let mut rng = StdRng::seed_from_u64(1);
        let (d, bins) = Discretizer::fit(&t, &syms, 0, 2, &mut rng);
        // null + 2 MCVs + other = 4 bins.
        assert_eq!(d.bin_count(), 4);
        assert_eq!(bins.len(), 6);
        assert_eq!(bins[5], NULL_BIN);
        // "a" (most common) and the dedup winner "b" get their own bins.
        assert_eq!(bins[0], bins[1]);
        assert_ne!(bins[0], bins[2]);
        // c and d share the OTHER bin.
        assert_eq!(bins[3], bins[4]);
    }

    #[test]
    fn numeric_column_quantile_bins_are_ordered() {
        let vals: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let (_, t, syms) = num_table(&vals);
        let mut rng = StdRng::seed_from_u64(1);
        let (d, bins) = Discretizer::fit(&t, &syms, 0, 4, &mut rng);
        assert_eq!(d.bin_count(), 5); // null + 4 quantile bins
                                      // Bins must be monotone in the value.
        for w in bins.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(d.bin_of(&Value::Decimal(0.0)), 1);
        assert_eq!(d.bin_of(&Value::Decimal(99.0)), 4);
        // Out-of-range values clamp to the extreme bins.
        assert_eq!(d.bin_of(&Value::Decimal(1e9)), 4);
        assert_eq!(d.bin_of(&Value::Decimal(-1e9)), 1);
    }

    #[test]
    fn bin_match_fraction_scores_predicates() {
        let vals: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let (_, t, syms) = num_table(&vals);
        let mut rng = StdRng::seed_from_u64(7);
        let (d, _) = Discretizer::fit(&t, &syms, 0, 4, &mut rng);
        let low = parse_value_constraint("< 25").unwrap();
        // Bin 1 covers the lowest quartile: all its samples satisfy `< 25`.
        assert!(d.bin_match_fraction(1, &low) > 0.99);
        // The top bin has no values below 25.
        assert_eq!(d.bin_match_fraction(4, &low), 0.0);
        // NULL bin never matches.
        assert_eq!(d.bin_match_fraction(NULL_BIN, &low), 0.0);
    }

    #[test]
    fn constant_column_collapses_to_one_bin() {
        let (_, t, syms) = num_table(&[Some(5.0), Some(5.0), Some(5.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let (d, bins) = Discretizer::fit(&t, &syms, 0, 8, &mut rng);
        assert_eq!(d.bin_count(), 2); // null + single value bin
        assert!(bins.iter().all(|&b| b == 1));
    }

    #[test]
    fn all_null_column_is_handled() {
        let (_, t, syms) = text_table(&[None, None]);
        let mut rng = StdRng::seed_from_u64(1);
        let (d, bins) = Discretizer::fit(&t, &syms, 0, 4, &mut rng);
        assert!(bins.iter().all(|&b| b == NULL_BIN));
        assert!(d.bin_count() >= 1);
    }

    #[test]
    fn bin_rows_counts_match_assignments() {
        let (_, t, syms) = text_table(&[Some("a"), Some("a"), Some("b"), None]);
        let mut rng = StdRng::seed_from_u64(1);
        let (d, bins) = Discretizer::fit(&t, &syms, 0, 4, &mut rng);
        let total: u32 = d.bin_rows().iter().sum();
        assert_eq!(total as usize, bins.len());
        assert_eq!(d.bin_rows()[NULL_BIN as usize], 1);
    }
}
