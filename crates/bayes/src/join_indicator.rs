//! Join indicators (Getoor et al., SIGMOD 2001).
//!
//! For a join edge `R.a = S.b`, the join indicator `J` is a binary variable
//! over tuple pairs that is 1 when the pair joins. Two statistics are
//! learned a priori per edge:
//!
//! * `P(J = 1)` — the **join selectivity** `|R ⋈ S| / (|R| · |S|)`, counted
//!   exactly via the hash join index, and
//! * a uniform **sample of joined pairs**, used at query time to estimate
//!   `P(preds | J = 1)` — how a sample constraint's predicates behave on
//!   tuples that actually join, which is where cross-relation correlation
//!   lives (e.g. lakes that have a `geo_lake` row are the well-known, large
//!   ones).

use prism_db::graph::EdgeId;
use prism_db::schema::ColumnRef;
use prism_db::Database;
use prism_lang::{matches_value_ref, ValueConstraint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A trained join indicator for one schema-graph edge.
#[derive(Debug, Clone)]
pub struct JoinIndicator {
    pub edge: EdgeId,
    /// `P(J = 1)` for a uniformly random tuple pair.
    pub selectivity: f64,
    /// Exact number of joining pairs observed during training.
    pub pair_count: u64,
    /// Endpoint columns (a-side, b-side) as declared on the edge.
    a_col: ColumnRef,
    b_col: ColumnRef,
    /// Uniform reservoir sample of joined pairs `(a_row, b_row)`.
    sample: Vec<(u32, u32)>,
}

impl JoinIndicator {
    /// Train the indicator for `edge_id` by enumerating the join through the
    /// precomputed hash index, keeping a reservoir of at most `sample_cap`
    /// joined pairs.
    pub fn train(db: &Database, edge_id: EdgeId, sample_cap: usize, seed: u64) -> JoinIndicator {
        let edge = db.graph().edge(edge_id);
        let (a_col, b_col) = (edge.a, edge.b);
        let mut rng =
            StdRng::seed_from_u64(seed ^ (edge_id.0 as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let a_column = db.table(a_col.table).column(a_col.column);
        let mut pair_count = 0u64;
        let mut sample: Vec<(u32, u32)> = Vec::with_capacity(sample_cap);
        let b_index = db.join_index(b_col);
        for a_row in 0..a_column.len() {
            // Probe by compact join key in the edge's assigned key space
            // (both FK endpoints share one by construction), so no Value
            // is materialized.
            let Some(key) = db.join_key(a_col, a_row as u32) else {
                continue; // NULL never joins
            };
            let matches: &[u32] = match b_index {
                Some(ix) => ix.rows(key),
                None => &[],
            };
            for &b_row in matches {
                // Reservoir sampling over the stream of joined pairs.
                if sample.len() < sample_cap {
                    sample.push((a_row as u32, b_row));
                } else {
                    let j = rng.gen_range(0..=pair_count as usize);
                    if j < sample_cap {
                        sample[j] = (a_row as u32, b_row);
                    }
                }
                pair_count += 1;
            }
        }
        let denom = (db.row_count(a_col.table) as f64) * (db.row_count(b_col.table) as f64);
        let selectivity = if denom > 0.0 {
            pair_count as f64 / denom
        } else {
            0.0
        };
        JoinIndicator {
            edge: edge_id,
            selectivity,
            pair_count,
            a_col,
            b_col,
            sample,
        }
    }

    /// Number of sampled joined pairs available for conditioning.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// Estimate `P(preds_a ∧ preds_b | J = 1)` from the joined-pair sample,
    /// where each predicate list gives `(column, constraint)` pairs on the
    /// a-side / b-side table respectively. Add-half smoothing keeps the
    /// estimate usable on small samples. Returns `None` when no sample is
    /// available (empty join).
    pub fn conditional_joint(
        &self,
        db: &Database,
        preds_a: &[(u32, &ValueConstraint)],
        preds_b: &[(u32, &ValueConstraint)],
    ) -> Option<f64> {
        if self.sample.is_empty() {
            return None;
        }
        let syms = db.symbols();
        let a_table = db.table(self.a_col.table);
        let b_table = db.table(self.b_col.table);
        let mut hits = 0usize;
        for &(ar, br) in &self.sample {
            let a_ok = preds_a
                .iter()
                .all(|(c, k)| matches_value_ref(k, a_table.value_ref(syms, ar, *c)));
            if !a_ok {
                continue;
            }
            let b_ok = preds_b
                .iter()
                .all(|(c, k)| matches_value_ref(k, b_table.value_ref(syms, br, *c)));
            if b_ok {
                hits += 1;
            }
        }
        Some((hits as f64 + 0.5) / (self.sample.len() as f64 + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_db::database::DatabaseBuilder;
    use prism_db::schema::ColumnDef;
    use prism_db::types::{DataType, Value};
    use prism_lang::parse_value_constraint;

    /// Lakes where only large lakes (area >= 100) have geo rows — a
    /// join/attribute correlation that independence misses.
    fn correlated_db() -> Database {
        let mut b = DatabaseBuilder::new("corr");
        b.add_table(
            "Lake",
            vec![
                ColumnDef::new("Name", DataType::Text).not_null(),
                ColumnDef::new("Area", DataType::Decimal),
            ],
        )
        .unwrap();
        b.add_table(
            "geo_lake",
            vec![
                ColumnDef::new("Lake", DataType::Text).not_null(),
                ColumnDef::new("Province", DataType::Text).not_null(),
            ],
        )
        .unwrap();
        for i in 0..50 {
            let name = format!("Lake {i}");
            let area = if i < 25 { 10.0 } else { 500.0 + i as f64 };
            b.add_row("Lake", vec![name.clone().into(), Value::Decimal(area)])
                .unwrap();
            if i >= 25 {
                b.add_row(
                    "geo_lake",
                    vec![name.into(), format!("Province {}", i % 5).into()],
                )
                .unwrap();
            }
        }
        b.add_foreign_key("geo_lake", "Lake", "Lake", "Name")
            .unwrap();
        b.build()
    }

    #[test]
    fn selectivity_counts_joining_pairs_exactly() {
        let db = correlated_db();
        let ji = JoinIndicator::train(&db, EdgeId(0), 64, 42);
        // 25 geo rows, each joining exactly one lake: 25 pairs over 25*50.
        assert_eq!(ji.pair_count, 25);
        assert!((ji.selectivity - 25.0 / (25.0 * 50.0)).abs() < 1e-12);
        assert_eq!(ji.sample_size(), 25);
    }

    #[test]
    fn conditional_detects_join_attribute_correlation() {
        let db = correlated_db();
        let ji = JoinIndicator::train(&db, EdgeId(0), 64, 42);
        let big = parse_value_constraint(">= 100").unwrap();
        // On the b-side (Lake), area >= 100 holds for *every* joined pair,
        // although only half of all lakes satisfy it.
        let p = ji
            .conditional_joint(&db, &[], &[(1, &big)])
            .expect("sample exists");
        assert!(p > 0.9, "P(area >= 100 | joined) = {p}");
        let small = parse_value_constraint("< 100").unwrap();
        let q = ji.conditional_joint(&db, &[], &[(1, &small)]).unwrap();
        assert!(q < 0.1, "P(area < 100 | joined) = {q}");
    }

    #[test]
    fn conditional_joint_with_both_sides() {
        let db = correlated_db();
        let ji = JoinIndicator::train(&db, EdgeId(0), 64, 42);
        let p0 = parse_value_constraint("Province 0").unwrap();
        let big = parse_value_constraint(">= 100").unwrap();
        let p = ji
            .conditional_joint(&db, &[(1, &p0)], &[(1, &big)])
            .unwrap();
        // 5 of 25 joined pairs are in Province 0, all with big areas.
        assert!((p - 0.2).abs() < 0.1, "joint = {p}");
    }

    #[test]
    fn empty_join_yields_none() {
        let mut b = DatabaseBuilder::new("empty");
        b.add_table("A", vec![ColumnDef::new("k", DataType::Text)])
            .unwrap();
        b.add_table("B", vec![ColumnDef::new("k", DataType::Text)])
            .unwrap();
        b.add_row("A", vec!["x".into()]).unwrap();
        b.add_row("B", vec!["y".into()]).unwrap();
        b.add_foreign_key("A", "k", "B", "k").unwrap();
        let db = b.build();
        let ji = JoinIndicator::train(&db, EdgeId(0), 16, 1);
        assert_eq!(ji.pair_count, 0);
        assert_eq!(ji.selectivity, 0.0);
        assert!(ji.conditional_joint(&db, &[], &[]).is_none());
    }

    #[test]
    fn reservoir_caps_sample_size_deterministically() {
        let db = correlated_db();
        let ji1 = JoinIndicator::train(&db, EdgeId(0), 8, 42);
        let ji2 = JoinIndicator::train(&db, EdgeId(0), 8, 42);
        assert_eq!(ji1.sample_size(), 8);
        assert_eq!(ji1.sample, ji2.sample, "same seed, same sample");
        assert_eq!(ji1.pair_count, 25, "counting is unaffected by sampling");
    }
}
