//! The combined estimator the filter scheduler queries.
//!
//! For a filter — a join (sub-)tree plus per-column predicates from one
//! sample constraint — the scheduler needs `P(filter fails)`, i.e. the
//! probability that **no** result tuple satisfies the predicates. The
//! estimator computes the expected number of satisfying result tuples
//!
//! ```text
//! E[matches] = Π_t |R_t|        (tuple-combination count)
//!            · Π_e s_e          (join selectivities, tree edges)
//!            · Π_t P_t(preds_t) (per-relation Chow–Liu probabilities)
//!            · Π_e lift_e       (join-indicator correlation corrections)
//! ```
//!
//! with `lift_e = P(preds_a ∧ preds_b | J_e) / (P_A(preds_a) · P_B(preds_b))`,
//! and converts it through the Poisson zero-class: `P(fail) = exp(-E)`.
//! For a two-table tree the lift makes the formula collapse to the exactly
//! conditioned `N · s · P(preds | J)`; larger trees use the tree
//! factorization with conditional independence across edges.

use crate::join_indicator::JoinIndicator;
use crate::model::RelationModel;
use prism_db::graph::JoinTree;
use prism_db::schema::{ColumnRef, TableId};
use prism_db::Database;
use prism_lang::ValueConstraint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Training hyper-parameters. Defaults are sized for interactive training on
/// databases of up to a few hundred thousand rows.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum discretization bins per column (NULL/OTHER bins on top).
    pub max_bins: usize,
    /// Reservoir size of joined pairs per edge.
    pub edge_sample: usize,
    /// RNG seed — training is fully deterministic given the seed.
    pub seed: u64,
    /// Learn join indicators (disable for the A1 ablation).
    pub use_join_indicators: bool,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            max_bins: 16,
            edge_sample: 512,
            seed: 0x9E3779B9,
            use_join_indicators: true,
        }
    }
}

/// Trained Bayesian models for one database.
#[derive(Debug, Clone)]
pub struct BayesEstimator {
    relations: Vec<RelationModel>,
    /// Indexed by `EdgeId`; empty when join indicators are disabled.
    joins: Vec<JoinIndicator>,
    use_join_indicators: bool,
}

// Filter scheduling queries the trained estimator from the coordinator
// while validation workers run; the estimator is also a candidate for
// sharing across whole engines. Prove the immutable-share contract at the
// type level.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<BayesEstimator>();

/// Bounds on the correlation correction so a tiny sample cannot blow up the
/// estimate.
const LIFT_MIN: f64 = 0.01;
const LIFT_MAX: f64 = 100.0;

impl BayesEstimator {
    /// Train all per-relation models and per-edge join indicators. This is
    /// the "a priori" preprocessing step of Section 2.3; it does not count
    /// toward interactive discovery time.
    pub fn train(db: &Database, config: &TrainConfig) -> BayesEstimator {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let relations = db
            .catalog()
            .tables()
            .map(|(tid, schema)| {
                RelationModel::train(
                    db.table(tid),
                    db.symbols(),
                    schema.arity(),
                    config.max_bins,
                    &mut rng,
                )
            })
            .collect();
        let joins = if config.use_join_indicators {
            (0..db.graph().edge_count())
                .map(|i| {
                    JoinIndicator::train(
                        db,
                        prism_db::graph::EdgeId(i as u32),
                        config.edge_sample,
                        config.seed,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        BayesEstimator {
            relations,
            joins,
            use_join_indicators: config.use_join_indicators,
        }
    }

    /// The trained model of one relation.
    pub fn relation(&self, table: TableId) -> &RelationModel {
        &self.relations[table.index()]
    }

    /// Whether join indicators were trained.
    pub fn has_join_indicators(&self) -> bool {
        self.use_join_indicators
    }

    /// `P(a uniformly random tuple of `table` satisfies every predicate)` —
    /// one factor of [`BayesEstimator::expected_matches`]. Exposed so
    /// scoring loops can cache it per distinct `(table, predicate set)`:
    /// inference repeats heavily across filters sharing sub-structure.
    pub fn relation_probability(&self, table: TableId, preds: &[(u32, &ValueConstraint)]) -> f64 {
        self.relations[table.index()].probability(preds)
    }

    /// The multiplicative contribution of one join edge given the grouped
    /// predicates on its two endpoint tables: join selectivity times the
    /// sampled correlation lift (or the independence fallback when join
    /// indicators are disabled). The other cacheable factor of
    /// [`BayesEstimator::expected_matches`].
    pub fn edge_factor(
        &self,
        db: &Database,
        eid: prism_db::graph::EdgeId,
        preds_a: &[(u32, &ValueConstraint)],
        preds_b: &[(u32, &ValueConstraint)],
    ) -> f64 {
        let edge = db.graph().edge(eid);
        if !self.use_join_indicators {
            // Ablation: independence-only selectivity from index sizes.
            return independence_selectivity(db, edge);
        }
        let ji = &self.joins[eid.index()];
        let mut factor = ji.selectivity;
        if preds_a.is_empty() && preds_b.is_empty() {
            return factor;
        }
        if let Some(p_joint) = ji.conditional_joint(db, preds_a, preds_b) {
            let p_a = self.relation_probability(edge.a.table, preds_a);
            let p_b = self.relation_probability(edge.b.table, preds_b);
            if p_a > 0.0 && p_b > 0.0 {
                factor *= (p_joint / (p_a * p_b)).clamp(LIFT_MIN, LIFT_MAX);
            }
        }
        factor
    }

    /// Expected number of result tuples of `tree` satisfying all predicates.
    /// `preds` pairs source columns (which must lie on tables of the tree)
    /// with value constraints. Composed exactly from
    /// [`BayesEstimator::relation_probability`] and
    /// [`BayesEstimator::edge_factor`], so cached scoring loops that call
    /// those pieces directly cannot drift from this definition.
    pub fn expected_matches(
        &self,
        db: &Database,
        tree: &JoinTree,
        preds: &[(ColumnRef, &ValueConstraint)],
    ) -> f64 {
        // Group predicates per table.
        let mut by_table: HashMap<TableId, Vec<(u32, &ValueConstraint)>> = HashMap::new();
        for (col, c) in preds {
            by_table
                .entry(col.table)
                .or_default()
                .push((col.column, *c));
        }

        // Tuple-combination count and per-relation probabilities.
        let mut expected = 1.0f64;
        for &t in &tree.tables {
            let rows = db.row_count(t) as f64;
            if rows == 0.0 {
                return 0.0;
            }
            expected *= rows;
            if let Some(tp) = by_table.get(&t) {
                expected *= self.relation_probability(t, tp);
            }
        }

        // Join selectivities and correlation lifts per tree edge.
        let empty: Vec<(u32, &ValueConstraint)> = Vec::new();
        for &eid in &tree.edges {
            let edge = db.graph().edge(eid);
            let preds_a = by_table.get(&edge.a.table).unwrap_or(&empty);
            let preds_b = by_table.get(&edge.b.table).unwrap_or(&empty);
            expected *= self.edge_factor(db, eid, preds_a, preds_b);
        }
        expected.max(0.0)
    }

    /// `P(no result tuple satisfies the predicates)` — the filter failure
    /// probability, via the Poisson zero class.
    pub fn failure_probability(
        &self,
        db: &Database,
        tree: &JoinTree,
        preds: &[(ColumnRef, &ValueConstraint)],
    ) -> f64 {
        (-self.expected_matches(db, tree, preds))
            .exp()
            .clamp(0.0, 1.0)
    }

    /// Expected raw result size of the tree (no predicates) — used as the
    /// scheduler's validation-cost proxy.
    pub fn expected_result_size(&self, db: &Database, tree: &JoinTree) -> f64 {
        self.expected_matches(db, tree, &[])
    }
}

/// Fallback join selectivity under full independence: `1 / max(|A|, |B|)`
/// for a key join, approximated from distinct counts.
fn independence_selectivity(db: &Database, edge: &prism_db::graph::JoinEdge) -> f64 {
    let da = db.stats().column(edge.a).distinct_count.max(1) as f64;
    let db_ = db.stats().column(edge.b).distinct_count.max(1) as f64;
    1.0 / da.max(db_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_db::database::DatabaseBuilder;
    use prism_db::schema::ColumnDef;
    use prism_db::types::{DataType, Value};
    use prism_lang::parse_value_constraint;

    /// 40 lakes; only the 20 large ones (area >= 100) have geo rows, two
    /// provinces each.
    fn demo_db() -> Database {
        let mut b = DatabaseBuilder::new("demo");
        b.add_table(
            "Lake",
            vec![
                ColumnDef::new("Name", DataType::Text).not_null(),
                ColumnDef::new("Area", DataType::Decimal),
            ],
        )
        .unwrap();
        b.add_table(
            "geo_lake",
            vec![
                ColumnDef::new("Lake", DataType::Text).not_null(),
                ColumnDef::new("Province", DataType::Text).not_null(),
            ],
        )
        .unwrap();
        for i in 0..40 {
            let name = format!("Lake {i}");
            let area = if i < 20 {
                10.0 + i as f64
            } else {
                200.0 + i as f64
            };
            b.add_row("Lake", vec![name.clone().into(), Value::Decimal(area)])
                .unwrap();
            if i >= 20 {
                for p in 0..2 {
                    b.add_row(
                        "geo_lake",
                        vec![
                            name.clone().into(),
                            format!("Province {}", (i + p) % 6).into(),
                        ],
                    )
                    .unwrap();
                }
            }
        }
        b.add_foreign_key("geo_lake", "Lake", "Lake", "Name")
            .unwrap();
        b.build()
    }

    fn two_table_tree(db: &Database) -> JoinTree {
        db.graph()
            .enumerate_trees(2, &[TableId(0), TableId(1)])
            .into_iter()
            .find(|t| t.table_count() == 2)
            .expect("the FK edge exists")
    }

    #[test]
    fn unpredicated_tree_size_matches_reality() {
        let db = demo_db();
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        let tree = two_table_tree(&db);
        let e = est.expected_result_size(&db, &tree);
        // True join size: every geo row joins exactly one lake = 40 rows.
        assert!((e - 40.0).abs() < 1.0, "expected ~40, got {e}");
    }

    #[test]
    fn join_indicator_corrects_area_estimates() {
        let db = demo_db();
        let with = BayesEstimator::train(&db, &TrainConfig::default());
        let without = BayesEstimator::train(
            &db,
            &TrainConfig {
                use_join_indicators: false,
                ..TrainConfig::default()
            },
        );
        let tree = two_table_tree(&db);
        let big = parse_value_constraint(">= 100").unwrap();
        let area_col = db.catalog().column_ref("Lake", "Area").unwrap();
        let preds = [(area_col, &big)];
        let e_with = with.expected_matches(&db, &tree, &preds);
        let e_without = without.expected_matches(&db, &tree, &preds);
        // Truth: all 40 joined rows have area >= 100. The join indicator
        // should push the estimate toward 40; independence halves it.
        assert!(
            (e_with - 40.0).abs() < (e_without - 40.0).abs(),
            "with JI {e_with} should beat without {e_without} (truth 40)"
        );
    }

    #[test]
    fn failure_probability_separates_satisfiable_from_hopeless() {
        let db = demo_db();
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        let tree = two_table_tree(&db);
        let area_col = db.catalog().column_ref("Lake", "Area").unwrap();
        let feasible = parse_value_constraint(">= 100").unwrap();
        let hopeless = parse_value_constraint(">= 999999").unwrap();
        let p_ok = est.failure_probability(&db, &tree, &[(area_col, &feasible)]);
        let p_bad = est.failure_probability(&db, &tree, &[(area_col, &hopeless)]);
        assert!(p_ok < 0.2, "feasible filter should rarely fail: {p_ok}");
        assert!(p_bad > 0.8, "hopeless filter should likely fail: {p_bad}");
    }

    #[test]
    fn failure_probability_is_monotone_in_constraint_tightness() {
        let db = demo_db();
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        let tree = two_table_tree(&db);
        let area_col = db.catalog().column_ref("Lake", "Area").unwrap();
        let loose = parse_value_constraint(">= 0").unwrap();
        let mid = parse_value_constraint(">= 200").unwrap();
        let tight = parse_value_constraint(">= 235").unwrap();
        let p = |c: &ValueConstraint| est.failure_probability(&db, &tree, &[(area_col, c)]);
        assert!(p(&loose) <= p(&mid) + 1e-9);
        assert!(p(&mid) <= p(&tight) + 1e-9);
    }

    #[test]
    fn empty_table_gives_certain_failure() {
        let mut b = DatabaseBuilder::new("e");
        b.add_table("A", vec![ColumnDef::new("x", DataType::Int)])
            .unwrap();
        let db = b.build();
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        let tree = JoinTree::single(TableId(0));
        let c = parse_value_constraint("1").unwrap();
        let col = db.catalog().column_ref("A", "x").unwrap();
        assert_eq!(est.expected_matches(&db, &tree, &[(col, &c)]), 0.0);
        assert_eq!(est.failure_probability(&db, &tree, &[(col, &c)]), 1.0);
    }

    #[test]
    fn single_table_tree_uses_relation_model_only() {
        let db = demo_db();
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        let tree = JoinTree::single(TableId(0));
        let big = parse_value_constraint(">= 100").unwrap();
        let area_col = db.catalog().column_ref("Lake", "Area").unwrap();
        let e = est.expected_matches(&db, &tree, &[(area_col, &big)]);
        // 20 of 40 lakes are large.
        assert!((e - 20.0).abs() < 6.0, "expected ~20, got {e}");
    }

    #[test]
    fn training_is_deterministic() {
        let db = demo_db();
        let a = BayesEstimator::train(&db, &TrainConfig::default());
        let b = BayesEstimator::train(&db, &TrainConfig::default());
        let tree = two_table_tree(&db);
        let c = parse_value_constraint("Province 3").unwrap();
        let col = db.catalog().column_ref("geo_lake", "Province").unwrap();
        assert_eq!(
            a.expected_matches(&db, &tree, &[(col, &c)]),
            b.expected_matches(&db, &tree, &[(col, &c)])
        );
    }
}
