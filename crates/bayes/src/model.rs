//! Per-relation tree-structured Bayesian networks (Chow–Liu).
//!
//! A [`RelationModel`] is trained once per table during preprocessing:
//! columns are discretized, pairwise mutual information is measured over the
//! discretized rows, and a maximum-spanning tree over mutual information
//! (the Chow–Liu algorithm) fixes the network structure. Conditional
//! probability tables are Laplace-smoothed counts.
//!
//! At query time the model answers: *what fraction of this relation's tuples
//! satisfies a conjunction of per-column value constraints?* — the
//! intra-relation half of the filter-failure estimate. Constraints enter
//! inference as soft per-bin evidence weights, so arbitrary range and
//! disjunction constraints are supported, not just equalities.

use crate::discretize::Discretizer;
use prism_db::interner::SymbolTable;
use prism_db::table::Table;
use prism_lang::ValueConstraint;
use rand::rngs::StdRng;

/// Laplace smoothing pseudo-count for CPT cells.
const SMOOTHING: f64 = 0.5;

/// A conditional probability table `P(x = b | parent = pb)`, stored
/// parent-major. Roots have `parent_card == 1`.
#[derive(Debug, Clone)]
struct Cpt {
    parent_card: usize,
    card: usize,
    /// `probs[pb * card + b]`.
    probs: Vec<f64>,
}

impl Cpt {
    fn prob(&self, parent_bin: u8, bin: u8) -> f64 {
        self.probs[parent_bin as usize * self.card + bin as usize]
    }
}

/// A trained Chow–Liu Bayesian network over one relation's columns.
#[derive(Debug, Clone)]
pub struct RelationModel {
    discretizers: Vec<Discretizer>,
    /// Chow–Liu tree: parent of each column (None for the root).
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    cpts: Vec<Cpt>,
    row_count: u32,
}

impl RelationModel {
    /// Learn a model from a table. `max_bins` bounds the per-column
    /// discretization (NULL and OTHER bins come on top).
    pub fn train(
        table: &Table,
        syms: &SymbolTable,
        columns: usize,
        max_bins: usize,
        rng: &mut StdRng,
    ) -> RelationModel {
        let n = table.row_count();
        let mut discretizers = Vec::with_capacity(columns);
        let mut bins: Vec<Vec<u8>> = Vec::with_capacity(columns);
        for c in 0..columns {
            let (d, assignment) = Discretizer::fit(table, syms, c as u32, max_bins, rng);
            discretizers.push(d);
            bins.push(assignment);
        }

        // Pairwise mutual information over discretized columns.
        let mi = |i: usize, j: usize| -> f64 {
            mutual_information(
                &bins[i],
                &bins[j],
                discretizers[i].bin_count() as usize,
                discretizers[j].bin_count() as usize,
            )
        };

        // Chow–Liu: maximum spanning tree via Prim's, rooted at column 0.
        let mut parent: Vec<Option<usize>> = vec![None; columns];
        if columns > 1 && n > 0 {
            let mut in_tree = vec![false; columns];
            in_tree[0] = true;
            let mut best: Vec<(f64, usize)> = (0..columns).map(|j| (mi(0, j), 0)).collect();
            for _ in 1..columns {
                let mut pick = None;
                let mut pick_w = f64::NEG_INFINITY;
                for j in 0..columns {
                    if !in_tree[j] && best[j].0 > pick_w {
                        pick_w = best[j].0;
                        pick = Some(j);
                    }
                }
                let Some(j) = pick else { break };
                in_tree[j] = true;
                parent[j] = Some(best[j].1);
                for k in 0..columns {
                    if !in_tree[k] {
                        let w = mi(j, k);
                        if w > best[k].0 {
                            best[k] = (w, j);
                        }
                    }
                }
            }
        }

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); columns];
        for (c, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(c);
            }
        }

        // Laplace-smoothed CPTs.
        let mut cpts = Vec::with_capacity(columns);
        for c in 0..columns {
            let card = discretizers[c].bin_count() as usize;
            let parent_card = parent[c]
                .map(|p| discretizers[p].bin_count() as usize)
                .unwrap_or(1);
            let mut counts = vec![0.0f64; parent_card * card];
            for (r, &bin) in bins[c].iter().enumerate().take(n) {
                let b = bin as usize;
                let pb = parent[c].map(|p| bins[p][r] as usize).unwrap_or(0);
                counts[pb * card + b] += 1.0;
            }
            let mut probs = vec![0.0f64; parent_card * card];
            for pb in 0..parent_card {
                let total: f64 = counts[pb * card..(pb + 1) * card].iter().sum();
                let denom = total + SMOOTHING * card as f64;
                for b in 0..card {
                    probs[pb * card + b] = (counts[pb * card + b] + SMOOTHING) / denom;
                }
            }
            cpts.push(Cpt {
                parent_card,
                card,
                probs,
            });
        }

        RelationModel {
            discretizers,
            parent,
            children,
            cpts,
            row_count: n as u32,
        }
    }

    pub fn column_count(&self) -> usize {
        self.discretizers.len()
    }

    pub fn row_count(&self) -> u32 {
        self.row_count
    }

    pub fn discretizer(&self, column: u32) -> &Discretizer {
        &self.discretizers[column as usize]
    }

    /// The Chow–Liu parent of a column (None for the root). Exposed for
    /// diagnostics and structure tests.
    pub fn structure(&self) -> &[Option<usize>] {
        &self.parent
    }

    /// Per-bin evidence weights for a constraint on a column: weight\[b\] ≈
    /// P(constraint holds | bin = b). Reservoir fractions provide the base
    /// estimate; for pure equality keywords the bin holding the keyword is
    /// floored at one matching row (Step-1 related-column search has already
    /// proven the keyword exists somewhere in the column).
    pub fn column_weights(&self, column: u32, c: &ValueConstraint) -> Vec<f64> {
        let disc = &self.discretizers[column as usize];
        let mut w: Vec<f64> = (0..disc.bin_count())
            .map(|b| disc.bin_match_fraction(b, c))
            .collect();
        if let Some(keywords) = c.eq_keywords() {
            for lit in keywords {
                // Place the keyword in its bin under both plausible typings.
                let mut candidates = vec![prism_db::Value::Text(lit.raw.clone())];
                if let Some(n) = lit.num {
                    candidates.push(prism_db::Value::Decimal(n));
                }
                for v in candidates {
                    let b = disc.bin_of(&v) as usize;
                    if b != crate::discretize::NULL_BIN as usize {
                        let rows = disc.bin_rows()[b].max(1) as f64;
                        w[b] = w[b].max(1.0 / rows);
                    }
                }
            }
        }
        w
    }

    /// P(a uniformly random tuple satisfies every constraint), where
    /// `evidence[col]` optionally carries per-bin weights from
    /// [`RelationModel::column_weights`]. Exact tree inference by a single
    /// upward pass.
    pub fn probability_with_weights(&self, evidence: &[Option<Vec<f64>>]) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        let roots: Vec<usize> = (0..self.column_count())
            .filter(|&c| self.parent[c].is_none())
            .collect();
        let mut p = 1.0;
        for r in roots {
            p *= self.subtree_probability(r, 0, evidence);
        }
        p.clamp(0.0, 1.0)
    }

    /// Convenience wrapper: constraints as (column, constraint) pairs.
    pub fn probability(&self, constraints: &[(u32, &ValueConstraint)]) -> f64 {
        let mut evidence: Vec<Option<Vec<f64>>> = vec![None; self.column_count()];
        for (col, c) in constraints {
            let w = self.column_weights(*col, c);
            // Conjoined constraints on the same column multiply pointwise.
            match &mut evidence[*col as usize] {
                Some(existing) => {
                    for (e, nw) in existing.iter_mut().zip(&w) {
                        *e *= nw;
                    }
                }
                slot => *slot = Some(w),
            }
        }
        self.probability_with_weights(&evidence)
    }

    /// `Σ_b P(b | parent_bin) · weight(b) · Π_child subtree(child, b)`.
    fn subtree_probability(
        &self,
        node: usize,
        parent_bin: u8,
        evidence: &[Option<Vec<f64>>],
    ) -> f64 {
        let cpt = &self.cpts[node];
        debug_assert!((parent_bin as usize) < cpt.parent_card);
        let mut total = 0.0;
        for b in 0..cpt.card as u8 {
            let mut term = cpt.prob(parent_bin, b);
            if let Some(w) = &evidence[node] {
                term *= w[b as usize];
                if term == 0.0 {
                    continue;
                }
            }
            for &child in &self.children[node] {
                term *= self.subtree_probability(child, b, evidence);
                if term == 0.0 {
                    break;
                }
            }
            total += term;
        }
        total
    }
}

/// Mutual information (nats) between two discretized columns.
fn mutual_information(a: &[u8], b: &[u8], card_a: usize, card_b: usize) -> f64 {
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let mut joint = vec![0u32; card_a * card_b];
    let mut ma = vec![0u32; card_a];
    let mut mb = vec![0u32; card_b];
    for i in 0..n {
        joint[a[i] as usize * card_b + b[i] as usize] += 1;
        ma[a[i] as usize] += 1;
        mb[b[i] as usize] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for x in 0..card_a {
        if ma[x] == 0 {
            continue;
        }
        for y in 0..card_b {
            let c = joint[x * card_b + y];
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / nf;
            let px = ma[x] as f64 / nf;
            let py = mb[y] as f64 / nf;
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_db::schema::{ColumnDef, TableSchema};
    use prism_db::types::{DataType, Value};
    use prism_lang::parse_value_constraint;
    use rand::SeedableRng;

    /// Two perfectly correlated text columns and one independent numeric.
    fn correlated_table(n: usize) -> (TableSchema, Table, SymbolTable) {
        let s = TableSchema {
            name: "T".into(),
            columns: vec![
                ColumnDef::new("state", DataType::Text),
                ColumnDef::new("country", DataType::Text),
                ColumnDef::new("x", DataType::Int),
            ],
        };
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        let pairs = [
            ("California", "USA"),
            ("Nevada", "USA"),
            ("Bavaria", "Germany"),
            ("Ontario", "Canada"),
        ];
        for i in 0..n {
            let (st, co) = pairs[i % pairs.len()];
            t.push_row(
                &s,
                &mut syms,
                vec![st.into(), co.into(), Value::Int((i % 10) as i64)],
            )
            .unwrap();
        }
        (s, t, syms)
    }

    #[test]
    fn mutual_information_detects_dependence() {
        let a: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        let b = a.clone(); // identical => high MI
        let c: Vec<u8> = (0..100).map(|i| (i % 2) as u8 + 1).collect(); // independent-ish
        let mi_ab = mutual_information(&a, &b, 4, 4);
        let mi_ac = mutual_information(&a, &c, 4, 4);
        assert!(mi_ab > mi_ac, "identical columns must have higher MI");
        assert!(mi_ab > 1.0, "MI of identical 4-ary column ~ ln 4");
    }

    #[test]
    fn chow_liu_links_correlated_columns() {
        let (_, t, syms) = correlated_table(400);
        let mut rng = StdRng::seed_from_u64(3);
        let m = RelationModel::train(&t, &syms, 3, 8, &mut rng);
        // state and country must be adjacent in the tree (one is the
        // other's parent), since their MI dwarfs the independent column's.
        let p = m.structure();
        let adjacent = p[1] == Some(0) || p[0] == Some(1);
        assert!(adjacent, "structure {:?}", p);
    }

    #[test]
    fn joint_probability_reflects_correlation() {
        let (_, t, syms) = correlated_table(400);
        let mut rng = StdRng::seed_from_u64(3);
        let m = RelationModel::train(&t, &syms, 3, 8, &mut rng);
        let cal = parse_value_constraint("California").unwrap();
        let usa = parse_value_constraint("USA").unwrap();
        let germany = parse_value_constraint("Germany").unwrap();
        let p_cal_usa = m.probability(&[(0, &cal), (1, &usa)]);
        let p_cal_de = m.probability(&[(0, &cal), (1, &germany)]);
        // (California, USA) occurs in 25% of rows; (California, Germany)
        // never occurs. The model must rank them accordingly, by a wide
        // margin — this is exactly what independence would get wrong.
        assert!(
            p_cal_usa > 5.0 * p_cal_de,
            "correlated {p_cal_usa} vs impossible {p_cal_de}"
        );
        assert!((p_cal_usa - 0.25).abs() < 0.1, "P(cal,usa) = {p_cal_usa}");
    }

    #[test]
    fn marginal_probability_tracks_frequency() {
        let (_, t, syms) = correlated_table(400);
        let mut rng = StdRng::seed_from_u64(3);
        let m = RelationModel::train(&t, &syms, 3, 8, &mut rng);
        let usa = parse_value_constraint("USA").unwrap();
        let p = m.probability(&[(1, &usa)]);
        assert!((p - 0.5).abs() < 0.1, "P(USA) = {p}");
    }

    #[test]
    fn unconstrained_probability_is_one() {
        let (_, t, syms) = correlated_table(100);
        let mut rng = StdRng::seed_from_u64(3);
        let m = RelationModel::train(&t, &syms, 3, 8, &mut rng);
        let p = m.probability(&[]);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table_probability_is_zero() {
        let s = TableSchema {
            name: "T".into(),
            columns: vec![ColumnDef::new("x", DataType::Int)],
        };
        let t = Table::new(&s);
        let syms = SymbolTable::new();
        let mut rng = StdRng::seed_from_u64(3);
        let m = RelationModel::train(&t, &syms, 1, 8, &mut rng);
        let c = parse_value_constraint("5").unwrap();
        assert_eq!(m.probability(&[(0, &c)]), 0.0);
    }

    #[test]
    fn range_constraints_enter_as_soft_evidence() {
        let (_, t, syms) = correlated_table(400);
        let mut rng = StdRng::seed_from_u64(3);
        let m = RelationModel::train(&t, &syms, 3, 8, &mut rng);
        let low = parse_value_constraint("< 5").unwrap();
        let p = m.probability(&[(2, &low)]);
        // x is uniform over 0..10, so about half the rows satisfy x < 5.
        assert!((p - 0.5).abs() < 0.2, "P(x<5) = {p}");
    }

    #[test]
    fn eq_keyword_floor_prevents_zero_estimates() {
        // A rare value that reservoir sampling will likely miss still gets a
        // nonzero probability thanks to the existence floor.
        let s = TableSchema {
            name: "T".into(),
            columns: vec![ColumnDef::new("name", DataType::Text)],
        };
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        for i in 0..500 {
            t.push_row(&s, &mut syms, vec![format!("common-{}", i % 3).into()])
                .unwrap();
        }
        t.push_row(&s, &mut syms, vec!["needle".into()]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let m = RelationModel::train(&t, &syms, 1, 4, &mut rng);
        let c = parse_value_constraint("needle").unwrap();
        let p = m.probability(&[(0, &c)]);
        assert!(p > 0.0, "rare keyword must keep nonzero probability");
        assert!(p < 0.05, "but it must stay small, got {p}");
    }

    #[test]
    fn conjunction_on_same_column_multiplies_weights() {
        let (_, t, syms) = correlated_table(400);
        let mut rng = StdRng::seed_from_u64(3);
        let m = RelationModel::train(&t, &syms, 3, 8, &mut rng);
        let ge = parse_value_constraint(">= 2").unwrap();
        let lt = parse_value_constraint("< 5").unwrap();
        let p_band = m.probability(&[(2, &ge), (2, &lt)]);
        let p_low = m.probability(&[(2, &lt)]);
        assert!(p_band <= p_low + 1e-9);
    }
}
