//! # prism-bayes — Bayesian models for filter scheduling
//!
//! Section 2.3 of the Prism paper: *"we estimate the filter probability
//! using Bayesian models trained a priori for the source database. A
//! Bayesian model is able to give an estimated probability of a certain
//! record matching the sample constraint exists. … learning a model
//! capturing the correlations among multiple relations … is solved by using
//! the join indicator introduced by Getoor et al."*
//!
//! The demo paper defers the exact formulation to a "future paper", so this
//! crate implements the construction the paper cites:
//!
//! * **Per-relation models** — tree-structured Bayesian networks learned
//!   with the Chow–Liu algorithm (maximum spanning tree over pairwise
//!   mutual information of discretized columns), with Laplace-smoothed
//!   CPTs. These capture intra-relation attribute correlation, e.g. that
//!   `Province = 'California'` and `Country = 'USA'` co-occur.
//! * **Join indicators** — per join edge, the probability that a random
//!   tuple pair joins (`|R ⋈ S| / (|R|·|S|)`) together with a sampled set of
//!   joined pairs used to measure how predicates on the two sides correlate
//!   *given* that the tuples join (Getoor et al., SIGMOD 2001).
//!
//! [`BayesEstimator`] combines both into the quantity the scheduler needs:
//! the expected number of result tuples of a filter's join tree that satisfy
//! the sample constraint, and from it the filter **failure probability**
//! `P(fail) = exp(-E[matches])` (the Poisson zero-class approximation).

pub mod discretize;
pub mod estimator;
pub mod join_indicator;
pub mod model;

pub use discretize::Discretizer;
pub use estimator::{BayesEstimator, TrainConfig};
pub use join_indicator::JoinIndicator;
pub use model::RelationModel;
