//! The user's multiresolution constraint set.
//!
//! A discovery round takes one [`TargetConstraints`]: the number of target
//! columns, one or more **sample constraint rows** (each cell an optional
//! value constraint), and optional per-column **metadata constraints** —
//! exactly the Description section of the demo UI (Figure 3).

use prism_lang::{
    numeric_hull, parse_metadata_constraint, parse_value_constraint, CmpOp, MetaField,
    MetadataConstraint, ParseError, UdfRegistry, ValueConstraint,
};
use std::fmt;

/// One row of the Sample/Result Constraints grid. Both fields are private
/// so the derived hulls can never drift from the cells: construct rows
/// through [`SampleConstraint::new`], read cells through
/// [`SampleConstraint::cells`] / [`SampleConstraint::cell`].
#[derive(Debug, Clone, PartialEq)]
pub struct SampleConstraint {
    /// One optional value constraint per target column.
    cells: Vec<Option<ValueConstraint>>,
    /// Per-cell numeric hull ([`prism_lang::numeric_hull`]), hoisted here
    /// because constraints are fixed for the whole session: validation
    /// executes thousands of filters against the same cells and must not
    /// re-derive hulls per execution. Unconstrained cells carry the full
    /// line.
    hulls: Vec<(f64, f64)>,
}

impl SampleConstraint {
    /// Build a row, computing each cell's numeric hull once.
    pub fn new(cells: Vec<Option<ValueConstraint>>) -> SampleConstraint {
        let hulls = cells
            .iter()
            .map(|c| match c {
                Some(c) => numeric_hull(c),
                None => (f64::NEG_INFINITY, f64::INFINITY),
            })
            .collect();
        SampleConstraint { cells, hulls }
    }

    /// One optional value constraint per target column.
    pub fn cells(&self) -> &[Option<ValueConstraint>] {
        &self.cells
    }

    /// The value constraint on target column `col`, if any.
    #[inline]
    pub fn cell(&self, col: usize) -> Option<&ValueConstraint> {
        self.cells[col].as_ref()
    }

    /// Indexes of constrained cells.
    pub fn constrained_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
    }

    /// The precomputed numeric hull of one cell's constraint (the full
    /// line for unconstrained cells).
    #[inline]
    pub fn hull(&self, col: usize) -> (f64, f64) {
        self.hulls[col]
    }
}

/// Everything the user said about the desired target schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TargetConstraints {
    pub column_count: usize,
    pub samples: Vec<SampleConstraint>,
    pub metadata: Vec<Option<MetadataConstraint>>,
    /// User-defined functions referenced by `@name` predicates (the paper's
    /// future-work extension). Empty by default.
    pub udfs: UdfRegistry,
}

/// Errors constructing a constraint set.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintError {
    /// A cell or metadata string failed to parse.
    Parse {
        row: Option<usize>,
        column: usize,
        error: ParseError,
    },
    /// A sample row's arity differs from the declared column count.
    Arity {
        row: usize,
        expected: usize,
        got: usize,
    },
    /// No cell in any sample row and no metadata constraint was given.
    Empty,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::Parse { row, column, error } => match row {
                Some(r) => write!(f, "sample row {r}, column {column}: {error}"),
                None => write!(f, "metadata for column {column}: {error}"),
            },
            ConstraintError::Arity { row, expected, got } => write!(
                f,
                "sample row {row} has {got} cells but the target schema has {expected} columns"
            ),
            ConstraintError::Empty => {
                write!(f, "at least one value or metadata constraint is required")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}

impl TargetConstraints {
    /// Build from raw constraint strings as typed into the demo UI. Empty /
    /// `None` cells are unconstrained. `metadata` may be shorter than
    /// `column_count`; missing entries mean "no metadata constraint".
    pub fn parse(
        column_count: usize,
        sample_rows: &[Vec<Option<String>>],
        metadata: &[Option<String>],
    ) -> Result<TargetConstraints, ConstraintError> {
        let mut samples = Vec::with_capacity(sample_rows.len());
        for (r, row) in sample_rows.iter().enumerate() {
            if row.len() != column_count {
                return Err(ConstraintError::Arity {
                    row: r,
                    expected: column_count,
                    got: row.len(),
                });
            }
            let mut cells = Vec::with_capacity(column_count);
            for (c, cell) in row.iter().enumerate() {
                match cell.as_deref().map(str::trim) {
                    None | Some("") => cells.push(None),
                    Some(text) => match parse_value_constraint(text) {
                        Ok(vc) => cells.push(Some(vc)),
                        Err(error) => {
                            return Err(ConstraintError::Parse {
                                row: Some(r),
                                column: c,
                                error,
                            })
                        }
                    },
                }
            }
            samples.push(SampleConstraint::new(cells));
        }
        let mut meta = vec![None; column_count];
        for (c, m) in metadata.iter().enumerate().take(column_count) {
            if let Some(text) = m.as_deref().map(str::trim) {
                if text.is_empty() {
                    continue;
                }
                match parse_metadata_constraint(text) {
                    Ok(mc) => meta[c] = Some(mc),
                    Err(error) => {
                        return Err(ConstraintError::Parse {
                            row: None,
                            column: c,
                            error,
                        })
                    }
                }
            }
        }
        let out = TargetConstraints {
            column_count,
            samples,
            metadata: meta,
            udfs: UdfRegistry::new(),
        };
        if out.is_empty() {
            return Err(ConstraintError::Empty);
        }
        Ok(out)
    }

    /// Attach a UDF registry resolving the `@name` predicates.
    pub fn with_udfs(mut self, udfs: UdfRegistry) -> TargetConstraints {
        self.udfs = udfs;
        self
    }

    /// Names of `@name` predicates that are NOT registered — callers should
    /// surface these to the user before searching (unregistered UDFs are
    /// false, which silently yields no results).
    pub fn missing_udfs(&self) -> Vec<String> {
        let mut value_names: Vec<&str> = Vec::new();
        for s in &self.samples {
            for c in s.cells.iter().flatten() {
                for p in c.predicates() {
                    if p.op == CmpOp::Udf {
                        value_names.push(&p.lit.raw);
                    }
                }
            }
        }
        let mut column_names: Vec<&str> = Vec::new();
        for m in self.metadata.iter().flatten() {
            for p in m.predicates() {
                if p.field == MetaField::Udf {
                    column_names.push(&p.lit.raw);
                }
            }
        }
        self.udfs.missing_names(value_names, column_names)
    }

    /// True when not a single constraint was provided.
    pub fn is_empty(&self) -> bool {
        self.samples
            .iter()
            .all(|s| s.cells.iter().all(Option::is_none))
            && self.metadata.iter().all(Option::is_none)
    }

    /// The value constraints on target column `col` across all samples:
    /// `(sample index, constraint)`.
    pub fn column_value_constraints(
        &self,
        col: usize,
    ) -> impl Iterator<Item = (usize, &ValueConstraint)> + '_ {
        self.samples
            .iter()
            .enumerate()
            .filter_map(move |(s, row)| row.cells[col].as_ref().map(|c| (s, c)))
    }

    /// Total number of constrained cells plus metadata constraints — a
    /// rough "amount of user knowledge" measure used in reports.
    pub fn constraint_count(&self) -> usize {
        let cells: usize = self
            .samples
            .iter()
            .map(|s| s.constrained_columns().count())
            .sum();
        cells + self.metadata.iter().filter(|m| m.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some(s: &str) -> Option<String> {
        Some(s.to_string())
    }

    /// The paper's demonstration walk-through, Section 3 step 2.
    fn walkthrough() -> TargetConstraints {
        TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap()
    }

    #[test]
    fn parses_the_papers_walkthrough() {
        let tc = walkthrough();
        assert_eq!(tc.column_count, 3);
        assert_eq!(tc.samples.len(), 1);
        assert!(tc.samples[0].cells()[0].is_some());
        assert!(tc.samples[0].cells()[2].is_none());
        assert!(tc.metadata[2].is_some());
        assert_eq!(tc.constraint_count(), 3);
    }

    #[test]
    fn empty_strings_are_unconstrained_cells() {
        let tc = TargetConstraints::parse(2, &[vec![some("x"), some("   ")]], &[]).unwrap();
        assert!(tc.samples[0].cells()[1].is_none());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let err = TargetConstraints::parse(3, &[vec![some("x")]], &[]);
        assert!(matches!(err, Err(ConstraintError::Arity { .. })));
    }

    #[test]
    fn bad_cell_reports_row_and_column() {
        let err = TargetConstraints::parse(2, &[vec![some("x"), some("a ||")]], &[]);
        match err {
            Err(ConstraintError::Parse { row, column, .. }) => {
                assert_eq!(row, Some(0));
                assert_eq!(column, 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_metadata_reports_column() {
        let err = TargetConstraints::parse(1, &[vec![some("x")]], &[some("Widget == 1")]);
        match err {
            Err(ConstraintError::Parse { row, column, .. }) => {
                assert_eq!(row, None);
                assert_eq!(column, 0);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn fully_empty_constraints_rejected() {
        let err = TargetConstraints::parse(2, &[vec![None, None]], &[]);
        assert!(matches!(err, Err(ConstraintError::Empty)));
    }

    #[test]
    fn column_value_constraints_spans_samples() {
        let tc =
            TargetConstraints::parse(2, &[vec![some("a"), None], vec![some("b"), some("c")]], &[])
                .unwrap();
        assert_eq!(tc.column_value_constraints(0).count(), 2);
        let idxs: Vec<usize> = tc.column_value_constraints(1).map(|(s, _)| s).collect();
        assert_eq!(idxs, vec![1]);
    }

    #[test]
    fn hulls_are_hoisted_once_at_parse() {
        let tc = TargetConstraints::parse(
            3,
            &[vec![some(">= 100 && <= 600"), some("Lake Tahoe"), None]],
            &[],
        )
        .unwrap();
        assert_eq!(tc.samples[0].hull(0), (100.0, 600.0));
        let (lo, hi) = tc.samples[0].hull(1);
        assert!(lo > hi, "text keyword: empty numeric hull");
        assert_eq!(
            tc.samples[0].hull(2),
            (f64::NEG_INFINITY, f64::INFINITY),
            "unconstrained cells carry the full line"
        );
    }

    #[test]
    fn metadata_only_constraints_are_allowed() {
        let tc = TargetConstraints::parse(1, &[vec![None]], &[some("DataType == 'int'")]).unwrap();
        assert!(!tc.is_empty());
        assert_eq!(tc.constraint_count(), 1);
    }
}
