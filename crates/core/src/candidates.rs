//! Step 1b: candidate schema mapping queries.
//!
//! Section 2.3: *"With related columns found, we exhaustively search through
//! the source database schema graph and find all possible join paths, each
//! connecting a set of related columns that altogether can be mapped to all
//! columns in the target schema. Every join path along with the set of
//! related columns it connects becomes a candidate schema mapping query (in
//! form of a PJ query)."*
//!
//! A candidate is therefore a `(join tree, assignment)` pair: an assignment
//! maps each target column to a related column hosted on a tree table. Two
//! minimality rules keep the space non-redundant:
//!
//! * every **leaf** table of the tree must host at least one assigned column
//!   (otherwise the same result is produced by a smaller tree, which is
//!   enumerated separately), and
//! * no two target columns map to the same source column.
//!
//! Candidates are produced in non-decreasing tree size, so under a time
//! budget the cheap queries are enumerated (and later validated) first.

use crate::config::DiscoveryConfig;
use crate::related::RelatedColumns;
use prism_db::graph::JoinTree;
use prism_db::schema::{ColumnRef, TableId};
use prism_db::{Database, JoinCond, PjQuery};
use std::time::Instant;

/// One candidate schema mapping query.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub id: usize,
    pub tree: JoinTree,
    /// `assignment[i]` = the source column mapped to target column `i`.
    pub assignment: Vec<ColumnRef>,
    /// The equivalent executable PJ query.
    pub query: PjQuery,
}

/// Result of candidate enumeration.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    pub candidates: Vec<Candidate>,
    /// True if enumeration stopped early (cap or deadline).
    pub truncated: bool,
}

/// Enumerate all candidates for the related-column sets.
pub fn enumerate_candidates(
    db: &Database,
    related: &RelatedColumns,
    config: &DiscoveryConfig,
    deadline: Option<Instant>,
) -> CandidateSet {
    let mut out = CandidateSet::default();
    if related.has_empty_column() {
        return out;
    }
    let anchors = related.anchor_tables();
    let trees = db.graph().enumerate_trees(config.max_tables, &anchors);
    'trees: for tree in trees {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                out.truncated = true;
                break;
            }
        }
        // Options per target column, restricted to this tree's tables.
        let options: Vec<Vec<ColumnRef>> = related
            .per_column
            .iter()
            .map(|cols| {
                cols.iter()
                    .copied()
                    .filter(|c| tree.contains_table(c.table))
                    .collect::<Vec<_>>()
            })
            .collect();
        if options.iter().any(Vec::is_empty) {
            continue;
        }
        let leaves = tree.leaf_tables(db.graph());
        let mut assignment: Vec<ColumnRef> = Vec::with_capacity(options.len());
        if !assign(
            db,
            &tree,
            &leaves,
            &options,
            &mut assignment,
            config,
            &mut out,
        ) {
            break 'trees; // global cap hit
        }
    }
    out
}

/// Recursive assignment enumeration; returns false when the global
/// candidate cap was reached.
fn assign(
    db: &Database,
    tree: &JoinTree,
    leaves: &[TableId],
    options: &[Vec<ColumnRef>],
    assignment: &mut Vec<ColumnRef>,
    config: &DiscoveryConfig,
    out: &mut CandidateSet,
) -> bool {
    if assignment.len() == options.len() {
        // Minimality: every leaf hosts at least one assigned column.
        let covered = leaves
            .iter()
            .all(|leaf| assignment.iter().any(|c| c.table == *leaf));
        if !covered {
            return true;
        }
        if out.candidates.len() >= config.max_candidates {
            out.truncated = true;
            return false;
        }
        let id = out.candidates.len();
        let query = build_query(db, tree, assignment);
        out.candidates.push(Candidate {
            id,
            tree: tree.clone(),
            assignment: assignment.clone(),
            query,
        });
        return true;
    }
    let i = assignment.len();
    for &col in &options[i] {
        if assignment.contains(&col) {
            continue; // target columns map to distinct source columns
        }
        assignment.push(col);
        let ok = assign(db, tree, leaves, options, assignment, config, out);
        assignment.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Materialize the PJ query of a `(tree, assignment)` pair.
pub fn build_query(db: &Database, tree: &JoinTree, assignment: &[ColumnRef]) -> PjQuery {
    let nodes: Vec<TableId> = tree.tables.clone();
    let slot_of = |t: TableId| nodes.iter().position(|&x| x == t).expect("table in tree");
    let joins: Vec<JoinCond> = tree
        .edges
        .iter()
        .map(|&e| {
            let edge = db.graph().edge(e);
            JoinCond {
                left_node: slot_of(edge.a.table),
                left_col: edge.a.column,
                right_node: slot_of(edge.b.table),
                right_col: edge.b.column,
            }
        })
        .collect();
    let projection = assignment
        .iter()
        .map(|c| (slot_of(c.table), c.column))
        .collect();
    PjQuery {
        nodes,
        joins,
        projection,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::TargetConstraints;
    use crate::related::find_related;
    use prism_datasets::mondial;
    use prism_db::render_sql;

    fn some(s: &str) -> Option<String> {
        Some(s.to_string())
    }

    fn walkthrough_candidates(db: &Database) -> CandidateSet {
        let tc = TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(db, &tc, &config);
        enumerate_candidates(db, &rel, &config, None)
    }

    #[test]
    fn walkthrough_candidates_include_the_desired_query() {
        let db = mondial(42, 1);
        let set = walkthrough_candidates(&db);
        assert!(!set.truncated);
        assert!(!set.candidates.is_empty());
        let sqls: Vec<String> = set
            .candidates
            .iter()
            .map(|c| render_sql(&c.query, &db))
            .collect();
        let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                    FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
        assert!(
            sqls.iter().any(|s| s == want),
            "desired query missing; got {} candidates, e.g. {:?}",
            sqls.len(),
            &sqls[..sqls.len().min(5)]
        );
    }

    #[test]
    fn all_candidates_are_valid_queries_with_full_assignments() {
        let db = mondial(42, 1);
        let set = walkthrough_candidates(&db);
        for c in &set.candidates {
            assert_eq!(c.assignment.len(), 3);
            c.query
                .validate(&db)
                .expect("candidate query is executable");
            // Distinct source columns.
            let mut cols = c.assignment.clone();
            cols.sort();
            cols.dedup();
            assert_eq!(cols.len(), 3, "assignment reuses a column: {c:?}");
        }
    }

    #[test]
    fn leaf_minimality_is_enforced() {
        let db = mondial(42, 1);
        let set = walkthrough_candidates(&db);
        for c in &set.candidates {
            for leaf in c.tree.leaf_tables(db.graph()) {
                assert!(
                    c.assignment.iter().any(|col| col.table == leaf),
                    "leaf {:?} hosts no projected column in {}",
                    db.catalog().table(leaf).name,
                    render_sql(&c.query, &db)
                );
            }
        }
    }

    #[test]
    fn candidates_are_emitted_smallest_trees_first() {
        let db = mondial(42, 1);
        let set = walkthrough_candidates(&db);
        let sizes: Vec<usize> = set
            .candidates
            .iter()
            .map(|c| c.tree.table_count())
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn cap_truncates_enumeration() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap();
        let config = DiscoveryConfig {
            max_candidates: 3,
            ..DiscoveryConfig::default()
        };
        let rel = find_related(&db, &tc, &config);
        let set = enumerate_candidates(&db, &rel, &config, None);
        assert_eq!(set.candidates.len(), 3);
        assert!(set.truncated);
    }

    #[test]
    fn empty_related_column_yields_no_candidates() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(1, &[vec![some("Atlantis Prime")]], &[]).unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let set = enumerate_candidates(&db, &rel, &config, None);
        assert!(set.candidates.is_empty());
    }

    #[test]
    fn expired_deadline_truncates_immediately() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(1, &[vec![some("Lake Tahoe")]], &[]).unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let set = enumerate_candidates(&db, &rel, &config, Some(past));
        assert!(set.truncated);
        assert!(set.candidates.is_empty());
    }

    #[test]
    fn single_keyword_yields_single_table_candidates_too() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(1, &[vec![some("Lake Tahoe")]], &[]).unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let set = enumerate_candidates(&db, &rel, &config, None);
        assert!(set
            .candidates
            .iter()
            .any(|c| c.tree.table_count() == 1 && c.query.joins.is_empty()));
    }
}
