//! The multi-user service layer: one frozen database, N concurrent
//! sessions.
//!
//! The paper demonstrates an *interactive* mapping-discovery service; this
//! module is its serving shape. A [`DiscoveryService`] owns an
//! `Arc<Database>`, the a-priori-trained Bayesian estimator, a
//! service-global [`SharedPlanCache`], and a [`ThreadBudget`] for
//! validation workers. It hands out owned [`SessionHandle`]s — no borrowed
//! lifetimes — so callers can move sessions across threads and run many of
//! them concurrently against the same database:
//!
//! * the database is frozen and `Sync`; every session reads it in place;
//! * the estimator trains once per service (lazily, unless the service
//!   config already selects the Bayes scheduler) and is shared;
//! * prepared query plans live in the shared cache keyed by query
//!   identity, so a session whose query classes were already compiled by
//!   an earlier session compiles **zero** plans — observable through
//!   [`DiscoveryService::plan_cache`] counters;
//! * each round leases validation workers from the service-wide budget
//!   instead of assuming it owns the machine.
//!
//! [`crate::session::Session`] remains the single-user, borrowed
//! equivalent; both funnel into the same `run_round` pipeline.

use crate::config::DiscoveryConfig;
use crate::constraints::TargetConstraints;
use crate::discovery::{run_round, DiscoveryResult, RoundOptions};
use crate::error::Error;
use crate::explain::{all_picks, explain, ConstraintPick, QueryGraph};
use crate::faults::FaultReport;
use crate::filters::{PlanCacheStats, SharedPlanCache};
use crate::scheduler::SchedulerKind;
use crate::session::{ConstraintGrid, SessionConfig};
use crate::validate::panic_message;
use prism_bayes::{BayesEstimator, TrainConfig};
use prism_db::Database;
use prism_lang::UdfRegistry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A pool of validation threads shared by every session of one service.
/// Leases never block and never grant zero: a session asking for workers
/// on an exhausted budget gets the sequential path (1 thread) rather than
/// queueing — interactive rounds must always make progress.
pub struct ThreadBudget {
    total: usize,
    available: Mutex<usize>,
}

impl ThreadBudget {
    fn new(total: usize) -> ThreadBudget {
        let total = total.max(1);
        ThreadBudget {
            total,
            available: Mutex::new(total),
        }
    }

    pub fn total(&self) -> usize {
        self.total
    }

    /// Threads currently not leased out.
    pub fn available(&self) -> usize {
        *self.available.lock().expect("budget lock")
    }

    /// Lease up to `want` threads; the grant is `max(1, min(want,
    /// available))` and returns to the pool when the lease drops.
    fn acquire(&self, want: usize) -> ThreadLease<'_> {
        let mut avail = self.available.lock().expect("budget lock");
        let granted = want.min(*avail).max(1);
        let deducted = granted.min(*avail);
        *avail -= deducted;
        ThreadLease {
            budget: self,
            granted,
            deducted,
        }
    }
}

struct ThreadLease<'b> {
    budget: &'b ThreadBudget,
    granted: usize,
    deducted: usize,
}

impl ThreadLease<'_> {
    fn threads(&self) -> usize {
        self.granted
    }
}

impl Drop for ThreadLease<'_> {
    fn drop(&mut self) {
        let mut avail = self.budget.available.lock().expect("budget lock");
        *avail += self.deducted;
    }
}

/// Everything the service's sessions share.
struct ServiceCore {
    db: Arc<Database>,
    config: DiscoveryConfig,
    /// Trained once per service; `OnceLock` so a PathLength-configured
    /// service pays for training only if some session selects Bayes.
    estimator: OnceLock<BayesEstimator>,
    plans: SharedPlanCache,
    budget: ThreadBudget,
    sessions_opened: AtomicU64,
    rounds_run: AtomicU64,
}

impl ServiceCore {
    fn bayes_estimator(&self) -> &BayesEstimator {
        self.estimator
            .get_or_init(|| BayesEstimator::train(&self.db, &TrainConfig::default()))
    }
}

/// The owned entry point of the public API: one service per frozen
/// database, any number of concurrent [`SessionHandle`]s. Cloning the
/// service clones a handle to the same shared core.
#[derive(Clone)]
pub struct DiscoveryService {
    core: Arc<ServiceCore>,
}

impl DiscoveryService {
    /// Stand up a service over `db`. Trains the Bayesian estimator up
    /// front when `config.scheduler` selects it (the paper's "a priori"
    /// preprocessing); otherwise training is deferred until the first
    /// Bayes session. The thread budget defaults to
    /// `config.validation_threads`.
    pub fn new(db: Arc<Database>, config: DiscoveryConfig) -> DiscoveryService {
        let budget = config.validation_threads;
        DiscoveryService::with_thread_budget(db, config, budget)
    }

    /// As [`DiscoveryService::new`] with an explicit service-wide
    /// validation-thread budget shared by all sessions.
    pub fn with_thread_budget(
        db: Arc<Database>,
        config: DiscoveryConfig,
        total_threads: usize,
    ) -> DiscoveryService {
        let estimator = OnceLock::new();
        if config.scheduler == SchedulerKind::Bayes {
            let trained = BayesEstimator::train(&db, &TrainConfig::default());
            assert!(estimator.set(trained).is_ok(), "fresh OnceLock");
        }
        DiscoveryService {
            core: Arc::new(ServiceCore {
                db,
                config,
                estimator,
                plans: SharedPlanCache::new(),
                budget: ThreadBudget::new(total_threads),
                sessions_opened: AtomicU64::new(0),
                rounds_run: AtomicU64::new(0),
            }),
        }
    }

    /// Open an owned session. `config` shapes the constraint grid and may
    /// override the engine settings for this session's rounds (scheduler,
    /// time budget); plans, estimator, and thread budget stay shared.
    pub fn open_session(&self, config: SessionConfig) -> SessionHandle {
        let id = self.core.sessions_opened.fetch_add(1, Ordering::Relaxed);
        SessionHandle {
            svc: Arc::clone(&self.core),
            id,
            grid: ConstraintGrid::new(&config),
            config,
            udfs: UdfRegistry::new(),
            last_constraints: None,
            last_result: None,
        }
    }

    /// Open a session inheriting the service's engine configuration with
    /// the default grid shape.
    pub fn open_default_session(&self) -> SessionHandle {
        self.open_session(SessionConfig {
            discovery: self.core.config.clone(),
            ..SessionConfig::default()
        })
    }

    pub fn database(&self) -> &Database {
        &self.core.db
    }

    pub fn config(&self) -> &DiscoveryConfig {
        &self.core.config
    }

    /// Hit/miss/compile counters of the service-global plan cache. A warm
    /// session (same query classes as an earlier one) shows up as pure
    /// hits and `plans_built == 0` in its round stats.
    pub fn plan_cache(&self) -> PlanCacheStats {
        self.core.plans.stats()
    }

    pub fn thread_budget(&self) -> &ThreadBudget {
        &self.core.budget
    }

    /// Sessions handed out over the service's lifetime.
    pub fn sessions_opened(&self) -> u64 {
        self.core.sessions_opened.load(Ordering::Relaxed)
    }

    /// Discovery rounds completed across all sessions.
    pub fn rounds_run(&self) -> u64 {
        self.core.rounds_run.load(Ordering::Relaxed)
    }
}

/// One owned interactive session: the same Configuration → Description →
/// Result workflow as [`crate::session::Session`], minus the lifetime —
/// a handle is `Send` and can run on any thread while its siblings run on
/// others.
pub struct SessionHandle {
    svc: Arc<ServiceCore>,
    id: u64,
    config: SessionConfig,
    grid: ConstraintGrid,
    udfs: UdfRegistry,
    last_constraints: Option<TargetConstraints>,
    last_result: Option<DiscoveryResult>,
}

// A handle must be movable into worker threads (the whole point of the
// owned redesign); everything it shares is behind `Arc` + `Sync` types.
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<SessionHandle>();

impl SessionHandle {
    /// Service-unique session id (allocation order).
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    pub fn database_name(&self) -> &str {
        self.svc.db.name()
    }

    /// Register user-defined functions available to `@name` predicates.
    pub fn set_udfs(&mut self, udfs: UdfRegistry) {
        self.udfs = udfs;
    }

    /// Step 2: type into a cell of the Sample/Result Constraints grid.
    pub fn set_sample_cell(
        &mut self,
        row: usize,
        column: usize,
        text: impl Into<String>,
    ) -> Result<(), Error> {
        self.grid.set_sample_cell(row, column, text.into())
    }

    /// Step 2 (metadata row): type into a Metadata Constraints cell.
    pub fn set_metadata_cell(
        &mut self,
        column: usize,
        text: impl Into<String>,
    ) -> Result<(), Error> {
        self.grid.set_metadata_cell(column, text.into())
    }

    /// Step 3: "Start Searching!". Parses the grid, leases validation
    /// workers from the service budget, runs a round through the shared
    /// plan cache, and stores the Result section.
    ///
    /// The lease spans the whole round, overlapping pipelined scheduling
    /// rounds included: under `config.pipeline` the coordinator occupies
    /// one granted slot itself (it scores speculatively while a batch
    /// drains) and the pool runs on the remaining `threads - 1`, so the
    /// budget's accounting is unchanged by pipelining.
    ///
    /// Fault isolation: the round runs inside a panic boundary. The
    /// validation stack already contains per-slot faults ([`DiscoveryResult`]
    /// degrades instead of failing); this last line of defense catches a
    /// coordinator-level unwind too, so one faulting session can never
    /// take down its siblings or poison the service — the thread lease
    /// returns to the budget, shared state (plan cache, estimator) is
    /// never mutated mid-panic, and the session stores an empty degraded
    /// result naming the fault.
    pub fn start_searching(&mut self) -> Result<&DiscoveryResult, Error> {
        let constraints = self.grid.parse(&self.udfs)?;
        let config = &self.config.discovery;
        let estimator = match config.scheduler {
            SchedulerKind::Bayes => Some(self.svc.bayes_estimator()),
            _ => self.svc.estimator.get(),
        };
        let lease = self.svc.budget.acquire(config.validation_threads);
        let threads = lease.threads();
        let round = catch_unwind(AssertUnwindSafe(|| {
            run_round(
                &self.svc.db,
                config,
                estimator,
                &constraints,
                RoundOptions {
                    want_oracle: false,
                    shared_plans: Some(&self.svc.plans),
                    threads,
                },
            )
        }));
        drop(lease);
        let result = round.unwrap_or_else(|payload| DiscoveryResult {
            degraded: true,
            fault_reports: vec![FaultReport {
                filter_sql: "(round coordinator)".to_string(),
                reason: panic_message(&*payload),
                retries: 0,
                candidates: 0,
            }],
            ..DiscoveryResult::default()
        });
        self.svc.rounds_run.fetch_add(1, Ordering::Relaxed);
        self.last_constraints = Some(constraints);
        self.last_result = Some(result);
        Ok(self.last_result.as_ref().expect("just stored"))
    }

    /// The Result section of the last search.
    pub fn result(&self) -> Option<&DiscoveryResult> {
        self.last_result.as_ref()
    }

    /// Step 4.1: the SQL text of one discovered query (Figure 4b).
    pub fn result_sql(&self, index: usize) -> Result<&str, Error> {
        let r = self.last_result.as_ref().ok_or(Error::NoSearchRun)?;
        r.queries
            .get(index)
            .map(|q| q.sql.as_str())
            .ok_or(Error::NoSuchResult(index))
    }

    /// Steps 4.2–4.3: the query graph of one discovered query with the
    /// chosen constraints drawn in (Figure 4c). `picks = None` draws all.
    pub fn explain_result(
        &self,
        index: usize,
        picks: Option<&[ConstraintPick]>,
    ) -> Result<QueryGraph, Error> {
        let r = self.last_result.as_ref().ok_or(Error::NoSearchRun)?;
        let q = r.queries.get(index).ok_or(Error::NoSuchResult(index))?;
        let constraints = self
            .last_constraints
            .as_ref()
            .expect("constraints stored with result");
        let owned_all;
        let picks = match picks {
            Some(p) => p,
            None => {
                owned_all = all_picks(constraints);
                &owned_all
            }
        };
        Ok(explain(&self.svc.db, &q.candidate, constraints, picks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_datasets::mondial;

    fn walkthrough_service() -> DiscoveryService {
        DiscoveryService::new(Arc::new(mondial(42, 1)), DiscoveryConfig::default())
    }

    fn describe(session: &mut SessionHandle) {
        session
            .set_sample_cell(0, 0, "California || Nevada")
            .unwrap();
        session.set_sample_cell(0, 1, "Lake Tahoe").unwrap();
        session
            .set_metadata_cell(2, "DataType=='decimal' AND MinValue>='0'")
            .unwrap();
    }

    #[test]
    fn owned_sessions_run_the_walkthrough() {
        let svc = walkthrough_service();
        let mut session = svc.open_default_session();
        assert_eq!(session.database_name(), "Mondial");
        describe(&mut session);
        let result = session.start_searching().unwrap();
        assert!(!result.queries.is_empty());
        let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                    FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
        let n = result.queries.len();
        let idx = (0..n)
            .find(|&i| session.result_sql(i).unwrap() == want)
            .expect("desired query listed");
        let graph = session.explain_result(idx, None).unwrap();
        assert_eq!(graph.relations.len(), 2);
        assert_eq!(svc.rounds_run(), 1);
        assert_eq!(svc.sessions_opened(), 1);
    }

    #[test]
    fn warm_session_compiles_zero_plans() {
        let svc = walkthrough_service();
        let mut first = svc.open_default_session();
        describe(&mut first);
        let cold = first.start_searching().unwrap().stats.clone();
        assert!(cold.exec.plans_built > 0, "cold session compiles");
        let after_cold = svc.plan_cache();
        assert!(after_cold.misses > 0);
        assert_eq!(after_cold.compiled as u64, cold.exec.plans_built);

        // Second session, same query classes: all cache hits, no compiles.
        let mut second = svc.open_default_session();
        describe(&mut second);
        let warm = second.start_searching().unwrap().stats.clone();
        assert_eq!(warm.exec.plans_built, 0, "warm session compiles nothing");
        let after_warm = svc.plan_cache();
        assert_eq!(after_warm.misses, after_cold.misses, "no new classes");
        assert!(after_warm.hits > after_cold.hits, "classes re-registered");
        // Same accepted queries either way.
        let keys = |r: &DiscoveryResult| {
            let mut k: Vec<String> = r.queries.iter().map(|q| q.key.clone()).collect();
            k.sort();
            k
        };
        assert_eq!(
            keys(first.result().unwrap()),
            keys(second.result().unwrap())
        );
    }

    #[test]
    fn sessions_move_across_threads() {
        let svc = walkthrough_service();
        let handles: Vec<SessionHandle> = (0..3).map(|_| svc.open_default_session()).collect();
        let results: Vec<Vec<String>> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|mut session| {
                    scope.spawn(move || {
                        describe(&mut session);
                        let result = session.start_searching().unwrap();
                        let mut keys: Vec<String> =
                            result.queries.iter().map(|q| q.key.clone()).collect();
                        keys.sort();
                        keys
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        assert!(!results[0].is_empty());
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(svc.rounds_run(), 3);
        assert_eq!(svc.sessions_opened(), 3);
    }

    #[test]
    fn thread_budget_grants_floor_and_returns_on_drop() {
        let budget = ThreadBudget::new(4);
        assert_eq!(budget.total(), 4);
        let a = budget.acquire(3);
        assert_eq!(a.threads(), 3);
        assert_eq!(budget.available(), 1);
        let b = budget.acquire(3);
        assert_eq!(b.threads(), 1, "clamped to what is left");
        assert_eq!(budget.available(), 0);
        // Exhausted budget still grants the sequential floor...
        let c = budget.acquire(2);
        assert_eq!(c.threads(), 1);
        assert_eq!(budget.available(), 0, "floor grant deducts nothing");
        drop(c);
        drop(b);
        drop(a);
        assert_eq!(budget.available(), 4, "all leases returned");
    }

    #[test]
    fn pipelined_sessions_overlap_rounds_and_match_phased_results() {
        let keys = |r: &DiscoveryResult| {
            let mut k: Vec<String> = r.queries.iter().map(|q| q.key.clone()).collect();
            k.sort();
            k
        };
        let db = Arc::new(mondial(42, 1));
        let pipelined = DiscoveryConfig {
            validation_threads: 4,
            pipeline: true,
            ..DiscoveryConfig::with_scheduler(SchedulerKind::PathLength)
        };
        let svc = DiscoveryService::new(Arc::clone(&db), pipelined);
        let mut session = svc.open_default_session();
        describe(&mut session);
        let on = session.start_searching().unwrap().clone();
        assert!(
            on.stats.rounds_overlapped > 0,
            "a 4-thread pipelined round overlaps"
        );
        assert!(on.stats.speculative_wasted <= on.stats.speculative_scores);

        let phased = DiscoveryConfig {
            validation_threads: 4,
            pipeline: false,
            ..DiscoveryConfig::with_scheduler(SchedulerKind::PathLength)
        };
        let svc = DiscoveryService::new(db, phased);
        let mut session = svc.open_default_session();
        describe(&mut session);
        let off = session.start_searching().unwrap().clone();
        assert_eq!(off.stats.rounds_overlapped, 0, "phased mode never overlaps");
        assert_eq!(off.stats.speculative_scores, 0);
        assert_eq!(keys(&on), keys(&off), "pipelining cannot change results");
    }

    #[test]
    fn estimator_trains_lazily_for_bayes_sessions() {
        let svc = DiscoveryService::new(
            Arc::new(mondial(42, 1)),
            DiscoveryConfig::with_scheduler(SchedulerKind::PathLength),
        );
        assert!(svc.core.estimator.get().is_none(), "no eager training");
        let mut session = svc.open_session(SessionConfig {
            discovery: DiscoveryConfig::with_scheduler(SchedulerKind::Bayes),
            ..SessionConfig::default()
        });
        describe(&mut session);
        let result = session.start_searching().unwrap();
        assert!(!result.queries.is_empty());
        assert!(svc.core.estimator.get().is_some(), "trained on demand");
    }
}
