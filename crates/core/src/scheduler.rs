//! Step 2c: filter validation scheduling.
//!
//! Section 2.3: *"A new important issue becomes the filter validation
//! scheduling: in what order the filters are validated so that the most
//! number of filters are pruned, as well as overall filter validation time
//! is minimized. A filter scheduling algorithm should naturally consider
//! two important aspects of a filter: pruning power and cost."*
//!
//! The greedy loop repeatedly validates the pending filter maximizing
//!
//! ```text
//! score(f) = (P_fail(f) · pruned_if_fail(f) + (1 − P_fail(f)) · implied_if_succeed(f)) / cost(f)
//! ```
//!
//! where `pruned_if_fail` counts the pending filters of the candidates `f`
//! would kill and `implied_if_succeed` counts `f`'s pending sub-filters. The
//! **cost model is shared by all schedulers** (the paper explicitly scopes
//! cost estimation out and focuses on pruning power), so differences come
//! only from `P_fail`:
//!
//! * [`SchedulerKind::PathLength`] — the "Filter" baseline of Shen et al.
//!   \[8\]: failure probability proportional to the join path length.
//! * [`SchedulerKind::Bayes`] — Prism: failure probability from the trained
//!   [`prism_bayes::BayesEstimator`].
//! * [`SchedulerKind::Naive`] — no decomposition: validate each candidate's
//!   full queries in enumeration order (the paper's "naïve solution").
//! * [`SchedulerKind::Oracle`] — hindsight optimum (Section 2.4's
//!   "optimum"): with outcomes known, accepted candidates cost one top
//!   validation per sample (shared maximal tops counted once) and failing
//!   candidates are covered by a greedy minimum set cover of failing
//!   filters.
//!
//! ## Sequential vs. parallel
//!
//! [`run_greedy`] validates one filter per greedy round. [`run_greedy_parallel`]
//! picks a *batch* of top-scoring, mutually **non-implying** filters per
//! round (no batch member can resolve another through success/failure
//! propagation, so decomposition pruning loses nothing to concurrency) and
//! validates the batch on the [`crate::parallel`] worker pool. Validation
//! outcomes are ground truth — independent of order — so both engines
//! accept the **identical candidate set** for every [`SchedulerKind`];
//! only wall-clock time and the validation interleaving (hence the
//! validation *counts*) may differ.
//!
//! [`Engine::Pipelined`] goes one step further: instead of idling while
//! the slowest validation of a round drains, the coordinator posts the
//! batch as a detached round and *speculatively scores* the next batch
//! against the current pruning state, reconciling stale scores when the
//! verdicts land (see [`greedy_pipelined`]). Speculation can only waste
//! work, never change the accept set.

use crate::constraints::TargetConstraints;
use crate::faults::{
    delay_steps, injected_panic, FaultCounters, FaultKind, FaultNote, FaultSite, FaultSpec,
    SlotVerdict,
};
use crate::filters::{Filter, FilterId, FilterSet};
use crate::parallel::{validate_with_pool, BatchRunner};
use crate::validate::{validate_filter_cached, validate_filter_guarded, SlotEnv};
use prism_bayes::BayesEstimator;
use prism_db::{Database, ExecScratch, ExecStats};
use prism_lang::ValueConstraint;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Which validation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Whole-query validation in enumeration order (ablation A2).
    Naive,
    /// Filter decomposition with path-length failure probabilities — the
    /// paper's baseline "Filter" \[8\].
    PathLength,
    /// Filter decomposition with Bayesian failure probabilities — Prism.
    Bayes,
    /// Hindsight optimum (not executable interactively; used as the E3
    /// yardstick).
    Oracle,
}

impl SchedulerKind {
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Naive => "naive",
            SchedulerKind::PathLength => "filter(path-length)",
            SchedulerKind::Bayes => "prism(bayes)",
            SchedulerKind::Oracle => "oracle",
        }
    }
}

/// Failure-probability model used by the greedy loop.
pub trait FailureModel {
    fn failure_probability(&self, db: &Database, fs: &FilterSet, f: FilterId) -> f64;
}

/// Baseline \[8\]: `P(fail) ∝ join path length`.
pub struct PathLengthModel;

impl FailureModel for PathLengthModel {
    fn failure_probability(&self, _db: &Database, fs: &FilterSet, f: FilterId) -> f64 {
        let len = fs.filter(f).join_count() as f64;
        (0.15 * (len + 1.0)).min(0.9)
    }
}

/// Prism: Bayesian models + join indicators.
///
/// Scoring is cached per model instance: across the hundreds of filters of
/// one scheduling run, the distinct `(table, predicate set)` and
/// `(edge, predicate sets)` sub-inferences number only a handful (filters
/// share trees and constraint cells), while each uncached evaluation walks
/// sampled join-pair reservoirs. Keys are `(sample, target)` indices into
/// the fixed [`TargetConstraints`] — stable for the model's lifetime — so
/// the cache can never alias two different constraints. Construct via
/// [`BayesModel::new`].
pub struct BayesModel<'a> {
    pub estimator: &'a BayesEstimator,
    pub constraints: &'a TargetConstraints,
    cache: InferenceCache,
}

/// Predicate-set identity inside one model: `(column, target)` pairs plus
/// the sample index — independent of memory addresses.
type PredSetKey = Vec<(u32, usize)>;

#[derive(Default)]
struct InferenceCache {
    relation: std::cell::RefCell<HashMap<(usize, prism_db::TableId, PredSetKey), f64>>,
    edge: std::cell::RefCell<HashMap<(usize, prism_db::EdgeId, PredSetKey, PredSetKey), f64>>,
}

impl<'a> BayesModel<'a> {
    pub fn new(
        estimator: &'a BayesEstimator,
        constraints: &'a TargetConstraints,
    ) -> BayesModel<'a> {
        BayesModel {
            estimator,
            constraints,
            cache: InferenceCache::default(),
        }
    }
}

impl FailureModel for BayesModel<'_> {
    /// `exp(-E[matches])` — the same Poisson zero class as
    /// [`BayesEstimator::failure_probability`], composed from the
    /// estimator's cacheable pieces (`relation_probability`,
    /// `edge_factor`) with per-run memoization. A regression test asserts
    /// bit-identical agreement with the uncached estimator call.
    fn failure_probability(&self, db: &Database, fs: &FilterSet, f: FilterId) -> f64 {
        let filter = fs.filter(f);
        let s = filter.sample;
        let sample = &self.constraints.samples[s];
        // Group predicates per table: the cache key (column, target) and
        // the callable form (column, constraint) side by side.
        type Group<'c> = (PredSetKey, Vec<(u32, &'c ValueConstraint)>);
        let mut by_table: HashMap<prism_db::TableId, Group<'_>> = HashMap::new();
        for &(target, col) in &filter.preds {
            let c = sample.cell(target).expect("constrained cell");
            let g = by_table.entry(col.table).or_default();
            g.0.push((col.column, target));
            g.1.push((col.column, c));
        }
        let mut expected = 1.0f64;
        for &t in &filter.tree.tables {
            let rows = db.row_count(t) as f64;
            if rows == 0.0 {
                expected = 0.0;
                break;
            }
            expected *= rows;
            if let Some((key, preds)) = by_table.get(&t) {
                let cache_key = (s, t, key.clone());
                let cached = self.cache.relation.borrow().get(&cache_key).copied();
                let p = cached.unwrap_or_else(|| {
                    let p = self.estimator.relation_probability(t, preds);
                    self.cache.relation.borrow_mut().insert(cache_key, p);
                    p
                });
                expected *= p;
            }
        }
        if expected > 0.0 {
            let empty: Group<'_> = (Vec::new(), Vec::new());
            for &eid in &filter.tree.edges {
                let edge = db.graph().edge(eid);
                let (ka, pa) = by_table.get(&edge.a.table).unwrap_or(&empty);
                let (kb, pb) = by_table.get(&edge.b.table).unwrap_or(&empty);
                let cache_key = (s, eid, ka.clone(), kb.clone());
                let cached = self.cache.edge.borrow().get(&cache_key).copied();
                let factor = cached.unwrap_or_else(|| {
                    let x = self.estimator.edge_factor(db, eid, pa, pb);
                    self.cache.edge.borrow_mut().insert(cache_key, x);
                    x
                });
                expected *= factor;
            }
        }
        (-expected.max(0.0)).exp().clamp(0.0, 1.0)
    }
}

/// Outcome of running a schedule to completion (or deadline).
#[derive(Debug, Clone, Default)]
pub struct ScheduleOutcome {
    /// Candidate ids whose every top filter was (directly or transitively)
    /// validated successfully.
    pub accepted: Vec<u32>,
    /// Filter validations actually executed.
    pub validations: u64,
    /// Filters resolved for free by success propagation.
    pub implied_successes: u64,
    /// Filters resolved for free by failure propagation.
    pub implied_failures: u64,
    /// Execution work across all validations, including the zone-map
    /// pruning counter ([`ExecStats::blocks_skipped`]): validation
    /// predicates carry numeric hulls derived from their constraint ASTs
    /// (see [`crate::validate::validate_filter`]), so block-partitioned
    /// scans skip provably-empty blocks.
    pub exec: ExecStats,
    /// Batch slots executed by a worker other than their home shard's
    /// owner (the work-stealing pool's load-balancing counter; always 0
    /// for sequential engines and `threads <= 1`).
    pub stolen: u64,
    /// Validation rounds whose drain the coordinator overlapped with
    /// speculative scoring of the next batch ([`Engine::Pipelined`] only;
    /// phased engines report 0).
    pub rounds_overlapped: u64,
    /// Filter scores computed speculatively while a round drained on the
    /// pool (phased engines report 0).
    pub speculative_scores: u64,
    /// Speculative scores invalidated by the drained round's verdicts
    /// before the next batch selection could use them — the pipeline's
    /// wasted work. Always `<= speculative_scores`.
    pub speculative_wasted: u64,
    /// True if the deadline expired before every candidate was classified.
    pub timed_out: bool,
    /// Faults the injection layer fired across this run's validation
    /// slots and speculative scorings (0 unless `PRISM_FAULT` /
    /// [`SchedCtx::faults`] armed injection).
    pub faults_injected: u64,
    /// Transient-fault retries performed by guarded validation slots.
    pub fault_retries: u64,
    /// Validation rounds the watchdog hard-abandoned past the deadline
    /// grace window (their unreported slots reconciled as unknown).
    pub rounds_abandoned: u64,
    /// Filters whose validation faulted — a contained panic (user UDF,
    /// injected chaos, engine bug) or an exhausted transient-retry budget.
    /// Each entry names the candidates it abandoned. Empty = clean run.
    pub faulted: Vec<FaultedFilter>,
}

/// One faulted filter in a [`ScheduleOutcome`]: the scheduling-level
/// record behind a degraded result's
/// [`crate::faults::FaultReport`].
#[derive(Debug, Clone)]
pub struct FaultedFilter {
    pub filter: FilterId,
    /// Contained panic message or transient-exhaustion description.
    pub reason: String,
    /// Transient retries burned before the fault was declared.
    pub retries: u32,
    /// Alive candidates abandoned because this filter — one of their top
    /// filters — can no longer be decided.
    pub candidates: Vec<u32>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FState {
    Pending,
    Succeeded,
    Failed,
    /// Validation faulted: the verdict is unobtainable, which is *not*
    /// evidence — neither success nor failure propagates from here.
    Faulted,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CState {
    Alive,
    Accepted,
    Failed,
    /// A top filter faulted: the candidate can never be proven, but was
    /// not disproven either. Excluded from results, reported as degraded.
    Abandoned,
}

/// The read-only side of one scheduling run: the frozen database, the
/// constraint set, the filter lattice, and the wall-clock budget. Split
/// from [`RunState`] so the parallel engine's workers can borrow it
/// immutably across threads while the coordinator owns the mutable pruning
/// state (the `db` crate asserts `Database: Send + Sync`; `crate::parallel`
/// asserts the rest).
pub struct SchedCtx<'a> {
    pub db: &'a Database,
    pub constraints: &'a TargetConstraints,
    pub fs: &'a FilterSet,
    /// Deadline after which the run reports `timed_out`; `None` = unbounded.
    pub deadline: Option<Instant>,
    /// Deterministic fault injection for the `ValidationSlot` and
    /// `SpeculativeScore` sites; `None` (the default) disables injection.
    pub faults: Option<FaultSpec>,
}

impl<'a> SchedCtx<'a> {
    pub fn new(
        db: &'a Database,
        constraints: &'a TargetConstraints,
        fs: &'a FilterSet,
    ) -> SchedCtx<'a> {
        SchedCtx {
            db,
            constraints,
            fs,
            deadline: None,
            faults: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Option<Instant>) -> SchedCtx<'a> {
        self.deadline = deadline;
        self
    }

    pub fn with_faults(mut self, faults: Option<FaultSpec>) -> SchedCtx<'a> {
        self.faults = faults;
        self
    }
}

/// Which validation engine [`Scheduler::run`] drives over a [`SchedCtx`].
///
/// This is the single entry point's axis of variation: `Naive` is the
/// paper's ablation A2 (whole queries, enumeration order), `Greedy` is the
/// decomposed scheduler under any [`FailureModel`], sequential at
/// `threads <= 1` and batched onto the work-stealing pool otherwise.
pub enum Engine<'m> {
    /// Whole-query validation in enumeration order (no decomposition).
    Naive,
    /// Greedy decomposed scheduling under `model`, validating batches of
    /// mutually non-implying filters on `threads` workers (`<= 1` = the
    /// exact sequential path).
    Greedy {
        model: &'m dyn FailureModel,
        threads: usize,
    },
    /// `Greedy`, pipelined across rounds: the coordinator posts a batch to
    /// the pool as a detached round, speculatively scores the next batch
    /// while it drains, and reconciles stale scores when the verdicts
    /// land. One of `threads` is reserved for the coordinator itself, so
    /// the pool runs `threads - 1` validation workers. Speculation can
    /// only waste work, never change results: the accept set is identical
    /// to `Greedy`'s. `threads <= 1` falls back to the exact sequential
    /// path (a lone thread has nothing to overlap).
    Pipelined {
        model: &'m dyn FailureModel,
        threads: usize,
    },
}

/// The one entry point for running a schedule. `run_greedy`,
/// `run_greedy_parallel` and `run_naive` are thin deprecated wrappers over
/// [`Scheduler::run`].
pub struct Scheduler;

impl Scheduler {
    pub fn run(ctx: &SchedCtx<'_>, engine: Engine<'_>) -> ScheduleOutcome {
        match engine {
            Engine::Naive => naive_schedule(ctx),
            Engine::Greedy { model, threads } if threads > 1 => {
                greedy_parallel(ctx, model, threads)
            }
            Engine::Greedy { model, .. } => greedy_sequential(ctx, model),
            Engine::Pipelined { model, threads } if threads > 1 => {
                greedy_pipelined(ctx, model, threads)
            }
            Engine::Pipelined { model, .. } => greedy_sequential(ctx, model),
        }
    }
}

/// The mutable pruning state of one scheduling run. Only the coordinator
/// thread ever touches it — workers report verdicts, the coordinator
/// applies them in deterministic batch order.
struct RunState {
    fstate: Vec<FState>,
    cstate: Vec<CState>,
    /// Unresolved top filters per candidate. This — not raw pending filter
    /// counts — is the currency of scheduling: the only validations that are
    /// ever *required* are top resolutions (for acceptance) and one failing
    /// filter per doomed candidate (for rejection).
    unresolved_tops: Vec<u32>,
    /// Executor scratch reused across every validation the coordinator
    /// runs itself (sequential engines); pool workers hold their own.
    scratch: ExecScratch,
    /// Filters and candidates whose scheduling state changed since the
    /// last [`reconcile`] — the pipelined engine's staleness feed. `None`
    /// (phased engines) makes logging a no-op.
    changelog: Option<ChangeLog>,
    outcome: ScheduleOutcome,
}

/// What changed while a round's verdicts were applied: the inputs of
/// [`Scoring::score`] are exactly per-filter state (`fstate`) and
/// per-candidate state (aliveness, `unresolved_tops`), so recording these
/// two id streams lets [`reconcile`] invalidate precisely the speculative
/// scores the verdicts could have changed. Duplicates are fine — touching
/// is idempotent.
#[derive(Default)]
struct ChangeLog {
    filters: Vec<FilterId>,
    candidates: Vec<u32>,
}

impl RunState {
    fn new(ctx: &SchedCtx<'_>) -> RunState {
        let n_cands = ctx.fs.per_candidate.len();
        let mut state = RunState {
            fstate: vec![FState::Pending; ctx.fs.len()],
            cstate: vec![CState::Alive; n_cands],
            unresolved_tops: ctx.fs.tops.iter().map(|v| v.len() as u32).collect(),
            scratch: ExecScratch::new(),
            changelog: None,
            outcome: ScheduleOutcome::default(),
        };
        // Step-1 pre-validated filters start out succeeded (no propagation
        // needed: they have no subfilters).
        for f in &ctx.fs.filters {
            if f.prevalidated {
                state.fstate[f.id.index()] = FState::Succeeded;
                for &c in &f.top_for {
                    state.unresolved_tops[c as usize] -= 1;
                }
            }
        }
        // Degenerate candidates (e.g. single-table, single-pred tops) may be
        // fully resolved already.
        for c in 0..n_cands {
            state.check_acceptance(ctx, c as u32);
        }
        state
    }

    fn alive(&self, c: u32) -> bool {
        self.cstate[c as usize] == CState::Alive
    }

    fn any_alive(&self) -> bool {
        self.cstate.contains(&CState::Alive)
    }

    /// `t` is still pending and is an unresolved top of some alive
    /// candidate — i.e. validating it is *required* progress, not just
    /// information.
    fn is_alive_pending_top(&self, fs: &FilterSet, t: FilterId) -> bool {
        self.fstate[t.index()] == FState::Pending
            && fs.filter(t).top_for.iter().any(|&c| self.alive(c))
    }

    #[inline]
    fn log_filter(&mut self, f: FilterId) {
        if let Some(log) = &mut self.changelog {
            log.filters.push(f);
        }
    }

    #[inline]
    fn log_candidate(&mut self, c: u32) {
        if let Some(log) = &mut self.changelog {
            log.candidates.push(c);
        }
    }

    /// Mark `f` succeeded; propagate to subfilters; update acceptance.
    fn mark_success(&mut self, ctx: &SchedCtx<'_>, f: FilterId, implied: bool) {
        if self.fstate[f.index()] != FState::Pending {
            return;
        }
        self.fstate[f.index()] = FState::Succeeded;
        self.log_filter(f);
        if implied {
            self.outcome.implied_successes += 1;
        }
        for &c in &ctx.fs.filter(f).top_for {
            self.unresolved_tops[c as usize] -= 1;
            self.log_candidate(c);
        }
        for &s in &ctx.fs.filter(f).subfilters {
            self.mark_success(ctx, s, true);
        }
        for &c in &ctx.fs.filter(f).top_for {
            self.check_acceptance(ctx, c);
        }
    }

    /// Mark `f` failed; propagate to superfilters; kill member candidates.
    fn mark_failure(&mut self, ctx: &SchedCtx<'_>, f: FilterId, implied: bool) {
        if self.fstate[f.index()] != FState::Pending {
            return;
        }
        self.fstate[f.index()] = FState::Failed;
        self.log_filter(f);
        if implied {
            self.outcome.implied_failures += 1;
        }
        for &c in &ctx.fs.filter(f).top_for {
            self.unresolved_tops[c as usize] -= 1;
            self.log_candidate(c);
        }
        for &c in &ctx.fs.filter(f).members {
            if self.cstate[c as usize] == CState::Alive {
                self.cstate[c as usize] = CState::Failed;
                self.log_candidate(c);
            }
        }
        for &s in &ctx.fs.filter(f).superfilters {
            self.mark_failure(ctx, s, true);
        }
    }

    fn check_acceptance(&mut self, ctx: &SchedCtx<'_>, c: u32) {
        if self.cstate[c as usize] != CState::Alive {
            return;
        }
        // A candidate the deadline-truncated decomposition never reached has
        // no filters at all; `.all()` over its empty top list would be
        // vacuously true and accept a completely unvalidated query. Such
        // candidates simply stay Alive and are dropped when the round ends.
        // (A *decomposed* candidate with an empty top list is legitimate —
        // metadata-only tasks have no sample filters — and stays accepted.)
        if !ctx.fs.decomposed.is_empty() && !ctx.fs.decomposed[c as usize] {
            return;
        }
        let all_tops_ok = ctx.fs.tops[c as usize]
            .iter()
            .all(|t| self.fstate[t.index()] == FState::Succeeded);
        if all_tops_ok {
            self.cstate[c as usize] = CState::Accepted;
            self.log_candidate(c);
            self.outcome.accepted.push(c);
        }
    }

    /// Mark `f` faulted: its verdict is unobtainable. Candidates that need
    /// `f` as a top filter are **abandoned** (not failed — a crash proves
    /// nothing about the data), and crucially *no* failure propagates to
    /// superfilters: implication pruning only ever acts on ground-truth
    /// verdicts, so one faulting filter cannot poison its siblings.
    fn mark_faulted(&mut self, ctx: &SchedCtx<'_>, f: FilterId, note: FaultNote) {
        if self.fstate[f.index()] != FState::Pending {
            return;
        }
        self.fstate[f.index()] = FState::Faulted;
        self.log_filter(f);
        let mut abandoned = Vec::new();
        for &c in &ctx.fs.filter(f).top_for {
            self.unresolved_tops[c as usize] -= 1;
            self.log_candidate(c);
            if self.cstate[c as usize] == CState::Alive {
                self.cstate[c as usize] = CState::Abandoned;
                abandoned.push(c);
            }
        }
        self.outcome.faulted.push(FaultedFilter {
            filter: f,
            reason: note.reason,
            retries: note.retries,
            candidates: abandoned,
        });
    }

    /// Record one executed validation's verdict and propagate it.
    fn apply_validated(&mut self, ctx: &SchedCtx<'_>, f: FilterId, ok: bool) {
        self.outcome.validations += 1;
        if ok {
            self.mark_success(ctx, f, false);
        } else {
            self.mark_failure(ctx, f, false);
        }
    }

    /// Apply one slot's verdict from a guarded validation (pool or
    /// sequential): ground truth propagates, a skip flags the timeout (the
    /// filter stays pending), a fault resolves the filter as undecidable.
    fn apply_slot(&mut self, ctx: &SchedCtx<'_>, f: FilterId, v: SlotVerdict) {
        match v {
            SlotVerdict::Done(ok) => self.apply_validated(ctx, f, ok),
            SlotVerdict::Skipped => self.outcome.timed_out = true,
            SlotVerdict::Faulted(note) => self.mark_faulted(ctx, f, note),
        }
    }

    /// Validate one filter on the coordinator thread (sequential engines),
    /// through the filter set's shared plan cache and this run's scratch —
    /// fault-contained exactly like a pool slot, with the run deadline
    /// armed so the executor's step tick can interrupt a scan mid-filter.
    fn validate_now(&mut self, ctx: &SchedCtx<'_>, f: FilterId) {
        let env = SlotEnv {
            db: ctx.db,
            fs: ctx.fs,
            constraints: ctx.constraints,
            faults: ctx.faults.as_ref(),
            cancel: None,
            deadline: ctx.deadline,
        };
        let mut counters = FaultCounters::default();
        let v = validate_filter_guarded(
            &env,
            f,
            &mut self.scratch,
            &mut self.outcome.exec,
            &mut counters,
        );
        self.outcome.faults_injected += counters.injected;
        self.outcome.fault_retries += counters.retries;
        self.apply_slot(ctx, f, v);
    }

    fn finish(mut self) -> ScheduleOutcome {
        self.outcome.accepted.sort_unstable();
        self.outcome
    }
}

/// Shared validation-cost proxy: the expected intermediate result size of
/// the filter's join tree under attribute independence, with a skew
/// penalty. Dividing by distinct counts models the *average* fan-out; on
/// Zipf-distributed keys a probe can land on the hottest key's posting run
/// instead, so each edge also pays `sqrt(max_run / avg_run)` — the same
/// geometric blend the executor's cost-based planner uses, which degrades
/// to exactly the old estimate on uniform keys. Both PathLength and Bayes
/// use this — the paper isolates its contribution to pruning-power
/// estimation.
pub fn filter_cost(db: &Database, fs: &FilterSet, f: FilterId) -> f64 {
    let filter = fs.filter(f);
    let mut cost = 1.0f64;
    for &t in &filter.tree.tables {
        cost *= db.row_count(t).max(1) as f64;
    }
    for &e in &filter.tree.edges {
        let edge = db.graph().edge(e);
        let stats = db.stats();
        let d = stats
            .column(edge.a)
            .distinct_count
            .max(stats.column(edge.b).distinct_count)
            .max(1);
        cost /= d as f64;
        let skew = [edge.a, edge.b]
            .iter()
            .map(|&c| {
                let s = stats.column(c);
                let avg = db.row_count(c.table).max(1) as f64 / s.distinct_count.max(1) as f64;
                s.max_key_run as f64 / avg.max(1.0)
            })
            .fold(1.0f64, f64::max);
        cost *= skew.sqrt();
    }
    cost.max(1.0)
}

/// Lazily-memoized per-filter quantity. `filter_cost` and the failure
/// probabilities are pure functions of the frozen inputs, so each is
/// computed at most once per run — and *only* for filters the greedy loop
/// actually scores (pre-validated and irrelevant filters never pay).
struct Memo {
    vals: Vec<Option<f64>>,
}

impl Memo {
    fn new(n: usize) -> Memo {
        Memo {
            vals: vec![None; n],
        }
    }

    #[inline]
    fn get(&mut self, f: FilterId, compute: impl FnOnce() -> f64) -> f64 {
        let slot = &mut self.vals[f.index()];
        match *slot {
            Some(v) => v,
            None => *slot.insert(compute()),
        }
    }
}

/// The scoring context shared by every greedy engine: the failure model
/// plus per-run [`Memo`]s of the two pure per-filter quantities
/// (`P_fail`, `filter_cost`). The memos never go stale — only the
/// *composed* score depends on mutable pruning state.
struct Scoring<'m> {
    model: &'m dyn FailureModel,
    p_fail: Memo,
    cost: Memo,
}

impl<'m> Scoring<'m> {
    fn new(model: &'m dyn FailureModel, n_filters: usize) -> Scoring<'m> {
        Scoring {
            model,
            p_fail: Memo::new(n_filters),
            cost: Memo::new(n_filters),
        }
    }

    /// The greedy objective for `f` under the current pruning state.
    /// Benefit accounting:
    ///   failure  → every alive member candidate dies, saving its
    ///              remaining required top validations;
    ///   success  → progress only if the filter IS an unresolved top (of
    ///              itself or, via implication, of another candidate);
    ///              non-top successes are pure information and score 0.
    /// `NEG_INFINITY` marks irrelevant filters (no alive candidate
    /// contains `f`) — aliveness never comes back, so irrelevance is
    /// permanent and cacheable like any other score.
    fn score(&mut self, ctx: &SchedCtx<'_>, state: &RunState, f: &Filter) -> f64 {
        let fs = ctx.fs;
        let kills_saved: u64 = f
            .members
            .iter()
            .filter(|&&c| state.alive(c))
            .map(|&c| state.unresolved_tops[c as usize].max(1) as u64)
            .sum();
        if kills_saved == 0 {
            return f64::NEG_INFINITY;
        }
        let mut tops_resolved = 0u64;
        if state.is_alive_pending_top(fs, f.id) {
            tops_resolved += 1;
        }
        tops_resolved += f
            .subfilters
            .iter()
            .filter(|&&s| state.is_alive_pending_top(fs, s))
            .count() as u64;
        let model = self.model;
        let p = self
            .p_fail
            .get(f.id, || model.failure_probability(ctx.db, fs, f.id));
        let c = self.cost.get(f.id, || filter_cost(ctx.db, fs, f.id));
        (p * kills_saved as f64 + (1.0 - p) * tops_resolved as f64) / c
    }
}

/// Epoch-tagged score cache for the pipelined engine. Every entry records
/// the epoch it was computed at; [`reconcile`] bumps the epoch and stamps
/// `touched` on exactly the filters whose score inputs the drained round's
/// verdicts changed, so staleness is an O(1) comparison — no diffing, no
/// whole-batch invalidation.
struct ScoreCache {
    /// Current reconciliation epoch; starts at 1 so `computed == 0` can
    /// mean "never computed".
    epoch: u64,
    score: Vec<f64>,
    /// Epoch each score was computed at (0 = never).
    computed: Vec<u64>,
    /// Epoch each filter was last invalidated at.
    touched: Vec<u64>,
    /// Epoch each filter was last speculatively scored at. A mark equal
    /// to the epoch just closed means the score never survived to a
    /// selection — [`reconcile`] counts it wasted (older marks are inert,
    /// the score was either read or invalidated long ago).
    spec: Vec<u64>,
}

impl ScoreCache {
    fn new(n_filters: usize) -> ScoreCache {
        ScoreCache {
            epoch: 1,
            score: vec![0.0; n_filters],
            computed: vec![0; n_filters],
            touched: vec![0; n_filters],
            spec: vec![0; n_filters],
        }
    }

    /// The cached score for `f` is current: computed at least once and not
    /// invalidated since.
    fn valid(&self, f: FilterId) -> bool {
        let i = f.index();
        self.computed[i] != 0 && self.computed[i] >= self.touched[i]
    }

    fn store(&mut self, f: FilterId, score: f64) {
        let i = f.index();
        self.score[i] = score;
        self.computed[i] = self.epoch;
    }
}

/// Mark `from` and its implication closure as blocked for this round's
/// batch: everything reachable through subfilter chains (resolved by
/// `from`'s success) and through superfilter chains (resolved by `from`'s
/// failure). Keeping batch members mutually unreachable preserves the
/// decomposition pruning semantics — no batch validation can imply
/// another's outcome, so none of the batch's work is spent on filters the
/// sequential engine would have resolved for free.
fn block_implication_closure(fs: &FilterSet, from: FilterId, blocked: &mut [bool]) {
    fn edges_for(f: &crate::filters::Filter, down: bool) -> &[FilterId] {
        if down {
            &f.subfilters
        } else {
            &f.superfilters
        }
    }
    blocked[from.index()] = true;
    for down in [true, false] {
        let mut stack = vec![from];
        while let Some(f) = stack.pop() {
            for &next in edges_for(fs.filter(f), down) {
                if !blocked[next.index()] {
                    blocked[next.index()] = true;
                    stack.push(next);
                }
            }
        }
    }
}

/// Pick up to `max` pending filters for the next round, highest score
/// first, mutually non-implying. `max == 1` reproduces the sequential
/// greedy pick exactly. Empty result = scheduling is done.
///
/// With a [`ScoreCache`] (the pipelined engine), valid cached scores —
/// speculative ones that survived reconciliation — are used as-is; a
/// cache-valid score always equals what a fresh computation would
/// produce, so caching cannot change the pick. Selection itself never
/// stores: only [`speculate`], running inside a drain window, populates
/// the cache, so every cache hit here is scoring work that was genuinely
/// moved off the critical path (and the synchronous remainder is exactly
/// the entries reconciliation invalidated).
fn select_batch(
    ctx: &SchedCtx<'_>,
    state: &RunState,
    scoring: &mut Scoring<'_>,
    max: usize,
    cache: Option<&ScoreCache>,
) -> Vec<FilterId> {
    let fs = ctx.fs;
    // Score every pending filter relevant to an alive candidate (see
    // [`Scoring::score`] for the benefit accounting; NEG_INFINITY =
    // irrelevant, skipped exactly like the pre-cache code skipped
    // kills_saved == 0).
    let mut scored: Vec<(f64, FilterId)> = Vec::new();
    for f in &fs.filters {
        if state.fstate[f.id.index()] != FState::Pending {
            continue;
        }
        let score = match cache {
            Some(c) if c.valid(f.id) => c.score[f.id.index()],
            _ => scoring.score(ctx, state, f),
        };
        if score == f64::NEG_INFINITY {
            continue; // irrelevant: no alive candidate contains f
        }
        scored.push((score, f.id));
    }
    if scored.is_empty() {
        return Vec::new();
    }
    let mut blocked = vec![false; fs.len()];
    let mut batch: Vec<FilterId> = Vec::with_capacity(max);
    // Positive scores first, best score winning (id breaks ties, matching
    // the sequential argmax).
    scored.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    for &(score, f) in &scored {
        if score <= 0.0 || batch.len() >= max {
            break;
        }
        if !blocked[f.index()] {
            block_implication_closure(fs, f, &mut blocked);
            batch.push(f);
        }
    }
    if !batch.is_empty() {
        return batch;
    }
    // Nothing scores positive (all remaining candidates are expected to
    // succeed and only non-top information filters are cheap): fall through
    // to the cheapest unresolved alive tops — the required work.
    let mut required: Vec<(f64, FilterId)> = fs
        .filters
        .iter()
        .filter(|f| {
            state.fstate[f.id.index()] == FState::Pending && state.is_alive_pending_top(fs, f.id)
        })
        .map(|f| {
            let c = scoring.cost.get(f.id, || filter_cost(ctx.db, fs, f.id));
            (c, f.id)
        })
        .collect();
    required.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
    for &(_, f) in &required {
        if batch.len() >= max {
            break;
        }
        if !blocked[f.index()] {
            block_implication_closure(fs, f, &mut blocked);
            batch.push(f);
        }
    }
    if batch.is_empty() {
        // Degenerate: only information filters remain. Validate the best
        // one anyway — marking it resolved guarantees loop progress.
        batch.push(scored[0].1);
    }
    batch
}

/// The greedy filter schedule, one validation per round, on the calling
/// thread.
fn greedy_sequential(ctx: &SchedCtx<'_>, model: &dyn FailureModel) -> ScheduleOutcome {
    let fs = ctx.fs;
    let mut state = RunState::new(ctx);
    let mut scoring = Scoring::new(model, fs.len());
    loop {
        if let Some(d) = ctx.deadline {
            if Instant::now() >= d {
                state.outcome.timed_out = true;
                break;
            }
        }
        if !state.any_alive() {
            break;
        }
        let batch = select_batch(ctx, &state, &mut scoring, 1, None);
        let Some(&pick) = batch.first() else { break };
        state.validate_now(ctx, pick);
    }
    state.finish()
}

/// The greedy filter schedule with batches of mutually non-implying
/// validations on the work-stealing pool.
///
/// Accepts the identical candidate set as the sequential path for the same
/// inputs — outcomes are ground truth, and batch members cannot resolve
/// each other — while validation *counts* may differ slightly: a batch is
/// committed before its own verdicts can reprioritize the next round.
fn greedy_parallel(
    ctx: &SchedCtx<'_>,
    model: &dyn FailureModel,
    threads: usize,
) -> ScheduleOutcome {
    let fs = ctx.fs;
    let mut state = RunState::new(ctx);
    let mut scoring = Scoring::new(model, fs.len());
    let (state, report) = validate_with_pool(ctx, threads, ctx.deadline, |pool| {
        loop {
            if pool.deadline_expired() {
                state.outcome.timed_out = true;
                break;
            }
            if !state.any_alive() {
                break;
            }
            let batch = select_batch(ctx, &state, &mut scoring, threads, None);
            if batch.is_empty() {
                break;
            }
            for (f, verdict) in batch.iter().zip(pool.run(&batch)) {
                state.apply_slot(ctx, *f, verdict);
            }
        }
        state
    });
    let mut state = state;
    state.outcome.exec.merge(&report.exec);
    state.outcome.stolen = report.stolen;
    state.outcome.faults_injected += report.faults.injected;
    state.outcome.fault_retries += report.faults.retries;
    state.outcome.rounds_abandoned += report.rounds_abandoned;
    state.finish()
}

/// Speculatively score every pending, not-in-flight filter whose cached
/// score is stale, while the posted round drains on the pool. Observes the
/// cooperative deadline *per score* — a deadline firing mid-speculation
/// raises the cancel flag immediately, so workers skip their remaining
/// validations within one validation slot, exactly as in the phased path.
///
/// Speculation is fault-contained at the `SpeculativeScore` injection
/// site: a panic while scoring (injected or real) simply leaves that
/// filter's cache entry unpopulated — [`select_batch`] recomputes it
/// synchronously, so a scoring fault can cost time but never a verdict.
/// Returns `(scores computed, faults injected)`.
fn speculate(
    ctx: &SchedCtx<'_>,
    state: &RunState,
    scoring: &mut Scoring<'_>,
    cache: &mut ScoreCache,
    pool: &BatchRunner<'_>,
    in_flight: &[bool],
) -> (u64, u64) {
    let mut computed = 0u64;
    let mut injected = 0u64;
    for f in &ctx.fs.filters {
        let i = f.id.index();
        if state.fstate[i] != FState::Pending || in_flight[i] || cache.valid(f.id) {
            continue;
        }
        if pool.deadline_expired() {
            break;
        }
        let fired = ctx
            .faults
            .as_ref()
            .and_then(|s| s.check(FaultSite::SpeculativeScore, i as u64));
        if fired.is_some() {
            injected += 1;
        }
        let scored = catch_unwind(AssertUnwindSafe(|| {
            match fired {
                Some(FaultKind::Panic) => injected_panic(FaultSite::SpeculativeScore, i as u64),
                Some(FaultKind::Delay) => delay_steps(1024),
                // Scoring has no retry budget; a transient here is a no-op.
                Some(FaultKind::Transient) | None => {}
            }
            scoring.score(ctx, state, f)
        }));
        if let Ok(s) = scored {
            cache.store(f.id, s);
            cache.spec[i] = cache.epoch;
            computed += 1;
        }
    }
    (computed, injected)
}

/// Reconcile the score cache with the changes the drained round's verdicts
/// made to the pruning state, and count the speculative scores they
/// invalidated. The touch set is exactly the dependency cone of
/// [`Scoring::score`]:
///
/// * a filter `g` whose `fstate` changed invalidates `g` itself and its
///   direct superfilters (which count `g` in their `tops_resolved`);
/// * a candidate `c` whose aliveness or `unresolved_tops` changed
///   invalidates every filter of `c` (`per_candidate[c]` ⊇ all filters
///   with `c` in `members` or `top_for`) and each of *their* direct
///   superfilters (which see `c` through a subfilter's pending-top test).
///
/// Everything else a score reads (`P_fail`, `filter_cost`) is pure, so
/// untouched cache entries remain exactly what a fresh computation would
/// produce.
fn reconcile(fs: &FilterSet, state: &mut RunState, cache: &mut ScoreCache) -> u64 {
    let Some(log) = state.changelog.as_mut() else {
        return 0;
    };
    let prev = cache.epoch;
    cache.epoch += 1;
    let mut wasted = 0u64;
    let mut touch = |cache: &mut ScoreCache, f: FilterId| {
        let i = f.index();
        if cache.spec[i] == prev {
            // Speculated during the round that just drained and
            // invalidated before any selection could read it.
            wasted += 1;
            cache.spec[i] = 0;
        }
        cache.touched[i] = cache.epoch;
    };
    for &f in &log.filters {
        touch(cache, f);
        for &s in &fs.filter(f).superfilters {
            touch(cache, s);
        }
    }
    for &c in &log.candidates {
        for &f in &fs.per_candidate[c as usize] {
            touch(cache, f);
            for &s in &fs.filter(f).superfilters {
                touch(cache, s);
            }
        }
    }
    log.filters.clear();
    log.candidates.clear();
    wasted
}

/// The pipelined greedy schedule: post a batch to the pool as a detached
/// round, speculatively score the next batch while it drains, reconcile
/// when the verdicts land. The coordinator reserves one of `threads` for
/// itself (it is genuinely busy scoring while the round drains), so the
/// pool runs `threads - 1` validation workers.
///
/// Accepts the identical candidate set as the phased engines: verdicts
/// are ground truth (schedule-order-independent), batch members are
/// mutually non-implying exactly as in [`greedy_parallel`], and a
/// cache-valid score always equals a fresh one ([`reconcile`] invalidates
/// every score a verdict could have changed). Speculation only moves
/// scoring work into the drain window — or wastes it.
fn greedy_pipelined(
    ctx: &SchedCtx<'_>,
    model: &dyn FailureModel,
    threads: usize,
) -> ScheduleOutcome {
    let fs = ctx.fs;
    let mut state = RunState::new(ctx);
    state.changelog = Some(ChangeLog::default());
    let mut scoring = Scoring::new(model, fs.len());
    let mut cache = ScoreCache::new(fs.len());
    let mut in_flight = vec![false; fs.len()];
    let workers = (threads - 1).max(1);
    let (state, report) = validate_with_pool(ctx, workers, ctx.deadline, |pool| {
        loop {
            if pool.deadline_expired() {
                state.outcome.timed_out = true;
                break;
            }
            if !state.any_alive() {
                break;
            }
            let batch = select_batch(ctx, &state, &mut scoring, workers, Some(&cache));
            if batch.is_empty() {
                break;
            }
            for &f in &batch {
                in_flight[f.index()] = true;
            }
            pool.post(&batch);
            state.outcome.rounds_overlapped += 1;
            // The overlap window: the pool validates while we score.
            let (computed, injected) =
                speculate(ctx, &state, &mut scoring, &mut cache, pool, &in_flight);
            state.outcome.speculative_scores += computed;
            state.outcome.faults_injected += injected;
            let verdicts = pool.wait_drain();
            for &f in &batch {
                in_flight[f.index()] = false;
            }
            for (f, verdict) in batch.iter().zip(verdicts) {
                state.apply_slot(ctx, *f, verdict);
            }
            state.outcome.speculative_wasted += reconcile(fs, &mut state, &mut cache);
        }
        state
    });
    let mut state = state;
    state.outcome.exec.merge(&report.exec);
    state.outcome.stolen = report.stolen;
    state.outcome.faults_injected += report.faults.injected;
    state.outcome.fault_retries += report.faults.retries;
    state.outcome.rounds_abandoned += report.rounds_abandoned;
    state.finish()
}

/// Naive whole-query validation: each candidate's top filters in
/// enumeration order, no decomposition, no sharing.
fn naive_schedule(ctx: &SchedCtx<'_>) -> ScheduleOutcome {
    let fs = ctx.fs;
    let mut state = RunState::new(ctx);
    'cands: for c in 0..fs.per_candidate.len() {
        if let Some(d) = ctx.deadline {
            if Instant::now() >= d {
                state.outcome.timed_out = true;
                break;
            }
        }
        if !state.alive(c as u32) {
            continue;
        }
        for &t in &fs.tops[c] {
            if state.fstate[t.index()] != FState::Pending {
                continue;
            }
            // Naive validation ignores sharing: count one validation even
            // for filters another candidate also contains, but do not let
            // success/failure imply anything beyond this candidate's fate.
            state.validate_now(ctx, t);
            // Anything short of success — failed, faulted, or skipped at
            // the deadline — means this candidate cannot be accepted.
            if state.fstate[t.index()] != FState::Succeeded {
                continue 'cands;
            }
        }
        state.check_acceptance(ctx, c as u32);
    }
    state.finish()
}

/// Run the greedy filter schedule with the given failure model, one
/// validation per round, on the calling thread.
#[deprecated(
    since = "0.6.0",
    note = "use `Scheduler::run(&ctx, Engine::Greedy { model, threads: 1 })`"
)]
pub fn run_greedy(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
    model: &dyn FailureModel,
    deadline: Option<Instant>,
) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
    Scheduler::run(&ctx, Engine::Greedy { model, threads: 1 })
}

/// Run the greedy filter schedule with batches of mutually non-implying
/// validations on `threads` worker threads (`<= 1` = the sequential path).
#[deprecated(
    since = "0.6.0",
    note = "use `Scheduler::run(&ctx, Engine::Greedy { model, threads })`"
)]
pub fn run_greedy_parallel(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
    model: &dyn FailureModel,
    deadline: Option<Instant>,
    threads: usize,
) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
    Scheduler::run(&ctx, Engine::Greedy { model, threads })
}

/// Naive whole-query validation: each candidate's top filters in
/// enumeration order, no decomposition, no sharing.
#[deprecated(since = "0.6.0", note = "use `Scheduler::run(&ctx, Engine::Naive)`")]
pub fn run_naive(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
    deadline: Option<Instant>,
) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
    Scheduler::run(&ctx, Engine::Naive)
}

/// Ground-truth outcome of every filter, memoized. Not counted as
/// scheduling work — this is the oracle's hindsight knowledge (and the
/// test suite's source of truth).
pub fn ground_truth_outcomes(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
) -> Vec<bool> {
    let mut scratch = ExecScratch::new();
    let mut stats = ExecStats::default();
    fs.filters
        .iter()
        .map(|f| {
            f.prevalidated
                || validate_filter_cached(db, fs, f.id, constraints, &mut scratch, &mut stats)
        })
        .collect()
}

/// The hindsight-optimal number of validations, plus the ground-truth
/// accepted candidates.
///
/// * Accepted candidates: their top filters must be validated; validating a
///   filter certifies all sub-filters, so only ⊑-maximal tops among the
///   accepted set are counted.
/// * Failed candidates: one failing validation suffices per candidate, and
///   a shared failing filter covers all candidates that (transitively)
///   contain it — a minimum set cover, approximated greedily (the exact
///   optimum is NP-hard; greedy is within `ln n`, and this quantity is the
///   yardstick, not a competitor).
pub fn oracle_schedule(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
) -> (u64, ScheduleOutcome) {
    let outcomes = ground_truth_outcomes(db, constraints, fs);
    let n_cands = fs.per_candidate.len();
    // Ground-truth candidate classification.
    let accepted: Vec<u32> = (0..n_cands as u32)
        .filter(|&c| fs.tops[c as usize].iter().all(|t| outcomes[t.index()]))
        .collect();
    let failing: Vec<u32> = (0..n_cands as u32)
        .filter(|c| !accepted.contains(c))
        .collect();

    // Success side: count ⊑-maximal tops among accepted candidates,
    // skipping pre-validated ones (they cost nothing).
    let mut accepted_tops: Vec<FilterId> = accepted
        .iter()
        .flat_map(|&c| fs.tops[c as usize].iter().copied())
        .collect();
    accepted_tops.sort_unstable();
    accepted_tops.dedup();
    let top_is_accepted = |f: FilterId| accepted_tops.binary_search(&f).is_ok();
    let success_validations = accepted_tops
        .iter()
        .filter(|&&t| {
            if fs.filter(t).prevalidated {
                return false;
            }
            // Maximal: no accepted top (transitively) above it. Superfilter
            // chains suffice because ⊑ edges are transitive via the lattice.
            let mut queue: VecDeque<FilterId> = fs.filter(t).superfilters.iter().copied().collect();
            let mut seen: Vec<FilterId> = Vec::new();
            while let Some(s) = queue.pop_front() {
                if seen.contains(&s) {
                    continue;
                }
                seen.push(s);
                if outcomes[s.index()] && top_is_accepted(s) {
                    return false; // covered by a larger accepted top
                }
                queue.extend(fs.filter(s).superfilters.iter().copied());
            }
            true
        })
        .count() as u64;

    // Failure side: greedy set cover of failing candidates by failing
    // filters (coverage closure through superfilters).
    let mut covered = vec![false; n_cands];
    for &c in &accepted {
        covered[c as usize] = true; // not in the universe
    }
    let mut cover_validations = 0u64;
    // Precompute each failing filter's coverage closure.
    let coverage: Vec<(FilterId, Vec<u32>)> = fs
        .filters
        .iter()
        .filter(|f| !outcomes[f.id.index()])
        .map(|f| {
            let mut cands: Vec<u32> = Vec::new();
            let mut queue = VecDeque::from([f.id]);
            let mut seen: Vec<FilterId> = Vec::new();
            while let Some(x) = queue.pop_front() {
                if seen.contains(&x) {
                    continue;
                }
                seen.push(x);
                cands.extend(fs.filter(x).members.iter().copied());
                queue.extend(fs.filter(x).superfilters.iter().copied());
            }
            cands.sort_unstable();
            cands.dedup();
            (f.id, cands)
        })
        .collect();
    loop {
        let uncovered = |cands: &Vec<u32>| cands.iter().filter(|&&c| !covered[c as usize]).count();
        let Some((best_idx, gain)) = coverage
            .iter()
            .enumerate()
            .map(|(i, (_, cands))| (i, uncovered(cands)))
            .max_by_key(|&(i, gain)| (gain, std::cmp::Reverse(i)))
        else {
            break;
        };
        if gain == 0 {
            break;
        }
        cover_validations += 1;
        for &c in &coverage[best_idx].1 {
            covered[c as usize] = true;
        }
    }
    debug_assert!(
        failing.iter().all(|&c| covered[c as usize]),
        "every failing candidate must have a failing filter"
    );

    let outcome = ScheduleOutcome {
        accepted: accepted.clone(),
        validations: success_validations + cover_validations,
        ..ScheduleOutcome::default()
    };
    (success_validations + cover_validations, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::enumerate_candidates;
    use crate::config::DiscoveryConfig;
    use crate::filters::build_filters;
    use crate::related::find_related;
    use prism_bayes::TrainConfig;
    use prism_datasets::mondial;
    use prism_db::render_sql;

    fn some(s: &str) -> Option<String> {
        Some(s.to_string())
    }

    // The tests drive everything through the one public entry point; these
    // shadow the deprecated free functions of the same names.
    fn run_greedy(
        db: &Database,
        constraints: &TargetConstraints,
        fs: &FilterSet,
        model: &dyn FailureModel,
        deadline: Option<Instant>,
    ) -> ScheduleOutcome {
        let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
        Scheduler::run(&ctx, Engine::Greedy { model, threads: 1 })
    }

    fn run_greedy_parallel(
        db: &Database,
        constraints: &TargetConstraints,
        fs: &FilterSet,
        model: &dyn FailureModel,
        deadline: Option<Instant>,
        threads: usize,
    ) -> ScheduleOutcome {
        let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
        Scheduler::run(&ctx, Engine::Greedy { model, threads })
    }

    fn run_naive(
        db: &Database,
        constraints: &TargetConstraints,
        fs: &FilterSet,
        deadline: Option<Instant>,
    ) -> ScheduleOutcome {
        let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
        Scheduler::run(&ctx, Engine::Naive)
    }

    struct Setup {
        db: prism_db::Database,
        tc: TargetConstraints,
    }

    fn walkthrough() -> Setup {
        Setup {
            db: mondial(42, 1),
            tc: TargetConstraints::parse(
                3,
                &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
                &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
            )
            .unwrap(),
        }
    }

    fn prepare(s: &Setup) -> (Vec<crate::Candidate>, FilterSet) {
        let config = DiscoveryConfig::default();
        let rel = find_related(&s.db, &s.tc, &config);
        let cands = enumerate_candidates(&s.db, &rel, &config, None).candidates;
        let fs = build_filters(&s.db, &cands, &s.tc, None);
        (cands, fs)
    }

    fn accepted_sqls(
        db: &prism_db::Database,
        cands: &[crate::Candidate],
        accepted: &[u32],
    ) -> Vec<String> {
        accepted
            .iter()
            .map(|&c| render_sql(&cands[c as usize].query, db))
            .collect()
    }

    #[test]
    fn all_schedulers_agree_on_the_accepted_set() {
        let s = walkthrough();
        let (cands, fs) = prepare(&s);
        let est = prism_bayes::BayesEstimator::train(&s.db, &TrainConfig::default());
        let path = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        let bayes = run_greedy(&s.db, &s.tc, &fs, &BayesModel::new(&est, &s.tc), None);
        let naive = run_naive(&s.db, &s.tc, &fs, None);
        let (_, oracle) = oracle_schedule(&s.db, &s.tc, &fs);
        assert_eq!(path.accepted, bayes.accepted, "schedulers must be sound");
        assert_eq!(path.accepted, naive.accepted);
        assert_eq!(path.accepted, oracle.accepted);
        assert!(
            !path.accepted.is_empty(),
            "walkthrough has satisfying queries"
        );
        // The desired query is among the accepted.
        let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                    FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
        assert!(
            accepted_sqls(&s.db, &cands, &path.accepted)
                .iter()
                .any(|x| x == want),
            "desired query must be accepted"
        );
    }

    #[test]
    fn accepted_candidates_really_satisfy_the_constraints() {
        let s = walkthrough();
        let (cands, fs) = prepare(&s);
        let outcome = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        // Re-verify each accepted candidate end-to-end.
        for &c in &outcome.accepted {
            let cand = &cands[c as usize];
            let rows = cand.query.execute(&s.db, 100_000).unwrap();
            let witness = rows.iter().any(|row| {
                s.tc.samples[0].cells().iter().enumerate().all(|(i, cell)| {
                    cell.as_ref()
                        .map(|c| prism_lang::matches_value(c, &row[i]))
                        .unwrap_or(true)
                })
            });
            assert!(
                witness,
                "accepted {} has no witness row",
                render_sql(&cand.query, &s.db)
            );
        }
    }

    #[test]
    fn decomposed_schedulers_use_fewer_validations_than_naive() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let est = prism_bayes::BayesEstimator::train(&s.db, &TrainConfig::default());
        let naive = run_naive(&s.db, &s.tc, &fs, None);
        let bayes = run_greedy(&s.db, &s.tc, &fs, &BayesModel::new(&est, &s.tc), None);
        // Sharing + implication should not be worse than validating every
        // candidate separately.
        assert!(
            bayes.validations <= naive.validations,
            "bayes {} vs naive {}",
            bayes.validations,
            naive.validations
        );
        assert!(bayes.implied_successes + bayes.implied_failures > 0);
    }

    #[test]
    fn oracle_is_a_lower_bound() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let est = prism_bayes::BayesEstimator::train(&s.db, &TrainConfig::default());
        let (v_opt, _) = oracle_schedule(&s.db, &s.tc, &fs);
        let path = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        let bayes = run_greedy(&s.db, &s.tc, &fs, &BayesModel::new(&est, &s.tc), None);
        assert!(
            v_opt <= path.validations,
            "oracle {v_opt} > path {}",
            path.validations
        );
        assert!(
            v_opt <= bayes.validations,
            "oracle {v_opt} > bayes {}",
            bayes.validations
        );
        assert!(v_opt >= 1);
    }

    #[test]
    fn parallel_engine_accepts_the_identical_candidate_set() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let est = prism_bayes::BayesEstimator::train(&s.db, &TrainConfig::default());
        let seq_path = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        let seq_bayes = run_greedy(&s.db, &s.tc, &fs, &BayesModel::new(&est, &s.tc), None);
        for threads in [2, 4, 8] {
            let par_path = run_greedy_parallel(&s.db, &s.tc, &fs, &PathLengthModel, None, threads);
            assert_eq!(
                seq_path.accepted, par_path.accepted,
                "path-length @ {threads} threads"
            );
            assert!(!par_path.timed_out);
            let par_bayes = run_greedy_parallel(
                &s.db,
                &s.tc,
                &fs,
                &BayesModel::new(&est, &s.tc),
                None,
                threads,
            );
            assert_eq!(
                seq_bayes.accepted, par_bayes.accepted,
                "bayes @ {threads} threads"
            );
            // The engine really executed work and counted it.
            assert!(par_path.validations > 0);
            assert!(par_path.exec.rows_examined > 0);
        }
    }

    #[test]
    fn parallel_with_one_thread_is_the_sequential_path() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let seq = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        let one = run_greedy_parallel(&s.db, &s.tc, &fs, &PathLengthModel, None, 1);
        // Bit-for-bit identical outcome, validation counts included: one
        // thread takes the exact sequential code path.
        assert_eq!(seq.accepted, one.accepted);
        assert_eq!(seq.validations, one.validations);
        assert_eq!(seq.implied_successes, one.implied_successes);
        assert_eq!(seq.implied_failures, one.implied_failures);
        // Identical work — except that the first run populated the filter
        // set's shared plan cache, so the second compiles nothing.
        assert!(seq.exec.plans_built > 0);
        assert_eq!(one.exec.plans_built, 0, "plan cache already warm");
        let strip_plans = |e: &ExecStats| ExecStats {
            plans_built: 0,
            nodes_reordered: 0,
            plan_recompiles: 0,
            ..*e
        };
        assert_eq!(strip_plans(&seq.exec), strip_plans(&one.exec));
    }

    /// The cached Bayes scoring composes the estimator's public pieces
    /// (`relation_probability`, `edge_factor`) with memoization keyed by
    /// `(sample, target)` — it must agree bit-for-bit with the monolithic
    /// `BayesEstimator::failure_probability`, twice (cache hits included).
    #[test]
    fn cached_bayes_scoring_matches_the_uncached_estimator() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let est = prism_bayes::BayesEstimator::train(&s.db, &TrainConfig::default());
        let model = BayesModel::new(&est, &s.tc);
        for _round in 0..2 {
            for f in &fs.filters {
                let sample = &s.tc.samples[f.sample];
                let preds: Vec<(prism_db::ColumnRef, &prism_lang::ValueConstraint)> = f
                    .preds
                    .iter()
                    .map(|(target, col)| (*col, sample.cell(*target).expect("constrained")))
                    .collect();
                let direct = est.failure_probability(&s.db, &f.tree, &preds);
                let cached = model.failure_probability(&s.db, &fs, f.id);
                assert_eq!(direct.to_bits(), cached.to_bits(), "filter {:?}", f.id);
            }
        }
    }

    /// Satellite: plan compilation and scratch allocation amortize — one
    /// plan per query class across *every* engine run over a filter set,
    /// and each run reuses its scratch for all validations after the first.
    #[test]
    fn plan_cache_amortizes_across_engine_runs() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let path = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        assert!(path.exec.plans_built > 0);
        assert!(
            path.exec.plans_built <= fs.plans.classes() as u64,
            "at most one compile per query class"
        );
        assert_eq!(
            path.exec.scratch_reuses,
            path.validations - 1,
            "one scratch serves the whole sequential run"
        );
        // Any later engine over the same filter set compiles only classes
        // the first run never touched.
        let naive = run_naive(&s.db, &s.tc, &fs, None);
        assert!(
            naive.exec.plans_built + path.exec.plans_built <= fs.plans.classes() as u64,
            "naive re-validates shared filters but never re-compiles them"
        );
        assert!(
            fs.plans.prepared_count() as u64 == naive.exec.plans_built + path.exec.plans_built,
            "cache population is exactly the sum of compiles"
        );
        // Across the two runs, compiles stay well below executions.
        assert!(
            path.exec.plans_built + naive.exec.plans_built < path.validations + naive.validations,
            "plans_built must amortize below validations"
        );
    }

    #[test]
    fn parallel_deadline_cancels_cooperatively() {
        let s = walkthrough();
        let (cands, fs) = prepare(&s);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let outcome = run_greedy_parallel(&s.db, &s.tc, &fs, &PathLengthModel, Some(past), 4);
        assert!(outcome.timed_out);
        // Soundness under interruption, as in the sequential engine.
        for &c in &outcome.accepted {
            let rows = cands[c as usize].query.execute(&s.db, 100_000).unwrap();
            assert!(!rows.is_empty());
        }
    }

    #[test]
    fn batches_are_mutually_non_implying() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let ctx = SchedCtx::new(&s.db, &s.tc, &fs);
        let state = RunState::new(&ctx);
        let mut scoring = Scoring::new(&PathLengthModel, fs.len());
        let batch = select_batch(&ctx, &state, &mut scoring, 8, None);
        assert!(batch.len() > 1, "walkthrough offers parallel work");
        for (i, &a) in batch.iter().enumerate() {
            let mut blocked = vec![false; fs.len()];
            block_implication_closure(&fs, a, &mut blocked);
            for &b in batch.iter().skip(i + 1) {
                assert!(
                    !blocked[b.index()],
                    "{a:?} and {b:?} are implication-related"
                );
            }
        }
    }

    fn run_pipelined(
        db: &Database,
        constraints: &TargetConstraints,
        fs: &FilterSet,
        model: &dyn FailureModel,
        deadline: Option<Instant>,
        threads: usize,
    ) -> ScheduleOutcome {
        let ctx = SchedCtx::new(db, constraints, fs).with_deadline(deadline);
        Scheduler::run(&ctx, Engine::Pipelined { model, threads })
    }

    #[test]
    fn pipelined_engine_accepts_the_identical_candidate_set() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let est = prism_bayes::BayesEstimator::train(&s.db, &TrainConfig::default());
        let seq_path = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        let seq_bayes = run_greedy(&s.db, &s.tc, &fs, &BayesModel::new(&est, &s.tc), None);
        for threads in [2, 4, 8] {
            let pipe = run_pipelined(&s.db, &s.tc, &fs, &PathLengthModel, None, threads);
            assert_eq!(
                seq_path.accepted, pipe.accepted,
                "path-length @ {threads} threads"
            );
            assert!(!pipe.timed_out);
            // Counter invariants (satellite): the pipeline really
            // overlapped rounds, really moved scoring into the drain
            // windows, and waste never exceeds what was scored.
            assert!(pipe.rounds_overlapped > 0, "@ {threads} threads");
            assert!(pipe.speculative_scores > 0, "@ {threads} threads");
            assert!(
                pipe.speculative_wasted <= pipe.speculative_scores,
                "wasted {} > scored {} @ {threads} threads",
                pipe.speculative_wasted,
                pipe.speculative_scores,
            );
            let pipe_bayes = run_pipelined(
                &s.db,
                &s.tc,
                &fs,
                &BayesModel::new(&est, &s.tc),
                None,
                threads,
            );
            assert_eq!(
                seq_bayes.accepted, pipe_bayes.accepted,
                "bayes @ {threads} threads"
            );
        }
        // Phased engines report zero pipeline activity.
        for phased in [
            &seq_path,
            &run_greedy_parallel(&s.db, &s.tc, &fs, &PathLengthModel, None, 4),
            &run_naive(&s.db, &s.tc, &fs, None),
        ] {
            assert_eq!(phased.rounds_overlapped, 0);
            assert_eq!(phased.speculative_scores, 0);
            assert_eq!(phased.speculative_wasted, 0);
        }
    }

    #[test]
    fn pipelined_with_one_thread_is_the_sequential_path() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let seq = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        let one = run_pipelined(&s.db, &s.tc, &fs, &PathLengthModel, None, 1);
        // Bit-for-bit identical outcome: one thread takes the exact
        // sequential code path, no pool, no speculation.
        assert_eq!(seq.accepted, one.accepted);
        assert_eq!(seq.validations, one.validations);
        assert_eq!(seq.implied_successes, one.implied_successes);
        assert_eq!(seq.implied_failures, one.implied_failures);
        assert_eq!(one.rounds_overlapped, 0);
        assert_eq!(one.speculative_scores, 0);
        let strip_plans = |e: &ExecStats| ExecStats {
            plans_built: 0,
            nodes_reordered: 0,
            plan_recompiles: 0,
            ..*e
        };
        assert_eq!(strip_plans(&seq.exec), strip_plans(&one.exec));
    }

    /// Satellite regression: the deadline must fire within one validation
    /// slot even when the coordinator is mid-speculation — `speculate`
    /// polls the cooperative flag per score, so a near-zero deadline
    /// cancels the round instead of letting speculation run to the end of
    /// the pending set first.
    #[test]
    fn pipelined_deadline_cancels_cooperatively() {
        let s = walkthrough();
        let (cands, fs) = prepare(&s);
        for deadline in [
            Instant::now() - std::time::Duration::from_millis(1),
            Instant::now() + std::time::Duration::from_micros(50),
        ] {
            let start = Instant::now();
            let outcome = run_pipelined(&s.db, &s.tc, &fs, &PathLengthModel, Some(deadline), 4);
            assert!(outcome.timed_out);
            // Cooperative, not instant — but nowhere near a full run.
            assert!(start.elapsed() < std::time::Duration::from_secs(5));
            // Soundness under interruption, as in the phased engines.
            for &c in &outcome.accepted {
                let rows = cands[c as usize].query.execute(&s.db, 100_000).unwrap();
                assert!(!rows.is_empty());
            }
        }
    }

    #[test]
    fn deadline_interrupts_scheduling_soundly() {
        let s = walkthrough();
        let (cands, fs) = prepare(&s);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let outcome = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, Some(past));
        assert!(outcome.timed_out);
        // Anything accepted before the timeout must still be genuinely
        // satisfying (soundness under interruption).
        for &c in &outcome.accepted {
            let rows = cands[c as usize].query.execute(&s.db, 100_000).unwrap();
            assert!(!rows.is_empty());
        }
    }

    #[test]
    fn filter_cost_grows_with_tree_size() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let mut single = f64::MAX;
        let mut multi = 0.0f64;
        for f in &fs.filters {
            let c = filter_cost(&s.db, &fs, f.id);
            if f.tree.table_count() == 1 {
                single = single.min(c);
            } else {
                multi = multi.max(c);
            }
        }
        assert!(multi > single);
    }

    /// The deprecated free functions are pure delegation: same inputs,
    /// bit-identical accepted sets and validation counts as the
    /// [`Scheduler::run`] calls they forward to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_the_scheduler_entry_point() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let new = run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        let old = super::run_greedy(&s.db, &s.tc, &fs, &PathLengthModel, None);
        assert_eq!(new.accepted, old.accepted);
        assert_eq!(new.validations, old.validations);
        let new = run_naive(&s.db, &s.tc, &fs, None);
        let old = super::run_naive(&s.db, &s.tc, &fs, None);
        assert_eq!(new.accepted, old.accepted);
        assert_eq!(new.validations, old.validations);
        let new = run_greedy_parallel(&s.db, &s.tc, &fs, &PathLengthModel, None, 4);
        let old = super::run_greedy_parallel(&s.db, &s.tc, &fs, &PathLengthModel, None, 4);
        assert_eq!(new.accepted, old.accepted);
    }

    #[test]
    fn ground_truth_outcomes_respect_prevalidation() {
        let s = walkthrough();
        let (_, fs) = prepare(&s);
        let outcomes = ground_truth_outcomes(&s.db, &s.tc, &fs);
        for f in &fs.filters {
            if f.prevalidated {
                assert!(outcomes[f.id.index()]);
            }
        }
    }
}
