//! Step 2b: executing one filter against the database.
//!
//! Validating a filter asks: *does the result of the filter's sub-join-tree
//! contain at least one tuple satisfying the sample constraint restricted to
//! the filter's columns?* This maps directly onto
//! [`prism_db::PreparedQuery::exists_matching`], which early-exits on the
//! first witness.
//!
//! Validation is where the prepare/execute split pays: the interactive loop
//! runs thousands of tiny existence probes per refinement round, so
//! [`validate_filter_cached`] compiles each filter's query at most once per
//! [`FilterSet`] (shared [`crate::filters::PlanCache`], keyed by
//! [`Filter::query_class`]) and executes it against a caller-owned
//! [`ExecScratch`] that clears rather than reallocates. Numeric hulls were
//! already hoisted to constraint parse time
//! ([`crate::constraints::SampleConstraint::hull`]), and the per-slot
//! predicate closures are plain stack values — no boxing. The per-call
//! [`validate_filter`] remains for one-shot callers and as the reference
//! semantics the cached path must match.

use crate::candidates::build_query;
use crate::constraints::TargetConstraints;
use crate::faults::{
    attempt_token, delay_steps, injected_panic, FaultCounters, FaultKind, FaultNote, FaultSite,
    FaultSpec, SlotVerdict,
};
use crate::filters::{Filter, FilterId, FilterSet, PlanCache};
use prism_db::{Database, DbError, ExecScratch, ExecStats, PjQuery, ProjPred, ScanPred, ValueRef};
use prism_lang::matches_value_ref_with;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// Validation without a cancel handle or deadline attached to the scratch
/// cannot be interrupted, so the `Result` of the inner path is vacuous for
/// the plain `bool` wrappers.
const UNINTERRUPTED: &str = "validation without a cancel handle or deadline cannot be cancelled";

/// Transient-fault retry budget per validation slot (attempt 0 plus up to
/// this many retries).
pub const MAX_TRANSIENT_RETRIES: u32 = 2;

/// Validate `filter` against `db` under `constraints`. Returns whether the
/// filter is satisfied; work is accumulated into `stats`.
///
/// One-shot path: compiles the filter's query and uses a fresh scratch
/// every call. Scheduling engines use [`validate_filter_guarded`] (fault
/// containment) or [`validate_filter_cached`] instead.
pub fn validate_filter(
    db: &Database,
    filter: &Filter,
    constraints: &TargetConstraints,
    stats: &mut ExecStats,
) -> bool {
    let mut scratch = ExecScratch::new();
    run_validation(db, filter, constraints, None, &mut scratch, stats).expect(UNINTERRUPTED)
}

/// Validate one filter of `fs`, reusing its shared prepared-plan cache and
/// the caller's `scratch`. Identical verdicts to [`validate_filter`]; the
/// only difference is that compilation happens at most once per query class
/// ([`ExecStats::plans_built`]) and the scratch amortizes its allocations
/// across calls ([`ExecStats::scratch_reuses`]).
///
/// The caller's scratch must not carry a cancel handle or deadline — this
/// wrapper panics on interruption. Cancellation-aware callers (the
/// validation pool, the sequential greedy loop) use
/// [`validate_filter_guarded`].
pub fn validate_filter_cached(
    db: &Database,
    fs: &FilterSet,
    f: FilterId,
    constraints: &TargetConstraints,
    scratch: &mut ExecScratch,
    stats: &mut ExecStats,
) -> bool {
    run_validation(
        db,
        fs.filter(f),
        constraints,
        Some(&fs.plans),
        scratch,
        stats,
    )
    .expect(UNINTERRUPTED)
}

/// Everything a guarded validation slot shares with its siblings: the
/// frozen inputs plus the round's interruption and fault-injection state.
/// One of these lives per worker (or per sequential loop) and is reused
/// across every slot it runs.
pub(crate) struct SlotEnv<'a> {
    pub db: &'a Database,
    pub fs: &'a FilterSet,
    pub constraints: &'a TargetConstraints,
    /// Injection spec for the `ValidationSlot` site; `None` = chaos off.
    pub faults: Option<&'a FaultSpec>,
    /// The round's cancel flag, re-attached to a rebuilt scratch.
    pub cancel: Option<&'a Arc<AtomicBool>>,
    /// The round's deadline, re-attached to a rebuilt scratch.
    pub deadline: Option<Instant>,
}

impl SlotEnv<'_> {
    /// Arm `scratch` with this round's cancel flag and deadline so the
    /// executor's in-query tick can interrupt long scans.
    fn arm(&self, scratch: &mut ExecScratch) {
        scratch.set_cancel(self.cancel.map(Arc::clone));
        scratch.set_deadline(self.deadline);
    }
}

/// Fault-contained validation of one slot: the engine-facing entry point
/// of the robustness layer.
///
/// Differences from [`validate_filter_cached`]:
///
/// * a panic anywhere inside the validation (a user UDF, an injected chaos
///   fault, a genuine engine bug) is caught; the slot reports
///   [`SlotVerdict::Faulted`] with the panic message and the worker's
///   scratch is **quarantined** — dropped and rebuilt, because an unwound
///   executor may hold arbitrary partial state;
/// * cooperative interruption ([`prism_db::Error::Cancelled`] from the
///   executor's step tick) surfaces as [`SlotVerdict::Skipped`] — unknown,
///   not failed;
/// * injected transient faults are retried up to [`MAX_TRANSIENT_RETRIES`]
///   times with exponential backoff in virtual steps (wall-clock free, so
///   seeded chaos runs stay deterministic), re-rolling the injection
///   decision per attempt.
pub(crate) fn validate_filter_guarded(
    env: &SlotEnv<'_>,
    f: FilterId,
    scratch: &mut ExecScratch,
    stats: &mut ExecStats,
    counters: &mut FaultCounters,
) -> SlotVerdict {
    env.arm(scratch);
    let token = f.index() as u64;
    let mut retries = 0u32;
    for attempt in 0u32.. {
        let fired = env
            .faults
            .and_then(|s| s.check(FaultSite::ValidationSlot, attempt_token(token, attempt)));
        if fired.is_some() {
            counters.injected += 1;
        }
        if matches!(fired, Some(FaultKind::Transient)) {
            // Simulated retryable failure (a flaky page read, a poisoned
            // cache line): no validation work happens this attempt.
            if retries < MAX_TRANSIENT_RETRIES {
                retries += 1;
                counters.retries += 1;
                delay_steps(64 << retries);
                continue;
            }
            return SlotVerdict::Faulted(FaultNote {
                reason: format!("transient fault persisted after {retries} retries"),
                retries,
            });
        }
        let run = catch_unwind(AssertUnwindSafe(|| {
            match fired {
                Some(FaultKind::Panic) => {
                    injected_panic(FaultSite::ValidationSlot, attempt_token(token, attempt))
                }
                Some(FaultKind::Delay) => delay_steps(4096),
                Some(FaultKind::Transient) | None => {}
            }
            run_validation(
                env.db,
                env.fs.filter(f),
                env.constraints,
                Some(&env.fs.plans),
                scratch,
                stats,
            )
        }));
        return match run {
            Ok(Ok(b)) => SlotVerdict::Done(b),
            Ok(Err(DbError::Cancelled)) => SlotVerdict::Skipped,
            Ok(Err(e)) => SlotVerdict::Faulted(FaultNote {
                reason: e.to_string(),
                retries,
            }),
            Err(payload) => {
                // Quarantine: the unwound scratch may hold partial state.
                *scratch = ExecScratch::new();
                env.arm(scratch);
                SlotVerdict::Faulted(FaultNote {
                    reason: panic_message(&*payload),
                    retries,
                })
            }
        };
    }
    unreachable!("the attempt loop always returns")
}

/// Best-effort text of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_validation(
    db: &Database,
    filter: &Filter,
    constraints: &TargetConstraints,
    plans: Option<&PlanCache>,
    scratch: &mut ExecScratch,
    stats: &mut ExecStats,
) -> Result<bool, DbError> {
    let sample = &constraints.samples[filter.sample];
    let udfs = &constraints.udfs;
    // One closure per projection slot (= per filter predicate). Cells reach
    // the closures as zero-copy views out of typed column storage. All
    // closures share one anonymous type, so the vector needs no boxing.
    let cell_preds: Vec<_> = filter
        .preds
        .iter()
        .map(|(target, _)| {
            let c = sample.cells()[*target]
                .as_ref()
                .expect("filter predicates reference constrained cells");
            move |v: ValueRef<'_>| matches_value_ref_with(c, v, udfs)
        })
        .collect();
    // Each predicate carries its constraint's precomputed numeric hull so
    // the executor can prune scan blocks of numeric columns against zone
    // maps. An unbounded hull is omitted — it could never prune.
    let pred_refs: Vec<ProjPred<'_>> = cell_preds
        .iter()
        .zip(&filter.preds)
        .map(|(p, &(target, _))| {
            let (lo, hi) = sample.hull(target);
            let mut sp = ScanPred::new(p);
            if lo > f64::NEG_INFINITY || hi < f64::INFINITY {
                sp = sp.with_range(lo, hi);
            }
            Some(sp)
        })
        .collect();
    // Preparation failures are construction bugs, not runtime faults — the
    // expect stays. Execution errors propagate: `Cancelled` is the
    // executor's cooperative-interruption tick firing mid-scan, and the
    // guarded path must see it rather than have it swallowed here.
    const VALID: &str = "filter queries are structurally valid by construction";
    match plans {
        Some(cache) => {
            let (prepared, built) = cache.get_or_prepare(filter.query_class, || {
                filter_query(db, filter)
                    .prepare(db, &pred_refs)
                    .expect(VALID)
            });
            if built {
                stats.plans_built += 1;
                stats.nodes_reordered += prepared.nodes_reordered();
            }
            prepared.exists_matching(db, &pred_refs, scratch, stats)
        }
        None => {
            stats.plans_built += 1;
            let prepared = filter_query(db, filter)
                .prepare(db, &pred_refs)
                .expect(VALID);
            stats.nodes_reordered += prepared.nodes_reordered();
            prepared.exists_matching(db, &pred_refs, scratch, stats)
        }
    }
}

/// The executable PJ query of a filter: its subtree with the constrained
/// columns projected.
pub fn filter_query(db: &Database, filter: &Filter) -> PjQuery {
    let cols: Vec<prism_db::ColumnRef> = filter.preds.iter().map(|(_, c)| *c).collect();
    if cols.is_empty() {
        // Non-emptiness top filter: project the first column of the first
        // table (any column works for an existence check).
        let t = filter.tree.tables[0];
        return build_query(db, &filter.tree, &[prism_db::ColumnRef::new(t, 0)]);
    }
    build_query(db, &filter.tree, &cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::enumerate_candidates;
    use crate::config::DiscoveryConfig;
    use crate::filters::build_filters;
    use crate::related::find_related;
    use prism_datasets::mondial;
    use prism_db::render_sql;

    fn some(s: &str) -> Option<String> {
        Some(s.to_string())
    }

    #[test]
    fn walkthrough_top_filter_of_the_true_candidate_succeeds() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let cands = enumerate_candidates(&db, &rel, &config, None).candidates;
        let fs = build_filters(&db, &cands, &tc, None);
        // Find the ground-truth candidate (Lake ⋈ geo_lake with the right
        // projection) and check its top filter validates.
        let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                    FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
        let truth = cands
            .iter()
            .find(|c| render_sql(&c.query, &db) == want)
            .expect("ground truth enumerated");
        let mut stats = ExecStats::default();
        let top = fs.filter(fs.tops[truth.id][0]);
        assert!(validate_filter(&db, top, &tc, &mut stats));
        assert!(stats.rows_examined > 0);
    }

    #[test]
    fn contradictory_filter_fails() {
        let db = mondial(42, 1);
        // Crater Lake is in Oregon, not California — the joined pair fails.
        let tc = TargetConstraints::parse(2, &[vec![some("California"), some("Crater Lake")]], &[])
            .unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let cands = enumerate_candidates(&db, &rel, &config, None).candidates;
        let fs = build_filters(&db, &cands, &tc, None);
        // Among candidates joining geo_lake.Province with Lake.Name, every
        // two-table top filter must fail.
        let mut validated_any = false;
        for c in &cands {
            if c.tree.table_count() != 2 {
                continue;
            }
            let geo = db.catalog().table_id("geo_lake").unwrap();
            let lake = db.catalog().table_id("Lake").unwrap();
            if !(c.tree.contains_table(geo) && c.tree.contains_table(lake)) {
                continue;
            }
            let mut stats = ExecStats::default();
            let top = fs.filter(fs.tops[c.id][0]);
            assert!(
                !validate_filter(&db, top, &tc, &mut stats),
                "candidate {} should fail",
                render_sql(&c.query, &db)
            );
            validated_any = true;
        }
        assert!(validated_any, "expected geo_lake ⋈ Lake candidates");
    }

    #[test]
    fn filter_query_projects_constrained_columns() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(2, &[vec![some("Lake Tahoe"), some("California")]], &[])
            .unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let cands = enumerate_candidates(&db, &rel, &config, None).candidates;
        let fs = build_filters(&db, &cands, &tc, None);
        for f in &fs.filters {
            let q = filter_query(&db, f);
            q.validate(&db).expect("valid filter query");
            assert_eq!(q.projection.len(), f.preds.len().max(1));
        }
    }
}
