//! The demo workflow: Configuration → Description → Result (Figures 2–4).
//!
//! [`Session`] is the programmatic mirror of the web UI's three sections.
//! The `examples/interactive_demo.rs` binary drives it as a scripted CLI,
//! reproducing the demonstration walk-through of Section 3 step by step:
//! configure the source database and grid shape, type constraints into the
//! Description grid, hit "Start Searching!", then inspect SQL, pick
//! constraints, and render the explanation graph.

use crate::config::DiscoveryConfig;
use crate::constraints::TargetConstraints;
use crate::discovery::{Discovery, DiscoveryResult};
use crate::error::Error;
use crate::explain::{all_picks, explain, ConstraintPick, QueryGraph};
use prism_db::Database;
use prism_lang::UdfRegistry;

/// The Configuration section (Figure 2 / Section 3 step 1).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of columns in the target schema.
    pub target_columns: usize,
    /// Number of sample-constraint rows.
    pub sample_rows: usize,
    /// Whether the Description section offers a metadata row.
    pub with_metadata: bool,
    /// Engine configuration (time budget, scheduler, …).
    pub discovery: DiscoveryConfig,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            target_columns: 3,
            sample_rows: 1,
            with_metadata: true,
            discovery: DiscoveryConfig::default(),
        }
    }
}

/// The old session error surface, now folded into [`enum@Error`]. The
/// variants a pre-PR-6 caller matched (`OutOfRange`, `MetadataDisabled`,
/// `Constraint`) exist unchanged on the unified enum; protocol strings
/// became the typed `UnknownUdfs` / `NoSearchRun` / `NoSuchResult`.
#[deprecated(since = "0.6.0", note = "use `prism_core::Error`")]
pub type SessionError = Error;

/// The Description grid of one session, as raw text: sample cells plus the
/// optional metadata row, with the parse step that turns them into
/// [`TargetConstraints`]. Shared verbatim by the borrowed [`Session`] and
/// the owned [`crate::service::SessionHandle`] so both enforce identical
/// bounds and produce identical errors.
pub(crate) struct ConstraintGrid {
    target_columns: usize,
    sample_rows: usize,
    with_metadata: bool,
    grid: Vec<Vec<Option<String>>>,
    metadata: Vec<Option<String>>,
}

impl ConstraintGrid {
    pub(crate) fn new(config: &SessionConfig) -> ConstraintGrid {
        ConstraintGrid {
            target_columns: config.target_columns,
            sample_rows: config.sample_rows,
            with_metadata: config.with_metadata,
            grid: vec![vec![None; config.target_columns]; config.sample_rows],
            metadata: vec![None; config.target_columns],
        }
    }

    pub(crate) fn set_sample_cell(
        &mut self,
        row: usize,
        column: usize,
        text: String,
    ) -> Result<(), Error> {
        if row >= self.sample_rows || column >= self.target_columns {
            return Err(Error::OutOfRange { row, column });
        }
        self.grid[row][column] = if text.trim().is_empty() {
            None
        } else {
            Some(text)
        };
        Ok(())
    }

    pub(crate) fn set_metadata_cell(&mut self, column: usize, text: String) -> Result<(), Error> {
        if !self.with_metadata {
            return Err(Error::MetadataDisabled);
        }
        if column >= self.target_columns {
            return Err(Error::OutOfRange { row: 0, column });
        }
        self.metadata[column] = if text.trim().is_empty() {
            None
        } else {
            Some(text)
        };
        Ok(())
    }

    /// Parse the grid into constraints, resolving `@name` predicates
    /// against `udfs`.
    pub(crate) fn parse(&self, udfs: &UdfRegistry) -> Result<TargetConstraints, Error> {
        let constraints =
            TargetConstraints::parse(self.target_columns, &self.grid, &self.metadata)?
                .with_udfs(udfs.clone());
        let missing = constraints.missing_udfs();
        if !missing.is_empty() {
            return Err(Error::UnknownUdfs(missing));
        }
        Ok(constraints)
    }
}

/// One interactive schema-mapping session against a source database.
///
/// `Session` borrows its database; [`crate::service::DiscoveryService`]
/// hands out the owned, `Send` equivalent ([`crate::service::SessionHandle`])
/// for concurrent multi-session serving.
pub struct Session<'a> {
    engine: Discovery<'a>,
    config: SessionConfig,
    grid: ConstraintGrid,
    udfs: UdfRegistry,
    /// Parsed constraints of the last search.
    last_constraints: Option<TargetConstraints>,
    /// The Result section of the last search.
    last_result: Option<DiscoveryResult>,
}

impl<'a> Session<'a> {
    /// Step 1: choose the source database and configure the grid.
    pub fn new(db: &'a Database, config: SessionConfig) -> Session<'a> {
        Session {
            engine: Discovery::new(db, config.discovery.clone()),
            grid: ConstraintGrid::new(&config),
            config,
            udfs: UdfRegistry::new(),
            last_constraints: None,
            last_result: None,
        }
    }

    /// Register user-defined functions available to `@name` predicates.
    pub fn set_udfs(&mut self, udfs: UdfRegistry) {
        self.udfs = udfs;
    }

    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    pub fn database_name(&self) -> &str {
        self.engine.database().name()
    }

    /// Step 2: type into a cell of the Sample/Result Constraints grid.
    pub fn set_sample_cell(
        &mut self,
        row: usize,
        column: usize,
        text: impl Into<String>,
    ) -> Result<(), Error> {
        self.grid.set_sample_cell(row, column, text.into())
    }

    /// Step 2 (metadata row): type into a Metadata Constraints cell.
    pub fn set_metadata_cell(
        &mut self,
        column: usize,
        text: impl Into<String>,
    ) -> Result<(), Error> {
        self.grid.set_metadata_cell(column, text.into())
    }

    /// Step 3: hit "Start Searching!". Parses the grid, runs discovery, and
    /// stores the Result section.
    ///
    /// With `discovery.pipeline` (the default) and more than one
    /// validation thread, scheduling rounds are pipelined — scoring of the
    /// next batch overlaps the previous batch's validation drain. The
    /// Result section is identical either way; `PRISM_PIPELINE=off` (or
    /// `pipeline: false`) restores the phased path.
    ///
    /// A faulting filter (a panicking UDF, an injected fault under
    /// `PRISM_FAULT`) does not abort the search: its candidates are
    /// abandoned, the Result section comes back with
    /// [`DiscoveryResult::degraded`] set and a fault report per affected
    /// filter, and every query listed is still fully validated. Use
    /// [`Session::degradation_notice`] for the user-facing banner.
    pub fn start_searching(&mut self) -> Result<&DiscoveryResult, Error> {
        let constraints = self.grid.parse(&self.udfs)?;
        let result = self.engine.run(&constraints);
        self.last_constraints = Some(constraints);
        self.last_result = Some(result);
        Ok(self.last_result.as_ref().expect("just stored"))
    }

    /// The Result section of the last search.
    pub fn result(&self) -> Option<&DiscoveryResult> {
        self.last_result.as_ref()
    }

    /// The Result section's degradation banner: `None` when the last
    /// search completed cleanly, `Some(text)` when faults or the watchdog
    /// reduced it to a sound subset (see
    /// [`DiscoveryResult::degradation_notice`]).
    pub fn degradation_notice(&self) -> Option<String> {
        self.last_result.as_ref()?.degradation_notice()
    }

    /// Step 4.1: the SQL text of one discovered query (Figure 4b).
    pub fn result_sql(&self, index: usize) -> Result<&str, Error> {
        let r = self.last_result.as_ref().ok_or(Error::NoSearchRun)?;
        r.queries
            .get(index)
            .map(|q| q.sql.as_str())
            .ok_or(Error::NoSuchResult(index))
    }

    /// Steps 4.2–4.3: the query graph of one discovered query with the
    /// chosen constraints drawn in (Figure 4c). `picks = None` draws all.
    pub fn explain_result(
        &self,
        index: usize,
        picks: Option<&[ConstraintPick]>,
    ) -> Result<QueryGraph, Error> {
        let r = self.last_result.as_ref().ok_or(Error::NoSearchRun)?;
        let q = r.queries.get(index).ok_or(Error::NoSuchResult(index))?;
        let constraints = self
            .last_constraints
            .as_ref()
            .expect("constraints stored with result");
        let owned_all;
        let picks = match picks {
            Some(p) => p,
            None => {
                owned_all = all_picks(constraints);
                &owned_all
            }
        };
        Ok(explain(
            self.engine.database(),
            &q.candidate,
            constraints,
            picks,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintError;
    use prism_datasets::mondial;

    /// The full Section 3 walk-through as a session script.
    #[test]
    fn section_3_walkthrough() {
        let db = mondial(42, 1);
        // Step 1: configure — Mondial, 3 columns, 1 sample, metadata on.
        let mut session = Session::new(&db, SessionConfig::default());
        assert_eq!(session.database_name(), "Mondial");
        // Step 2: describe.
        session
            .set_sample_cell(0, 0, "California || Nevada")
            .unwrap();
        session.set_sample_cell(0, 1, "Lake Tahoe").unwrap();
        session
            .set_metadata_cell(2, "DataType=='decimal' AND MinValue>='0'")
            .unwrap();
        // Step 3: search.
        let result = session.start_searching().unwrap();
        assert!(!result.queries.is_empty());
        // Step 4: view the first queries and explain them.
        let n = result.queries.len();
        let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                    FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
        let idx = (0..n)
            .find(|&i| session.result_sql(i).unwrap() == want)
            .expect("desired query listed");
        let graph = session.explain_result(idx, None).unwrap();
        assert_eq!(graph.relations.len(), 2);
        assert_eq!(graph.constraints.len(), 3);
        // Step 4.3: picking a single constraint draws only it.
        let one = session
            .explain_result(
                idx,
                Some(&[ConstraintPick::Value {
                    sample: 0,
                    column: 1,
                }]),
            )
            .unwrap();
        assert_eq!(one.constraints.len(), 1);
        assert!(one.constraints[0].label.contains("Lake Tahoe"));
    }

    #[test]
    fn pipeline_toggle_cannot_change_session_results() {
        let db = mondial(42, 1);
        let keys = |pipeline: bool| {
            let config = SessionConfig {
                discovery: DiscoveryConfig {
                    validation_threads: 4,
                    pipeline,
                    ..DiscoveryConfig::default()
                },
                ..SessionConfig::default()
            };
            let mut session = Session::new(&db, config);
            session
                .set_sample_cell(0, 0, "California || Nevada")
                .unwrap();
            session.set_sample_cell(0, 1, "Lake Tahoe").unwrap();
            session
                .set_metadata_cell(2, "DataType=='decimal' AND MinValue>='0'")
                .unwrap();
            let result = session.start_searching().unwrap();
            assert_eq!(result.stats.rounds_overlapped > 0, pipeline);
            let mut k: Vec<String> = result.queries.iter().map(|q| q.key.clone()).collect();
            k.sort();
            k
        };
        let on = keys(true);
        assert!(!on.is_empty());
        assert_eq!(on, keys(false));
    }

    #[test]
    fn grid_bounds_are_enforced() {
        let db = mondial(42, 1);
        let mut session = Session::new(&db, SessionConfig::default());
        assert!(matches!(
            session.set_sample_cell(5, 0, "x"),
            Err(Error::OutOfRange { .. })
        ));
        assert!(matches!(
            session.set_metadata_cell(7, "DataType=='int'"),
            Err(Error::OutOfRange { .. })
        ));
    }

    #[test]
    fn metadata_can_be_disabled() {
        let db = mondial(42, 1);
        let mut session = Session::new(
            &db,
            SessionConfig {
                with_metadata: false,
                ..SessionConfig::default()
            },
        );
        assert!(matches!(
            session.set_metadata_cell(0, "DataType=='int'"),
            Err(Error::MetadataDisabled)
        ));
    }

    #[test]
    fn searching_without_constraints_fails_cleanly() {
        let db = mondial(42, 1);
        let mut session = Session::new(&db, SessionConfig::default());
        assert!(matches!(
            session.start_searching(),
            Err(Error::Constraint(_))
        ));
        assert!(session.result().is_none());
        assert!(session.result_sql(0).is_err());
    }

    #[test]
    fn clearing_a_cell_removes_the_constraint() {
        let db = mondial(42, 1);
        let mut session = Session::new(&db, SessionConfig::default());
        session.set_sample_cell(0, 0, "Lake Tahoe").unwrap();
        session.set_sample_cell(0, 0, "   ").unwrap();
        assert!(matches!(
            session.start_searching(),
            Err(Error::Constraint(ConstraintError::Empty))
        ));
    }

    #[test]
    fn bad_constraint_text_reports_cell() {
        let db = mondial(42, 1);
        let mut session = Session::new(&db, SessionConfig::default());
        session.set_sample_cell(0, 1, "a ||").unwrap();
        match session.start_searching() {
            Err(Error::Constraint(ConstraintError::Parse { row, column, .. })) => {
                assert_eq!(row, Some(0));
                assert_eq!(column, 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
