//! The parallel validation engine: a `std::thread::scope`-based worker
//! pool draining a sharded queue of filter validations.
//!
//! Filter validation is read-only over the frozen [`prism_db::Database`]
//! (the PR-2 typed-columnar substrate made search-time mutation
//! impossible by construction), and validations of *different* filters are
//! independent — the only shared mutable state of a scheduling run is the
//! pruning bookkeeping, which stays on the coordinator thread. That makes
//! the engine's contract simple:
//!
//! * the coordinator picks a **batch** of mutually non-implying filters
//!   (see [`crate::scheduler`]) and hands it to the pool;
//! * each slot of the batch carries an atomic **claim**; a worker first
//!   drains its home shard — slots `w, w + T, w + 2T, …` — then sweeps the
//!   whole batch **stealing** any slot still unclaimed, so a worker stuck
//!   on one expensive validation never strands the rest of its shard. A
//!   stolen slot is just a guarded validation against the thief's own
//!   [`ExecScratch`];
//! * verdicts are reported per slot, so the coordinator applies them in
//!   batch order: the outcome is deterministic regardless of how the OS
//!   interleaves workers — and regardless of who stole what;
//! * each worker accumulates its own [`ExecStats`] and merges them into
//!   the pool's total exactly once, at shutdown;
//! * a cooperative [`CancelFlag`] replaces the sequential scheduler's
//!   between-validations deadline check: the coordinator raises it when
//!   the deadline passes, workers test it between validations and skip
//!   (rather than abort) the remaining work of the round. The flag is also
//!   threaded *into* each worker's [`ExecScratch`], so the executor's
//!   in-query step tick can interrupt a long scan mid-validation;
//! * every slot runs through [`crate::validate::validate_filter_guarded`]:
//!   a panic inside a validation (a user UDF, an injected chaos fault, an
//!   engine bug) is contained as [`SlotVerdict::Faulted`] and the worker's
//!   scratch is quarantined and rebuilt — one bad filter can never
//!   collapse the pool or poison a sibling's slot;
//! * a coordinator-side **watchdog** escalates a round stuck past the
//!   deadline: first the cooperative cancel flag, then — after a grace
//!   window ([`abandon_grace`]) — a hard abandon that detaches the round
//!   and reconciles its missing verdicts as [`SlotVerdict::Skipped`]
//!   (unknown). Late reports from detached workers are dropped by a
//!   generation check.
//!
//! Everything here is plain `std` — `thread::scope`, `Mutex`, `Condvar`,
//! `AtomicBool` — because the workspace vendors no async or thread-pool
//! dependencies.

use crate::constraints::TargetConstraints;
use crate::faults::{FaultCounters, SlotVerdict};
use crate::filters::{FilterId, FilterSet, PlanCache};
use crate::scheduler::SchedCtx;
use crate::validate::{validate_filter_guarded, SlotEnv};
use prism_db::{ExecScratch, ExecStats};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// Everything a validation worker touches is shared immutably; prove the
// thread-safety of the whole read-only closure at the type level (the db
// crate asserts the same for `Database` and its internals — including the
// PR-4 scan structures: zone maps ride inside `Column`, CSR join indexes
// inside `Database`). The PR-5 prepared-plan cache is the one structure
// workers *write* through a shared reference: its `OnceLock` slots give
// exactly-once compilation, which is precisely why `PlanCache` must be
// `Sync`. Each worker's `ExecScratch` stays thread-local.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<SchedCtx<'static>>();
    _assert_send_sync::<TargetConstraints>();
    _assert_send_sync::<FilterSet>();
    _assert_send_sync::<PlanCache>();
    _assert_send_sync::<prism_db::PreparedQuery>();
    _assert_send_sync::<crate::filters::Filter>();
    _assert_send_sync::<prism_db::JoinIndex>();
    _assert_send_sync::<prism_db::BlockMeta>();
};

/// Cooperative cancellation shared by the coordinator and all workers.
/// Once raised, every not-yet-started validation is skipped, and — through
/// the [`Arc`] handle [`CancelFlag::shared`] plants in each worker's
/// [`ExecScratch`] — the executor's step tick aborts in-flight scans at
/// the next row boundary, so even a single enormous validation cannot
/// blow through the round deadline unchecked.
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    pub fn new() -> CancelFlag {
        CancelFlag(Arc::new(AtomicBool::new(false)))
    }

    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// A shared handle for [`ExecScratch::set_cancel`]: the executor polls
    /// it between rows.
    pub fn shared(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }
}

/// How long past the deadline the coordinator's watchdog waits for
/// cooperative cancellation to drain a round before hard-abandoning it.
/// Generous relative to the executor's tick granularity (~1024 rows);
/// `PRISM_FAULT_GRACE_MS` overrides it (chaos tests shrink the window).
fn abandon_grace() -> Duration {
    std::env::var("PRISM_FAULT_GRACE_MS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(200))
}

impl Default for CancelFlag {
    fn default() -> CancelFlag {
        CancelFlag::new()
    }
}

/// One round's batch with a per-slot claim word. Shared by `Arc` so a
/// worker still sweeping an old round holds it alive after the coordinator
/// has posted the next one. The claim CAS (`0 → 1`, `AcqRel`) is the only
/// synchronization a slot needs: exactly one worker ever validates it.
struct RoundWork {
    batch: Vec<FilterId>,
    claims: Vec<AtomicU8>,
}

impl RoundWork {
    fn new(batch: &[FilterId]) -> RoundWork {
        RoundWork {
            batch: batch.to_vec(),
            claims: (0..batch.len()).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Claim `slot` for the calling worker; false = someone else owns it.
    fn claim(&self, slot: usize) -> bool {
        self.claims[slot]
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// One round of work plus the pool's lifecycle state, all behind one lock.
struct RoundState {
    /// Bumped per batch; workers use it to detect fresh work — and, with
    /// [`RoundState::abandoned`], to discard late reports against a round
    /// the watchdog already reconciled.
    generation: u64,
    /// The current round's claimable batch; `None` before the first round.
    work: Option<Arc<RoundWork>>,
    /// Per-slot verdicts, pre-filled with [`SlotVerdict::Skipped`] so an
    /// abandoned round reads as all-unknown without further bookkeeping.
    verdicts: Vec<SlotVerdict>,
    /// Batch slots not yet reported back.
    pending: usize,
    /// The watchdog detached the in-flight round: its workers are still
    /// running (cancel flag raised), but their verdicts no longer count.
    abandoned: bool,
    shutdown: bool,
    /// Workers that have merged their stats and exited.
    exited: usize,
    /// Per-worker [`ExecStats`], merged here once per worker at shutdown.
    exec: ExecStats,
    /// Slots validated by a worker outside their home shard, pool-lifetime.
    stolen: u64,
    /// Per-worker fault counters, merged once per worker at shutdown.
    faults: FaultCounters,
    /// Rounds the watchdog hard-abandoned, pool-lifetime.
    rounds_abandoned: u64,
}

struct PoolShared {
    round: Mutex<RoundState>,
    /// Workers wait here for a new generation or shutdown.
    work: Condvar,
    /// The coordinator waits here for round completion / worker exits.
    done: Condvar,
}

/// Coordinator-side handle to a running pool, passed to the scheduling
/// closure of [`validate_with_pool`].
pub(crate) struct BatchRunner<'p> {
    shared: &'p PoolShared,
    cancel: &'p CancelFlag,
    deadline: Option<Instant>,
    /// Watchdog escalation window past `deadline` (see [`abandon_grace`]).
    grace: Duration,
}

impl BatchRunner<'_> {
    /// True once the deadline has passed (raising the cancel flag on the
    /// first observation) or cancellation was requested externally.
    pub fn deadline_expired(&self) -> bool {
        if self.cancel.is_cancelled() {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.cancel.cancel();
                return true;
            }
        }
        false
    }

    /// Validate `batch` across the pool and return per-slot verdicts in
    /// batch order. Blocks until every slot is reported; with a deadline
    /// set, the wait polls it so a long round raises the cancel flag for
    /// the workers' between-validations checks (without one, the
    /// coordinator parks until the workers' completion notify).
    ///
    /// This is the phased path: [`post`](Self::post) then immediately
    /// [`wait_drain`](Self::wait_drain). The pipelined scheduler calls
    /// them separately so it can speculate between the two.
    pub fn run(&mut self, batch: &[FilterId]) -> Vec<SlotVerdict> {
        self.post(batch);
        self.wait_drain()
    }

    /// Hand `batch` to the pool as a detached round and return without
    /// blocking: the round's verdict buffer doubles as its completion
    /// queue, drained by [`wait_drain`](Self::wait_drain). At most one
    /// round may be in flight per runner (pipeline depth 2: the
    /// coordinator overlaps *scoring*, not a second validation round).
    pub fn post(&mut self, batch: &[FilterId]) {
        let mut g = self.shared.round.lock().expect("pool lock");
        debug_assert_eq!(g.pending, 0, "a round is already in flight");
        g.work = Some(Arc::new(RoundWork::new(batch)));
        g.verdicts.clear();
        g.verdicts.resize(batch.len(), SlotVerdict::Skipped);
        g.pending = batch.len();
        g.abandoned = false;
        g.generation += 1;
        self.shared.work.notify_all();
    }

    /// Block until the in-flight round posted by [`post`](Self::post) has
    /// fully drained — or until the watchdog gives up on it — and return
    /// its per-slot verdicts in batch order.
    ///
    /// Watchdog escalation: at the deadline the cancel flag is raised
    /// (cooperative — workers skip unstarted slots, in-flight executors
    /// abort at the next step tick); if the round *still* has not drained
    /// `grace` past the deadline, the round is **hard-abandoned** — marked
    /// detached, its pending count zeroed, its unreported slots left as
    /// [`SlotVerdict::Skipped`] (unknown). Detached workers keep running
    /// harmlessly until their next report, which the generation/abandoned
    /// check discards.
    pub fn wait_drain(&mut self) -> Vec<SlotVerdict> {
        let mut g = self.shared.round.lock().expect("pool lock");
        while g.pending > 0 {
            match self.deadline {
                None => g = self.shared.done.wait(g).expect("pool lock"),
                Some(d) => {
                    let (guard, _) = self
                        .shared
                        .done
                        .wait_timeout(g, Duration::from_millis(2))
                        .expect("pool lock");
                    g = guard;
                    let now = Instant::now();
                    if !self.cancel.is_cancelled() && now >= d {
                        self.cancel.cancel();
                    }
                    if now >= d + self.grace {
                        g.abandoned = true;
                        g.pending = 0;
                        g.rounds_abandoned += 1;
                        break;
                    }
                }
            }
        }
        std::mem::take(&mut g.verdicts)
    }
}

/// What a pool run produced besides the closure's result: the merged
/// per-worker [`ExecStats`], the work-stealing counter, and the fault
/// ledger.
pub(crate) struct PoolReport {
    pub exec: ExecStats,
    pub stolen: u64,
    pub faults: FaultCounters,
    pub rounds_abandoned: u64,
}

/// Run `coordinate` against a live pool of `threads` validation workers
/// sharing `ctx` immutably. Returns the closure's result plus the merged
/// [`PoolReport`]. The pool is always shut down before this
/// returns — including when the closure panics, so `std::thread::scope`
/// can never deadlock on workers waiting for work.
pub(crate) fn validate_with_pool<R>(
    ctx: &SchedCtx<'_>,
    threads: usize,
    deadline: Option<Instant>,
    coordinate: impl FnOnce(&mut BatchRunner<'_>) -> R,
) -> (R, PoolReport) {
    let shared = PoolShared {
        round: Mutex::new(RoundState {
            generation: 0,
            work: None,
            verdicts: Vec::new(),
            pending: 0,
            abandoned: false,
            shutdown: false,
            exited: 0,
            exec: ExecStats::default(),
            stolen: 0,
            faults: FaultCounters::default(),
            rounds_abandoned: 0,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    };
    let cancel = CancelFlag::new();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (shared, cancel, ctx) = (&shared, &cancel, &*ctx);
            scope.spawn(move || worker_loop(w, threads, ctx, shared, cancel, deadline));
        }
        // Shut the workers down even if `coordinate` panics: without this
        // the scope would join forever against workers parked on `work`.
        struct ShutdownGuard<'p>(&'p PoolShared);
        impl Drop for ShutdownGuard<'_> {
            fn drop(&mut self) {
                if let Ok(mut g) = self.0.round.lock() {
                    g.shutdown = true;
                }
                self.0.work.notify_all();
            }
        }
        let guard = ShutdownGuard(&shared);
        let mut runner = BatchRunner {
            shared: &shared,
            cancel: &cancel,
            deadline,
            grace: abandon_grace(),
        };
        let result = coordinate(&mut runner);
        drop(guard); // normal path: request shutdown…
                     // …and wait for every worker to merge its stats.
        let mut g = shared.round.lock().expect("pool lock");
        while g.exited < threads {
            g = shared.done.wait(g).expect("pool lock");
        }
        (
            result,
            PoolReport {
                exec: g.exec,
                stolen: g.stolen,
                faults: g.faults,
                rounds_abandoned: g.rounds_abandoned,
            },
        )
    })
}

/// One validation worker: wait for a fresh generation, drain home-shard
/// slots `w, w + threads, …`, then sweep the batch stealing unclaimed
/// slots, report verdicts, repeat until shutdown.
fn worker_loop(
    w: usize,
    threads: usize,
    ctx: &SchedCtx<'_>,
    shared: &PoolShared,
    cancel: &CancelFlag,
    deadline: Option<Instant>,
) {
    let mut local_exec = ExecStats::default();
    let mut local_faults = FaultCounters::default();
    // Thread-local executor scratch, reused across every validation this
    // worker runs (all rounds of the pool's lifetime): buffers are cleared
    // between runs, never reallocated. The guarded validator arms it with
    // the pool's cancel flag and deadline so the executor's step tick can
    // interrupt scans mid-validation — and quarantines + rebuilds it if a
    // validation unwinds through it.
    let cancel_shared = cancel.shared();
    let env = SlotEnv {
        db: ctx.db,
        fs: ctx.fs,
        constraints: ctx.constraints,
        faults: ctx.faults.as_ref(),
        cancel: Some(&cancel_shared),
        deadline,
    };
    let mut scratch = ExecScratch::new();
    let mut seen_generation = 0u64;
    loop {
        let work: Arc<RoundWork> = {
            let mut g = shared.round.lock().expect("pool lock");
            loop {
                if g.shutdown {
                    g.exec.merge(&local_exec);
                    g.faults.merge(&local_faults);
                    g.exited += 1;
                    shared.done.notify_all();
                    return;
                }
                if g.generation != seen_generation {
                    seen_generation = g.generation;
                    break g.work.clone().expect("round posted with generation");
                }
                g = shared.work.wait(g).expect("pool lock");
            }
        };
        // All validation happens outside the lock, fault-contained: a
        // cancelled slot is still claimed and reported (`Skipped` —
        // unknown, not failed), a panicking one reports `Faulted`, so
        // `pending` always drains to zero unless the watchdog detaches
        // the round first.
        let mut run_one = |slot: usize,
                           scratch: &mut ExecScratch,
                           exec: &mut ExecStats|
         -> SlotVerdict {
            if cancel.is_cancelled() {
                SlotVerdict::Skipped
            } else {
                validate_filter_guarded(&env, work.batch[slot], scratch, exec, &mut local_faults)
            }
        };
        let mut verdicts: Vec<(usize, SlotVerdict)> = Vec::new();
        // Phase 1: the home shard, every slot attempted exactly once.
        let mut slot = w;
        while slot < work.batch.len() {
            if work.claim(slot) {
                let v = run_one(slot, &mut scratch, &mut local_exec);
                verdicts.push((slot, v));
            }
            slot += threads;
        }
        // Phase 2: steal. Home slots are settled (phase 1 attempted each),
        // so any claim that succeeds here is work lifted off a busy
        // sibling's shard — same validation path, this worker's scratch.
        let mut stolen = 0u64;
        for slot in 0..work.batch.len() {
            if slot % threads == w {
                continue;
            }
            if work.claim(slot) {
                stolen += 1;
                let v = run_one(slot, &mut scratch, &mut local_exec);
                verdicts.push((slot, v));
            }
        }
        if !verdicts.is_empty() {
            let mut g = shared.round.lock().expect("pool lock");
            if g.generation == seen_generation && !g.abandoned {
                let n = verdicts.len();
                for (s, v) in verdicts {
                    g.verdicts[s] = v;
                }
                g.pending -= n;
                g.stolen += stolen;
                if g.pending == 0 {
                    shared.done.notify_all();
                }
            } else {
                // The watchdog detached this round (or a newer one was
                // posted over it): the coordinator already reconciled these
                // slots as unknown, so the verdicts are dropped. The
                // steal counter still reflects work actually done.
                g.stolen += stolen;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_flag_round_trips() {
        let c = CancelFlag::new();
        assert!(!c.is_cancelled());
        c.cancel();
        assert!(c.is_cancelled());
        c.cancel(); // idempotent
        assert!(c.is_cancelled());
    }

    #[test]
    fn shared_handle_observes_cancellation() {
        let c = CancelFlag::new();
        let h = c.shared();
        assert!(!h.load(Ordering::Acquire));
        c.cancel();
        assert!(h.load(Ordering::Acquire), "executor-side handle sees it");
    }

    #[test]
    fn grace_window_defaults_sane() {
        // Whatever the environment (chaos CI shrinks it), the watchdog
        // window must be positive — zero would abandon every round at the
        // deadline instant, before cooperative cancellation gets a chance.
        assert!(abandon_grace() > Duration::ZERO);
    }

    #[test]
    fn slots_are_claimed_exactly_once() {
        let work = RoundWork {
            batch: Vec::new(),
            claims: (0..4).map(|_| AtomicU8::new(0)).collect(),
        };
        for slot in 0..4 {
            assert!(work.claim(slot), "first claim of slot {slot} wins");
            assert!(!work.claim(slot), "second claim of slot {slot} loses");
        }
    }
}
