//! # prism-core — multiresolution schema mapping query discovery
//!
//! This crate is the paper's primary contribution: given a source
//! [`prism_db::Database`] and a set of **multiresolution constraints**
//! (exact sample values, disjunctions, value ranges, column metadata — see
//! [`prism_lang`]), synthesize every Project–Join query whose result
//! satisfies all of them.
//!
//! Discovery follows the two-step architecture of Section 2.3:
//!
//! 1. **Candidate discovery** ([`related`], [`candidates`]) — find *related
//!    columns* (columns matching at least one value or metadata constraint,
//!    answered by the inverted index and the statistics store), then walk
//!    the schema graph enumerating join trees that connect a full
//!    assignment of target columns to related columns.
//! 2. **Validation through filters** ([`filters`], [`validate`],
//!    [`scheduler`]) — decompose each candidate into *filters* (sub-join-tree
//!    PJ queries with the sample constraint restricted to their columns),
//!    dedupe filters shared across candidates, and validate them in an order
//!    chosen by a pluggable scheduler. A failed filter kills every candidate
//!    containing it; a satisfied filter certifies all of its sub-filters for
//!    free. Schedulers: [`scheduler::SchedulerKind::PathLength`] is the
//!    baseline of Shen et al. (the paper's "Filter"), `Bayes` uses the
//!    trained [`prism_bayes::BayesEstimator`], `Oracle` computes the
//!    hindsight optimum, `Naive` skips decomposition entirely.
//!
//! Greedy schedulers execute on the [`parallel`] validation engine — a
//! scoped worker pool validating batches of mutually non-implying filters
//! against the frozen database ([`config::DiscoveryConfig::validation_threads`];
//! one thread = the exact sequential loop). With more than one thread,
//! rounds are *pipelined* by default ([`config::DiscoveryConfig::pipeline`],
//! `PRISM_PIPELINE=off` to disable): the coordinator speculatively scores
//! the next batch while the previous one drains on the pool, reconciling
//! stale scores when the verdicts land. Parallel, pipelined, and
//! sequential runs provably accept identical candidate sets.
//!
//! [`discovery::Discovery`] orchestrates both steps under an interactive
//! time budget (the demo's 60-second limit), [`explain`] renders the
//! Figure-4c query graphs, and [`session`] mirrors the demo UI's
//! Configuration / Description / Result workflow.

pub mod candidates;
pub mod config;
pub mod constraints;
pub mod discovery;
pub mod error;
pub mod explain;
pub mod faults;
pub mod filters;
pub mod parallel;
pub mod related;
pub mod scheduler;
pub mod service;
pub mod session;
pub mod validate;

pub use candidates::Candidate;
pub use config::{default_faults, default_pipeline, default_validation_threads, DiscoveryConfig};
pub use constraints::TargetConstraints;
pub use discovery::{DiscoveredQuery, Discovery, DiscoveryResult, DiscoveryStats};
pub use error::Error;
pub use explain::QueryGraph;
pub use faults::{FaultKind, FaultNote, FaultReport, FaultSite, FaultSpec, SlotVerdict};
pub use filters::{Filter, FilterId, FilterSet, PlanCacheStats};
pub use related::RelatedColumns;
pub use scheduler::{Engine, FaultedFilter, SchedCtx, Scheduler, SchedulerKind};
pub use service::{DiscoveryService, SessionHandle, ThreadBudget};
pub use session::{Session, SessionConfig};
