//! Fault isolation for the discovery stack.
//!
//! The interactive loop of the paper only works if the system survives bad
//! inputs: a user-supplied UDF that panics, a corrupt upload, a validation
//! that never returns. This module is the discovery-side half of that
//! promise — the seeded injection primitives live in [`prism_db::faults`]
//! (re-exported here) because `prism_db` and `prism_lang` host two of the
//! four injection sites; this crate adds the types that carry a fault from
//! a validation slot up to the [`crate::discovery::DiscoveryResult`]:
//!
//! * [`SlotVerdict`] — what one validation slot produced: a verdict, a
//!   skip (cancelled/abandoned, unknown), or a contained fault;
//! * [`FaultNote`] — why a slot faulted and how many retries it burned;
//! * [`FaultReport`] — the user-facing record on a degraded result,
//!   naming the filter (as SQL) and the candidates it abandoned.
//!
//! Injection is configured with `PRISM_FAULT=<kind>:<rate>:seed<N>` (see
//! [`FaultSpec`]) or programmatically via
//! [`crate::config::DiscoveryConfig::faults`]. The containment layer is
//! always on; injection is opt-in and zero-cost when absent.

pub use prism_db::faults::{
    attempt_token, delay_steps, env_spec, injected_panic, name_token, FaultKind, FaultSite,
    FaultSpec,
};

/// Why a validation slot faulted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultNote {
    /// The panic message (or transient-exhaustion description).
    pub reason: String,
    /// Transient retries burned before giving up.
    pub retries: u32,
}

/// What one validation slot produced. The scheduler treats `Faulted` as
/// *rejected with reason* — the filter resolves (its candidates are
/// abandoned, the result degrades) but the fault does **not** propagate as
/// a logical failure to superfilters: a crash proves nothing about the
/// data, so implication pruning must not act on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotVerdict {
    /// The validation ran to completion.
    Done(bool),
    /// Unknown: cancelled before start, cancelled mid-run (deadline), or
    /// hard-abandoned by the watchdog. The filter stays pending.
    Skipped,
    /// The validation panicked (or exhausted its transient-retry budget);
    /// the worker contained the unwind and rebuilt its scratch.
    Faulted(FaultNote),
}

/// One filter's fault on a degraded [`crate::discovery::DiscoveryResult`]:
/// everything a session needs to tell the user *which* part of the search
/// space the partial answer did not cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The faulted filter's PJ query, rendered as SQL.
    pub filter_sql: String,
    /// The contained panic message or retry-exhaustion description.
    pub reason: String,
    /// Transient retries burned before the fault was declared.
    pub retries: u32,
    /// Candidates abandoned because this filter could not be decided.
    pub candidates: usize,
}

/// Per-worker fault accounting, merged into the pool totals like
/// [`prism_db::ExecStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults the injection layer fired (all kinds, all sites this worker
    /// touched).
    pub injected: u64,
    /// Transient retries performed.
    pub retries: u64,
}

impl FaultCounters {
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.retries += other.retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_verdict_distinguishes_skip_from_fault() {
        let fault = SlotVerdict::Faulted(FaultNote {
            reason: "boom".into(),
            retries: 2,
        });
        assert_ne!(fault, SlotVerdict::Skipped);
        assert_ne!(fault, SlotVerdict::Done(false));
        assert_ne!(SlotVerdict::Done(false), SlotVerdict::Skipped);
    }

    #[test]
    fn counters_merge() {
        let mut a = FaultCounters {
            injected: 1,
            retries: 2,
        };
        a.merge(&FaultCounters {
            injected: 3,
            retries: 4,
        });
        assert_eq!(
            a,
            FaultCounters {
                injected: 4,
                retries: 6
            }
        );
    }
}
