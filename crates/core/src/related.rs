//! Step 1a: related-column discovery.
//!
//! Section 2.3: *"finding related columns is essentially finding columns in
//! the database matching at least a value constraint or metadata
//! constraint."* A source column is **related to target column i** when:
//!
//! * for every sample row that constrains cell *i*, the column contains at
//!   least one value satisfying that cell's constraint (pure
//!   keyword-disjunction constraints are answered entirely by the inverted
//!   index; anything else falls back to an early-exit scan, prefiltered by
//!   min/max statistics), and
//! * the column's statistics satisfy target column *i*'s metadata
//!   constraint, if one was given.
//!
//! Target columns with no constraints at all accept every column, capped at
//! `max_related_per_column` (catalog order) to keep the candidate search
//! bounded — the paper's Section 2.4 observes exactly this blow-up when
//! "there were too many missing values".

use crate::config::DiscoveryConfig;
use crate::constraints::TargetConstraints;
use prism_db::schema::ColumnRef;
use prism_db::Database;
use prism_lang::{metadata_satisfied_with, UdfRegistry, ValueConstraint};
use std::collections::BTreeSet;

/// The result of related-column discovery.
#[derive(Debug, Clone)]
pub struct RelatedColumns {
    /// `per_column[i]` = source columns related to target column `i`,
    /// sorted for determinism.
    pub per_column: Vec<Vec<ColumnRef>>,
    /// Whether any target column hit the relatedness cap.
    pub capped: bool,
}

impl RelatedColumns {
    /// Tables hosting at least one related column — the anchors of the
    /// join-tree search.
    pub fn anchor_tables(&self) -> Vec<prism_db::TableId> {
        let mut set = BTreeSet::new();
        for cols in &self.per_column {
            for c in cols {
                set.insert(c.table);
            }
        }
        set.into_iter().collect()
    }

    /// True when some target column has no related column at all (discovery
    /// can stop: no query can satisfy the constraints).
    pub fn has_empty_column(&self) -> bool {
        self.per_column.iter().any(Vec::is_empty)
    }
}

/// Find related columns for every target column.
pub fn find_related(
    db: &Database,
    constraints: &TargetConstraints,
    config: &DiscoveryConfig,
) -> RelatedColumns {
    let mut per_column = Vec::with_capacity(constraints.column_count);
    let mut capped = false;
    for i in 0..constraints.column_count {
        let value_cs: Vec<&ValueConstraint> = constraints
            .column_value_constraints(i)
            .map(|(_, c)| c)
            .collect();
        let meta = constraints.metadata[i].as_ref();

        let mut cols: Vec<ColumnRef> = Vec::new();
        if value_cs.is_empty() && meta.is_none() {
            // Unconstrained column: every column qualifies, capped.
            for col in db.catalog().all_columns() {
                if cols.len() >= config.max_related_per_column {
                    capped = true;
                    break;
                }
                cols.push(col);
            }
        } else {
            // Candidate universe: answered by the index when the *first*
            // constraint is a keyword disjunction, else all columns.
            let universe: Vec<ColumnRef> = match value_cs.first().and_then(|c| c.eq_keywords()) {
                Some(keywords) => {
                    let mut set = BTreeSet::new();
                    for lit in keywords {
                        for col in db.index().columns_with_cell(&lit.raw) {
                            set.insert(col);
                        }
                    }
                    set.into_iter().collect()
                }
                None => db.catalog().all_columns().collect(),
            };
            for col in universe {
                if let Some(m) = meta {
                    let def = db.catalog().column_def(col);
                    if !metadata_satisfied_with(
                        m,
                        &def.name,
                        db.stats().column(col),
                        &constraints.udfs,
                    ) {
                        continue;
                    }
                }
                if value_cs
                    .iter()
                    .all(|c| column_satisfies(db, col, c, &constraints.udfs))
                {
                    if cols.len() >= config.max_related_per_column {
                        capped = true;
                        break;
                    }
                    cols.push(col);
                }
            }
        }
        per_column.push(cols);
    }
    RelatedColumns { per_column, capped }
}

/// Does `col` contain at least one value satisfying `c`?
fn column_satisfies(
    db: &Database,
    col: ColumnRef,
    c: &ValueConstraint,
    udfs: &UdfRegistry,
) -> bool {
    // Keyword disjunctions: answered by the inverted index.
    if let Some(keywords) = c.eq_keywords() {
        return keywords
            .iter()
            .any(|lit| !db.index().rows_in_column(col, &lit.raw).is_empty());
    }
    // Statistics prefilter: a purely numeric range constraint cannot match a
    // column whose min/max lie entirely outside it. (UDF predicates get a
    // nonzero default selectivity, so they always reach the scan below.)
    let stats = db.stats().column(col);
    if stats.non_null_count() == 0 {
        return false;
    }
    if prism_lang::estimate_selectivity(c, stats) <= 0.0 {
        // Selectivity 0 from the histogram is an estimate, not a proof —
        // but for range predicates it is driven by hard min/max bounds, so
        // use it as a prefilter and confirm by scan only on nonzero.
        // (Equality constraints were handled by the index above.)
        return false;
    }
    // Early-exit scan over borrowed cell views (no clones).
    db.table(col.table)
        .column(col.column)
        .iter(db.symbols())
        .any(|v| prism_lang::matches_value_ref_with(c, v, udfs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::constraints::TargetConstraints;
    use prism_datasets::mondial;

    fn some(s: &str) -> Option<String> {
        Some(s.to_string())
    }

    fn walkthrough() -> TargetConstraints {
        TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap()
    }

    #[test]
    fn walkthrough_finds_the_ground_truth_columns() {
        let db = mondial(42, 1);
        let rel = find_related(&db, &walkthrough(), &DiscoveryConfig::default());
        assert!(!rel.has_empty_column());
        // Column 0 ("California || Nevada") must include geo_lake.Province
        // and Province.Name.
        let geo_prov = db.catalog().column_ref("geo_lake", "Province").unwrap();
        let prov_name = db.catalog().column_ref("Province", "Name").unwrap();
        assert!(rel.per_column[0].contains(&geo_prov));
        assert!(rel.per_column[0].contains(&prov_name));
        // Column 1 ("Lake Tahoe") must include Lake.Name and geo_lake.Lake.
        let lake_name = db.catalog().column_ref("Lake", "Name").unwrap();
        let geo_lake = db.catalog().column_ref("geo_lake", "Lake").unwrap();
        assert!(rel.per_column[1].contains(&lake_name));
        assert!(rel.per_column[1].contains(&geo_lake));
        // Column 2 (decimal, min >= 0): Lake.Area qualifies; text columns
        // do not.
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        assert!(rel.per_column[2].contains(&area));
        assert!(!rel.per_column[2].contains(&lake_name));
    }

    #[test]
    fn keyword_constraints_restrict_to_index_hits() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(1, &[vec![some("Lake Tahoe")]], &[]).unwrap();
        let rel = find_related(&db, &tc, &DiscoveryConfig::default());
        // Only the two columns that physically contain the keyword.
        assert_eq!(rel.per_column[0].len(), 2);
    }

    #[test]
    fn range_constraints_scan_numeric_columns() {
        let db = mondial(42, 1);
        // Area 497 (Lake Tahoe) lies in [490, 500]; very few columns have a
        // value in that band, but Lake.Area must.
        let tc = TargetConstraints::parse(1, &[vec![some(">= 490 && <= 500")]], &[]).unwrap();
        let rel = find_related(&db, &tc, &DiscoveryConfig::default());
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        assert!(rel.per_column[0].contains(&area));
        // Text columns can never satisfy a numeric range.
        let lake_name = db.catalog().column_ref("Lake", "Name").unwrap();
        assert!(!rel.per_column[0].contains(&lake_name));
    }

    #[test]
    fn multiple_samples_intersect() {
        let db = mondial(42, 1);
        // One sample says California, another says a lake name: no single
        // column contains both.
        let tc = TargetConstraints::parse(
            1,
            &[vec![some("California")], vec![some("Lake Tahoe")]],
            &[],
        )
        .unwrap();
        let rel = find_related(&db, &tc, &DiscoveryConfig::default());
        assert!(rel.per_column[0].is_empty());
        // Whereas two provinces intersect fine.
        let tc2 =
            TargetConstraints::parse(1, &[vec![some("California")], vec![some("Oregon")]], &[])
                .unwrap();
        let rel2 = find_related(&db, &tc2, &DiscoveryConfig::default());
        assert!(!rel2.per_column[0].is_empty());
    }

    #[test]
    fn unconstrained_columns_are_capped() {
        let db = mondial(42, 1);
        let config = DiscoveryConfig {
            max_related_per_column: 5,
            ..DiscoveryConfig::default()
        };
        let tc = TargetConstraints::parse(2, &[vec![some("Lake Tahoe"), None]], &[]).unwrap();
        let rel = find_related(&db, &tc, &config);
        assert_eq!(rel.per_column[1].len(), 5);
        assert!(rel.capped);
    }

    #[test]
    fn impossible_keyword_yields_empty_column() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(1, &[vec![some("Atlantis Prime")]], &[]).unwrap();
        let rel = find_related(&db, &tc, &DiscoveryConfig::default());
        assert!(rel.has_empty_column());
        assert!(rel.anchor_tables().is_empty());
    }

    #[test]
    fn metadata_only_column_uses_stats() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(1, &[vec![None]], &[some("DataType == 'date'")]).unwrap();
        let rel = find_related(&db, &tc, &DiscoveryConfig::default());
        // Only Politics.Independence is a date column in Mondial.
        assert_eq!(rel.per_column[0].len(), 1);
        let indep = db.catalog().column_ref("Politics", "Independence").unwrap();
        assert_eq!(rel.per_column[0][0], indep);
    }

    #[test]
    fn anchor_tables_are_deduped_and_sorted() {
        let db = mondial(42, 1);
        let rel = find_related(&db, &walkthrough(), &DiscoveryConfig::default());
        let anchors = rel.anchor_tables();
        let mut sorted = anchors.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(anchors, sorted);
        assert!(anchors.len() >= 2);
    }
}
