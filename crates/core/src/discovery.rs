//! The end-to-end discovery pipeline (Figure 2).
//!
//! `constraints → related columns → candidate queries → filter validation →
//! final schema mapping queries`, under the interactive time budget. A
//! [`Discovery`] owns the trained Bayesian estimator (training happens "a
//! priori", like the paper's preprocessing) and can be reused across rounds.

use crate::candidates::{enumerate_candidates, Candidate};
use crate::config::DiscoveryConfig;
use crate::constraints::TargetConstraints;
use crate::faults::FaultReport;
use crate::filters::{build_filters_with_cache, SharedPlanCache};
use crate::related::find_related;
use crate::scheduler::{
    oracle_schedule, BayesModel, Engine, PathLengthModel, SchedCtx, ScheduleOutcome, Scheduler,
    SchedulerKind,
};
use crate::validate::filter_query;
use prism_bayes::{BayesEstimator, TrainConfig};
use prism_db::{canonical_key, render_sql, Database, ExecStats, Value};
use std::time::{Duration, Instant};

/// One satisfying schema mapping query, ready for the Result section.
#[derive(Debug, Clone)]
pub struct DiscoveredQuery {
    pub candidate: Candidate,
    /// SQL text (Figure 4b).
    pub sql: String,
    /// Canonical identity (for ground-truth matching in experiments).
    pub key: String,
    /// A few result rows for preview.
    pub preview: Vec<Vec<Value>>,
    /// Statistics-based estimate of the query's result size, used for
    /// ranking (smaller results = more specific mappings).
    pub estimated_rows: f64,
}

impl DiscoveredQuery {
    /// Render the preview rows as an aligned text table headed by the
    /// projected column names — Figure 4b's "schema mapping query content"
    /// panel.
    pub fn preview_table(&self, db: &Database) -> String {
        let headers: Vec<String> = self
            .candidate
            .assignment
            .iter()
            .map(|c| db.catalog().column_name(*c))
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rows: Vec<Vec<String>> = self
            .preview
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
                .trim_end()
                .to_string()
        };
        let mut out = render(&headers);
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        for row in &rows {
            out.push('\n');
            out.push_str(&render(row));
        }
        out.push('\n');
        out
    }
}

/// Statistics of one discovery round.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryStats {
    /// Related columns found per target column.
    pub related_per_column: Vec<usize>,
    /// Candidates enumerated.
    pub candidates: usize,
    /// Deduplicated filters built.
    pub filters: usize,
    /// Filter validations executed.
    pub validations: u64,
    /// Filters resolved by success/failure propagation.
    pub implied_successes: u64,
    pub implied_failures: u64,
    /// Hindsight-optimal validations (populated for the Oracle scheduler,
    /// or on request via [`Discovery::run_with_oracle`]).
    pub oracle_validations: Option<u64>,
    /// Validation rounds whose drain was overlapped with speculative
    /// scoring (the pipelined engine; 0 under `pipeline: false`, one
    /// validation thread, or the Naive/Oracle schedulers).
    pub rounds_overlapped: u64,
    /// Scores computed speculatively while a round drained.
    pub speculative_scores: u64,
    /// Speculative scores invalidated by reconciliation before use.
    pub speculative_wasted: u64,
    /// Raw execution work.
    pub exec: ExecStats,
    /// Wall-clock time of the round.
    pub elapsed: Duration,
    /// Candidate enumeration or filter decomposition was truncated.
    pub truncated: bool,
    /// Faults the injection layer fired (0 unless chaos is armed via
    /// `PRISM_FAULT` / [`DiscoveryConfig::faults`]).
    pub faults_injected: u64,
    /// Transient-fault retries performed by guarded validation slots.
    pub fault_retries: u64,
    /// Filters whose validation faulted (see
    /// [`DiscoveryResult::fault_reports`]).
    pub filters_faulted: u64,
    /// Validation rounds the watchdog hard-abandoned past the deadline
    /// grace window.
    pub rounds_abandoned: u64,
}

/// The outcome of one discovery round.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryResult {
    pub queries: Vec<DiscoveredQuery>,
    pub stats: DiscoveryStats,
    /// The round hit its time budget before classifying every candidate
    /// (the demo reports this as a failure/timeout).
    pub timed_out: bool,
    /// Part of the search space could not be decided: at least one filter
    /// validation faulted (or a validation round was hard-abandoned), so
    /// `queries` is a **sound subset** of the full answer — every returned
    /// query genuinely satisfies the constraints, but some satisfying
    /// queries may be missing. Details in [`DiscoveryResult::fault_reports`].
    pub degraded: bool,
    /// One report per faulted filter: its PJ query (as SQL), the contained
    /// panic message or retry-exhaustion reason, and how many candidates
    /// it abandoned. Empty on a clean run.
    pub fault_reports: Vec<FaultReport>,
}

impl DiscoveryResult {
    /// User-facing summary of a degraded round, for the demo's Result
    /// panel: one line per faulted filter naming its query and reason,
    /// plus the watchdog's abandonment count. `None` for a clean round —
    /// callers can `if let Some(notice)` straight into the UI.
    pub fn degradation_notice(&self) -> Option<String> {
        if !self.degraded {
            return None;
        }
        let mut out =
            String::from("partial results: part of the search space could not be validated\n");
        for r in &self.fault_reports {
            out.push_str(&format!(
                "  - {} [{} candidate(s) abandoned, {} retr{}]: {}\n",
                r.filter_sql,
                r.candidates,
                r.retries,
                if r.retries == 1 { "y" } else { "ies" },
                r.reason,
            ));
        }
        if self.stats.rounds_abandoned > 0 {
            out.push_str(&format!(
                "  - {} validation round(s) hard-abandoned past the deadline\n",
                self.stats.rounds_abandoned
            ));
        }
        Some(out)
    }
}

/// A reusable discovery engine over one database.
pub struct Discovery<'a> {
    db: &'a Database,
    config: DiscoveryConfig,
    estimator: Option<BayesEstimator>,
}

impl<'a> Discovery<'a> {
    /// Create an engine; trains the Bayesian estimator a priori when the
    /// configured scheduler needs it.
    pub fn new(db: &'a Database, config: DiscoveryConfig) -> Discovery<'a> {
        let estimator = match config.scheduler {
            SchedulerKind::Bayes => Some(BayesEstimator::train(db, &TrainConfig::default())),
            _ => None,
        };
        Discovery {
            db,
            config,
            estimator,
        }
    }

    /// Use a pre-trained estimator (e.g. shared across engines, or an
    /// ablation variant without join indicators).
    pub fn with_estimator(mut self, estimator: BayesEstimator) -> Discovery<'a> {
        self.estimator = Some(estimator);
        self
    }

    pub fn config(&self) -> &DiscoveryConfig {
        &self.config
    }

    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// Run one discovery round.
    pub fn run(&self, constraints: &TargetConstraints) -> DiscoveryResult {
        self.run_inner(constraints, false)
    }

    /// Run one round and additionally compute the hindsight optimum
    /// (`stats.oracle_validations`) — used by the E3 experiment.
    pub fn run_with_oracle(&self, constraints: &TargetConstraints) -> DiscoveryResult {
        self.run_inner(constraints, true)
    }

    fn run_inner(&self, constraints: &TargetConstraints, want_oracle: bool) -> DiscoveryResult {
        run_round(
            self.db,
            &self.config,
            self.estimator.as_ref(),
            constraints,
            RoundOptions {
                want_oracle,
                shared_plans: None,
                threads: self.config.validation_threads,
            },
        )
    }
}

/// Per-round knobs beyond [`DiscoveryConfig`]: the borrowed [`Discovery`]
/// engine and the owned [`crate::service::SessionHandle`] both funnel into
/// [`run_round`], differing only here.
pub(crate) struct RoundOptions<'s> {
    pub want_oracle: bool,
    /// Service-global plan cache; `None` = a private per-round cache.
    pub shared_plans: Option<&'s SharedPlanCache>,
    /// Validation worker count for this round (the service leases it from
    /// its thread budget; the borrowed engine uses its config verbatim).
    pub threads: usize,
}

/// One discovery round: `constraints → related columns → candidates →
/// filters → scheduled validation → ranked results`.
pub(crate) fn run_round(
    db: &Database,
    config: &DiscoveryConfig,
    estimator: Option<&BayesEstimator>,
    constraints: &TargetConstraints,
    opts: RoundOptions<'_>,
) -> DiscoveryResult {
    let start = Instant::now();
    let deadline = start + config.time_budget;

    // Step 1: related columns and candidate enumeration.
    let related = find_related(db, constraints, config);
    let cand_set = enumerate_candidates(db, &related, config, Some(deadline));
    let mut stats = DiscoveryStats {
        related_per_column: related.per_column.iter().map(Vec::len).collect(),
        candidates: cand_set.candidates.len(),
        truncated: cand_set.truncated,
        ..DiscoveryStats::default()
    };
    if cand_set.candidates.is_empty() {
        stats.elapsed = start.elapsed();
        return DiscoveryResult {
            queries: Vec::new(),
            stats,
            timed_out: cand_set.truncated,
            degraded: false,
            fault_reports: Vec::new(),
        };
    }

    // Step 2: filters and scheduling.
    let fs = build_filters_with_cache(
        db,
        &cand_set.candidates,
        constraints,
        Some(deadline),
        opts.shared_plans,
    );
    stats.filters = fs.len();
    stats.truncated |= fs.truncated;

    // Greedy schedulers run on the parallel validation engine; with
    // `threads == 1` that is exactly the sequential loop. With
    // `config.pipeline` (the default) and more than one thread, rounds
    // are pipelined: scoring of the next batch overlaps the previous
    // batch's validation drain. `PRISM_PIPELINE=off` restores the exact
    // phased path.
    let ctx = SchedCtx::new(db, constraints, &fs)
        .with_deadline(Some(deadline))
        .with_faults(config.faults.clone());
    let threads = opts.threads;
    let greedy = |model: &dyn crate::scheduler::FailureModel| {
        if config.pipeline && threads > 1 {
            Scheduler::run(&ctx, Engine::Pipelined { model, threads })
        } else {
            Scheduler::run(&ctx, Engine::Greedy { model, threads })
        }
    };
    let outcome: ScheduleOutcome = match config.scheduler {
        SchedulerKind::Naive => Scheduler::run(&ctx, Engine::Naive),
        SchedulerKind::PathLength => greedy(&PathLengthModel),
        SchedulerKind::Bayes => {
            let est = estimator.expect("Bayes scheduler requires a trained estimator");
            greedy(&BayesModel::new(est, constraints))
        }
        SchedulerKind::Oracle => {
            let (v, o) = oracle_schedule(db, constraints, &fs);
            stats.oracle_validations = Some(v);
            o
        }
    };
    if opts.want_oracle && stats.oracle_validations.is_none() {
        let (v, _) = oracle_schedule(db, constraints, &fs);
        stats.oracle_validations = Some(v);
    }

    stats.validations = outcome.validations;
    stats.implied_successes = outcome.implied_successes;
    stats.implied_failures = outcome.implied_failures;
    stats.rounds_overlapped = outcome.rounds_overlapped;
    stats.speculative_scores = outcome.speculative_scores;
    stats.speculative_wasted = outcome.speculative_wasted;
    stats.exec = outcome.exec;
    stats.faults_injected = outcome.faults_injected;
    stats.fault_retries = outcome.fault_retries;
    stats.filters_faulted = outcome.faulted.len() as u64;
    stats.rounds_abandoned = outcome.rounds_abandoned;

    // Graceful degradation: contained faults shrink the answer instead of
    // sinking the round. Name each undecidable filter (as SQL — the user's
    // vocabulary) so the session can show *which* part of the search space
    // the partial result does not cover.
    let degraded = !outcome.faulted.is_empty() || outcome.rounds_abandoned > 0;
    let fault_reports: Vec<FaultReport> = outcome
        .faulted
        .iter()
        .map(|ff| FaultReport {
            filter_sql: render_sql(&filter_query(db, fs.filter(ff.filter)), db),
            reason: ff.reason.clone(),
            retries: ff.retries,
            candidates: ff.candidates.len(),
        })
        .collect();

    // Materialize the Result section, ranked for the browsing user:
    // fewer joins first (simpler mappings), then smaller estimated
    // results (more specific mappings), then SQL for determinism.
    // Ranking happens before the result cap so the cap keeps the best.
    let mut ranked: Vec<(usize, f64, String, u32)> = outcome
        .accepted
        .iter()
        .map(|&cid| {
            let cand = &cand_set.candidates[cid as usize];
            (
                cand.query.join_count(),
                estimate_result_rows(db, cand),
                render_sql(&cand.query, db),
                cid,
            )
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.partial_cmp(&b.1).expect("finite estimates"))
            .then_with(|| a.2.cmp(&b.2))
    });
    let mut queries = Vec::new();
    for (_, estimated_rows, sql, cid) in ranked.into_iter().take(config.result_limit) {
        let candidate = cand_set.candidates[cid as usize].clone();
        let key = canonical_key(&candidate.query, db);
        let preview = candidate.query.execute(db, 5).unwrap_or_default();
        queries.push(DiscoveredQuery {
            candidate,
            sql,
            key,
            preview,
            estimated_rows,
        });
    }
    stats.elapsed = start.elapsed();
    DiscoveryResult {
        queries,
        stats,
        timed_out: outcome.timed_out,
        degraded,
        fault_reports,
    }
}

/// Statistics-only estimate of a candidate's result cardinality:
/// `Π |R_t| / Π max(distinct(a), distinct(b))` over the tree's join edges —
/// the classic System R key-join approximation. No execution involved.
fn estimate_result_rows(db: &Database, cand: &Candidate) -> f64 {
    let mut est = 1.0f64;
    for &t in &cand.tree.tables {
        est *= db.row_count(t).max(1) as f64;
    }
    for &e in &cand.tree.edges {
        let edge = db.graph().edge(e);
        let d = db
            .stats()
            .column(edge.a)
            .distinct_count
            .max(db.stats().column(edge.b).distinct_count)
            .max(1);
        est /= d as f64;
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_datasets::{mondial, nba};

    fn some(s: &str) -> Option<String> {
        Some(s.to_string())
    }

    fn walkthrough_constraints() -> TargetConstraints {
        TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_walkthrough_finds_the_desired_query() {
        let db = mondial(42, 1);
        let engine = Discovery::new(&db, DiscoveryConfig::default());
        let result = engine.run(&walkthrough_constraints());
        assert!(!result.timed_out);
        assert!(!result.queries.is_empty());
        let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                    FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
        assert!(
            result.queries.iter().any(|q| q.sql == want),
            "desired query not found; got: {:?}",
            result.queries.iter().map(|q| &q.sql).collect::<Vec<_>>()
        );
        // Previews contain real rows.
        let hit = result.queries.iter().find(|q| q.sql == want).unwrap();
        assert!(!hit.preview.is_empty());
        assert!(result.stats.validations > 0);
        assert!(result.stats.elapsed < Duration::from_secs(60));
    }

    #[test]
    fn all_schedulers_find_the_same_queries() {
        let db = mondial(42, 1);
        let tc = walkthrough_constraints();
        let mut keys: Vec<Vec<String>> = Vec::new();
        for kind in [
            SchedulerKind::Naive,
            SchedulerKind::PathLength,
            SchedulerKind::Bayes,
            SchedulerKind::Oracle,
        ] {
            let engine = Discovery::new(&db, DiscoveryConfig::with_scheduler(kind));
            let result = engine.run(&tc);
            let mut ks: Vec<String> = result.queries.iter().map(|q| q.key.clone()).collect();
            ks.sort();
            keys.push(ks);
        }
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[1], keys[2]);
        assert_eq!(keys[2], keys[3]);
    }

    #[test]
    fn unsatisfiable_constraints_return_no_queries_quickly() {
        let db = mondial(42, 1);
        let engine = Discovery::new(&db, DiscoveryConfig::default());
        let tc = TargetConstraints::parse(1, &[vec![some("Atlantis Prime")]], &[]).unwrap();
        let result = engine.run(&tc);
        assert!(result.queries.is_empty());
        assert!(!result.timed_out);
        assert_eq!(result.stats.candidates, 0);
    }

    #[test]
    fn tiny_time_budget_reports_timeout() {
        let db = mondial(42, 2);
        let config = DiscoveryConfig {
            time_budget: Duration::from_nanos(1),
            ..DiscoveryConfig::default()
        };
        let engine = Discovery::new(&db, config);
        let result = engine.run(&walkthrough_constraints());
        assert!(result.timed_out || result.queries.is_empty());
    }

    #[test]
    fn oracle_stats_available_on_request() {
        let db = mondial(42, 1);
        let engine = Discovery::new(&db, DiscoveryConfig::default());
        let result = engine.run_with_oracle(&walkthrough_constraints());
        let oracle = result.stats.oracle_validations.expect("requested");
        assert!(oracle <= result.stats.validations);
    }

    #[test]
    fn works_on_nba_with_parallel_edges() {
        let db = nba(42, 1);
        let engine = Discovery::new(&db, DiscoveryConfig::default());
        // "Lakers" joined with a numeric score column via metadata.
        let tc = TargetConstraints::parse(
            2,
            &[vec![some("Lakers"), None]],
            &[None, some("DataType=='int' AND MinValue>='0'")],
        )
        .unwrap();
        let result = engine.run(&tc);
        assert!(!result.queries.is_empty());
        // Both home and away join routes should be discoverable.
        let has_home = result
            .queries
            .iter()
            .any(|q| q.sql.contains("HomeTeam = Team.Id"));
        let has_away = result
            .queries
            .iter()
            .any(|q| q.sql.contains("AwayTeam = Team.Id"));
        assert!(
            has_home && has_away,
            "parallel edges should yield both join routes: {:?}",
            result.queries.iter().map(|q| &q.sql).collect::<Vec<_>>()
        );
    }

    #[test]
    fn results_are_ranked_simplest_and_most_specific_first() {
        let db = mondial(42, 1);
        let engine = Discovery::new(&db, DiscoveryConfig::default());
        let result = engine.run(&walkthrough_constraints());
        // Join counts are non-decreasing down the result list.
        let joins: Vec<usize> = result
            .queries
            .iter()
            .map(|q| q.candidate.query.join_count())
            .collect();
        let mut sorted = joins.clone();
        sorted.sort_unstable();
        assert_eq!(joins, sorted, "results must be ordered by join count");
        // Within the 1-join block, estimated sizes are non-decreasing.
        let one_join: Vec<f64> = result
            .queries
            .iter()
            .filter(|q| q.candidate.query.join_count() == 1)
            .map(|q| q.estimated_rows)
            .collect();
        for w in one_join.windows(2) {
            assert!(w[0] <= w[1], "size ranking violated: {w:?}");
        }
        assert!(result.queries.iter().all(|q| q.estimated_rows >= 1.0));
    }

    #[test]
    fn preview_table_renders_headers_and_rows() {
        let db = mondial(42, 1);
        let engine = Discovery::new(&db, DiscoveryConfig::default());
        let result = engine.run(&walkthrough_constraints());
        let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                    FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
        let q = result.queries.iter().find(|q| q.sql == want).unwrap();
        let table = q.preview_table(&db);
        assert!(table.contains("geo_lake.Province"), "{table}");
        assert!(table.contains("Lake.Area"));
        assert!(table.contains("Lake Tahoe"));
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines.len() >= 3, "header + separator + >=1 row");
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn result_limit_caps_returned_queries() {
        let db = mondial(42, 1);
        let config = DiscoveryConfig {
            result_limit: 1,
            ..DiscoveryConfig::default()
        };
        let engine = Discovery::new(&db, config);
        let result = engine.run(&walkthrough_constraints());
        assert_eq!(result.queries.len(), 1);
    }
}
