//! Query explanation — the Figure 4c query graph.
//!
//! Section 2.3: *"Whenever the user points to a schema mapping SQL query, we
//! draw a corresponding query graph representation for this query. Orange
//! squares represent relations, green ellipses are the attributes to
//! project, and edges represent join conditions. … the user could pick one
//! or more constraints, and Prism draws these constraints (as blue boxes) in
//! the previous graph to show the locations in the database where these
//! constraints are satisfied."*
//!
//! [`QueryGraph`] is the renderer-independent model; [`QueryGraph::to_dot`]
//! emits Graphviz with the paper's color scheme and
//! [`QueryGraph::to_ascii`] a terminal rendering for the CLI demo.

use crate::candidates::Candidate;
use crate::constraints::TargetConstraints;
use prism_db::Database;

/// Which constraints to draw into the graph (indices into the constraint
/// set), mirroring the multi-select at the bottom of Figure 4a.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintPick {
    /// A sample-constraint cell: (sample row, target column).
    Value { sample: usize, column: usize },
    /// A metadata constraint: target column.
    Metadata { column: usize },
}

/// A relation node (orange square in Figure 4c).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationNode {
    pub name: String,
}

/// A projected attribute (green ellipse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeNode {
    /// Index into [`QueryGraph::relations`].
    pub relation: usize,
    pub column: String,
    /// Which target-schema column this attribute produces.
    pub target_column: usize,
}

/// A join edge between two relations, labelled with its condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdgeView {
    pub left_relation: usize,
    pub left_column: String,
    pub right_relation: usize,
    pub right_column: String,
}

/// A constraint box (blue in Figure 4c), attached where it is satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintBox {
    /// The constraint text as the user wrote it.
    pub label: String,
    /// Attribute node index this constraint is satisfied at.
    pub attribute: usize,
    /// True for metadata constraints (drawn dashed).
    pub metadata: bool,
}

/// The explanation graph of one discovered query.
#[derive(Debug, Clone, Default)]
pub struct QueryGraph {
    pub relations: Vec<RelationNode>,
    pub attributes: Vec<AttributeNode>,
    pub joins: Vec<JoinEdgeView>,
    pub constraints: Vec<ConstraintBox>,
}

/// Build the explanation graph for a candidate, drawing the picked
/// constraints (pass all picks for Figure 4c's "all constraints" view).
pub fn explain(
    db: &Database,
    candidate: &Candidate,
    constraints: &TargetConstraints,
    picks: &[ConstraintPick],
) -> QueryGraph {
    let catalog = db.catalog();
    let mut g = QueryGraph::default();
    for &tid in &candidate.query.nodes {
        g.relations.push(RelationNode {
            name: catalog.table(tid).name.clone(),
        });
    }
    for (target, &(node, col)) in candidate.query.projection.iter().enumerate() {
        let tid = candidate.query.nodes[node];
        g.attributes.push(AttributeNode {
            relation: node,
            column: catalog.table(tid).column(col).name.clone(),
            target_column: target,
        });
    }
    for j in &candidate.query.joins {
        let lt = candidate.query.nodes[j.left_node];
        let rt = candidate.query.nodes[j.right_node];
        g.joins.push(JoinEdgeView {
            left_relation: j.left_node,
            left_column: catalog.table(lt).column(j.left_col).name.clone(),
            right_relation: j.right_node,
            right_column: catalog.table(rt).column(j.right_col).name.clone(),
        });
    }
    for pick in picks {
        match *pick {
            ConstraintPick::Value { sample, column } => {
                let Some(c) = constraints
                    .samples
                    .get(sample)
                    .and_then(|s| s.cells().get(column))
                    .and_then(Option::as_ref)
                else {
                    continue;
                };
                if let Some(attr) = g.attributes.iter().position(|a| a.target_column == column) {
                    g.constraints.push(ConstraintBox {
                        label: c.to_string(),
                        attribute: attr,
                        metadata: false,
                    });
                }
            }
            ConstraintPick::Metadata { column } => {
                let Some(m) = constraints.metadata.get(column).and_then(Option::as_ref) else {
                    continue;
                };
                if let Some(attr) = g.attributes.iter().position(|a| a.target_column == column) {
                    g.constraints.push(ConstraintBox {
                        label: m.to_string(),
                        attribute: attr,
                        metadata: true,
                    });
                }
            }
        }
    }
    g
}

/// Every pick for the full Figure 4c view.
pub fn all_picks(constraints: &TargetConstraints) -> Vec<ConstraintPick> {
    let mut picks = Vec::new();
    for (s, row) in constraints.samples.iter().enumerate() {
        for c in row.constrained_columns() {
            picks.push(ConstraintPick::Value {
                sample: s,
                column: c,
            });
        }
    }
    for (c, m) in constraints.metadata.iter().enumerate() {
        if m.is_some() {
            picks.push(ConstraintPick::Metadata { column: c });
        }
    }
    picks
}

impl QueryGraph {
    /// Graphviz rendering with the paper's palette: orange boxes for
    /// relations, green ellipses for projected attributes, blue notes for
    /// constraints (dashed when metadata).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph query {\n  rankdir=LR;\n");
        for (i, r) in self.relations.iter().enumerate() {
            out.push_str(&format!(
                "  r{i} [label=\"{}\", shape=box, style=filled, fillcolor=orange];\n",
                r.name
            ));
        }
        for (i, a) in self.attributes.iter().enumerate() {
            out.push_str(&format!(
                "  a{i} [label=\"{}\", shape=ellipse, style=filled, fillcolor=palegreen];\n",
                a.column
            ));
            out.push_str(&format!("  r{} -- a{i} [style=dotted];\n", a.relation));
        }
        for j in &self.joins {
            out.push_str(&format!(
                "  r{} -- r{} [label=\"{}.{} = {}.{}\"];\n",
                j.left_relation,
                j.right_relation,
                self.relations[j.left_relation].name,
                j.left_column,
                self.relations[j.right_relation].name,
                j.right_column
            ));
        }
        for (i, c) in self.constraints.iter().enumerate() {
            let style = if c.metadata { "dashed" } else { "solid" };
            out.push_str(&format!(
                "  c{i} [label=\"{}\", shape=note, style=\"filled,{style}\", fillcolor=lightblue];\n",
                c.label.replace('"', "\\\"")
            ));
            out.push_str(&format!("  c{i} -- a{} [style=dashed];\n", c.attribute));
        }
        out.push_str("}\n");
        out
    }

    /// Terminal rendering: one line per relation with its projected
    /// attributes and attached constraints, then the join conditions.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        for (ri, r) in self.relations.iter().enumerate() {
            out.push_str(&format!("[{}]\n", r.name));
            for (ai, a) in self.attributes.iter().enumerate() {
                if a.relation != ri {
                    continue;
                }
                out.push_str(&format!(
                    "  ({}) -> target column {}\n",
                    a.column, a.target_column
                ));
                for c in &self.constraints {
                    if c.attribute == ai {
                        let kind = if c.metadata { "metadata" } else { "value" };
                        out.push_str(&format!("      <{kind}: {}>\n", c.label));
                    }
                }
            }
        }
        if !self.joins.is_empty() {
            out.push_str("joins:\n");
            for j in &self.joins {
                out.push_str(&format!(
                    "  {}.{} == {}.{}\n",
                    self.relations[j.left_relation].name,
                    j.left_column,
                    self.relations[j.right_relation].name,
                    j.right_column
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::discovery::Discovery;
    use prism_datasets::mondial;

    fn some(s: &str) -> Option<String> {
        Some(s.to_string())
    }

    fn walkthrough() -> TargetConstraints {
        TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap()
    }

    fn desired_candidate(db: &prism_db::Database, tc: &TargetConstraints) -> Candidate {
        let engine = Discovery::new(db, DiscoveryConfig::default());
        let result = engine.run(tc);
        let want = "SELECT geo_lake.Province, Lake.Name, Lake.Area \
                    FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name";
        result
            .queries
            .into_iter()
            .find(|q| q.sql == want)
            .expect("desired query discovered")
            .candidate
    }

    #[test]
    fn graph_structure_matches_figure_4c() {
        let db = mondial(42, 1);
        let tc = walkthrough();
        let cand = desired_candidate(&db, &tc);
        let g = explain(&db, &cand, &tc, &all_picks(&tc));
        // Two orange squares, three green ellipses, one join edge, three
        // blue constraint boxes (two value + one metadata).
        assert_eq!(g.relations.len(), 2);
        assert_eq!(g.attributes.len(), 3);
        assert_eq!(g.joins.len(), 1);
        assert_eq!(g.constraints.len(), 3);
        assert_eq!(g.constraints.iter().filter(|c| c.metadata).count(), 1);
        let names: Vec<&str> = g.relations.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"Lake") && names.contains(&"geo_lake"));
    }

    #[test]
    fn constraints_attach_to_the_satisfying_attribute() {
        let db = mondial(42, 1);
        let tc = walkthrough();
        let cand = desired_candidate(&db, &tc);
        let g = explain(&db, &cand, &tc, &all_picks(&tc));
        // "Lake Tahoe" (target column 1) must attach to the attribute
        // producing target column 1, which is Lake.Name.
        let tahoe = g
            .constraints
            .iter()
            .find(|c| c.label.contains("Lake Tahoe"))
            .expect("value constraint drawn");
        let attr = &g.attributes[tahoe.attribute];
        assert_eq!(attr.target_column, 1);
        assert_eq!(attr.column, "Name");
        assert_eq!(g.relations[attr.relation].name, "Lake");
    }

    #[test]
    fn dot_output_is_well_formed_and_colored() {
        let db = mondial(42, 1);
        let tc = walkthrough();
        let cand = desired_candidate(&db, &tc);
        let dot = explain(&db, &cand, &tc, &all_picks(&tc)).to_dot();
        assert!(dot.starts_with("graph query {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("fillcolor=orange"));
        assert!(dot.contains("fillcolor=palegreen"));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(
            dot.contains("geo_lake.Lake = Lake.Name") || dot.contains("Lake.Name = geo_lake.Lake")
        );
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn ascii_output_mentions_everything() {
        let db = mondial(42, 1);
        let tc = walkthrough();
        let cand = desired_candidate(&db, &tc);
        let text = explain(&db, &cand, &tc, &all_picks(&tc)).to_ascii();
        for needle in [
            "[Lake]",
            "[geo_lake]",
            "(Area)",
            "joins:",
            "Lake Tahoe",
            "metadata:",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn empty_picks_draw_no_constraint_boxes() {
        let db = mondial(42, 1);
        let tc = walkthrough();
        let cand = desired_candidate(&db, &tc);
        let g = explain(&db, &cand, &tc, &[]);
        assert!(g.constraints.is_empty());
        assert!(!g.to_ascii().contains('<'));
    }

    #[test]
    fn out_of_range_picks_are_ignored() {
        let db = mondial(42, 1);
        let tc = walkthrough();
        let cand = desired_candidate(&db, &tc);
        let g = explain(
            &db,
            &cand,
            &tc,
            &[
                ConstraintPick::Value {
                    sample: 9,
                    column: 0,
                },
                ConstraintPick::Metadata { column: 9 },
                ConstraintPick::Value {
                    sample: 0,
                    column: 2,
                }, // unconstrained cell
            ],
        );
        assert!(g.constraints.is_empty());
    }
}
