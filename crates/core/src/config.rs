//! Discovery configuration.

use crate::faults::FaultSpec;
use crate::scheduler::SchedulerKind;
use std::time::Duration;

/// Knobs for one round of query discovery. The defaults mirror the demo
/// deployment: a 60-second interactive budget and join trees of up to four
/// tables.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Maximum number of tables in a candidate join tree.
    pub max_tables: usize,
    /// Hard cap on enumerated candidates (guards pathological constraint
    /// sets; hitting it is reported in the stats).
    pub max_candidates: usize,
    /// Cap on related columns kept per target column. Only unconstrained
    /// target columns ever approach this; constrained columns are narrowed
    /// by the index and statistics.
    pub max_related_per_column: usize,
    /// Wall-clock budget for one discovery round (the paper's "60-second
    /// time limit for each round of query discovery").
    pub time_budget: Duration,
    /// Maximum number of satisfying queries to return.
    pub result_limit: usize,
    /// Which filter-validation scheduler to use.
    pub scheduler: SchedulerKind,
    /// Worker threads for the parallel validation engine (greedy
    /// schedulers only; `Naive` and `Oracle` are inherently sequential).
    /// `1` selects the single-threaded greedy loop with no pool. Defaults
    /// to the `PRISM_VALIDATION_THREADS` environment variable when set,
    /// otherwise to the machine's available parallelism.
    pub validation_threads: usize,
    /// Pipeline greedy scheduling across rounds: while a validation round
    /// drains on the pool, the coordinator speculatively scores the next
    /// batch and reconciles stale scores when the verdicts land.
    /// Speculation can only waste work, never change the accept set.
    /// `false` restores the exact phased score → validate → drain path.
    /// Only effective with `validation_threads > 1` (the sequential loop
    /// has nothing to overlap). Defaults to the `PRISM_PIPELINE`
    /// environment variable (`off`/`0`/`false` disable), otherwise `true`.
    pub pipeline: bool,
    /// Deterministic fault injection for chaos testing ([`FaultSpec`]).
    /// `None` (the default when `PRISM_FAULT` is unset) disables injection
    /// entirely — the containment layer stays armed but costs one branch.
    /// Set programmatically for per-session chaos, or via the environment:
    /// `PRISM_FAULT=panic:0.01:seed42` fires an injected panic in ~1% of
    /// injection-point visits, seeded so reruns fault identically.
    pub faults: Option<FaultSpec>,
}

/// Resolve the default pipelining switch: `PRISM_PIPELINE=off` (or `0` /
/// `false`) pins the phased path — CI runs a whole test leg under it —
/// and anything else leaves pipelining on.
pub fn default_pipeline() -> bool {
    !std::env::var("PRISM_PIPELINE")
        .map(|s| {
            let v = s.trim().to_ascii_lowercase();
            v == "off" || v == "0" || v == "false"
        })
        .unwrap_or(false)
}

/// Resolve the default fault-injection spec from `PRISM_FAULT`. Unset,
/// empty, or malformed values yield `None`: chaos is strictly opt-in and
/// must never become load-bearing for a real deployment.
pub fn default_faults() -> Option<FaultSpec> {
    FaultSpec::from_env()
}

/// Resolve the default worker count: `PRISM_VALIDATION_THREADS` (CI runs
/// the test suite under both `1` and `4`) beats detected parallelism.
pub fn default_validation_threads() -> usize {
    std::env::var("PRISM_VALIDATION_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

impl Default for DiscoveryConfig {
    fn default() -> DiscoveryConfig {
        DiscoveryConfig {
            max_tables: 4,
            max_candidates: 20_000,
            max_related_per_column: 64,
            time_budget: Duration::from_secs(60),
            result_limit: 64,
            scheduler: SchedulerKind::Bayes,
            validation_threads: default_validation_threads(),
            pipeline: default_pipeline(),
            faults: default_faults(),
        }
    }
}

impl DiscoveryConfig {
    /// A configuration with the given scheduler and defaults elsewhere.
    pub fn with_scheduler(scheduler: SchedulerKind) -> DiscoveryConfig {
        DiscoveryConfig {
            scheduler,
            ..DiscoveryConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_demo_deployment() {
        let c = DiscoveryConfig::default();
        assert_eq!(c.time_budget, Duration::from_secs(60));
        assert_eq!(c.max_tables, 4);
        assert_eq!(c.scheduler, SchedulerKind::Bayes);
    }

    #[test]
    fn with_scheduler_overrides_only_the_scheduler() {
        let c = DiscoveryConfig::with_scheduler(SchedulerKind::PathLength);
        assert_eq!(c.scheduler, SchedulerKind::PathLength);
        assert_eq!(c.max_tables, DiscoveryConfig::default().max_tables);
    }

    #[test]
    fn validation_threads_default_is_at_least_one() {
        // Whatever the environment says (CI pins PRISM_VALIDATION_THREADS,
        // dev machines fall back to detected parallelism), zero threads
        // must be impossible.
        assert!(DiscoveryConfig::default().validation_threads >= 1);
        assert!(default_validation_threads() >= 1);
    }

    #[test]
    fn pipeline_env_spellings() {
        // Can't set the process env from a test without racing other
        // threads; exercise the parsing contract via the documented
        // spellings instead. The default (no env) must be on.
        for off in ["off", "0", "false", " OFF "] {
            let v = off.trim().to_ascii_lowercase();
            assert!(
                v == "off" || v == "0" || v == "false",
                "{off:?} should disable pipelining"
            );
        }
        if std::env::var("PRISM_PIPELINE").is_err() {
            assert!(default_pipeline(), "pipelining defaults to on");
        }
    }
}
