//! Step 2a: filter decomposition and the filter dependency graph.
//!
//! Section 2.3: *"we divide such an expensive verification task into a set
//! of cheap validations of filters, i.e. sub(join)trees along with projected
//! attributes (shorter PJ queries) … If a filter fails, its parent filters
//! and entire candidate schema mapping query, from which the filter is
//! derived, automatically fail, and thereby pruned."*
//!
//! A **filter** is `(subtree, constrained projected columns, sample index)`.
//! For each candidate and each sample constraint, every connected subtree of
//! the candidate's join tree that hosts at least one constrained column
//! yields a filter; the subtree equal to the full tree is the candidate's
//! **top filter** for that sample (validating it accepts the sample).
//! Filters are deduplicated *across* candidates — shared filters are what
//! make scheduling pay off: one failed validation can kill many candidates.
//!
//! Dependency edges are per-candidate tree containment: within one
//! candidate and sample, `f ⊑ g` iff `f.tree ⊆ g.tree` (predicate inclusion
//! is then automatic). Failure propagates up (`f` fails ⇒ every `g ⊒ f`
//! fails ⇒ all their member candidates fail); success propagates down
//! (`g` succeeds ⇒ every `f ⊑ g` succeeds without validation).
//!
//! Single-table, single-predicate filters are **pre-validated**: Step 1's
//! related-column search already proved a matching value exists (this is
//! why the paper performs keyword checks in Step 1 and defers joins to
//! Step 2).
//!
//! The containment structure doubles as the pipelined scheduler's
//! reconciliation index ([`crate::scheduler`]): `per_candidate` maps a
//! changed candidate back to every filter whose score reads it, and the
//! direct `superfilters` edges bound the one extra hop a filter's score
//! sees through its `subfilters` — so invalidating a speculative score is
//! a local walk, never a whole-set sweep.

use crate::candidates::Candidate;
use crate::constraints::TargetConstraints;
use prism_db::graph::{EdgeId, JoinTree};
use prism_db::schema::{ColumnRef, TableId};
use prism_db::{Database, PreparedQuery};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Index of a filter within a [`FilterSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterId(pub u32);

impl FilterId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One deduplicated filter.
#[derive(Debug, Clone)]
pub struct Filter {
    pub id: FilterId,
    /// The sub-join-tree this filter executes.
    pub tree: JoinTree,
    /// Constrained projected columns within the subtree:
    /// `(target column, source column)`, sorted by target column. May be
    /// empty only for a top filter of a fully-unconstrained sample row
    /// (plain non-emptiness check).
    pub preds: Vec<(usize, ColumnRef)>,
    /// Which sample-constraint row this filter tests.
    pub sample: usize,
    /// Candidate ids containing this filter.
    pub members: Vec<u32>,
    /// Candidates for which this is the top (full-tree) filter.
    pub top_for: Vec<u32>,
    /// Filters strictly contained in this one (success propagates to them).
    pub subfilters: Vec<FilterId>,
    /// Filters strictly containing this one (failure propagates to them).
    pub superfilters: Vec<FilterId>,
    /// Proven satisfiable by Step 1's related-column search.
    pub prevalidated: bool,
    /// Equivalence class of this filter's executable query `(tree,
    /// projected columns)` — filters differing only in their sample index
    /// share a class and therefore a prepared plan ([`FilterSet::plans`]).
    pub query_class: u32,
}

impl Filter {
    /// The number of joins — the baseline scheduler's "join path length".
    pub fn join_count(&self) -> usize {
        self.tree.edges.len()
    }
}

/// All filters of a discovery round plus per-candidate bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    pub filters: Vec<Filter>,
    /// `per_candidate[c]` = ids of all filters of candidate `c`.
    pub per_candidate: Vec<Vec<FilterId>>,
    /// `tops[c][s]` = the top filter of candidate `c` for sample `s`.
    pub tops: Vec<Vec<FilterId>>,
    /// True if decomposition stopped early on the deadline.
    pub truncated: bool,
    /// `decomposed[c]` = candidate `c` was reached before the deadline and
    /// its filters exist. A candidate left `false` by truncation has *no*
    /// filters at all, so acceptance checks must never treat its empty top
    /// list as "all tops succeeded". Empty means "no truncation happened"
    /// (hand-built sets): every candidate counts as decomposed.
    pub decomposed: Vec<bool>,
    /// Lazily-populated prepared query plans, one slot per query class
    /// ([`Filter::query_class`]). Shared by every scheduling run over this
    /// filter set — the sequential coordinator, all pool workers, repeated
    /// engine comparisons — so each query is compiled at most once.
    pub plans: PlanCache,
}

impl FilterSet {
    pub fn filter(&self, id: FilterId) -> &Filter {
        &self.filters[id.index()]
    }

    pub fn len(&self) -> usize {
        self.filters.len()
    }

    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }
}

/// Shared cache of [`PreparedQuery`]s, one slot per filter query class.
/// `OnceLock` slots make it safely shareable across validation worker
/// threads with exactly-once compilation and lock-free reads after that.
///
/// Slots are `Arc`-shared: a filter set built through a
/// [`SharedPlanCache`] (the service-global cache) holds the *same* slots
/// as every other filter set over the same query classes, so a plan
/// compiled by one session is immediately warm for all others. A filter
/// set built without a shared cache owns private slots, exactly as before.
///
/// Plans are *derived* data (recomputable from the filters), so cloning a
/// `FilterSet` yields an equivalent set with a cold cache.
#[derive(Default)]
pub struct PlanCache {
    slots: Vec<Arc<OnceLock<PreparedQuery>>>,
}

impl PlanCache {
    /// An empty cache with one slot per query class.
    pub(crate) fn with_classes(n: usize) -> PlanCache {
        PlanCache {
            slots: (0..n).map(|_| Arc::new(OnceLock::new())).collect(),
        }
    }

    /// A cache whose slots are resolved through the service-global
    /// `shared` cache: classes another session already registered reuse
    /// its (possibly already compiled) slot.
    pub(crate) fn from_shared(shared: &SharedPlanCache, keys: Vec<QueryKey>) -> PlanCache {
        PlanCache {
            slots: keys.into_iter().map(|k| shared.slot(k)).collect(),
        }
    }

    /// The prepared plan of `class`, compiling it via `build` exactly once
    /// (concurrent callers block on the first). Returns the plan and
    /// whether *this* call compiled it — callers count the latter into
    /// [`prism_db::ExecStats::plans_built`].
    pub fn get_or_prepare(
        &self,
        class: u32,
        build: impl FnOnce() -> PreparedQuery,
    ) -> (&PreparedQuery, bool) {
        let mut built = false;
        let plan = self.slots[class as usize].get_or_init(|| {
            built = true;
            build()
        });
        (plan, built)
    }

    /// Number of query classes (slots).
    pub fn classes(&self) -> usize {
        self.slots.len()
    }

    /// Plans actually compiled so far.
    pub fn prepared_count(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }
}

impl Clone for PlanCache {
    fn clone(&self) -> PlanCache {
        PlanCache::with_classes(self.slots.len())
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("classes", &self.classes())
            .field("prepared", &self.prepared_count())
            .finish()
    }
}

/// Canonical identity of a filter's *executable query* — the key of the
/// service-global plan cache. Filters differing only by sample share a key;
/// so do identical filters built by different sessions over the same
/// database.
pub(crate) type QueryKey = (Vec<EdgeId>, Vec<TableId>, Vec<ColumnRef>);

/// Service-global prepared-plan cache, shared across concurrent discovery
/// sessions.
///
/// The per-[`FilterSet`] [`PlanCache`] indexes plans by a dense
/// per-round class id; this cache keys the same slots by the query's
/// *identity* (subtree edges + tables + projected columns), so query
/// classes recur across sessions exploring the same schema — which is the
/// common interactive workload. [`build_filters_with_cache`] resolves each
/// round's classes through it: a key seen before is a **hit** (its slot,
/// compiled or not, is reused), a new key is a **miss** (a fresh slot is
/// registered). A warm session therefore compiles zero plans — observable
/// both here ([`SharedPlanCache::stats`]) and in the round's
/// `ExecStats::plans_built`.
///
/// Concurrency: the key map sits behind a `Mutex` touched once per class
/// per round (filter-set build time, never validation time); compilation
/// itself stays on the slots' lock-free `OnceLock` fast path.
#[derive(Default)]
pub struct SharedPlanCache {
    slots: Mutex<HashMap<QueryKey, Arc<OnceLock<PreparedQuery>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A point-in-time snapshot of a [`SharedPlanCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Class resolutions served by an already-registered slot.
    pub hits: u64,
    /// Class resolutions that registered a fresh slot.
    pub misses: u64,
    /// Distinct query classes registered.
    pub entries: usize,
    /// Slots actually holding a compiled plan.
    pub compiled: usize,
}

impl SharedPlanCache {
    pub fn new() -> SharedPlanCache {
        SharedPlanCache::default()
    }

    /// The shared slot for `key`, registering a fresh one on first sight.
    pub(crate) fn slot(&self, key: QueryKey) -> Arc<OnceLock<PreparedQuery>> {
        let mut slots = self.slots.lock().expect("shared plan cache lock");
        match slots.entry(key) {
            Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                e.get().clone()
            }
            Entry::Vacant(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                e.insert(Arc::new(OnceLock::new())).clone()
            }
        }
    }

    /// Snapshot the hit/miss/compile counters.
    pub fn stats(&self) -> PlanCacheStats {
        let slots = self.slots.lock().expect("shared plan cache lock");
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: slots.len(),
            compiled: slots.values().filter(|s| s.get().is_some()).count(),
        }
    }
}

impl std::fmt::Debug for SharedPlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SharedPlanCache")
            .field("entries", &stats.entries)
            .field("compiled", &stats.compiled)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// Canonical identity of a filter for cross-candidate deduplication.
#[derive(PartialEq, Eq, Hash)]
struct FilterKey {
    edges: Vec<EdgeId>,
    tables: Vec<TableId>,
    preds: Vec<(usize, ColumnRef)>,
    sample: usize,
}

/// Decompose every candidate into filters, with a private plan cache.
pub fn build_filters(
    db: &Database,
    candidates: &[Candidate],
    constraints: &TargetConstraints,
    deadline: Option<Instant>,
) -> FilterSet {
    build_filters_with_cache(db, candidates, constraints, deadline, None)
}

/// Decompose every candidate into filters. With `shared` set, the filter
/// set's plan slots are resolved through the service-global
/// [`SharedPlanCache`], so query classes another session already compiled
/// arrive warm.
pub fn build_filters_with_cache(
    db: &Database,
    candidates: &[Candidate],
    constraints: &TargetConstraints,
    deadline: Option<Instant>,
    shared: Option<&SharedPlanCache>,
) -> FilterSet {
    let mut set = FilterSet {
        per_candidate: vec![Vec::new(); candidates.len()],
        tops: vec![Vec::new(); candidates.len()],
        decomposed: vec![false; candidates.len()],
        ..FilterSet::default()
    };
    let mut by_key: HashMap<FilterKey, FilterId> = HashMap::new();
    // Query-class interner: filters whose executable query is identical —
    // same subtree, same projected columns, any sample — share one class
    // and hence one prepared plan slot. `class_keys[class]` keeps the
    // identity for resolution through the service-global cache.
    let mut class_by_query: HashMap<QueryKey, u32> = HashMap::new();
    let mut class_keys: Vec<QueryKey> = Vec::new();
    // Subtree enumeration is per unique tree, cached. The key must carry
    // the table set, not just the edge list: every single-table tree has
    // the same empty edge list, and keying on edges alone would hand every
    // later single-table candidate the *first* one's subtrees — no `is_top`
    // match, no predicates, zero filters — and it would sail through
    // acceptance unvalidated.
    let mut subtree_cache: HashMap<(Vec<EdgeId>, Vec<TableId>), Vec<JoinTree>> = HashMap::new();

    for cand in candidates {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                set.truncated = true;
                break;
            }
        }
        set.decomposed[cand.id] = true;
        let subtrees = subtree_cache
            .entry((cand.tree.edges.clone(), cand.tree.tables.clone()))
            .or_insert_with(|| db.graph().subtrees(&cand.tree))
            .clone();
        // Constrained assignments per sample.
        for (s, sample) in constraints.samples.iter().enumerate() {
            let constrained: Vec<(usize, ColumnRef)> = sample
                .constrained_columns()
                .map(|i| (i, cand.assignment[i]))
                .collect();
            let mut cand_filter_ids: Vec<FilterId> = Vec::new();
            for sub in &subtrees {
                let preds: Vec<(usize, ColumnRef)> = constrained
                    .iter()
                    .copied()
                    .filter(|(_, col)| sub.contains_table(col.table))
                    .collect();
                let is_top = sub.edges == cand.tree.edges && sub.tables == cand.tree.tables;
                if preds.is_empty() && !is_top {
                    continue; // unconstrained interior subtrees prune nothing
                }
                let key = FilterKey {
                    edges: sub.edges.clone(),
                    tables: sub.tables.clone(),
                    preds: preds.clone(),
                    sample: s,
                };
                let id = *by_key.entry(key).or_insert_with(|| {
                    let id = FilterId(set.filters.len() as u32);
                    let prevalidated = sub.edges.is_empty() && preds.len() == 1;
                    let cols: Vec<ColumnRef> = preds.iter().map(|&(_, c)| c).collect();
                    let query_key = (sub.edges.clone(), sub.tables.clone(), cols);
                    let query_class = match class_by_query.entry(query_key.clone()) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let c = class_keys.len() as u32;
                            class_keys.push(query_key);
                            *e.insert(c)
                        }
                    };
                    set.filters.push(Filter {
                        id,
                        tree: sub.clone(),
                        preds,
                        sample: s,
                        members: Vec::new(),
                        top_for: Vec::new(),
                        subfilters: Vec::new(),
                        superfilters: Vec::new(),
                        prevalidated,
                        query_class,
                    });
                    id
                });
                let f = &mut set.filters[id.index()];
                if f.members.last() != Some(&(cand.id as u32)) {
                    f.members.push(cand.id as u32);
                }
                if is_top {
                    f.top_for.push(cand.id as u32);
                    set.tops[cand.id].push(id);
                }
                cand_filter_ids.push(id);
            }
            // Containment lattice within this candidate+sample: tree
            // containment implies predicate containment here.
            for (x, &fx) in cand_filter_ids.iter().enumerate() {
                for &fy in cand_filter_ids.iter().skip(x + 1) {
                    let (small, large) = (fx.min(fy), fx.max(fy));
                    // Subtrees are enumerated small-to-large, but compare
                    // explicitly: containment, not id order, is what counts.
                    let a = &set.filters[fx.index()];
                    let b = &set.filters[fy.index()];
                    let (sub_id, sup_id) = if b.tree.contains_tree(&a.tree)
                        && a.tree.table_count() < b.tree.table_count()
                    {
                        (fx, fy)
                    } else if a.tree.contains_tree(&b.tree)
                        && b.tree.table_count() < a.tree.table_count()
                    {
                        (fy, fx)
                    } else {
                        let _ = (small, large);
                        continue;
                    };
                    if !set.filters[sup_id.index()].subfilters.contains(&sub_id) {
                        set.filters[sup_id.index()].subfilters.push(sub_id);
                        set.filters[sub_id.index()].superfilters.push(sup_id);
                    }
                }
            }
            set.per_candidate[cand.id].extend(cand_filter_ids);
        }
        // A candidate's filter list may repeat ids across samples; dedupe.
        let list = &mut set.per_candidate[cand.id];
        list.sort_unstable();
        list.dedup();
    }
    set.plans = match shared {
        Some(cache) => PlanCache::from_shared(cache, class_keys),
        None => PlanCache::with_classes(class_keys.len()),
    };
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::enumerate_candidates;
    use crate::config::DiscoveryConfig;
    use crate::related::find_related;
    use prism_datasets::mondial;

    fn some(s: &str) -> Option<String> {
        Some(s.to_string())
    }

    fn walkthrough_filters(db: &Database) -> (Vec<Candidate>, TargetConstraints, FilterSet) {
        let tc = TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(db, &tc, &config);
        let cands = enumerate_candidates(db, &rel, &config, None).candidates;
        let filters = build_filters(db, &cands, &tc, None);
        (cands, tc, filters)
    }

    #[test]
    fn every_candidate_gets_one_top_filter_per_sample() {
        let db = mondial(42, 1);
        let (cands, tc, fs) = walkthrough_filters(&db);
        assert_eq!(fs.tops.len(), cands.len());
        for (c, tops) in fs.tops.iter().enumerate() {
            assert_eq!(
                tops.len(),
                tc.samples.len(),
                "candidate {c} missing top filters"
            );
            for &t in tops {
                let f = fs.filter(t);
                assert!(f.top_for.contains(&(c as u32)));
                assert_eq!(f.tree.edges, cands[c].tree.edges);
            }
        }
    }

    #[test]
    fn filters_are_shared_across_candidates() {
        let db = mondial(42, 1);
        let (cands, _, fs) = walkthrough_filters(&db);
        assert!(cands.len() > 1);
        let shared = fs.filters.iter().filter(|f| f.members.len() > 1).count();
        assert!(
            shared > 0,
            "some filters must be shared across the {} candidates",
            cands.len()
        );
        // Sharing means total filters < sum of per-candidate filters.
        let total_refs: usize = fs.per_candidate.iter().map(Vec::len).sum();
        assert!(fs.len() < total_refs);
    }

    #[test]
    fn single_table_single_pred_filters_are_prevalidated() {
        let db = mondial(42, 1);
        let (_, _, fs) = walkthrough_filters(&db);
        let mut saw_prevalidated = false;
        for f in &fs.filters {
            if f.tree.edges.is_empty() && f.preds.len() == 1 {
                assert!(f.prevalidated, "{f:?}");
                saw_prevalidated = true;
            } else {
                assert!(!f.prevalidated, "{f:?}");
            }
        }
        assert!(saw_prevalidated);
    }

    #[test]
    fn containment_edges_are_consistent() {
        let db = mondial(42, 1);
        let (_, _, fs) = walkthrough_filters(&db);
        let mut edge_count = 0;
        for f in &fs.filters {
            for &sub in &f.subfilters {
                edge_count += 1;
                let g = fs.filter(sub);
                assert_eq!(g.sample, f.sample);
                assert!(f.tree.contains_tree(&g.tree));
                assert!(g.tree.table_count() < f.tree.table_count());
                assert!(g.superfilters.contains(&f.id));
                // Predicate inclusion must follow from tree inclusion.
                for p in &g.preds {
                    assert!(f.preds.contains(p), "{p:?} of sub not in super");
                }
            }
        }
        assert!(edge_count > 0, "the lattice must be non-trivial");
    }

    #[test]
    fn interior_subtrees_without_preds_are_skipped() {
        let db = mondial(42, 1);
        let (_, _, fs) = walkthrough_filters(&db);
        for f in &fs.filters {
            if f.preds.is_empty() {
                assert!(
                    !f.top_for.is_empty(),
                    "pred-less filters may exist only as non-emptiness tops"
                );
            }
        }
    }

    #[test]
    fn multiple_samples_produce_per_sample_filters() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(
            2,
            &[
                vec![some("Lake Tahoe"), some("California")],
                vec![some("Crater Lake"), some("Oregon")],
            ],
            &[],
        )
        .unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let cands = enumerate_candidates(&db, &rel, &config, None).candidates;
        assert!(!cands.is_empty());
        let fs = build_filters(&db, &cands, &tc, None);
        let s0 = fs.filters.iter().filter(|f| f.sample == 0).count();
        let s1 = fs.filters.iter().filter(|f| f.sample == 1).count();
        assert!(s0 > 0 && s1 > 0);
        for tops in &fs.tops {
            assert_eq!(tops.len(), 2);
        }
    }

    #[test]
    fn query_classes_dedupe_identical_queries_across_samples() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(
            2,
            &[
                vec![some("Lake Tahoe"), some("California")],
                vec![some("Crater Lake"), some("Oregon")],
            ],
            &[],
        )
        .unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let cands = enumerate_candidates(&db, &rel, &config, None).candidates;
        let fs = build_filters(&db, &cands, &tc, None);
        assert_eq!(fs.plans.classes() > 0, !fs.is_empty());
        assert_eq!(fs.plans.prepared_count(), 0, "plans compile lazily");
        for f in &fs.filters {
            assert!((f.query_class as usize) < fs.plans.classes());
        }
        // Same (tree, projected columns) ⇒ same class, regardless of
        // sample; different projections ⇒ different classes.
        for a in &fs.filters {
            for b in &fs.filters {
                let cols = |f: &Filter| f.preds.iter().map(|&(_, c)| c).collect::<Vec<_>>();
                let same_query = a.tree.edges == b.tree.edges
                    && a.tree.tables == b.tree.tables
                    && cols(a) == cols(b);
                assert_eq!(same_query, a.query_class == b.query_class, "{a:?} vs {b:?}");
            }
        }
        // Both samples produced filters over the same trees/columns, so
        // classes must be strictly fewer than filters.
        assert!(fs.plans.classes() < fs.len(), "cross-sample sharing");
    }

    #[test]
    fn shared_cache_hands_out_the_same_slots_across_builds() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(
            3,
            &[vec![some("California || Nevada"), some("Lake Tahoe"), None]],
            &[None, None, some("DataType=='decimal' AND MinValue>='0'")],
        )
        .unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let cands = enumerate_candidates(&db, &rel, &config, None).candidates;
        let shared = SharedPlanCache::new();
        // Cold build: every class is a miss.
        let fs1 = build_filters_with_cache(&db, &cands, &tc, None, Some(&shared));
        let s1 = shared.stats();
        assert_eq!(s1.misses as usize, fs1.plans.classes());
        assert_eq!(s1.hits, 0);
        assert_eq!(s1.entries, fs1.plans.classes());
        // Warm build of the same round: every class is a hit, nothing new.
        let fs2 = build_filters_with_cache(&db, &cands, &tc, None, Some(&shared));
        let s2 = shared.stats();
        assert_eq!(s2.hits as usize, fs2.plans.classes());
        assert_eq!(s2.misses, s1.misses);
        assert_eq!(s2.entries, s1.entries);
        // The slots really are shared: a plan compiled through fs1 is
        // already present (and not recompiled) when fs2 asks for it.
        let f = &fs1.filters[0];
        let q = crate::validate::filter_query(&db, f);
        let preds: Vec<prism_db::ProjPred<'_>> = (0..q.projection.len()).map(|_| None).collect();
        let (_, built) = fs1
            .plans
            .get_or_prepare(f.query_class, || q.prepare(&db, &preds).unwrap());
        assert!(built, "first compile happens through fs1");
        let g = &fs2.filters[0];
        assert_eq!(
            g.query_class, f.query_class,
            "same build order, same classes"
        );
        let (_, built_again) = fs2
            .plans
            .get_or_prepare(g.query_class, || unreachable!("slot must be warm"));
        assert!(!built_again);
        assert_eq!(shared.stats().compiled, 1);
        assert!(fs2.plans.prepared_count() >= 1);
    }

    #[test]
    fn deadline_truncates_decomposition() {
        let db = mondial(42, 1);
        let tc = TargetConstraints::parse(1, &[vec![some("Lake Tahoe")]], &[]).unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let cands = enumerate_candidates(&db, &rel, &config, None).candidates;
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let fs = build_filters(&db, &cands, &tc, Some(past));
        assert!(fs.truncated);
        assert!(fs.is_empty());
        // Truncated-away candidates must be marked undecomposed so the
        // scheduler never mistakes their empty top lists for acceptance.
        assert!(fs.decomposed.iter().all(|&d| !d));
    }

    #[test]
    fn every_candidate_gets_its_own_top_filters() {
        // Regression: the subtree cache used to key on the edge list alone,
        // so all single-table candidates (empty edge list) shared the first
        // one's subtrees — later ones ended up with zero filters and were
        // accepted without any validation.
        let db = mondial(42, 1);
        // "Nevada" lives in several tables (Province.Name, geo_lake.Province,
        // City.Province, …), so enumeration yields one single-table candidate
        // per hosting table — all with the same empty edge list.
        let tc = TargetConstraints::parse(1, &[vec![some("Nevada")]], &[]).unwrap();
        let config = DiscoveryConfig::default();
        let rel = find_related(&db, &tc, &config);
        let cands = enumerate_candidates(&db, &rel, &config, None).candidates;
        assert!(
            cands
                .iter()
                .filter(|c| c.tree.edges.is_empty())
                .map(|c| &c.tree.tables)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1,
            "fixture must produce single-table candidates on distinct tables"
        );
        let fs = build_filters(&db, &cands, &tc, None);
        for cand in &cands {
            assert!(fs.decomposed[cand.id]);
            assert!(
                !fs.tops[cand.id].is_empty(),
                "candidate {} ({:?}) has no top filters",
                cand.id,
                cand.tree
            );
            assert!(
                fs.tops[cand.id]
                    .iter()
                    .all(|&t| fs.filter(t).tree.tables == cand.tree.tables
                        && fs.filter(t).tree.edges == cand.tree.edges),
                "top filters must cover the candidate's own full tree"
            );
        }
    }
}
