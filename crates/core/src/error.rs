//! The one error type of the public API.
//!
//! PR 6 consolidates what used to be three error surfaces — the session's
//! `SessionError`, the constraint parser's [`ConstraintError`], and ad-hoc
//! protocol strings ("no search has been run", "no result #i") — into a
//! single [`enum@Error`] implementing [`std::error::Error`], re-exported
//! from the facade crate. `SessionError` survives as a deprecated alias.

use crate::constraints::ConstraintError;

/// Everything a discovery session can report to its caller.
#[derive(Debug)]
pub enum Error {
    /// Cell indices outside the configured grid.
    OutOfRange { row: usize, column: usize },
    /// Metadata entry attempted with metadata disabled.
    MetadataDisabled,
    /// Constraint text failed to parse/validate.
    Constraint(ConstraintError),
    /// `@name` predicates referenced functions missing from the session's
    /// [`prism_lang::UdfRegistry`].
    UnknownUdfs(Vec<String>),
    /// A result accessor was called before any search ran.
    NoSearchRun,
    /// A result index beyond the last search's query list.
    NoSuchResult(usize),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::OutOfRange { row, column } => {
                write!(f, "cell ({row}, {column}) is outside the constraint grid")
            }
            Error::MetadataDisabled => {
                write!(f, "metadata constraints are disabled in the configuration")
            }
            Error::Constraint(e) => write!(f, "{e}"),
            Error::UnknownUdfs(names) => {
                write!(f, "unknown user-defined functions: {}", names.join(", "))
            }
            Error::NoSearchRun => write!(f, "no search has been run"),
            Error::NoSuchResult(index) => write!(f, "no result #{index}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Constraint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConstraintError> for Error {
    fn from(e: ConstraintError) -> Error {
        Error::Constraint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_are_stable() {
        // The demo UI (and the old SessionError) rendered exactly these.
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::OutOfRange { row: 5, column: 0 },
                "cell (5, 0) is outside the constraint grid",
            ),
            (
                Error::MetadataDisabled,
                "metadata constraints are disabled in the configuration",
            ),
            (
                Error::UnknownUdfs(vec!["a".into(), "b".into()]),
                "unknown user-defined functions: a, b",
            ),
            (Error::NoSearchRun, "no search has been run"),
            (Error::NoSuchResult(3), "no result #3"),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
        }
    }

    #[test]
    fn constraint_errors_convert_and_chain() {
        let e: Error = ConstraintError::Empty.into();
        assert!(matches!(e, Error::Constraint(ConstraintError::Empty)));
        let source = std::error::Error::source(&e);
        assert!(source.is_some(), "Constraint carries its source");
        assert!(std::error::Error::source(&Error::NoSearchRun).is_none());
    }
}
