//! Property: cross-round pipelining is a pure latency optimization — the
//! speculative scores it overlaps with the validation drain never change
//! *what* the scheduler decides. Across generated mapping tasks, failure
//! models, and thread counts, `Engine::Pipelined` accepts exactly the
//! phased engine's candidate set (which itself matches the ground-truth
//! oracle), and the overlap counters obey their invariants: wasted
//! speculation never exceeds speculation performed, and phased runs
//! report all-zero counters. A second property lifts the guarantee
//! through the service layer: N concurrent pipelined sessions accept
//! exactly the set a plain sequential [`Session`] accepts.
//!
//! `PRISM_SERVICE_SESSIONS` sizes the concurrent fan-out (default 2; CI's
//! multi-session smoke leg sets 4).

use prism_bayes::{BayesEstimator, TrainConfig};
use prism_core::scheduler::{
    oracle_schedule, BayesModel, Engine, FailureModel, PathLengthModel, SchedCtx, ScheduleOutcome,
    Scheduler, SchedulerKind,
};
use prism_core::{
    candidates::enumerate_candidates, filters::build_filters, related::find_related,
    DiscoveryConfig, DiscoveryService, Session, SessionConfig, SessionHandle, TargetConstraints,
};
use prism_datasets::{mondial, MappingTask, Resolution, TaskGenConfig, TaskGenerator};
use prism_db::Database;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// The walkthrough database and its trained estimator, built once and
/// shared (as an `Arc` so the service property can clone it): the
/// properties quantify over *tasks*, not databases.
fn fixture() -> &'static (Arc<Database>, BayesEstimator) {
    static FIXTURE: OnceLock<(Arc<Database>, BayesEstimator)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = mondial(42, 1);
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        (Arc::new(db), est)
    })
}

fn service_sessions() -> usize {
    std::env::var("PRISM_SERVICE_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

fn task_constraints(task: &MappingTask) -> TargetConstraints {
    TargetConstraints::parse(task.column_count, &task.samples, &task.metadata)
        .expect("taskgen emits parseable constraints")
}

fn generate_task(seed: u64, resolution: Resolution) -> Vec<MappingTask> {
    let taskgen = TaskGenerator::new(fixture().0.as_ref(), TaskGenConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    taskgen.generate_many(resolution, 1, &mut rng)
}

fn arb_resolution() -> impl Strategy<Value = Resolution> {
    prop_oneof![
        Just(Resolution::Exact),
        Just(Resolution::Disjunction),
        Just(Resolution::Range),
        Just(Resolution::Metadata),
    ]
}

fn run_pipelined(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &prism_core::FilterSet,
    model: &dyn FailureModel,
    threads: usize,
) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs);
    Scheduler::run(&ctx, Engine::Pipelined { model, threads })
}

/// Session shaped like the generated task's constraint grid, through the
/// service layer.
fn task_session(
    svc: &DiscoveryService,
    task: &MappingTask,
    config: DiscoveryConfig,
) -> SessionHandle {
    let mut session = svc.open_session(SessionConfig {
        target_columns: task.column_count,
        sample_rows: task.samples.len(),
        with_metadata: true,
        discovery: config,
    });
    fill_grid(task, |r, c, text| {
        session.set_sample_cell(r, c, text).unwrap();
    });
    for (c, meta) in task.metadata.iter().enumerate() {
        if let Some(text) = meta {
            session.set_metadata_cell(c, text.clone()).unwrap();
        }
    }
    session
}

fn fill_grid(task: &MappingTask, mut set: impl FnMut(usize, usize, String)) {
    for (r, row) in task.samples.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if let Some(text) = cell {
                set(r, c, text.clone());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scheduler level: pipelined == phased == oracle ground truth, for
    /// both failure models and threads ∈ {1, 2, 4}. The 1-thread
    /// pipelined run *is* the sequential loop (no pool to overlap with),
    /// so its overlap counters are zero; wider runs may overlap but the
    /// wasted count never exceeds the speculation count, and the phased
    /// engine never reports any speculation at all.
    #[test]
    fn pipelined_and_phased_schedulers_accept_the_same_set(
        seed in 0u64..1_000,
        resolution in arb_resolution(),
    ) {
        let (db, est) = fixture();
        let db = db.as_ref();
        let config = DiscoveryConfig::with_scheduler(SchedulerKind::Bayes);
        for task in &generate_task(seed, resolution) {
            let tc = task_constraints(task);
            let related = find_related(db, &tc, &config);
            let cands = enumerate_candidates(db, &related, &config, None).candidates;
            if cands.is_empty() {
                continue;
            }
            let fs = build_filters(db, &cands, &tc, None);
            let (_, truth) = oracle_schedule(db, &tc, &fs);
            let bayes_model = BayesModel::new(est, &tc);
            let models: [(&str, &dyn FailureModel); 2] =
                [("path-length", &PathLengthModel), ("bayes", &bayes_model)];
            for (name, model) in models {
                for threads in [1usize, 2, 4] {
                    let outcome = run_pipelined(db, &tc, &fs, model, threads);
                    prop_assert_eq!(
                        &outcome.accepted, &truth.accepted,
                        "pipelined {} @ {} threads diverged ({:?}/{})",
                        name, threads, resolution, seed
                    );
                    prop_assert!(!outcome.timed_out);
                    prop_assert!(
                        outcome.speculative_wasted <= outcome.speculative_scores,
                        "wasted ({}) > scored ({})",
                        outcome.speculative_wasted, outcome.speculative_scores
                    );
                    if threads == 1 {
                        prop_assert_eq!(outcome.rounds_overlapped, 0);
                        prop_assert_eq!(outcome.speculative_scores, 0);
                    }
                }
                // The phased engine never speculates, at any width.
                for threads in [1usize, 4] {
                    let ctx = SchedCtx::new(db, &tc, &fs);
                    let phased = Scheduler::run(&ctx, Engine::Greedy { model, threads });
                    prop_assert_eq!(&phased.accepted, &truth.accepted);
                    prop_assert_eq!(phased.rounds_overlapped, 0);
                    prop_assert_eq!(phased.speculative_scores, 0);
                    prop_assert_eq!(phased.speculative_wasted, 0);
                }
            }
        }
    }

    /// Service level: N sessions racing on one pipeline-enabled service
    /// (shared plan cache, shared thread budget, shared database) accept
    /// exactly the set a plain sequential [`Session`] accepts with the
    /// pipeline off.
    #[test]
    fn concurrent_pipelined_sessions_match_the_sequential_session(
        seed in 0u64..1_000,
        resolution in arb_resolution(),
    ) {
        let sessions = service_sessions();
        let (db, _) = fixture();
        for task in &generate_task(seed, resolution) {
            // Reference: a standalone sequential session, pipeline off.
            let seq_config = DiscoveryConfig {
                validation_threads: 1,
                pipeline: false,
                ..DiscoveryConfig::with_scheduler(SchedulerKind::PathLength)
            };
            let mut reference = Session::new(db.as_ref(), SessionConfig {
                target_columns: task.column_count,
                sample_rows: task.samples.len(),
                with_metadata: true,
                discovery: seq_config,
            });
            fill_grid(task, |r, c, text| {
                reference.set_sample_cell(r, c, text).unwrap();
            });
            for (c, meta) in task.metadata.iter().enumerate() {
                if let Some(text) = meta {
                    reference.set_metadata_cell(c, text.clone()).unwrap();
                }
            }
            let result = reference.start_searching().unwrap();
            let mut expected: Vec<String> =
                result.queries.iter().map(|q| q.key.clone()).collect();
            expected.sort();

            let pipelined_config = DiscoveryConfig {
                validation_threads: 4,
                pipeline: true,
                ..DiscoveryConfig::with_scheduler(SchedulerKind::PathLength)
            };
            let svc = DiscoveryService::new(Arc::clone(db), pipelined_config.clone());
            let handles: Vec<SessionHandle> = (0..sessions)
                .map(|_| task_session(&svc, task, pipelined_config.clone()))
                .collect();
            let accepted: Vec<Vec<String>> = std::thread::scope(|scope| {
                let joins: Vec<_> = handles
                    .into_iter()
                    .map(|mut session| {
                        scope.spawn(move || {
                            session.start_searching().unwrap();
                            let mut keys: Vec<String> = session
                                .result()
                                .expect("round ran")
                                .queries
                                .iter()
                                .map(|q| q.key.clone())
                                .collect();
                            keys.sort();
                            keys
                        })
                    })
                    .collect();
                joins.into_iter().map(|j| j.join().unwrap()).collect()
            });
            prop_assert_eq!(svc.rounds_run(), sessions as u64);
            for (i, keys) in accepted.iter().enumerate() {
                prop_assert_eq!(
                    keys, &expected,
                    "pipelined session {} diverged from the sequential run ({:?}/{})",
                    i, resolution, seed
                );
            }
        }
    }
}
