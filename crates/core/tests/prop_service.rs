//! Property: the service layer is a pure concurrency wrapper — it changes
//! *where* rounds run, never *what* they decide. Across generated mapping
//! tasks: N owned sessions running concurrently on one shared
//! `Arc<Database>` accept exactly the query set a sequential
//! single-session run accepts, and a session validated by the
//! work-stealing pool at 2/4/8 threads accepts exactly the 1-thread
//! (sequential-loop) set.
//!
//! `PRISM_SERVICE_SESSIONS` sizes the concurrent fan-out (default 2; CI's
//! multi-session smoke leg sets 4).

use prism_core::scheduler::SchedulerKind;
use prism_core::{DiscoveryConfig, DiscoveryService, SessionConfig, SessionHandle};
use prism_datasets::{mondial, MappingTask, Resolution, TaskGenConfig, TaskGenerator};
use prism_db::Database;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// The walkthrough database, built once and shared by every service the
/// properties stand up: the point is many services/sessions over ONE
/// frozen `Arc<Database>`.
fn db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(mondial(42, 1)))
}

fn service_sessions() -> usize {
    std::env::var("PRISM_SERVICE_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// PathLength keeps the properties estimator-free (scheduling order is
/// irrelevant to the accept set, which is all these properties compare).
fn engine_config(threads: usize) -> DiscoveryConfig {
    DiscoveryConfig {
        validation_threads: threads,
        ..DiscoveryConfig::with_scheduler(SchedulerKind::PathLength)
    }
}

/// Session shaped like the generated task's constraint grid.
fn task_session(svc: &DiscoveryService, task: &MappingTask, threads: usize) -> SessionHandle {
    let mut session = svc.open_session(SessionConfig {
        target_columns: task.column_count,
        sample_rows: task.samples.len(),
        with_metadata: true,
        discovery: engine_config(threads),
    });
    for (r, row) in task.samples.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if let Some(text) = cell {
                session.set_sample_cell(r, c, text.clone()).unwrap();
            }
        }
    }
    for (c, meta) in task.metadata.iter().enumerate() {
        if let Some(text) = meta {
            session.set_metadata_cell(c, text.clone()).unwrap();
        }
    }
    session
}

/// Sorted result keys of the last round — the accept set, order-blind.
fn accept_set(session: &SessionHandle) -> Vec<String> {
    let mut keys: Vec<String> = session
        .result()
        .expect("round ran")
        .queries
        .iter()
        .map(|q| q.key.clone())
        .collect();
    keys.sort();
    keys
}

fn generate_task(seed: u64, resolution: Resolution) -> Vec<MappingTask> {
    let taskgen = TaskGenerator::new(db(), TaskGenConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    taskgen.generate_many(resolution, 1, &mut rng)
}

fn arb_resolution() -> impl Strategy<Value = Resolution> {
    prop_oneof![
        Just(Resolution::Exact),
        Just(Resolution::Disjunction),
        Just(Resolution::Range),
        Just(Resolution::Metadata),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_sessions_accept_the_sequential_set(
        seed in 0u64..1_000,
        resolution in arb_resolution(),
    ) {
        let sessions = service_sessions();
        for task in &generate_task(seed, resolution) {
            // Reference: one session, one thread, its own service.
            let seq_svc = DiscoveryService::new(Arc::clone(db()), engine_config(1));
            let mut reference = task_session(&seq_svc, task, 1);
            reference.start_searching().unwrap();
            let expected = accept_set(&reference);

            // N sessions describing the same task, racing on one service
            // (shared plan cache, shared thread budget, shared database).
            let svc = DiscoveryService::new(Arc::clone(db()), engine_config(4));
            let handles: Vec<SessionHandle> = (0..sessions)
                .map(|_| task_session(&svc, task, 2))
                .collect();
            let accepted: Vec<Vec<String>> = std::thread::scope(|scope| {
                let joins: Vec<_> = handles
                    .into_iter()
                    .map(|mut session| {
                        scope.spawn(move || {
                            session.start_searching().unwrap();
                            accept_set(&session)
                        })
                    })
                    .collect();
                joins.into_iter().map(|j| j.join().unwrap()).collect()
            });
            prop_assert_eq!(svc.rounds_run(), sessions as u64);
            for (i, keys) in accepted.iter().enumerate() {
                prop_assert_eq!(
                    keys, &expected,
                    "session {} diverged from the sequential run ({:?}/{})",
                    i, resolution, seed
                );
            }
        }
    }

    #[test]
    fn work_stealing_thread_counts_agree_with_the_sequential_loop(
        seed in 0u64..1_000,
        resolution in arb_resolution(),
    ) {
        for task in &generate_task(seed, resolution) {
            // One service with budget for the widest pool; each session
            // leases a different worker count, so the same shared plan
            // cache serves the sequential loop and every stealing pool.
            let svc = DiscoveryService::with_thread_budget(Arc::clone(db()), engine_config(1), 8);
            let mut reference = task_session(&svc, task, 1);
            reference.start_searching().unwrap();
            let expected = accept_set(&reference);
            for threads in [2usize, 4, 8] {
                let mut session = task_session(&svc, task, threads);
                session.start_searching().unwrap();
                prop_assert_eq!(
                    accept_set(&session), expected.clone(),
                    "work-stealing pool @ {} threads diverged ({:?}/{})",
                    threads, resolution, seed
                );
            }
        }
    }
}

/// Deterministic multi-session smoke on the walkthrough constraints with
/// the full default engine (Bayes scheduler, trained estimator): the leg
/// CI runs at `PRISM_SERVICE_SESSIONS=4` under the validation-threads
/// matrix.
#[test]
fn walkthrough_smoke_across_concurrent_sessions() {
    let sessions = service_sessions();
    let svc = DiscoveryService::new(Arc::clone(db()), DiscoveryConfig::default());
    let mut handles: Vec<SessionHandle> =
        (0..sessions).map(|_| svc.open_default_session()).collect();
    for session in &mut handles {
        session
            .set_sample_cell(0, 0, "California || Nevada")
            .unwrap();
        session.set_sample_cell(0, 1, "Lake Tahoe").unwrap();
        session
            .set_metadata_cell(2, "DataType=='decimal' AND MinValue>='0'")
            .unwrap();
    }
    let accepted: Vec<Vec<String>> = std::thread::scope(|scope| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut session| {
                scope.spawn(move || {
                    session.start_searching().unwrap();
                    accept_set(&session)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    assert!(!accepted[0].is_empty(), "walkthrough discovers queries");
    for keys in &accepted[1..] {
        assert_eq!(keys, &accepted[0], "concurrent sessions diverged");
    }
    assert_eq!(svc.sessions_opened(), sessions as u64);
    assert_eq!(svc.rounds_run(), sessions as u64);
    // At most one session compiled each class: the cache registered every
    // class once (misses) and served every later request from the slot.
    let cache = svc.plan_cache();
    assert!(cache.entries > 0);
    assert!(
        (cache.compiled as u64) <= cache.misses,
        "compiles bounded by first-registrations"
    );
}
