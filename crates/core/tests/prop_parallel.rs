//! Property: the parallel validation engine is indistinguishable from the
//! sequential scheduler on *what* it decides — across generated mapping
//! tasks, thread counts, and failure models, both accept the identical
//! candidate set (and therefore prune the identical candidates), and both
//! match the ground-truth classification. Only wall-clock and validation
//! interleaving may differ.

use prism_bayes::{BayesEstimator, TrainConfig};
use prism_core::filters::FilterSet;
use prism_core::scheduler::{
    oracle_schedule, BayesModel, Engine, FailureModel, PathLengthModel, SchedCtx, ScheduleOutcome,
    Scheduler, SchedulerKind,
};
use prism_core::validate::validate_filter;
use prism_core::{
    candidates::enumerate_candidates, filters::build_filters, related::find_related,
    DiscoveryConfig, TargetConstraints,
};
use prism_datasets::{mondial, MappingTask, Resolution, TaskGenConfig, TaskGenerator};
use prism_db::Database;
use prism_db::ExecStats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn run_greedy(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
    model: &dyn FailureModel,
) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs);
    Scheduler::run(&ctx, Engine::Greedy { model, threads: 1 })
}

fn run_greedy_parallel(
    db: &Database,
    constraints: &TargetConstraints,
    fs: &FilterSet,
    model: &dyn FailureModel,
    threads: usize,
) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs);
    Scheduler::run(&ctx, Engine::Greedy { model, threads })
}

fn run_naive(db: &Database, constraints: &TargetConstraints, fs: &FilterSet) -> ScheduleOutcome {
    let ctx = SchedCtx::new(db, constraints, fs);
    Scheduler::run(&ctx, Engine::Naive)
}

/// The walkthrough database and its trained estimator, built once: the
/// property quantifies over *tasks*, not databases.
fn fixture() -> &'static (Database, BayesEstimator) {
    static FIXTURE: OnceLock<(Database, BayesEstimator)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = mondial(42, 1);
        let est = BayesEstimator::train(&db, &TrainConfig::default());
        (db, est)
    })
}

fn task_constraints(task: &MappingTask) -> TargetConstraints {
    TargetConstraints::parse(task.column_count, &task.samples, &task.metadata)
        .expect("taskgen emits parseable constraints")
}

fn arb_resolution() -> impl Strategy<Value = Resolution> {
    prop_oneof![
        Just(Resolution::Exact),
        Just(Resolution::Disjunction),
        Just(Resolution::Range),
        Just(Resolution::Metadata),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_and_sequential_schedulers_agree_on_generated_tasks(
        seed in 0u64..1_000,
        resolution in arb_resolution(),
    ) {
        let (db, est) = fixture();
        let config = DiscoveryConfig::with_scheduler(SchedulerKind::Bayes);
        let taskgen = TaskGenerator::new(db, TaskGenConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks = taskgen.generate_many(resolution, 1, &mut rng);
        for task in &tasks {
            let tc = task_constraints(task);
            let related = find_related(db, &tc, &config);
            let cands = enumerate_candidates(db, &related, &config, None).candidates;
            if cands.is_empty() {
                continue;
            }
            let fs = build_filters(db, &cands, &tc, None);

            // Ground truth: the hindsight-optimal schedule's accepted set.
            let (v_opt, truth) = oracle_schedule(db, &tc, &fs);
            // Sequential engines.
            let seq_path = run_greedy(db, &tc, &fs, &PathLengthModel);
            let bayes_model = BayesModel::new(est, &tc);
            let seq_bayes = run_greedy(db, &tc, &fs, &bayes_model);
            let naive = run_naive(db, &tc, &fs);
            prop_assert_eq!(&seq_path.accepted, &truth.accepted);
            prop_assert_eq!(&seq_bayes.accepted, &truth.accepted);
            prop_assert_eq!(&naive.accepted, &truth.accepted);

            // Parallel engine, every model, threads ∈ {2, 4, 8}: identical
            // accepted sets, hence identical pruned candidate sets.
            for threads in [2usize, 4, 8] {
                let par_path =
                    run_greedy_parallel(db, &tc, &fs, &PathLengthModel, threads);
                prop_assert_eq!(
                    &par_path.accepted, &truth.accepted,
                    "path-length @ {} threads on task {:?}/{}", threads, resolution, seed
                );
                prop_assert!(!par_path.timed_out);
                let par_bayes =
                    run_greedy_parallel(db, &tc, &fs, &bayes_model, threads);
                prop_assert_eq!(
                    &par_bayes.accepted, &truth.accepted,
                    "bayes @ {} threads on task {:?}/{}", threads, resolution, seed
                );
                // Every candidate is classified (accepted ∪ pruned is the
                // full candidate set, so equal accepted ⟹ equal pruned),
                // and no completed run can undercut the hindsight optimum.
                prop_assert!(par_path.validations >= v_opt);
                prop_assert!(par_bayes.validations >= v_opt);
            }
        }
    }

    /// PR 5: discovery through the *cached-plan* engines (shared
    /// `PlanCache` + reused `ExecScratch`, sequential and parallel alike)
    /// accepts exactly the candidate set of the PR 3-era per-call path —
    /// here reconstructed filter-by-filter with the uncached
    /// `validate_filter`, which compiles and scratches afresh every call.
    #[test]
    fn cached_plan_discovery_matches_the_per_call_path(
        seed in 0u64..1_000,
        resolution in arb_resolution(),
    ) {
        let (db, _) = fixture();
        let config = DiscoveryConfig::default();
        let taskgen = TaskGenerator::new(db, TaskGenConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks = taskgen.generate_many(resolution, 1, &mut rng);
        for task in &tasks {
            let tc = task_constraints(task);
            let related = find_related(db, &tc, &config);
            let cands = enumerate_candidates(db, &related, &config, None).candidates;
            if cands.is_empty() {
                continue;
            }
            let fs = build_filters(db, &cands, &tc, None);
            // Per-call reference: a candidate is accepted iff every top
            // filter holds, each validated with a one-shot compile.
            let mut ref_stats = ExecStats::default();
            let expected: Vec<u32> = (0..fs.per_candidate.len() as u32)
                .filter(|&c| {
                    fs.tops[c as usize].iter().all(|&t| {
                        let f = fs.filter(t);
                        f.prevalidated || validate_filter(db, f, &tc, &mut ref_stats)
                    })
                })
                .collect();
            for threads in [1usize, 2, 4] {
                let outcome =
                    run_greedy_parallel(db, &tc, &fs, &PathLengthModel, threads);
                prop_assert_eq!(
                    &outcome.accepted, &expected,
                    "cached-plan engine diverged @ {} threads ({:?}/{})",
                    threads, resolution, seed
                );
                // Amortization is observable: compiles never exceed query
                // classes. (A multi-thread batch may validate filters the
                // 1-thread run resolved by implication, so a later run
                // compiling a few cold classes is legitimate.)
                prop_assert!(outcome.exec.plans_built <= fs.plans.classes() as u64);
                if outcome.validations > 0 {
                    prop_assert!(
                        outcome.exec.scratch_reuses >=
                            outcome.validations.saturating_sub(threads as u64),
                        "each worker reuses its scratch after its first validation"
                    );
                }
            }
            // Deterministic warm-cache check: re-running the exact 1-thread
            // path validates the same filters as its first run, so every
            // class it needs is already compiled.
            let rerun = run_greedy_parallel(db, &tc, &fs, &PathLengthModel, 1);
            prop_assert_eq!(&rerun.accepted, &expected);
            prop_assert_eq!(rerun.exec.plans_built, 0,
                "identical rerun must be fully served by the warm plan cache");
        }
    }
}
