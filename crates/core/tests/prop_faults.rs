//! Chaos properties of the fault-isolation layer.
//!
//! The discovery stack promises to *degrade, not die*: a panicking filter
//! validation, an injected transient, or a hard-abandoned round must never
//! hang the pool, poison sibling sessions, or surface an unvalidated
//! query. These tests arm the deterministic injector
//! ([`prism_core::FaultSpec`]) at full and partial rates across thread
//! counts 1/2/4 and check, against a fault-free baseline of the same
//! walkthrough task:
//!
//! - fault-free runs are bit-identical across threads and engines, with
//!   all fault counters zero;
//! - under injected panics the accept set is a **sound subset** of the
//!   baseline, the result is flagged degraded, and each fault report
//!   names the faulted filter's SQL;
//! - transient faults are retried and (when they clear within the retry
//!   budget) leave the accept set untouched;
//! - delay faults never change any result;
//! - one chaotic session on a [`DiscoveryService`] cannot poison its
//!   clean siblings;
//! - a near-zero deadline on a populated database returns promptly
//!   instead of finishing a long scan (the executor's cooperative
//!   cancellation).
//!
//! The final test is CI's chaos leg: with `PRISM_FAULT` set in the
//! environment it sweeps generated tasks until the injector demonstrably
//! fires, asserting soundness throughout (and is a no-op when unset).

use prism_core::{
    default_faults, DiscoveryConfig, DiscoveryResult, DiscoveryService, FaultSpec, Session,
    SessionConfig,
};
use prism_datasets::{mondial, MappingTask, Resolution, TaskGenConfig, TaskGenerator};
use prism_db::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn fixture() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(mondial(42, 1)))
}

/// A discovery config that is deterministic under test: chaos comes only
/// from the explicit `faults` argument, never from the ambient
/// `PRISM_FAULT` (CI's chaos leg sets it process-wide).
fn config(threads: usize, pipeline: bool, faults: Option<FaultSpec>) -> DiscoveryConfig {
    DiscoveryConfig {
        validation_threads: threads,
        pipeline,
        faults,
        // The demo's result cap truncates the ranked list, which would
        // break subset comparisons (a chaos run that loses a top query
        // backfills past the clean run's cutoff). Lift it: soundness is
        // about the full accept set.
        result_limit: usize::MAX,
        ..DiscoveryConfig::default()
    }
}

fn walkthrough_grid(session: &mut Session<'_>) {
    session
        .set_sample_cell(0, 0, "California || Nevada")
        .unwrap();
    session.set_sample_cell(0, 1, "Lake Tahoe").unwrap();
    session
        .set_metadata_cell(2, "DataType=='decimal' AND MinValue>='0'")
        .unwrap();
}

fn run_walkthrough(config: DiscoveryConfig) -> DiscoveryResult {
    let mut session = Session::new(
        fixture().as_ref(),
        SessionConfig {
            discovery: config,
            ..SessionConfig::default()
        },
    );
    walkthrough_grid(&mut session);
    session.start_searching().unwrap().clone()
}

fn keys(result: &DiscoveryResult) -> Vec<String> {
    let mut k: Vec<String> = result.queries.iter().map(|q| q.key.clone()).collect();
    k.sort();
    k
}

/// Fault-free sequential reference for the walkthrough task.
fn baseline() -> &'static Vec<String> {
    static BASE: OnceLock<Vec<String>> = OnceLock::new();
    BASE.get_or_init(|| {
        let result = run_walkthrough(config(1, false, None));
        assert!(!result.queries.is_empty(), "walkthrough finds queries");
        keys(&result)
    })
}

fn is_subset(sub: &[String], sup: &[String]) -> bool {
    sub.iter().all(|k| sup.binary_search(k).is_ok())
}

#[test]
fn fault_free_runs_are_bit_identical_across_threads() {
    for threads in [1usize, 2, 4] {
        for pipeline in [false, true] {
            let result = run_walkthrough(config(threads, pipeline, None));
            assert_eq!(
                &keys(&result),
                baseline(),
                "clean run diverged at {threads} threads (pipeline={pipeline})"
            );
            assert!(!result.degraded);
            assert!(result.fault_reports.is_empty());
            assert!(result.degradation_notice().is_none());
            assert_eq!(result.stats.faults_injected, 0);
            assert_eq!(result.stats.fault_retries, 0);
            assert_eq!(result.stats.filters_faulted, 0);
            assert_eq!(result.stats.rounds_abandoned, 0);
        }
    }
}

#[test]
fn injected_panics_degrade_to_a_sound_subset() {
    let spec = FaultSpec::parse("panic:1.0:seed42").unwrap();
    for threads in [1usize, 2, 4] {
        for pipeline in [false, true] {
            let result = run_walkthrough(config(threads, pipeline, Some(spec.clone())));
            // Every validation slot panics, so nothing can be accepted —
            // but the round completes and explains itself.
            assert!(
                result.queries.is_empty(),
                "all-faulting run accepted queries at {threads} threads"
            );
            assert!(result.degraded);
            assert!(result.stats.faults_injected > 0);
            assert!(!result.fault_reports.is_empty());
            assert_eq!(
                result.stats.filters_faulted,
                result.fault_reports.len() as u64
            );
            for report in &result.fault_reports {
                assert!(
                    report.filter_sql.starts_with("SELECT"),
                    "fault report names the filter query: {:?}",
                    report.filter_sql
                );
                assert!(
                    report.reason.contains("injected fault"),
                    "contained panic message survives: {:?}",
                    report.reason
                );
            }
            let notice = result.degradation_notice().expect("degraded => notice");
            assert!(notice.contains("partial results"));
        }
    }
}

#[test]
fn partial_panic_chaos_is_sound_and_reproducible() {
    // A partial rate: some filters fault, the rest validate normally.
    let spec = FaultSpec::parse("panic:0.3:seed7").unwrap();
    for threads in [1usize, 2, 4] {
        let run = || run_walkthrough(config(threads, true, Some(spec.clone())));
        let result = run();
        assert!(
            is_subset(&keys(&result), baseline()),
            "chaos run accepted a query the clean run does not ({threads} threads)"
        );
        assert_eq!(
            result.degraded,
            !result.fault_reports.is_empty() || result.stats.rounds_abandoned > 0
        );
        // Same spec, same task, same thread count → bit-identical rerun:
        // injection decisions are a pure function of (seed, site, token).
        let again = run();
        assert_eq!(keys(&result), keys(&again));
        assert_eq!(result.stats.faults_injected, again.stats.faults_injected);
        assert_eq!(result.fault_reports.len(), again.fault_reports.len());
    }
}

#[test]
fn transient_faults_retry_and_recover() {
    // Moderate transient rate: attempts are salted, so a slot that faults
    // on attempt 0 usually clears on retry. Sweep seeds until one recovers
    // everywhere — deterministically the same seed every run — and demand
    // full recovery: retries happened, nothing degraded, accept set
    // untouched.
    let mut recovered_fully = false;
    for seed in 0..16u64 {
        let spec = FaultSpec::parse(&format!("transient:0.1:seed{seed}")).unwrap();
        let result = run_walkthrough(config(4, true, Some(spec)));
        assert!(
            is_subset(&keys(&result), baseline()),
            "transient chaos (seed{seed}) accepted a query the clean run does not"
        );
        for report in &result.fault_reports {
            assert!(
                report.reason.contains("transient fault persisted"),
                "persistent transient is labelled: {:?}",
                report.reason
            );
        }
        // Full recovery: the retry budget absorbed every validation-slot
        // transient (retries happened, nothing persisted), so the round is
        // clean and the accept set untouched. (`faults_injected` alone
        // does not imply retries — a transient at the speculative-score
        // site is a counted no-op.)
        if result.stats.fault_retries > 0 && result.fault_reports.is_empty() {
            assert!(!result.degraded);
            assert_eq!(&keys(&result), baseline(), "full recovery seed{seed}");
            recovered_fully = true;
        }
    }
    assert!(
        recovered_fully,
        "no seed in 0..16 recovered fully — retry path never exercised end to end"
    );
}

#[test]
fn delay_faults_never_change_results() {
    let spec = FaultSpec::parse("delay:1.0:seed3").unwrap();
    for threads in [1usize, 4] {
        let result = run_walkthrough(config(threads, true, Some(spec.clone())));
        assert_eq!(&keys(&result), baseline());
        assert!(!result.degraded);
        assert!(result.fault_reports.is_empty());
        assert!(result.stats.faults_injected > 0, "delays did fire");
        assert_eq!(result.stats.fault_retries, 0);
    }
}

#[test]
fn chaotic_session_cannot_poison_siblings() {
    let svc = DiscoveryService::new(Arc::clone(fixture()), config(4, true, None));
    let chaos = FaultSpec::parse("panic:1.0:seed7").unwrap();
    let configs = [
        config(4, true, Some(chaos)),
        config(4, true, None),
        config(4, true, None),
    ];
    let results: Vec<DiscoveryResult> = std::thread::scope(|scope| {
        let joins: Vec<_> = configs
            .iter()
            .map(|c| {
                let mut session = svc.open_session(SessionConfig {
                    discovery: c.clone(),
                    ..SessionConfig::default()
                });
                walkthrough_grid_handle(&mut session);
                scope.spawn(move || {
                    session.start_searching().unwrap();
                    session.result().expect("round ran").clone()
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    assert_eq!(svc.rounds_run(), 3);
    // The chaotic session degrades in isolation…
    assert!(results[0].degraded);
    assert!(results[0].queries.is_empty());
    assert!(!results[0].fault_reports.is_empty());
    // …while its siblings are oracle-identical and clean.
    for (i, sibling) in results[1..].iter().enumerate() {
        assert_eq!(
            &keys(sibling),
            baseline(),
            "sibling {} was poisoned by the chaotic session",
            i + 1
        );
        assert!(!sibling.degraded);
        assert_eq!(sibling.stats.faults_injected, 0);
    }
}

fn walkthrough_grid_handle(session: &mut prism_core::SessionHandle) {
    session
        .set_sample_cell(0, 0, "California || Nevada")
        .unwrap();
    session.set_sample_cell(0, 1, "Lake Tahoe").unwrap();
    session
        .set_metadata_cell(2, "DataType=='decimal' AND MinValue>='0'")
        .unwrap();
}

#[test]
fn near_zero_deadline_returns_promptly() {
    // Regression for the deadline blind spot: a round whose budget expires
    // mid-scan must abort cooperatively (executor step ticks), not finish
    // the scan. With a ~zero budget the round returns almost immediately,
    // reports the timeout, and anything it did return is still validated.
    for threads in [1usize, 4] {
        let cfg = DiscoveryConfig {
            time_budget: Duration::from_millis(1),
            ..config(threads, true, None)
        };
        let start = Instant::now();
        let result = run_walkthrough(cfg);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(10),
            "near-zero deadline took {elapsed:?} at {threads} threads"
        );
        assert!(result.timed_out, "a 1ms budget must report a timeout");
        let ks = keys(&result);
        let extra: Vec<&String> = ks
            .iter()
            .filter(|k| baseline().binary_search(k).is_err())
            .collect();
        assert!(
            extra.is_empty(),
            "timed-out run at {threads} threads accepted unvalidated queries: {extra:?}"
        );
    }
}

/// CI's chaos leg: `PRISM_FAULT=panic:0.02:seed7 PRISM_VALIDATION_THREADS=4`
/// runs exactly this test. It inherits the ambient spec through
/// [`DiscoveryConfig::default`] and sweeps generated mapping tasks until
/// the injector demonstrably fires (site tokens are filter indices, so
/// larger tasks reach deeper into the seeded fault stream), asserting
/// every chaotic accept set stays a subset of its own fault-free baseline.
/// Without `PRISM_FAULT` in the environment it is a no-op.
#[test]
fn env_chaos_smoke_injects_and_stays_sound() {
    if default_faults().is_none() {
        return;
    }
    let db = fixture();
    let taskgen = TaskGenerator::new(db.as_ref(), TaskGenConfig::default());
    let mut injected_total = 0u64;
    'outer: for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        for resolution in [
            Resolution::Exact,
            Resolution::Disjunction,
            Resolution::Range,
            Resolution::Metadata,
        ] {
            for task in taskgen.generate_many(resolution, 1, &mut rng) {
                let chaotic = run_task(db.as_ref(), &task, DiscoveryConfig::default());
                let clean = run_task(db.as_ref(), &task, config(4, true, None));
                assert!(
                    is_subset(&keys(&chaotic), &keys(&clean)),
                    "env chaos accepted a query the clean run does not ({resolution:?}/{seed})"
                );
                assert_eq!(chaotic.degraded, !chaotic.fault_reports.is_empty());
                injected_total += chaotic.stats.faults_injected;
                if injected_total > 0 && seed >= 4 {
                    break 'outer;
                }
            }
        }
    }
    assert!(
        injected_total > 0,
        "PRISM_FAULT is set but no fault ever fired across the sweep"
    );
}

fn run_task(db: &Database, task: &MappingTask, config: DiscoveryConfig) -> DiscoveryResult {
    let mut session = Session::new(
        db,
        SessionConfig {
            target_columns: task.column_count,
            sample_rows: task.samples.len(),
            with_metadata: true,
            discovery: config,
        },
    );
    for (r, row) in task.samples.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if let Some(text) = cell {
                session.set_sample_cell(r, c, text.clone()).unwrap();
            }
        }
    }
    for (c, meta) in task.metadata.iter().enumerate() {
        if let Some(text) = meta {
            session.set_metadata_cell(c, text.clone()).unwrap();
        }
    }
    session.start_searching().unwrap().clone()
}
