//! Join-order equivalence properties: a cost-ordered plan must accept the
//! exact row set of the declaration-ordered (fixed) plan — same projected
//! rows modulo enumeration order — across many-block (64-row) and
//! single-block-heavy (4096-row) layouts, under 1 and 4 threads sharing
//! one prepared plan, and the cost order must stay under a bounded
//! rows-examined ratio on a deliberately adversarial skewed scenario.

use prism_datasets::skewed;
use prism_db::schema::ColumnDef;
use prism_db::types::{DataType, Value, ValueRef};
use prism_db::{
    Database, DatabaseBuilder, ExecScratch, ExecStats, JoinCond, JoinOrder, PjQuery, ProjPred,
    ScanPred,
};
use proptest::prelude::*;

const BLOCK_SIZES: [usize; 2] = [64, 4096];

/// (value, hub?) rows: hub rows all share FK key 1, the rest spread out, so
/// generated databases range from uniform to heavily skewed fan-out.
fn arb_row() -> impl Strategy<Value = (i64, bool)> {
    (
        (-100i64..100),
        prop_oneof![Just(true), Just(true), Just(false)],
    )
}

fn build_db(rows: &[(i64, bool)], block_rows: usize) -> Database {
    let mut b = DatabaseBuilder::new("order").with_block_rows(block_rows);
    b.add_table(
        "U",
        vec![
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("id", DataType::Int),
        ],
    )
    .unwrap();
    b.add_table(
        "V",
        vec![
            ColumnDef::new("fk", DataType::Int),
            ColumnDef::new("val", DataType::Int),
        ],
    )
    .unwrap();
    // A fixed key domain so probes hit real posting runs.
    for k in 1..=8i64 {
        b.add_row("U", vec![Value::Text(format!("u{k}")), Value::Int(k)])
            .unwrap();
    }
    for (i, &(val, hub)) in rows.iter().enumerate() {
        let fk = if hub { 1 } else { 1 + (i as i64 % 8) };
        b.add_row("V", vec![Value::Int(fk), Value::Int(val)])
            .unwrap();
    }
    b.add_foreign_key("V", "fk", "U", "id").unwrap();
    b.build()
}

fn collect(
    db: &Database,
    q: &PjQuery,
    preds: &[ProjPred<'_>],
    mode: JoinOrder,
) -> (Vec<Vec<Value>>, ExecStats) {
    let prepared = q.prepare_with(db, preds, mode).unwrap();
    let mut scratch = ExecScratch::new();
    let mut stats = ExecStats::default();
    let mut rows = Vec::new();
    prepared
        .for_each_row(db, preds, &mut scratch, &mut stats, &mut |r| {
            rows.push(r.iter().map(|v| v.to_value()).collect());
            true
        })
        .unwrap();
    rows.sort();
    (rows, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cost-ordered and declaration-ordered plans accept identical row
    /// sets for a join with a text predicate on one side and a
    /// range-hinted numeric predicate on the other, at both block layouts.
    #[test]
    fn cost_and_fixed_plans_are_row_identical(
        rows in proptest::collection::vec(arb_row(), 1..200),
        lo in -110i64..110,
        width in 0i64..80,
        key in 1i64..=8,
    ) {
        let (lo, hi) = (lo as f64, (lo + width) as f64);
        for bs in BLOCK_SIZES {
            let db = build_db(&rows, bs);
            let q = PjQuery {
                nodes: vec![
                    db.catalog().table_id("U").unwrap(),
                    db.catalog().table_id("V").unwrap(),
                ],
                joins: vec![JoinCond {
                    left_node: 0,
                    left_col: 1,
                    right_node: 1,
                    right_col: 0,
                }],
                projection: vec![(0, 0), (1, 1)],
            };
            let name = format!("u{key}");
            let is_name = |v: ValueRef<'_>| v.as_text() == Some(name.as_str());
            let in_range =
                move |v: ValueRef<'_>| v.as_number().is_some_and(|x| lo <= x && x <= hi);
            let preds: [ProjPred<'_>; 2] = [
                Some(ScanPred::new(&is_name)),
                Some(ScanPred::new(&in_range).with_range(lo, hi)),
            ];
            let (fixed, _) = collect(&db, &q, &preds, JoinOrder::Fixed);
            let (cost, cost_stats) = collect(&db, &q, &preds, JoinOrder::Cost);
            prop_assert_eq!(&fixed, &cost, "block_rows={}", bs);
            prop_assert_eq!(cost_stats.rows_estimated > 0, true);
        }
    }
}

/// The skewed taskgen scenario with a hub predicate: declaration order
/// probes straight through the hot tag's posting run, the cost order scans
/// a zone-pruned score range instead. Both must agree on rows, and the
/// cost order must examine at most a third of the fixed order's rows.
#[test]
fn adversarial_skew_stays_under_bounded_rows_examined_ratio() {
    let db = skewed(11, 10, 1.2);
    let q = PjQuery {
        nodes: vec![
            db.catalog().table_id("Tag").unwrap(),
            db.catalog().table_id("Item").unwrap(),
        ],
        joins: vec![JoinCond {
            left_node: 0,
            left_col: 1, // Tag.id
            right_node: 1,
            right_col: 0, // Item.tag
        }],
        projection: vec![(0, 0), (1, 1)],
    };
    let is_hub = |v: ValueRef<'_>| v.as_text() == Some("tag1");
    let in_range = |v: ValueRef<'_>| {
        v.as_number()
            .is_some_and(|x| (1000.0..=1100.0).contains(&x))
    };
    let preds: [ProjPred<'_>; 2] = [
        Some(ScanPred::new(&is_hub)),
        Some(ScanPred::new(&in_range).with_range(1000.0, 1100.0)),
    ];
    let (fixed, fixed_stats) = collect(&db, &q, &preds, JoinOrder::Fixed);
    let (cost, cost_stats) = collect(&db, &q, &preds, JoinOrder::Cost);
    assert_eq!(fixed, cost, "adversarial plans must be row-identical");
    assert!(!fixed.is_empty(), "the hub owns rows in every score range");
    assert!(
        cost_stats.rows_examined * 3 <= fixed_stats.rows_examined,
        "cost order must dodge the hub: {} examined vs {}",
        cost_stats.rows_examined,
        fixed_stats.rows_examined
    );
}

/// One cost-ordered prepared plan shared by 4 threads (each with its own
/// scratch) returns the same match count as a single-threaded run — the
/// adaptive guard's counters are concurrency-safe and never perturb
/// results, even when a recompile races.
#[test]
fn shared_plan_is_identical_across_1_and_4_threads() {
    let db = skewed(5, 1, 1.0);
    let q = PjQuery {
        nodes: vec![
            db.catalog().table_id("Tag").unwrap(),
            db.catalog().table_id("Item").unwrap(),
        ],
        joins: vec![JoinCond {
            left_node: 0,
            left_col: 1,
            right_node: 1,
            right_col: 0,
        }],
        projection: vec![(0, 0)],
    };
    // `ScanPred` borrows an unsync `dyn Fn`, so every thread builds its own
    // predicate array from this shared, capture-free closure.
    fn is_hub(v: ValueRef<'_>) -> bool {
        v.as_text() == Some("tag1")
    }
    let make_preds = || -> [ProjPred<'static>; 1] { [Some(ScanPred::new(&is_hub))] };
    let prepared = q.prepare_with(&db, &make_preds(), JoinOrder::Cost).unwrap();

    let count_once = || {
        let mut scratch = ExecScratch::new();
        let mut stats = ExecStats::default();
        prepared
            .count_matching(&db, &make_preds(), u64::MAX, &mut scratch, &mut stats)
            .unwrap()
    };
    let baseline = count_once();
    assert!(baseline > 0);
    // Enough runs per thread to cross the guard's recompile threshold
    // while all four threads hammer the same plan.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let preds = make_preds();
                    let mut scratch = ExecScratch::new();
                    let mut stats = ExecStats::default();
                    for _ in 0..6 {
                        let c = prepared
                            .count_matching(&db, &preds, u64::MAX, &mut scratch, &mut stats)
                            .unwrap();
                        assert_eq!(c, baseline);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    // And the plan still answers identically afterwards.
    assert_eq!(count_once(), baseline);
}
