//! Synthetic NBA: teams, players, rosters, games, box scores.
//!
//! Notable schema features exercised here: **parallel join edges**
//! (`Game.HomeTeam` and `Game.AwayTeam` both reference `Team.Id`, so a
//! "team, game" mapping has two distinct legitimate join conditions) and
//! `Date`/`Time` typed columns (game date and tip-off time), covering the
//! full data-type list of the paper's metadata constraints.

use crate::vocab;
use crate::{flush, FLUSH_ROWS};
use prism_db::schema::ColumnDef;
use prism_db::types::{DataType, Date, Time};
use prism_db::{Database, DatabaseBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build synthetic NBA. Scale 1 ≈ 1,000 rows.
pub fn nba(seed: u64, scale: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4e4241 /* "NBA" */);
    let scale = scale.max(1);
    let mut b = DatabaseBuilder::new("NBA");

    b.add_table(
        "Team",
        vec![
            ColumnDef::new("Id", DataType::Int).not_null(),
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("City", DataType::Text).not_null(),
            ColumnDef::new("Arena", DataType::Text),
            ColumnDef::new("Founded", DataType::Int),
        ],
    )
    .unwrap();
    b.add_table(
        "Player",
        vec![
            ColumnDef::new("Id", DataType::Int).not_null(),
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Height", DataType::Int),
            ColumnDef::new("Weight", DataType::Int),
            ColumnDef::new("College", DataType::Text),
        ],
    )
    .unwrap();
    b.add_table(
        "Roster",
        vec![
            ColumnDef::new("PlayerId", DataType::Int).not_null(),
            ColumnDef::new("TeamId", DataType::Int).not_null(),
            ColumnDef::new("Season", DataType::Text).not_null(),
            ColumnDef::new("Number", DataType::Int),
        ],
    )
    .unwrap();
    b.add_table(
        "Game",
        vec![
            ColumnDef::new("Id", DataType::Int).not_null(),
            ColumnDef::new("HomeTeam", DataType::Int).not_null(),
            ColumnDef::new("AwayTeam", DataType::Int).not_null(),
            ColumnDef::new("GameDate", DataType::Date),
            ColumnDef::new("Tipoff", DataType::Time),
            ColumnDef::new("HomeScore", DataType::Int),
            ColumnDef::new("AwayScore", DataType::Int),
        ],
    )
    .unwrap();
    b.add_table(
        "PlayerGameStats",
        vec![
            ColumnDef::new("GameId", DataType::Int).not_null(),
            ColumnDef::new("PlayerId", DataType::Int).not_null(),
            ColumnDef::new("Points", DataType::Int),
            ColumnDef::new("Rebounds", DataType::Int),
            ColumnDef::new("Assists", DataType::Int),
        ],
    )
    .unwrap();
    for (f_t, f_c, t_t, t_c) in [
        ("Roster", "PlayerId", "Player", "Id"),
        ("Roster", "TeamId", "Team", "Id"),
        ("Game", "HomeTeam", "Team", "Id"),
        ("Game", "AwayTeam", "Team", "Id"),
        ("PlayerGameStats", "GameId", "Game", "Id"),
        ("PlayerGameStats", "PlayerId", "Player", "Id"),
    ] {
        b.add_foreign_key(f_t, f_c, t_t, t_c).unwrap();
    }

    // All fill goes through typed batches (the zero-`Value` bulk path); the
    // RNG draw order matches the old per-row loops exactly, so every seed
    // produces the same values it always did.
    let n_teams = vocab::TEAMS.len();
    let mut team_b = b.new_batch("Team").unwrap();
    for (tid, (name, city, arena)) in vocab::TEAMS.iter().enumerate() {
        team_b.push_int(0, tid as i64).unwrap();
        team_b.push_str(1, name).unwrap();
        team_b.push_str(2, city).unwrap();
        team_b.push_str(3, arena).unwrap();
        team_b.push_int(4, rng.gen_range(1946i64..1990)).unwrap();
    }
    b.append_batch("Team", team_b).unwrap();

    // Players: 10·scale per team, rostered for the 2018-19 season.
    let mut player_b = b.new_batch("Player").unwrap();
    let mut roster_b = b.new_batch("Roster").unwrap();
    let mut player_id = 0i64;
    let mut players: Vec<i64> = Vec::new();
    for tid in 0..n_teams {
        for _ in 0..10 * scale {
            let fname = vocab::FIRST_NAMES[rng.gen_range(0..vocab::FIRST_NAMES.len())];
            let lname = vocab::LAST_NAMES[rng.gen_range(0..vocab::LAST_NAMES.len())];
            let college = rng
                .gen_bool(0.8)
                .then(|| vocab::COLLEGES[rng.gen_range(0..vocab::COLLEGES.len())]);
            player_b.push_int(0, player_id).unwrap();
            player_b.push_string(1, format!("{fname} {lname}")).unwrap();
            player_b.push_int(2, rng.gen_range(175i64..225)).unwrap();
            player_b.push_int(3, rng.gen_range(70i64..135)).unwrap();
            match college {
                Some(c) => player_b.push_str(4, c).unwrap(),
                None => player_b.push_null(4),
            }
            roster_b.push_int(0, player_id).unwrap();
            roster_b.push_int(1, tid as i64).unwrap();
            roster_b.push_str(2, "2018-19").unwrap();
            roster_b.push_int(3, rng.gen_range(0i64..99)).unwrap();
            players.push(player_id);
            player_id += 1;
            if player_b.rows() >= FLUSH_ROWS {
                player_b = flush(&mut b, "Player", player_b);
                roster_b = flush(&mut b, "Roster", roster_b);
            }
        }
    }
    b.append_batch("Player", player_b).unwrap();
    b.append_batch("Roster", roster_b).unwrap();

    // Games with box scores for 8 players per game.
    let mut game_b = b.new_batch("Game").unwrap();
    let mut stats_b = b.new_batch("PlayerGameStats").unwrap();
    let n_games = 60 * scale;
    for gid in 0..n_games {
        let home = rng.gen_range(0..n_teams) as i64;
        let mut away = rng.gen_range(0..n_teams) as i64;
        if away == home {
            away = (away + 1) % n_teams as i64;
        }
        let date = Date::new(
            if rng.gen_bool(0.5) { 2018 } else { 2019 },
            rng.gen_range(1u8..=12),
            rng.gen_range(1u8..=28),
        );
        let tip = Time::new(
            rng.gen_range(17u8..=21),
            [0u8, 30][rng.gen_range(0..2usize)],
            0,
        );
        let home_score = rng.gen_range(85i64..135);
        let away_score = rng.gen_range(85i64..135);
        game_b.push_int(0, gid as i64).unwrap();
        game_b.push_int(1, home).unwrap();
        game_b.push_int(2, away).unwrap();
        game_b.push_date(3, date).unwrap();
        game_b.push_time(4, tip).unwrap();
        game_b.push_int(5, home_score).unwrap();
        game_b.push_int(6, away_score).unwrap();
        for _ in 0..8 {
            let pid = players[rng.gen_range(0..players.len())];
            stats_b.push_int(0, gid as i64).unwrap();
            stats_b.push_int(1, pid).unwrap();
            stats_b.push_int(2, rng.gen_range(0i64..45)).unwrap();
            stats_b.push_int(3, rng.gen_range(0i64..18)).unwrap();
            stats_b.push_int(4, rng.gen_range(0i64..15)).unwrap();
        }
        if game_b.rows() >= FLUSH_ROWS {
            game_b = flush(&mut b, "Game", game_b);
        }
        if stats_b.rows() >= FLUSH_ROWS {
            stats_b = flush(&mut b, "PlayerGameStats", stats_b);
        }
    }
    b.append_batch("Game", game_b).unwrap();
    b.append_batch("PlayerGameStats", stats_b).unwrap();

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_with_parallel_edges() {
        let db = nba(42, 1);
        assert_eq!(db.catalog().table_count(), 5);
        assert_eq!(db.graph().edge_count(), 6);
        // Game ↔ Team has two parallel edges (home and away).
        let game = db.catalog().table_id("Game").unwrap();
        let team = db.catalog().table_id("Team").unwrap();
        let parallel = (0..db.graph().edge_count())
            .map(|i| db.graph().edge(prism_db::EdgeId(i as u32)))
            .filter(|e| {
                (e.a.table == game && e.b.table == team) || (e.a.table == team && e.b.table == game)
            })
            .count();
        assert_eq!(parallel, 2);
    }

    #[test]
    fn date_and_time_columns_present() {
        let db = nba(42, 1);
        let d = db.catalog().column_ref("Game", "GameDate").unwrap();
        let t = db.catalog().column_ref("Game", "Tipoff").unwrap();
        assert_eq!(db.stats().column(d).dtype, DataType::Date);
        assert_eq!(db.stats().column(t).dtype, DataType::Time);
    }

    #[test]
    fn teams_are_real_and_rosters_reference_them() {
        let db = nba(42, 1);
        assert!(db.index().columns_with_cell("Lakers").count() >= 1);
        let roster = db.catalog().table_id("Roster").unwrap();
        let team_id = db.catalog().column_ref("Team", "Id").unwrap();
        let ix = db.join_index(team_id).unwrap();
        let t = db.table(roster);
        for r in 0..t.row_count() {
            assert!(ix.contains_key(t.column(1).join_key(r).unwrap()));
        }
    }

    #[test]
    fn games_never_pair_a_team_with_itself() {
        let db = nba(13, 1);
        let game = db.catalog().table_id("Game").unwrap();
        let t = db.table(game);
        let syms = db.symbols();
        for r in 0..t.row_count() as u32 {
            assert_ne!(
                t.value_ref(syms, r, 1),
                t.value_ref(syms, r, 2),
                "game {r} is a self-match"
            );
        }
    }

    #[test]
    fn determinism() {
        let a = nba(5, 1);
        let b2 = nba(5, 1);
        let g = a.catalog().table_id("Game").unwrap();
        assert_eq!(
            a.table(g).row(a.symbols(), 3),
            b2.table(g).row(b2.symbols(), 3)
        );
    }
}
