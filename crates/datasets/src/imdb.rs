//! Synthetic IMDB: movies, people, casting, directing, genres.
//!
//! A handful of real anchor films are embedded so demo constraints have
//! memorable keywords; the fill is deterministic synthetic data. The FK
//! graph is the classic star around `Movie` with two association tables
//! reaching `Person` (acting vs directing are *parallel paths*, so mapping
//! "movie, person" has genuinely ambiguous join routes — ideal for
//! exercising Prism's result disambiguation).

use crate::vocab;
use crate::{flush, FLUSH_ROWS};
use prism_db::schema::ColumnDef;
use prism_db::types::{DataType, Date};
use prism_db::{Database, DatabaseBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Real anchor films: (title, year, runtime, rating, director).
const ANCHORS: &[(&str, i64, i64, f64, &str)] = &[
    ("The Godfather", 1972, 175, 9.2, "Francis Ford Coppola"),
    ("Seven Samurai", 1954, 207, 8.6, "Akira Kurosawa"),
    ("Casablanca", 1942, 102, 8.5, "Michael Curtiz"),
    ("Spirited Away", 2001, 125, 8.6, "Hayao Miyazaki"),
    ("Pulp Fiction", 1994, 154, 8.9, "Quentin Tarantino"),
];

/// Approximate rows produced per unit of `scale` (people + movies +
/// associations); [`imdb_large`] sizes its scale from this.
const ROWS_PER_SCALE: usize = 530;

/// Synthetic IMDB at a row-count target instead of an abstract scale — the
/// standing large tier (10M rows ≈ scale 19k) used by the ingest bench and
/// the `--ignored` scale smoke test.
pub fn imdb_large(seed: u64, target_rows: usize) -> Database {
    imdb(seed, target_rows.div_ceil(ROWS_PER_SCALE).max(1))
}

/// Build synthetic IMDB. Scale 1 ≈ 700 rows.
pub fn imdb(seed: u64, scale: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x494d4442 /* "IMDB" */);
    let scale = scale.max(1);
    let mut b = DatabaseBuilder::new("IMDB");

    b.add_table(
        "Movie",
        vec![
            ColumnDef::new("Id", DataType::Int).not_null(),
            ColumnDef::new("Title", DataType::Text).not_null(),
            ColumnDef::new("Year", DataType::Int),
            ColumnDef::new("Runtime", DataType::Int),
            ColumnDef::new("Rating", DataType::Decimal),
            ColumnDef::new("ReleaseDate", DataType::Date),
        ],
    )
    .unwrap();
    b.add_table(
        "Person",
        vec![
            ColumnDef::new("Id", DataType::Int).not_null(),
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("BirthYear", DataType::Int),
        ],
    )
    .unwrap();
    b.add_table(
        "Genre",
        vec![
            ColumnDef::new("Id", DataType::Int).not_null(),
            ColumnDef::new("Name", DataType::Text).not_null(),
        ],
    )
    .unwrap();
    b.add_table(
        "CastInfo",
        vec![
            ColumnDef::new("MovieId", DataType::Int).not_null(),
            ColumnDef::new("PersonId", DataType::Int).not_null(),
            ColumnDef::new("Role", DataType::Text),
        ],
    )
    .unwrap();
    b.add_table(
        "Directs",
        vec![
            ColumnDef::new("MovieId", DataType::Int).not_null(),
            ColumnDef::new("PersonId", DataType::Int).not_null(),
        ],
    )
    .unwrap();
    b.add_table(
        "MovieGenre",
        vec![
            ColumnDef::new("MovieId", DataType::Int).not_null(),
            ColumnDef::new("GenreId", DataType::Int).not_null(),
        ],
    )
    .unwrap();
    for (f_t, f_c, t_t, t_c) in [
        ("CastInfo", "MovieId", "Movie", "Id"),
        ("CastInfo", "PersonId", "Person", "Id"),
        ("Directs", "MovieId", "Movie", "Id"),
        ("Directs", "PersonId", "Person", "Id"),
        ("MovieGenre", "MovieId", "Movie", "Id"),
        ("MovieGenre", "GenreId", "Genre", "Id"),
    ] {
        b.add_foreign_key(f_t, f_c, t_t, t_c).unwrap();
    }

    // All fill goes through typed batches (the zero-`Value` bulk path); the
    // RNG draw order matches the old per-row loops exactly, so every seed
    // produces the same values it always did.
    let mut genre_b = b.new_batch("Genre").unwrap();
    for (gid, g) in vocab::GENRES.iter().enumerate() {
        genre_b.push_int(0, gid as i64).unwrap();
        genre_b.push_str(1, g).unwrap();
    }
    b.append_batch("Genre", genre_b).unwrap();

    // People: anchor directors first (stable ids), then synthetic fill.
    let mut person_b = b.new_batch("Person").unwrap();
    let mut person_id = 0i64;
    let mut people: Vec<i64> = Vec::new();
    for (_, _, _, _, director) in ANCHORS {
        person_b.push_int(0, person_id).unwrap();
        person_b.push_str(1, director).unwrap();
        person_b.push_int(2, rng.gen_range(1890..1970)).unwrap();
        people.push(person_id);
        person_id += 1;
    }
    let n_people = 80 * scale;
    for _ in 0..n_people {
        let fname = vocab::FIRST_NAMES[rng.gen_range(0..vocab::FIRST_NAMES.len())];
        let lname = vocab::LAST_NAMES[rng.gen_range(0..vocab::LAST_NAMES.len())];
        person_b.push_int(0, person_id).unwrap();
        person_b.push_string(1, format!("{fname} {lname}")).unwrap();
        if rng.gen_bool(0.9) {
            person_b.push_int(2, rng.gen_range(1920i64..2000)).unwrap();
        } else {
            person_b.push_null(2);
        }
        people.push(person_id);
        person_id += 1;
        if person_b.rows() >= FLUSH_ROWS {
            person_b = flush(&mut b, "Person", person_b);
        }
    }
    b.append_batch("Person", person_b).unwrap();

    // Movies: anchors then synthetic.
    let mut movie_b = b.new_batch("Movie").unwrap();
    let mut directs_b = b.new_batch("Directs").unwrap();
    let mut movie_id = 0i64;
    let mut movies: Vec<i64> = Vec::new();
    for (i, (title, year, runtime, rating, _)) in ANCHORS.iter().enumerate() {
        movie_b.push_int(0, movie_id).unwrap();
        movie_b.push_str(1, title).unwrap();
        movie_b.push_int(2, *year).unwrap();
        movie_b.push_int(3, *runtime).unwrap();
        movie_b.push_decimal(4, *rating).unwrap();
        movie_b.push_date(5, Date::new(*year as i16, 6, 1)).unwrap();
        directs_b.push_int(0, movie_id).unwrap();
        directs_b.push_int(1, i as i64).unwrap();
        movies.push(movie_id);
        movie_id += 1;
    }
    let n_movies = 60 * scale;
    for i in 0..n_movies {
        let adj = vocab::TITLE_ADJECTIVES[rng.gen_range(0..vocab::TITLE_ADJECTIVES.len())];
        let noun = vocab::TITLE_NOUNS[rng.gen_range(0..vocab::TITLE_NOUNS.len())];
        let title = format!("The {adj} {noun} {}", i / 8 + 1);
        let year = rng.gen_range(1960i64..2019);
        let rating = rng
            .gen_bool(0.85)
            .then(|| (rng.gen_range(3.0..9.5f64) * 10.0).round() / 10.0);
        movie_b.push_int(0, movie_id).unwrap();
        movie_b.push_string(1, title).unwrap();
        movie_b.push_int(2, year).unwrap();
        movie_b.push_int(3, rng.gen_range(70i64..200)).unwrap();
        match rating {
            Some(r) => movie_b.push_decimal(4, r).unwrap(),
            None => movie_b.push_null(4),
        }
        movie_b
            .push_date(
                5,
                Date::new(
                    year as i16,
                    rng.gen_range(1u8..=12),
                    rng.gen_range(1u8..=28),
                ),
            )
            .unwrap();
        movies.push(movie_id);
        movie_id += 1;
        if movie_b.rows() >= FLUSH_ROWS {
            movie_b = flush(&mut b, "Movie", movie_b);
        }
    }
    b.append_batch("Movie", movie_b).unwrap();

    // Associations: casts (3–5 per movie), one director, 1–2 genres.
    let mut cast_b = b.new_batch("CastInfo").unwrap();
    let mut mg_b = b.new_batch("MovieGenre").unwrap();
    for &mid in &movies {
        let cast_n = rng.gen_range(3..=5);
        for _ in 0..cast_n {
            let pid = people[rng.gen_range(0..people.len())];
            let role = ["lead", "supporting", "cameo"][rng.gen_range(0..3usize)];
            cast_b.push_int(0, mid).unwrap();
            cast_b.push_int(1, pid).unwrap();
            cast_b.push_str(2, role).unwrap();
        }
        if mid >= ANCHORS.len() as i64 {
            let pid = people[rng.gen_range(0..people.len())];
            directs_b.push_int(0, mid).unwrap();
            directs_b.push_int(1, pid).unwrap();
        }
        for _ in 0..rng.gen_range(1..=2) {
            let gid = rng.gen_range(0..vocab::GENRES.len()) as i64;
            mg_b.push_int(0, mid).unwrap();
            mg_b.push_int(1, gid).unwrap();
        }
        if cast_b.rows() >= FLUSH_ROWS {
            cast_b = flush(&mut b, "CastInfo", cast_b);
        }
        if directs_b.rows() >= FLUSH_ROWS {
            directs_b = flush(&mut b, "Directs", directs_b);
        }
        if mg_b.rows() >= FLUSH_ROWS {
            mg_b = flush(&mut b, "MovieGenre", mg_b);
        }
    }
    b.append_batch("CastInfo", cast_b).unwrap();
    b.append_batch("Directs", directs_b).unwrap();
    b.append_batch("MovieGenre", mg_b).unwrap();

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_db::types::Value;

    #[test]
    fn schema_shape() {
        let db = imdb(42, 1);
        assert_eq!(db.catalog().table_count(), 6);
        assert_eq!(db.graph().edge_count(), 6);
        assert!(db.total_rows() > 500);
    }

    #[test]
    fn anchor_films_and_directors_exist() {
        let db = imdb(42, 1);
        assert!(db.index().columns_with_cell("Seven Samurai").count() >= 1);
        assert!(db.index().columns_with_cell("Akira Kurosawa").count() >= 1);
    }

    #[test]
    fn determinism() {
        let a = imdb(9, 1);
        let b2 = imdb(9, 1);
        assert_eq!(a.total_rows(), b2.total_rows());
        let m = a.catalog().table_id("Movie").unwrap();
        assert_eq!(
            a.table(m).row(a.symbols(), 7),
            b2.table(m).row(b2.symbols(), 7)
        );
    }

    #[test]
    fn imdb_large_hits_its_row_target() {
        // Small target here; the 10M tier runs in the --ignored smoke test.
        let db = imdb_large(42, 20_000);
        let total = db.total_rows();
        assert!((20_000..40_000).contains(&total), "target 20k, got {total}");
        // All fill arrived through the bulk path.
        assert_eq!(db.ingest_report().batch_rows, total);
    }

    #[test]
    fn cast_references_are_valid() {
        let db = imdb(11, 1);
        let ci = db.catalog().table_id("CastInfo").unwrap();
        let movie_id = db.catalog().column_ref("Movie", "Id").unwrap();
        let person_id = db.catalog().column_ref("Person", "Id").unwrap();
        let m_ix = db.join_index(movie_id).unwrap();
        let p_ix = db.join_index(person_id).unwrap();
        let t = db.table(ci);
        for r in 0..t.row_count() {
            assert!(m_ix.contains_key(t.column(0).join_key(r).unwrap()));
            assert!(p_ix.contains_key(t.column(1).join_key(r).unwrap()));
        }
    }

    #[test]
    fn anchor_director_join_works() {
        // Kurosawa directs Seven Samurai through the Directs table.
        let db = imdb(42, 1);
        let movie = db.catalog().table_id("Movie").unwrap();
        let person = db.catalog().table_id("Person").unwrap();
        let directs = db.catalog().table_id("Directs").unwrap();
        let q = prism_db::PjQuery {
            nodes: vec![movie, directs, person],
            joins: vec![
                prism_db::JoinCond {
                    left_node: 1,
                    left_col: 0,
                    right_node: 0,
                    right_col: 0,
                },
                prism_db::JoinCond {
                    left_node: 1,
                    left_col: 1,
                    right_node: 2,
                    right_col: 0,
                },
            ],
            projection: vec![(0, 1), (2, 1)],
        };
        let rows = q.execute(&db, 100_000).unwrap();
        assert!(rows.contains(&vec![
            Value::text("Seven Samurai"),
            Value::text("Akira Kurosawa")
        ]));
    }
}
