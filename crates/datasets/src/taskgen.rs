//! Synthesis of schema-mapping test cases at controlled resolutions.
//!
//! Section 2.4 evaluates Prism *"on a set of synthesized test cases created
//! from a public relational database Mondial"*, sweeping how "loose" the
//! user constraints are. This module reproduces that workload generator:
//!
//! 1. pick a ground-truth PJ query (a join tree plus projected columns),
//! 2. execute it and sample result rows,
//! 3. rewrite the sampled rows into constraints at the requested
//!    [`Resolution`] — exact values, disjunctions with distractors, value
//!    ranges, metadata-only columns, or missing cells.
//!
//! Every task records its ground truth, so experiments can check that
//! discovery still finds the intended query as constraints loosen.

use prism_db::graph::JoinTree;
use prism_db::schema::{ColumnRef, TableId};
use prism_db::types::{DataType, Value};
use prism_db::{canonical_key, render_sql, Database, JoinCond, PjQuery};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// How much the user is assumed to know — the looseness axis of the
/// Section 2.4 sweep. Listed from highest to lowest resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Complete sample rows with exact values (the sample-driven baseline
    /// interaction of MWeaver/S4).
    Exact,
    /// Text cells become disjunctions of the true value and distractors
    /// ("Lake Tahoe is in California or Nevada").
    Disjunction,
    /// Numeric cells additionally become value ranges ("the area is a few
    /// hundred km²").
    Range,
    /// Numeric cells lose their sample values entirely; the column is
    /// described only by metadata (data type, min/max bounds).
    Metadata,
    /// Some cells are simply left blank.
    Missing,
}

impl Resolution {
    /// All levels, in decreasing resolution — the sweep order of E1/E2.
    pub const ALL: [Resolution; 5] = [
        Resolution::Exact,
        Resolution::Disjunction,
        Resolution::Range,
        Resolution::Metadata,
        Resolution::Missing,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Resolution::Exact => "exact",
            Resolution::Disjunction => "disjunction",
            Resolution::Range => "range",
            Resolution::Metadata => "metadata",
            Resolution::Missing => "missing",
        }
    }
}

/// A synthesized schema-mapping task: the user-visible constraint grid plus
/// the hidden ground truth.
#[derive(Debug, Clone)]
pub struct MappingTask {
    /// Source database name.
    pub database: String,
    /// Number of target-schema columns.
    pub column_count: usize,
    /// Sample-constraint rows; `None` cells are unconstrained.
    pub samples: Vec<Vec<Option<String>>>,
    /// Per-column metadata constraints (`None` = none given).
    pub metadata: Vec<Option<String>>,
    /// The resolution this task was generated at.
    pub resolution: Resolution,
    /// The generating query.
    pub truth: PjQuery,
    /// Its SQL rendering (for reports).
    pub truth_sql: String,
    /// Its canonical identity (for matching discovered queries).
    pub truth_key: String,
}

/// Knobs for task synthesis.
#[derive(Debug, Clone)]
pub struct TaskGenConfig {
    /// Maximum tables in the ground-truth join tree.
    pub max_tables: usize,
    /// Target-schema column count range (inclusive).
    pub min_columns: usize,
    pub max_columns: usize,
    /// Sample-constraint rows per task.
    pub sample_rows: usize,
    /// Cells to blank out for [`Resolution::Missing`].
    pub missing_cells: usize,
    /// Attempts before giving up on a database (some trees are empty).
    pub max_attempts: usize,
}

impl Default for TaskGenConfig {
    fn default() -> TaskGenConfig {
        TaskGenConfig {
            max_tables: 3,
            min_columns: 2,
            max_columns: 3,
            sample_rows: 1,
            missing_cells: 1,
            max_attempts: 60,
        }
    }
}

/// Generates tasks against one database.
pub struct TaskGenerator<'a> {
    db: &'a Database,
    config: TaskGenConfig,
    /// Ground-truth candidate trees with at least 2 tables.
    trees: Vec<JoinTree>,
}

impl<'a> TaskGenerator<'a> {
    pub fn new(db: &'a Database, config: TaskGenConfig) -> TaskGenerator<'a> {
        let all_tables: Vec<TableId> = db.catalog().tables().map(|(t, _)| t).collect();
        let trees = db
            .graph()
            .enumerate_trees(config.max_tables, &all_tables)
            .into_iter()
            .filter(|t| t.table_count() >= 2)
            .collect();
        TaskGenerator { db, config, trees }
    }

    /// Synthesize one task at `resolution`, or `None` if no suitable
    /// ground-truth query was found within the attempt budget.
    pub fn generate(&self, resolution: Resolution, rng: &mut StdRng) -> Option<MappingTask> {
        for _ in 0..self.config.max_attempts {
            if let Some(task) = self.try_generate(resolution, rng) {
                return Some(task);
            }
        }
        None
    }

    /// Synthesize a batch of tasks (skipping failed attempts).
    pub fn generate_many(
        &self,
        resolution: Resolution,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<MappingTask> {
        (0..count)
            .filter_map(|_| self.generate(resolution, rng))
            .collect()
    }

    fn try_generate(&self, resolution: Resolution, rng: &mut StdRng) -> Option<MappingTask> {
        let tree = self.trees.choose(rng)?;
        let k = rng.gen_range(self.config.min_columns..=self.config.max_columns);
        let projection = self.choose_projection(tree, k, resolution, rng)?;
        let truth = build_query(tree, &projection, self.db);
        let rows = truth.execute(self.db, 4_000).ok()?;
        if rows.is_empty() {
            return None;
        }
        // Sample rows whose cells are all non-NULL (a user cannot write a
        // constraint for a value she cannot see).
        let complete: Vec<&Vec<Value>> = rows
            .iter()
            .filter(|r| r.iter().all(|v| !v.is_null()))
            .collect();
        if complete.len() < self.config.sample_rows {
            return None;
        }
        let mut picked: Vec<&Vec<Value>> = Vec::new();
        let mut tries = 0;
        while picked.len() < self.config.sample_rows && tries < 200 {
            tries += 1;
            let cand = complete[rng.gen_range(0..complete.len())];
            if !picked.contains(&cand) {
                picked.push(cand);
            }
        }
        if picked.len() < self.config.sample_rows {
            return None;
        }

        let col_types: Vec<DataType> = projection
            .iter()
            .map(|c| self.db.catalog().column_def(*c).dtype)
            .collect();

        let mut samples: Vec<Vec<Option<String>>> = Vec::new();
        let mut metadata: Vec<Option<String>> = vec![None; k];
        for row in &picked {
            let mut cells: Vec<Option<String>> = Vec::with_capacity(k);
            for (i, v) in row.iter().enumerate() {
                cells.push(Some(self.constrain_cell(
                    v,
                    projection[i],
                    col_types[i],
                    resolution,
                    rng,
                )));
            }
            samples.push(cells);
        }

        match resolution {
            Resolution::Metadata => {
                // Numeric columns: drop value constraints, add metadata.
                for (i, c) in projection.iter().enumerate() {
                    if col_types[i].is_numeric() {
                        for row in &mut samples {
                            row[i] = None;
                        }
                        metadata[i] = Some(self.metadata_for(*c, col_types[i]));
                    }
                }
            }
            Resolution::Missing => {
                // Blank out cells, keeping at least one constrained cell per
                // sample row.
                for row in &mut samples {
                    let mut idx: Vec<usize> = (0..k).collect();
                    idx.shuffle(rng);
                    for &i in idx.iter().take(self.config.missing_cells.min(k - 1)) {
                        row[i] = None;
                    }
                }
            }
            _ => {}
        }

        Some(MappingTask {
            database: self.db.name().to_string(),
            column_count: k,
            samples,
            metadata,
            resolution,
            truth_sql: render_sql(&truth, self.db),
            truth_key: canonical_key(&truth, self.db),
            truth,
        })
    }

    /// Pick `k` projected columns over the tree's tables such that every
    /// leaf table hosts at least one (minimality of the ground truth).
    /// Metadata tasks additionally require at least one text column so the
    /// task keeps a keyword anchor.
    fn choose_projection(
        &self,
        tree: &JoinTree,
        k: usize,
        resolution: Resolution,
        rng: &mut StdRng,
    ) -> Option<Vec<ColumnRef>> {
        let leaves = tree.leaf_tables(self.db.graph());
        if leaves.len() > k {
            return None;
        }
        let all_cols: Vec<ColumnRef> = tree
            .tables
            .iter()
            .flat_map(|&t| {
                let arity = self.db.catalog().table(t).arity() as u32;
                (0..arity).map(move |c| ColumnRef::new(t, c))
            })
            .collect();
        for _ in 0..40 {
            let mut chosen: Vec<ColumnRef> = Vec::with_capacity(k);
            // One column per leaf first.
            for &leaf in &leaves {
                let opts: Vec<&ColumnRef> = all_cols.iter().filter(|c| c.table == leaf).collect();
                chosen.push(**opts.choose(rng)?);
            }
            while chosen.len() < k {
                let c = *all_cols.choose(rng)?;
                if !chosen.contains(&c) {
                    chosen.push(c);
                }
            }
            chosen.shuffle(rng);
            let has_text = chosen
                .iter()
                .any(|c| self.db.catalog().column_def(*c).dtype == DataType::Text);
            if resolution == Resolution::Metadata && !has_text {
                continue;
            }
            // Text anchors make discovery tractable at every resolution;
            // require one across the board (the paper's user always knows
            // *some* keyword).
            if has_text {
                return Some(chosen);
            }
        }
        None
    }

    /// Rewrite a sampled cell value into a constraint string at the given
    /// resolution.
    fn constrain_cell(
        &self,
        v: &Value,
        col: ColumnRef,
        dtype: DataType,
        resolution: Resolution,
        rng: &mut StdRng,
    ) -> String {
        let exact = || quote(v);
        match resolution {
            Resolution::Exact => exact(),
            Resolution::Disjunction | Resolution::Missing => {
                if dtype == DataType::Text {
                    self.disjunction(v, col, rng)
                } else {
                    exact()
                }
            }
            Resolution::Range | Resolution::Metadata => {
                if dtype == DataType::Text {
                    self.disjunction(v, col, rng)
                } else if let Some(x) = v.as_number() {
                    let spread = (x.abs() * 0.4).max(2.0);
                    let lo = (x - spread).floor();
                    let hi = (x + spread).ceil();
                    format!(">= '{lo}' && <= '{hi}'")
                } else {
                    exact()
                }
            }
        }
    }

    /// Build `'true' || 'distractor' [|| 'distractor']` from other values of
    /// the same source column.
    fn disjunction(&self, v: &Value, col: ColumnRef, rng: &mut StdRng) -> String {
        let column = self.db.table(col.table).column(col.column);
        let syms = self.db.symbols();
        let mut parts = vec![quote(v)];
        let n_distractors = rng.gen_range(1..=2);
        let mut tries = 0;
        while parts.len() <= n_distractors && tries < 50 {
            tries += 1;
            let cand = column.value_ref(syms, rng.gen_range(0..column.len()));
            if cand.is_null() || cand == v.as_value_ref() {
                continue;
            }
            let q = quote(&cand.to_value());
            if !parts.contains(&q) {
                parts.push(q);
            }
        }
        parts.join(" || ")
    }

    /// Metadata description of a numeric column: its type plus loosened
    /// min/max bounds (the user knows the ballpark, not the exact values).
    fn metadata_for(&self, col: ColumnRef, dtype: DataType) -> String {
        let stats = self.db.stats().column(col);
        let mut parts = vec![format!("DataType == '{}'", dtype.name())];
        if let (Some(mn), Some(mx)) = (stats.min_num, stats.max_num) {
            let lo = if mn >= 0.0 { 0.0 } else { (mn * 2.0).floor() };
            let hi = (mx.abs().max(1.0) * 2.0).ceil();
            parts.push(format!("MinValue >= '{lo}'"));
            parts.push(format!("MaxValue <= '{hi}'"));
        }
        parts.join(" AND ")
    }
}

/// Materialize a PJ query from a tree and projection list.
fn build_query(tree: &JoinTree, projection: &[ColumnRef], db: &Database) -> PjQuery {
    let nodes: Vec<TableId> = tree.tables.clone();
    let slot_of = |t: TableId| nodes.iter().position(|&x| x == t).expect("table in tree");
    let joins: Vec<JoinCond> = tree
        .edges
        .iter()
        .map(|&e| {
            let edge = db.graph().edge(e);
            JoinCond {
                left_node: slot_of(edge.a.table),
                left_col: edge.a.column,
                right_node: slot_of(edge.b.table),
                right_col: edge.b.column,
            }
        })
        .collect();
    let projection = projection
        .iter()
        .map(|c| (slot_of(c.table), c.column))
        .collect();
    PjQuery {
        nodes,
        joins,
        projection,
    }
}

/// Quote a value as a constraint constant.
fn quote(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{s}'"),
        other => format!("'{other}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mondial;
    use prism_lang::{matches_value, parse_metadata_constraint, parse_value_constraint};
    use rand::SeedableRng;

    fn generator(db: &Database) -> TaskGenerator<'_> {
        TaskGenerator::new(db, TaskGenConfig::default())
    }

    #[test]
    fn exact_tasks_have_fully_constrained_rows() {
        let db = mondial(42, 1);
        let g = generator(&db);
        let mut rng = StdRng::seed_from_u64(1);
        let task = g.generate(Resolution::Exact, &mut rng).expect("task");
        assert_eq!(task.samples.len(), 1);
        assert!(task.samples[0].iter().all(|c| c.is_some()));
        assert!(task.metadata.iter().all(|m| m.is_none()));
        assert!(task.truth_sql.starts_with("SELECT"));
    }

    #[test]
    fn constraints_parse_and_match_the_generating_row() {
        let db = mondial(42, 1);
        let g = generator(&db);
        let mut rng = StdRng::seed_from_u64(7);
        for resolution in Resolution::ALL {
            let Some(task) = g.generate(resolution, &mut rng) else {
                panic!("no task at {resolution:?}");
            };
            // Every non-empty cell parses; the ground-truth result must
            // contain a row matching every parsed constraint.
            let rows = task.truth.execute(&db, 4_000).unwrap();
            for sample in &task.samples {
                let parsed: Vec<Option<prism_lang::ValueConstraint>> = sample
                    .iter()
                    .map(|c| c.as_ref().map(|s| parse_value_constraint(s).unwrap()))
                    .collect();
                let witness = rows.iter().any(|row| {
                    row.iter().zip(&parsed).all(|(v, c)| match c {
                        Some(c) => matches_value(c, v),
                        None => true,
                    })
                });
                assert!(
                    witness,
                    "{resolution:?}: no result row satisfies {sample:?} for {}",
                    task.truth_sql
                );
            }
            for m in task.metadata.iter().flatten() {
                parse_metadata_constraint(m).unwrap();
            }
        }
    }

    #[test]
    fn metadata_tasks_replace_numeric_cells() {
        let db = mondial(42, 1);
        let g = generator(&db);
        let mut rng = StdRng::seed_from_u64(11);
        // Find a metadata task that projects a numeric column.
        for _ in 0..30 {
            let task = g.generate(Resolution::Metadata, &mut rng).expect("task");
            let numeric_cols: Vec<usize> = (0..task.column_count)
                .filter(|&i| task.metadata[i].is_some())
                .collect();
            if numeric_cols.is_empty() {
                continue; // all-text projection: nothing to replace
            }
            for &i in &numeric_cols {
                assert!(task.samples.iter().all(|r| r[i].is_none()));
                let m = task.metadata[i].as_ref().unwrap();
                assert!(m.contains("DataType"), "metadata {m}");
            }
            return;
        }
        panic!("no metadata task with numeric columns in 30 draws");
    }

    #[test]
    fn missing_tasks_blank_cells_but_keep_an_anchor() {
        let db = mondial(42, 1);
        let g = TaskGenerator::new(
            &db,
            TaskGenConfig {
                missing_cells: 1,
                ..TaskGenConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let task = g.generate(Resolution::Missing, &mut rng).expect("task");
        for row in &task.samples {
            let blanks = row.iter().filter(|c| c.is_none()).count();
            assert!(blanks >= 1, "missing task must blank at least one cell");
            assert!(
                row.iter().any(|c| c.is_some()),
                "at least one constrained cell must remain"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let db = mondial(42, 1);
        let g = generator(&db);
        let t1 = g
            .generate(Resolution::Exact, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let t2 = g
            .generate(Resolution::Exact, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(t1.truth_key, t2.truth_key);
        assert_eq!(t1.samples, t2.samples);
    }

    #[test]
    fn generate_many_yields_varied_ground_truths() {
        let db = mondial(42, 1);
        let g = generator(&db);
        let mut rng = StdRng::seed_from_u64(9);
        let tasks = g.generate_many(Resolution::Exact, 12, &mut rng);
        assert!(tasks.len() >= 10, "got {}", tasks.len());
        let distinct: std::collections::HashSet<&str> =
            tasks.iter().map(|t| t.truth_key.as_str()).collect();
        assert!(distinct.len() >= 4, "tasks should vary: {}", distinct.len());
    }

    #[test]
    fn ground_truth_trees_span_multiple_tables() {
        let db = mondial(42, 1);
        let g = generator(&db);
        let mut rng = StdRng::seed_from_u64(2);
        let task = g.generate(Resolution::Exact, &mut rng).unwrap();
        assert!(task.truth.nodes.len() >= 2);
        assert_eq!(task.truth.joins.len(), task.truth.nodes.len() - 1);
    }
}
