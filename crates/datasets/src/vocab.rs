//! Embedded seed vocabularies.
//!
//! Real names anchor the synthetic databases so the paper's demo constraints
//! (`Lake Tahoe`, `California || Nevada`, …) hit real rows; synthetic fill
//! rows are derived from these lists deterministically.

/// US states — the provinces of country `USA` in synthetic Mondial.
pub const US_STATES: &[&str] = &[
    "Alabama",
    "Alaska",
    "Arizona",
    "Arkansas",
    "California",
    "Colorado",
    "Connecticut",
    "Delaware",
    "Florida",
    "Georgia",
    "Hawaii",
    "Idaho",
    "Illinois",
    "Indiana",
    "Iowa",
    "Kansas",
    "Kentucky",
    "Louisiana",
    "Maine",
    "Maryland",
    "Massachusetts",
    "Michigan",
    "Minnesota",
    "Mississippi",
    "Missouri",
    "Montana",
    "Nebraska",
    "Nevada",
    "New Hampshire",
    "New Jersey",
    "New Mexico",
    "New York",
    "North Carolina",
    "North Dakota",
    "Ohio",
    "Oklahoma",
    "Oregon",
    "Pennsylvania",
    "Rhode Island",
    "South Carolina",
    "South Dakota",
    "Tennessee",
    "Texas",
    "Utah",
    "Vermont",
    "Virginia",
    "Washington",
    "West Virginia",
    "Wisconsin",
    "Wyoming",
];

/// Canadian provinces.
pub const CA_PROVINCES: &[&str] = &[
    "Ontario",
    "Quebec",
    "British Columbia",
    "Alberta",
    "Manitoba",
    "Saskatchewan",
    "Nova Scotia",
    "New Brunswick",
];

/// German Länder.
pub const DE_STATES: &[&str] = &[
    "Bavaria",
    "Baden-Wurttemberg",
    "North Rhine-Westphalia",
    "Hesse",
    "Saxony",
    "Berlin",
    "Hamburg",
    "Brandenburg",
];

/// Countries: (name, code, capital, continent).
pub const COUNTRIES: &[(&str, &str, &str, &str)] = &[
    ("United States", "USA", "Washington", "America"),
    ("Canada", "CDN", "Ottawa", "America"),
    ("Mexico", "MEX", "Mexico City", "America"),
    ("Germany", "D", "Berlin", "Europe"),
    ("France", "F", "Paris", "Europe"),
    ("Italy", "I", "Rome", "Europe"),
    ("Spain", "E", "Madrid", "Europe"),
    ("Japan", "J", "Tokyo", "Asia"),
    ("China", "TJ", "Beijing", "Asia"),
    ("India", "IND", "New Delhi", "Asia"),
    ("Brazil", "BR", "Brasilia", "America"),
    ("Egypt", "ET", "Cairo", "Africa"),
    ("Kenya", "EAK", "Nairobi", "Africa"),
    ("Australia", "AUS", "Canberra", "Australia/Oceania"),
];

pub const CONTINENTS: &[(&str, f64)] = &[
    ("America", 39_872_000.0),
    ("Europe", 9_938_000.0),
    ("Asia", 44_579_000.0),
    ("Africa", 30_370_000.0),
    ("Australia/Oceania", 8_526_000.0),
];

/// Real lakes: (name, area km², depth m, state/province, country code).
/// The first three rows are the paper's Table 1 verbatim — including
/// `Fort Peck Lake / Florida`, which reproduces the paper's own table —
/// and Lake Tahoe additionally belongs to Nevada, which the walk-through's
/// `California || Nevada` constraint depends on.
pub const LAKES: &[(&str, f64, f64, &str, &str)] = &[
    ("Lake Tahoe", 497.0, 501.0, "California", "USA"),
    ("Crater Lake", 53.2, 594.0, "Oregon", "USA"),
    ("Fort Peck Lake", 981.0, 67.0, "Florida", "USA"),
    ("Lake Michigan", 58_016.0, 281.0, "Michigan", "USA"),
    ("Lake Superior", 82_103.0, 406.0, "Minnesota", "USA"),
    ("Lake Huron", 59_590.0, 229.0, "Michigan", "USA"),
    ("Lake Erie", 25_744.0, 64.0, "Ohio", "USA"),
    ("Lake Ontario", 19_011.0, 244.0, "New York", "USA"),
    ("Great Salt Lake", 4_400.0, 10.0, "Utah", "USA"),
    ("Lake Okeechobee", 1_900.0, 3.7, "Florida", "USA"),
    ("Lake Champlain", 1_269.0, 122.0, "Vermont", "USA"),
    ("Lake of the Woods", 4_350.0, 64.0, "Minnesota", "USA"),
    ("Great Bear Lake", 31_153.0, 446.0, "Ontario", "CDN"),
    ("Great Slave Lake", 27_200.0, 614.0, "Alberta", "CDN"),
    ("Lake Winnipeg", 24_514.0, 36.0, "Manitoba", "CDN"),
    ("Lake Constance", 536.0, 251.0, "Bavaria", "D"),
    ("Chiemsee", 79.9, 72.7, "Bavaria", "D"),
    ("Lake Geneva", 580.0, 310.0, "Hesse", "F"),
    ("Lake Garda", 370.0, 346.0, "Saxony", "I"),
    ("Lake Biwa", 670.0, 104.0, "Hamburg", "J"),
    ("Lake Victoria", 68_870.0, 84.0, "Berlin", "EAK"),
    ("Lake Nasser", 5_250.0, 130.0, "Brandenburg", "ET"),
];

/// Real rivers: (name, length km, country code).
pub const RIVERS: &[(&str, f64, &str)] = &[
    ("Mississippi", 3_766.0, "USA"),
    ("Missouri", 3_767.0, "USA"),
    ("Colorado", 2_333.0, "USA"),
    ("Columbia", 2_000.0, "USA"),
    ("Rio Grande", 3_051.0, "USA"),
    ("Yukon", 3_190.0, "CDN"),
    ("Rhine", 1_233.0, "D"),
    ("Danube", 2_850.0, "D"),
    ("Seine", 775.0, "F"),
    ("Loire", 1_006.0, "F"),
    ("Po", 652.0, "I"),
    ("Ebro", 930.0, "E"),
    ("Yangtze", 6_300.0, "TJ"),
    ("Ganges", 2_525.0, "IND"),
    ("Nile", 6_650.0, "ET"),
    ("Amazon", 6_400.0, "BR"),
];

/// Real seas: (name, max depth m).
pub const SEAS: &[(&str, f64)] = &[
    ("Atlantic Ocean", 9_219.0),
    ("Pacific Ocean", 11_034.0),
    ("Mediterranean Sea", 5_121.0),
    ("Caribbean Sea", 7_240.0),
    ("North Sea", 725.0),
    ("Baltic Sea", 459.0),
    ("Sea of Japan", 3_742.0),
    ("Arabian Sea", 4_652.0),
];

/// Real mountains: (name, height m, country code).
pub const MOUNTAINS: &[(&str, f64, &str)] = &[
    ("Denali", 6_190.0, "USA"),
    ("Mount Whitney", 4_421.0, "USA"),
    ("Mount Rainier", 4_392.0, "USA"),
    ("Mount Logan", 5_959.0, "CDN"),
    ("Zugspitze", 2_962.0, "D"),
    ("Mont Blanc", 4_808.0, "F"),
    ("Monte Rosa", 4_634.0, "I"),
    ("Mulhacen", 3_479.0, "E"),
    ("Mount Fuji", 3_776.0, "J"),
    ("Everest", 8_849.0, "TJ"),
    ("Kangchenjunga", 8_586.0, "IND"),
    ("Kilimanjaro", 5_895.0, "EAK"),
];

/// City base names beyond capitals.
pub const CITIES: &[&str] = &[
    "Springfield",
    "Riverton",
    "Georgetown",
    "Franklin",
    "Clinton",
    "Fairview",
    "Salem",
    "Madison",
    "Arlington",
    "Ashland",
    "Dover",
    "Oxford",
    "Jackson",
    "Milton",
    "Newport",
    "Centerville",
    "Lebanon",
    "Kingston",
    "Burlington",
    "Manchester",
    "Clayton",
    "Dayton",
    "Lexington",
    "Milford",
    "Riverside",
    "Cleveland",
    "Hudson",
    "Auburn",
    "Bristol",
    "Florence",
];

/// Person first names (movie people, players).
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Akira",
    "Sofia",
    "Marcus",
    "Elena",
    "Hiroshi",
    "Ingrid",
    "Rajesh",
    "Fatima",
];

/// Person last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Kurosawa",
    "Bergman",
    "Kapoor",
    "Chen",
    "Nakamura",
    "Schmidt",
    "Dubois",
    "Rossi",
];

/// Movie title fragments (adjective, noun).
pub const TITLE_ADJECTIVES: &[&str] = &[
    "Silent",
    "Crimson",
    "Endless",
    "Broken",
    "Golden",
    "Midnight",
    "Forgotten",
    "Electric",
    "Savage",
    "Hidden",
    "Burning",
    "Frozen",
    "Distant",
    "Hollow",
    "Radiant",
    "Shattered",
];

pub const TITLE_NOUNS: &[&str] = &[
    "Horizon",
    "Empire",
    "Garden",
    "Mirror",
    "Station",
    "Harvest",
    "Voyage",
    "Kingdom",
    "Shadow",
    "Symphony",
    "Frontier",
    "Labyrinth",
    "Covenant",
    "Paradox",
    "Monsoon",
    "Eclipse",
];

pub const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Action",
    "Thriller",
    "Documentary",
    "Romance",
    "Science Fiction",
    "Horror",
    "Animation",
    "Western",
];

/// NBA-style teams: (team name, city, arena).
pub const TEAMS: &[(&str, &str, &str)] = &[
    ("Lakers", "Los Angeles", "Crypto Arena"),
    ("Celtics", "Boston", "TD Garden"),
    ("Warriors", "San Francisco", "Chase Center"),
    ("Bulls", "Chicago", "United Center"),
    ("Knicks", "New York", "Madison Square Garden"),
    ("Heat", "Miami", "Kaseya Center"),
    ("Spurs", "San Antonio", "Frost Bank Center"),
    ("Suns", "Phoenix", "Footprint Center"),
    ("Bucks", "Milwaukee", "Fiserv Forum"),
    ("Nuggets", "Denver", "Ball Arena"),
    ("Mavericks", "Dallas", "American Airlines Center"),
    ("Raptors", "Toronto", "Scotiabank Arena"),
];

/// Colleges for player bios.
pub const COLLEGES: &[&str] = &[
    "UCLA",
    "Duke",
    "Kentucky",
    "Kansas",
    "North Carolina",
    "Michigan State",
    "Gonzaga",
    "Villanova",
    "Arizona",
    "Connecticut",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn papers_table1_rows_are_present() {
        let tahoe = LAKES.iter().find(|l| l.0 == "Lake Tahoe").unwrap();
        assert_eq!(tahoe.1, 497.0);
        assert_eq!(tahoe.3, "California");
        let crater = LAKES.iter().find(|l| l.0 == "Crater Lake").unwrap();
        assert_eq!(crater.1, 53.2);
        assert_eq!(crater.3, "Oregon");
        let fort_peck = LAKES.iter().find(|l| l.0 == "Fort Peck Lake").unwrap();
        assert_eq!(fort_peck.1, 981.0);
        assert_eq!(fort_peck.3, "Florida");
    }

    #[test]
    fn states_include_the_demo_disjunction() {
        assert!(US_STATES.contains(&"California"));
        assert!(US_STATES.contains(&"Nevada"));
    }

    #[test]
    fn lake_states_exist_in_province_lists() {
        let all: HashSet<&str> = US_STATES
            .iter()
            .chain(CA_PROVINCES)
            .chain(DE_STATES)
            .copied()
            .collect();
        for (name, _, _, state, _) in LAKES {
            assert!(
                all.contains(state),
                "lake {name} references unknown state {state}"
            );
        }
    }

    #[test]
    fn country_codes_are_unique() {
        let codes: HashSet<&str> = COUNTRIES.iter().map(|c| c.1).collect();
        assert_eq!(codes.len(), COUNTRIES.len());
    }

    #[test]
    fn geo_features_reference_known_country_codes() {
        let codes: HashSet<&str> = COUNTRIES.iter().map(|c| c.1).collect();
        for (n, _, c) in RIVERS {
            assert!(
                codes.contains(c),
                "river {n} references unknown country {c}"
            );
        }
        for (n, _, c) in MOUNTAINS {
            assert!(
                codes.contains(c),
                "mountain {n} references unknown country {c}"
            );
        }
        for (n, _, _, _, c) in LAKES {
            assert!(codes.contains(c), "lake {n} references unknown country {c}");
        }
        let continents: HashSet<&str> = CONTINENTS.iter().map(|c| c.0).collect();
        for (n, _, _, cont) in COUNTRIES {
            assert!(
                continents.contains(cont),
                "country {n} on unknown continent {cont}"
            );
        }
    }
}
