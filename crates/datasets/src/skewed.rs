//! Synthetic skewed workload: Zipf-distributed foreign-key fan-out.
//!
//! The three demo databases are friendly to any join order — their FK
//! fan-outs are nearly uniform, so E1/E3 never punish a planner that probes
//! through a hub. Real catalogs do: one country owns 10⁵ cities, one tag
//! labels half the items. This family makes that adversarial case explicit
//! so join-order experiments stop overfitting friendly data.
//!
//! Shape: `Tag(name, id)` ⟵ `Item(tag, score, label)` and
//! `Tag(id)` ⟵ `Geo(tag, region)`. Item and Geo foreign keys are drawn
//! from a Zipf distribution over tags — at `skew = 1.0` the hottest tag
//! owns roughly `1/H(n)` of all rows, and the hot tag is always `tag1` so
//! benchmarks can target the hub deterministically. `Item.score` ascends
//! with insertion order, keeping per-block zone maps tight so a range hull
//! on score stays selective for the cost model.

use crate::{flush, FLUSH_ROWS};
use prism_db::schema::ColumnDef;
use prism_db::types::DataType;
use prism_db::{Database, DatabaseBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct tags at scale 1.
const TAGS: usize = 100;
/// Item rows at scale 1.
const ITEMS: usize = 5_000;
/// Geo rows at scale 1.
const GEOS: usize = 1_000;

/// A reusable Zipf sampler over `1..=n` (rank 1 is the hottest key).
///
/// Sampling is cumulative-weight binary search: O(n) setup, O(log n) per
/// draw, no rejection loop — deterministic cost under any skew factor.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Weights are `1 / rank^skew`; `skew = 0` degrades to uniform.
    pub fn new(n: usize, skew: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for rank in 1..=n.max(1) {
            total += 1.0 / (rank as f64).powf(skew);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty weights");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x) + 1
    }
}

/// Build the skewed database. `scale` multiplies row volume; `skew` is the
/// Zipf exponent (1.0 ≈ classic Zipf, 0.0 = uniform fan-out).
pub fn skewed(seed: u64, scale: usize, skew: f64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x534b4557 /* "SKEW" */);
    let scale = scale.max(1);
    let tags = TAGS * scale;
    let zipf = Zipf::new(tags, skew);

    let mut b = DatabaseBuilder::new("Skewed");
    b.add_table(
        "Tag",
        vec![
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("id", DataType::Int),
        ],
    )
    .unwrap();
    b.add_table(
        "Item",
        vec![
            ColumnDef::new("tag", DataType::Int),
            ColumnDef::new("score", DataType::Decimal),
            ColumnDef::new("label", DataType::Text),
        ],
    )
    .unwrap();
    b.add_table(
        "Geo",
        vec![
            ColumnDef::new("tag", DataType::Int),
            ColumnDef::new("region", DataType::Text),
        ],
    )
    .unwrap();

    let mut tag_b = b.new_batch("Tag").unwrap();
    for k in 1..=tags {
        tag_b.push_string(0, format!("tag{k}")).unwrap();
        tag_b.push_int(1, k as i64).unwrap();
        if tag_b.rows() >= FLUSH_ROWS {
            tag_b = flush(&mut b, "Tag", tag_b);
        }
    }
    b.append_batch("Tag", tag_b).unwrap();
    let mut item_b = b.new_batch("Item").unwrap();
    for i in 0..ITEMS * scale {
        let tag = zipf.sample(&mut rng) as i64;
        // Ascending scores keep zone maps disjoint across blocks.
        let score = i as f64 + rng.gen_range(0.0..1.0);
        item_b.push_int(0, tag).unwrap();
        item_b.push_decimal(1, score).unwrap();
        item_b.push_string(2, format!("label{}", i % 50)).unwrap();
        if item_b.rows() >= FLUSH_ROWS {
            item_b = flush(&mut b, "Item", item_b);
        }
    }
    b.append_batch("Item", item_b).unwrap();
    const REGIONS: [&str; 6] = ["north", "south", "east", "west", "center", "offshore"];
    let mut geo_b = b.new_batch("Geo").unwrap();
    for _ in 0..GEOS * scale {
        let tag = zipf.sample(&mut rng) as i64;
        geo_b.push_int(0, tag).unwrap();
        geo_b
            .push_str(1, REGIONS[rng.gen_range(0..REGIONS.len())])
            .unwrap();
        if geo_b.rows() >= FLUSH_ROWS {
            geo_b = flush(&mut b, "Geo", geo_b);
        }
    }
    b.append_batch("Geo", geo_b).unwrap();

    b.add_foreign_key("Item", "tag", "Tag", "id").unwrap();
    b.add_foreign_key("Geo", "tag", "Tag", "id").unwrap();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgen::{Resolution, TaskGenConfig, TaskGenerator};

    #[test]
    fn zipf_concentrates_mass_on_low_ranks() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hub = 0usize;
        const DRAWS: usize = 10_000;
        for _ in 0..DRAWS {
            let r = zipf.sample(&mut rng);
            assert!((1..=100).contains(&r));
            if r == 1 {
                hub += 1;
            }
        }
        // H(100) ≈ 5.19, so rank 1 should own ≈19% of draws.
        assert!(hub > DRAWS / 10, "hub drew only {hub}/{DRAWS}");
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng) - 1] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((600..=1400).contains(&c), "rank {} drew {c}", i + 1);
        }
    }

    #[test]
    fn skewed_database_has_a_dominant_hub() {
        let db = skewed(7, 1, 1.0);
        let item = db.catalog().table_id("Item").unwrap();
        assert_eq!(db.row_count(item), ITEMS);
        // The CSR run of the hottest tag dwarfs the average fan-out.
        let stats = db.stats();
        let max_run = stats.max_key_run(item, 0) as f64;
        let avg_run = ITEMS as f64 / stats.distinct_count(item, 0) as f64;
        assert!(
            max_run > 8.0 * avg_run,
            "hub run {max_run} vs avg {avg_run}"
        );
    }

    #[test]
    fn skewed_is_deterministic_and_scales() {
        let a = skewed(3, 1, 1.0);
        let b = skewed(3, 1, 1.0);
        let tag = a.catalog().table_id("Tag").unwrap();
        assert_eq!(a.row_count(tag), b.row_count(tag));
        assert_eq!(
            a.stats()
                .max_key_run(a.catalog().table_id("Item").unwrap(), 0),
            b.stats()
                .max_key_run(b.catalog().table_id("Item").unwrap(), 0),
        );
        let big = skewed(3, 2, 1.0);
        assert_eq!(
            big.row_count(big.catalog().table_id("Tag").unwrap()),
            2 * TAGS
        );
    }

    /// The taskgen oracle works on the skewed family: synthesized tasks
    /// carry a ground-truth query whose execution matches its own samples.
    #[test]
    fn taskgen_produces_ground_truth_tasks_on_skewed_data() {
        let db = skewed(42, 1, 1.0);
        let g = TaskGenerator::new(&db, TaskGenConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let task = g
            .generate(Resolution::Exact, &mut rng)
            .expect("skewed schema graph yields tasks");
        assert_eq!(task.database, "Skewed");
        assert!(task.truth.nodes.len() >= 2);
        let rows = task.truth.execute(&db, 4_000).unwrap();
        assert!(!rows.is_empty());
    }
}
