//! Synthetic Mondial: relational geography shaped like May's Mondial
//! database (the paper's primary demo database).
//!
//! The table/FK layout mirrors the real Mondial fragments the paper's
//! motivating example uses — `Lake`, `geo_lake`, `Province`, `Country` — and
//! enough surrounding geography (rivers, seas, mountains, cities,
//! continents, politics) to give the schema graph realistic connectivity:
//! 14 tables and 19 join edges, with multiple join paths between the
//! frequently-queried tables (exactly the ambiguity Prism's Result section
//! exists to resolve).

use crate::vocab;
use crate::{flush, FLUSH_ROWS};
use prism_db::schema::ColumnDef;
use prism_db::types::{DataType, Date};
use prism_db::{Database, DatabaseBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build synthetic Mondial. `scale` multiplies the synthetic fill volume
/// (scale 1 ≈ 900 rows; scale 10 ≈ 5,500 rows); the embedded real rows are
/// always present.
pub fn mondial(seed: u64, scale: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4d4f4e4449414c /* "MONDIAL" */);
    let scale = scale.max(1);
    let mut b = DatabaseBuilder::new("Mondial");

    declare_schema(&mut b);

    // All fill goes through typed batches (the zero-`Value` bulk path); the
    // RNG draw order matches the old per-row loops exactly, so every seed
    // produces the same values it always did.

    // Continents and countries are fixed real data.
    let mut cont_b = b.new_batch("Continent").unwrap();
    for (name, area) in vocab::CONTINENTS {
        cont_b.push_str(0, name).unwrap();
        cont_b.push_decimal(1, *area).unwrap();
    }
    b.append_batch("Continent", cont_b).unwrap();
    let mut country_b = b.new_batch("Country").unwrap();
    let mut enc_b = b.new_batch("encompasses").unwrap();
    let mut pol_b = b.new_batch("Politics").unwrap();
    for (name, code, capital, continent) in vocab::COUNTRIES {
        let population = rng.gen_range(5_000_000i64..400_000_000);
        let area = rng.gen_range(50_000.0..10_000_000.0f64).round();
        country_b.push_str(0, name).unwrap();
        country_b.push_str(1, code).unwrap();
        country_b.push_str(2, capital).unwrap();
        country_b.push_int(3, population).unwrap();
        country_b.push_decimal(4, area).unwrap();
        enc_b.push_str(0, code).unwrap();
        enc_b.push_str(1, continent).unwrap();
        enc_b.push_decimal(2, 100.0).unwrap();
        // Politics: independence date and government form.
        let year = rng.gen_range(1500i16..1991);
        let month = rng.gen_range(1u8..=12);
        let day = rng.gen_range(1u8..=28);
        let gov =
            ["republic", "federal republic", "constitutional monarchy"][rng.gen_range(0..3usize)];
        pol_b.push_str(0, code).unwrap();
        pol_b.push_date(1, Date::new(year, month, day)).unwrap();
        pol_b.push_str(2, gov).unwrap();
    }
    b.append_batch("Country", country_b).unwrap();
    b.append_batch("encompasses", enc_b).unwrap();
    b.append_batch("Politics", pol_b).unwrap();

    // Provinces: real lists for USA/Canada/Germany, synthetic regions
    // elsewhere. Collect (name, country code) for later reference.
    let mut provinces: Vec<(String, &str)> = Vec::new();
    for s in vocab::US_STATES {
        provinces.push((s.to_string(), "USA"));
    }
    for p in vocab::CA_PROVINCES {
        provinces.push((p.to_string(), "CDN"));
    }
    for p in vocab::DE_STATES {
        provinces.push((p.to_string(), "D"));
    }
    for (name, code, _, _) in vocab::COUNTRIES {
        if matches!(*code, "USA" | "CDN" | "D") {
            continue;
        }
        for i in 1..=3 {
            provinces.push((format!("{name} Region {i}"), code));
        }
    }
    let mut prov_b = b.new_batch("Province").unwrap();
    for (name, code) in &provinces {
        let population = rng.gen_range(100_000i64..40_000_000);
        let area = rng.gen_range(1_000.0..700_000.0f64).round();
        prov_b.push_str(0, name).unwrap();
        prov_b.push_str(1, code).unwrap();
        prov_b.push_int(2, population).unwrap();
        prov_b.push_decimal(3, area).unwrap();
        if prov_b.rows() >= FLUSH_ROWS {
            prov_b = flush(&mut b, "Province", prov_b);
        }
    }
    b.append_batch("Province", prov_b).unwrap();

    // Cities: every capital, plus fill cities in provinces. City names
    // repeat across provinces (as in reality), which exercises ambiguous
    // keyword matches.
    let mut city_b = b.new_batch("City").unwrap();
    for (_, code, capital, _) in vocab::COUNTRIES {
        let prov = provinces
            .iter()
            .find(|(_, c)| c == code)
            .map(|(p, _)| p.clone())
            .unwrap_or_default();
        city_b.push_str(0, capital).unwrap();
        city_b.push_str(1, code).unwrap();
        city_b.push_string(2, prov).unwrap();
        city_b
            .push_int(3, rng.gen_range(200_000i64..20_000_000))
            .unwrap();
        city_b
            .push_decimal(4, rng.gen_range(0.0..2_000.0f64).round())
            .unwrap();
    }
    let cities_per_province = 2 * scale;
    for (prov, code) in &provinces {
        for _ in 0..cities_per_province {
            let name = vocab::CITIES[rng.gen_range(0..vocab::CITIES.len())];
            let population = rng.gen_range(5_000i64..900_000);
            let elevation = rng
                .gen_bool(0.9)
                .then(|| rng.gen_range(0.0..2_500.0f64).round());
            city_b.push_str(0, name).unwrap();
            city_b.push_str(1, code).unwrap();
            city_b.push_str(2, prov).unwrap();
            city_b.push_int(3, population).unwrap();
            match elevation {
                Some(e) => city_b.push_decimal(4, e).unwrap(),
                None => city_b.push_null(4),
            }
            if city_b.rows() >= FLUSH_ROWS {
                city_b = flush(&mut b, "City", city_b);
            }
        }
    }
    b.append_batch("City", city_b).unwrap();

    // Lakes: the real anchor lakes (including the paper's Table 1 rows),
    // then synthetic fill. Lake Tahoe gets its second geo row (Nevada).
    let mut lake_b = b.new_batch("Lake").unwrap();
    let mut geo_lake_b = b.new_batch("geo_lake").unwrap();
    for (name, area, depth, province, code) in vocab::LAKES {
        lake_b.push_str(0, name).unwrap();
        lake_b.push_decimal(1, *area).unwrap();
        lake_b.push_decimal(2, *depth).unwrap();
        lake_b
            .push_decimal(3, rng.gen_range(0.0..2_000.0f64).round())
            .unwrap();
        geo_lake_b.push_str(0, name).unwrap();
        geo_lake_b.push_str(1, code).unwrap();
        geo_lake_b.push_str(2, province).unwrap();
    }
    geo_lake_b.push_str(0, "Lake Tahoe").unwrap();
    geo_lake_b.push_str(1, "USA").unwrap();
    geo_lake_b.push_str(2, "Nevada").unwrap();
    let synth_lakes = 40 * scale;
    for i in 0..synth_lakes {
        let adj = vocab::TITLE_ADJECTIVES[rng.gen_range(0..vocab::TITLE_ADJECTIVES.len())];
        let noun = vocab::TITLE_NOUNS[rng.gen_range(0..vocab::TITLE_NOUNS.len())];
        let name = format!("Lake {adj} {noun} {i}");
        // Missing measurements, as in real Mondial.
        let area = rng
            .gen_bool(0.92)
            .then(|| (10f64).powf(rng.gen_range(0.3..4.2)).round().max(1.0));
        let depth = rng
            .gen_bool(0.85)
            .then(|| rng.gen_range(2.0..600.0f64).round());
        lake_b.push_str(0, &name).unwrap();
        match area {
            Some(a) => lake_b.push_decimal(1, a).unwrap(),
            None => lake_b.push_null(1),
        }
        match depth {
            Some(d) => lake_b.push_decimal(2, d).unwrap(),
            None => lake_b.push_null(2),
        }
        lake_b
            .push_decimal(3, rng.gen_range(0.0..3_000.0f64).round())
            .unwrap();
        // 1–2 geo rows for each synthetic lake.
        let geo_rows = 1 + usize::from(rng.gen_bool(0.25));
        for _ in 0..geo_rows {
            let (prov, code) = &provinces[rng.gen_range(0..provinces.len())];
            geo_lake_b.push_str(0, &name).unwrap();
            geo_lake_b.push_str(1, code).unwrap();
            geo_lake_b.push_str(2, prov).unwrap();
        }
        if lake_b.rows() >= FLUSH_ROWS {
            lake_b = flush(&mut b, "Lake", lake_b);
        }
        if geo_lake_b.rows() >= FLUSH_ROWS {
            geo_lake_b = flush(&mut b, "geo_lake", geo_lake_b);
        }
    }
    b.append_batch("Lake", lake_b).unwrap();
    b.append_batch("geo_lake", geo_lake_b).unwrap();

    // Rivers.
    let mut river_b = b.new_batch("River").unwrap();
    let mut geo_river_b = b.new_batch("geo_river").unwrap();
    for (name, length, code) in vocab::RIVERS {
        river_b.push_str(0, name).unwrap();
        river_b.push_decimal(1, *length).unwrap();
        river_b
            .push_decimal(2, rng.gen_range(100.0..4_000.0f64).round())
            .unwrap();
        let candidates: Vec<&(String, &str)> =
            provinces.iter().filter(|(_, c)| c == code).collect();
        let spans = 1 + rng.gen_range(0..2.min(candidates.len().max(1)));
        for s in 0..spans.min(candidates.len()) {
            let (prov, _) =
                candidates[(s * 7 + rng.gen_range(0..candidates.len())) % candidates.len()];
            geo_river_b.push_str(0, name).unwrap();
            geo_river_b.push_str(1, code).unwrap();
            geo_river_b.push_str(2, prov).unwrap();
        }
    }
    for i in 0..(30 * scale) {
        let noun = vocab::TITLE_NOUNS[rng.gen_range(0..vocab::TITLE_NOUNS.len())];
        let name = format!("{noun} River {i}");
        let length = rng
            .gen_bool(0.9)
            .then(|| rng.gen_range(40.0..3_000.0f64).round());
        river_b.push_str(0, &name).unwrap();
        match length {
            Some(l) => river_b.push_decimal(1, l).unwrap(),
            None => river_b.push_null(1),
        }
        river_b
            .push_decimal(2, rng.gen_range(50.0..3_500.0f64).round())
            .unwrap();
        let (prov, code) = &provinces[rng.gen_range(0..provinces.len())];
        geo_river_b.push_str(0, &name).unwrap();
        geo_river_b.push_str(1, code).unwrap();
        geo_river_b.push_str(2, prov).unwrap();
        if river_b.rows() >= FLUSH_ROWS {
            river_b = flush(&mut b, "River", river_b);
        }
        if geo_river_b.rows() >= FLUSH_ROWS {
            geo_river_b = flush(&mut b, "geo_river", geo_river_b);
        }
    }
    b.append_batch("River", river_b).unwrap();
    b.append_batch("geo_river", geo_river_b).unwrap();

    // Seas.
    let mut sea_b = b.new_batch("Sea").unwrap();
    let mut geo_sea_b = b.new_batch("geo_sea").unwrap();
    for (name, depth) in vocab::SEAS {
        sea_b.push_str(0, name).unwrap();
        sea_b.push_decimal(1, *depth).unwrap();
        for _ in 0..rng.gen_range(1..4) {
            let (prov, code) = &provinces[rng.gen_range(0..provinces.len())];
            geo_sea_b.push_str(0, name).unwrap();
            geo_sea_b.push_str(1, code).unwrap();
            geo_sea_b.push_str(2, prov).unwrap();
        }
    }
    b.append_batch("Sea", sea_b).unwrap();
    b.append_batch("geo_sea", geo_sea_b).unwrap();

    // Mountains.
    let mut mtn_b = b.new_batch("Mountain").unwrap();
    let mut geo_mtn_b = b.new_batch("geo_mountain").unwrap();
    for (name, height, code) in vocab::MOUNTAINS {
        let kind = ["volcano", "granite", "fold"][rng.gen_range(0..3usize)];
        mtn_b.push_str(0, name).unwrap();
        mtn_b.push_decimal(1, *height).unwrap();
        mtn_b.push_str(2, kind).unwrap();
        let candidates: Vec<&(String, &str)> =
            provinces.iter().filter(|(_, c)| c == code).collect();
        if !candidates.is_empty() {
            let (prov, _) = candidates[rng.gen_range(0..candidates.len())];
            geo_mtn_b.push_str(0, name).unwrap();
            geo_mtn_b.push_str(1, code).unwrap();
            geo_mtn_b.push_str(2, prov).unwrap();
        }
    }
    for i in 0..(30 * scale) {
        let adj = vocab::TITLE_ADJECTIVES[rng.gen_range(0..vocab::TITLE_ADJECTIVES.len())];
        let name = format!("Mount {adj} {i}");
        let kind = ["volcano", "granite", "fold"][rng.gen_range(0..3usize)];
        mtn_b.push_str(0, &name).unwrap();
        mtn_b
            .push_decimal(1, rng.gen_range(800.0..8_000.0f64).round())
            .unwrap();
        mtn_b.push_str(2, kind).unwrap();
        let (prov, code) = &provinces[rng.gen_range(0..provinces.len())];
        geo_mtn_b.push_str(0, &name).unwrap();
        geo_mtn_b.push_str(1, code).unwrap();
        geo_mtn_b.push_str(2, prov).unwrap();
        if mtn_b.rows() >= FLUSH_ROWS {
            mtn_b = flush(&mut b, "Mountain", mtn_b);
        }
        if geo_mtn_b.rows() >= FLUSH_ROWS {
            geo_mtn_b = flush(&mut b, "geo_mountain", geo_mtn_b);
        }
    }
    b.append_batch("Mountain", mtn_b).unwrap();
    b.append_batch("geo_mountain", geo_mtn_b).unwrap();

    b.build()
}

fn declare_schema(b: &mut DatabaseBuilder) {
    b.add_table(
        "Continent",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Area", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "Country",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Code", DataType::Text).not_null(),
            ColumnDef::new("Capital", DataType::Text),
            ColumnDef::new("Population", DataType::Int),
            ColumnDef::new("Area", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "Province",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Country", DataType::Text).not_null(),
            ColumnDef::new("Population", DataType::Int),
            ColumnDef::new("Area", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "City",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Country", DataType::Text).not_null(),
            ColumnDef::new("Province", DataType::Text),
            ColumnDef::new("Population", DataType::Int),
            ColumnDef::new("Elevation", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "Lake",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Area", DataType::Decimal),
            ColumnDef::new("Depth", DataType::Decimal),
            ColumnDef::new("Altitude", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "geo_lake",
        vec![
            ColumnDef::new("Lake", DataType::Text).not_null(),
            ColumnDef::new("Country", DataType::Text).not_null(),
            ColumnDef::new("Province", DataType::Text).not_null(),
        ],
    )
    .unwrap();
    b.add_table(
        "River",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Length", DataType::Decimal),
            ColumnDef::new("SourceAltitude", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "geo_river",
        vec![
            ColumnDef::new("River", DataType::Text).not_null(),
            ColumnDef::new("Country", DataType::Text).not_null(),
            ColumnDef::new("Province", DataType::Text).not_null(),
        ],
    )
    .unwrap();
    b.add_table(
        "Sea",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Depth", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "geo_sea",
        vec![
            ColumnDef::new("Sea", DataType::Text).not_null(),
            ColumnDef::new("Country", DataType::Text).not_null(),
            ColumnDef::new("Province", DataType::Text).not_null(),
        ],
    )
    .unwrap();
    b.add_table(
        "Mountain",
        vec![
            ColumnDef::new("Name", DataType::Text).not_null(),
            ColumnDef::new("Height", DataType::Decimal),
            ColumnDef::new("Type", DataType::Text),
        ],
    )
    .unwrap();
    b.add_table(
        "geo_mountain",
        vec![
            ColumnDef::new("Mountain", DataType::Text).not_null(),
            ColumnDef::new("Country", DataType::Text).not_null(),
            ColumnDef::new("Province", DataType::Text).not_null(),
        ],
    )
    .unwrap();
    b.add_table(
        "encompasses",
        vec![
            ColumnDef::new("Country", DataType::Text).not_null(),
            ColumnDef::new("Continent", DataType::Text).not_null(),
            ColumnDef::new("Percentage", DataType::Decimal),
        ],
    )
    .unwrap();
    b.add_table(
        "Politics",
        vec![
            ColumnDef::new("Country", DataType::Text).not_null(),
            ColumnDef::new("Independence", DataType::Date),
            ColumnDef::new("Government", DataType::Text),
        ],
    )
    .unwrap();

    // Join edges (declared FK → referenced key).
    for (from_t, from_c, to_t, to_c) in [
        ("Province", "Country", "Country", "Code"),
        ("City", "Country", "Country", "Code"),
        ("City", "Province", "Province", "Name"),
        ("geo_lake", "Lake", "Lake", "Name"),
        ("geo_lake", "Country", "Country", "Code"),
        ("geo_lake", "Province", "Province", "Name"),
        ("geo_river", "River", "River", "Name"),
        ("geo_river", "Country", "Country", "Code"),
        ("geo_river", "Province", "Province", "Name"),
        ("geo_sea", "Sea", "Sea", "Name"),
        ("geo_sea", "Country", "Country", "Code"),
        ("geo_sea", "Province", "Province", "Name"),
        ("geo_mountain", "Mountain", "Mountain", "Name"),
        ("geo_mountain", "Country", "Country", "Code"),
        ("geo_mountain", "Province", "Province", "Name"),
        ("encompasses", "Country", "Country", "Code"),
        ("encompasses", "Continent", "Continent", "Name"),
        ("Politics", "Country", "Country", "Code"),
        ("Country", "Capital", "City", "Name"),
    ] {
        b.add_foreign_key(from_t, from_c, to_t, to_c).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_db::exec::{JoinCond, PjQuery};
    use prism_db::types::Value;

    #[test]
    fn generation_is_deterministic() {
        let a = mondial(42, 1);
        let c = mondial(42, 1);
        assert_eq!(a.total_rows(), c.total_rows());
        let lake = a.catalog().table_id("Lake").unwrap();
        for r in 0..a.row_count(lake).min(20) as u32 {
            assert_eq!(
                a.table(lake).row(a.symbols(), r),
                c.table(lake).row(c.symbols(), r),
                "row {r} differs"
            );
        }
        let d = mondial(43, 1);
        assert_eq!(a.row_count(lake), d.row_count(lake), "schema sizes stable");
    }

    #[test]
    fn has_fourteen_tables_and_nineteen_edges() {
        let db = mondial(42, 1);
        assert_eq!(db.catalog().table_count(), 14);
        assert_eq!(db.graph().edge_count(), 19);
    }

    #[test]
    fn papers_walkthrough_rows_exist() {
        let db = mondial(42, 1);
        // Lake Tahoe with area 497 in both California and Nevada.
        let tahoe_cols: Vec<_> = db.index().columns_with_cell("Lake Tahoe").collect();
        assert!(tahoe_cols.len() >= 2, "Lake Tahoe in Lake and geo_lake");
        let lake = db.catalog().table_id("Lake").unwrap();
        let geo = db.catalog().table_id("geo_lake").unwrap();
        // The desired query of Section 1 returns the paper's rows.
        let q = PjQuery {
            nodes: vec![lake, geo],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0, // Lake.Name
                right_node: 1,
                right_col: 0, // geo_lake.Lake
            }],
            projection: vec![(1, 2), (0, 0), (0, 1)], // Province, Name, Area
        };
        let rows = q.execute(&db, 10_000).unwrap();
        let want = |prov: &str, name: &str, area: f64| {
            rows.iter().any(|r| {
                r[0] == Value::text(prov)
                    && r[1] == Value::text(name)
                    && r[2] == Value::Decimal(area)
            })
        };
        assert!(want("California", "Lake Tahoe", 497.0));
        assert!(want("Nevada", "Lake Tahoe", 497.0));
        assert!(want("Oregon", "Crater Lake", 53.2));
        assert!(want("Florida", "Fort Peck Lake", 981.0));
    }

    #[test]
    fn geo_rows_reference_existing_lakes_and_provinces() {
        let db = mondial(7, 1);
        let geo = db.catalog().table_id("geo_lake").unwrap();
        let lake_name = db.catalog().column_ref("Lake", "Name").unwrap();
        let prov_name = db.catalog().column_ref("Province", "Name").unwrap();
        let lake_ix = db.join_index(lake_name).unwrap();
        let prov_ix = db.join_index(prov_name).unwrap();
        let t = db.table(geo);
        let syms = db.symbols();
        for r in 0..t.row_count() {
            assert!(
                lake_ix.contains_key(t.column(0).join_key(r).unwrap()),
                "dangling lake ref {:?}",
                t.value_ref(syms, r as u32, 0)
            );
            assert!(
                prov_ix.contains_key(t.column(2).join_key(r).unwrap()),
                "dangling province ref {:?}",
                t.value_ref(syms, r as u32, 2)
            );
        }
    }

    #[test]
    fn scale_increases_volume() {
        let s1 = mondial(42, 1);
        let s3 = mondial(42, 3);
        assert!(s3.total_rows() > s1.total_rows() * 2);
    }

    #[test]
    fn loaded_databases_freeze_zone_maps_and_audit_memory() {
        let db = mondial(42, 2);
        // Every loader-built column spanning more than one block is
        // zone-mapped at freeze; single-block columns skip the metadata
        // (it could never prune anything a scan wouldn't touch anyway).
        for (tid, schema) in db.catalog().tables() {
            let t = db.table(tid);
            for c in 0..schema.arity() as u32 {
                let col = t.column(c);
                let name = format!("{}.{}", schema.name, schema.column(c).name);
                if col.len() > db.block_rows() {
                    assert_eq!(col.block_rows(), Some(db.block_rows()), "{name}");
                    assert_eq!(
                        col.block_meta().len(),
                        col.len().div_ceil(db.block_rows()),
                        "{name}"
                    );
                } else {
                    assert_eq!(col.block_rows(), None, "{name}");
                    assert!(col.block_meta().is_empty(), "{name}");
                }
            }
        }
        // ...and the memory audit covers every table and FK endpoint.
        let report = db.memory_report();
        assert_eq!(report.tables.len(), db.catalog().table_count());
        assert!(!report.indexes.is_empty());
        assert_eq!(
            report.total_index_bytes(),
            report.indexes.iter().map(|i| i.bytes).sum::<usize>()
        );
    }

    #[test]
    fn lakes_have_some_nulls_for_missing_value_experiments() {
        let db = mondial(42, 2);
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        let st = db.stats().column(area);
        assert!(
            st.null_count > 0,
            "synthetic lakes should include missing areas"
        );
        assert!(st.null_count < st.row_count / 2);
    }

    #[test]
    fn politics_has_date_typed_column() {
        let db = mondial(42, 1);
        let col = db.catalog().column_ref("Politics", "Independence").unwrap();
        assert_eq!(db.stats().column(col).dtype, DataType::Date);
        assert!(db.stats().column(col).min_num.is_some());
    }
}
