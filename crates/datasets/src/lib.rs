//! # prism-datasets — the demo source databases and task synthesis
//!
//! The Prism demonstration runs against three source databases — **Mondial**
//! (relational geography), **IMDB**, and **NBA** (Section 3). Real dumps are
//! not redistributable here, so this crate generates deterministic synthetic
//! databases with the same relational shape: the same tables, foreign-key
//! graph, and data types, with embedded real-world seed vocabularies so the
//! paper's walk-through works verbatim (Lake Tahoe really is a decimal-area
//! lake in California *and* Nevada here).
//!
//! The crate also provides [`taskgen`], the generator of *synthesized test
//! cases* that Section 2.4 evaluates on: it picks a ground-truth PJ query,
//! executes it, samples result rows, and derives multiresolution constraints
//! at a controlled resolution level (exact → disjunction → range → metadata
//! → missing).

pub mod imdb;
pub mod mondial;
pub mod nba;
pub mod skewed;
pub mod taskgen;
pub mod vocab;

pub use imdb::{imdb, imdb_large};
pub use mondial::mondial;
pub use nba::nba;
pub use skewed::{skewed, Zipf};
pub use taskgen::{MappingTask, Resolution, TaskGenConfig, TaskGenerator};

/// Rows a generator stages in one typed batch before appending. Bounds the
/// staging memory of the large tiers while keeping appends chunky.
pub(crate) const FLUSH_ROWS: usize = 16_384;

/// Append `batch` to `table` and hand back a fresh batch for the same
/// table. Generators push through [`prism_db::ColumnBatch`] (the
/// zero-`Value` bulk path) and flush every [`FLUSH_ROWS`] rows.
pub(crate) fn flush(
    b: &mut prism_db::DatabaseBuilder,
    table: &str,
    batch: prism_db::ColumnBatch,
) -> prism_db::ColumnBatch {
    b.append_batch(table, batch)
        .expect("generator batch matches its declared schema");
    b.new_batch(table).expect("table is declared")
}

/// Convenience: all three demo databases at default scale, seeded
/// deterministically.
pub fn all_databases(seed: u64) -> Vec<prism_db::Database> {
    vec![mondial(seed, 1), imdb(seed, 1), nba(seed, 1)]
}
