//! # prism-datasets — the demo source databases and task synthesis
//!
//! The Prism demonstration runs against three source databases — **Mondial**
//! (relational geography), **IMDB**, and **NBA** (Section 3). Real dumps are
//! not redistributable here, so this crate generates deterministic synthetic
//! databases with the same relational shape: the same tables, foreign-key
//! graph, and data types, with embedded real-world seed vocabularies so the
//! paper's walk-through works verbatim (Lake Tahoe really is a decimal-area
//! lake in California *and* Nevada here).
//!
//! The crate also provides [`taskgen`], the generator of *synthesized test
//! cases* that Section 2.4 evaluates on: it picks a ground-truth PJ query,
//! executes it, samples result rows, and derives multiresolution constraints
//! at a controlled resolution level (exact → disjunction → range → metadata
//! → missing).

pub mod imdb;
pub mod mondial;
pub mod nba;
pub mod skewed;
pub mod taskgen;
pub mod vocab;

pub use imdb::imdb;
pub use mondial::mondial;
pub use nba::nba;
pub use skewed::{skewed, Zipf};
pub use taskgen::{MappingTask, Resolution, TaskGenConfig, TaskGenerator};

/// Convenience: all three demo databases at default scale, seeded
/// deterministically.
pub fn all_databases(seed: u64) -> Vec<prism_db::Database> {
    vec![mondial(seed, 1), imdb(seed, 1), nba(seed, 1)]
}
