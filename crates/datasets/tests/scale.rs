//! The 10M-row scale tier. Ignored by default — the weekly CI job runs it
//! with `cargo test -q --release -- --ignored ingest_10m`.

use prism_datasets::imdb_large;
use prism_db::schema::TableId;

/// Build the `imdb_large` tier at ten million rows through the typed bulk
/// path and sanity-check volume, ingest accounting, and memory reporting.
#[test]
#[ignore = "multi-minute build; exercised by the weekly scale job"]
fn ingest_10m() {
    const TARGET: usize = 10_000_000;
    let db = imdb_large(7, TARGET);
    let total: usize = (0..db.catalog().table_count())
        .map(|i| db.row_count(TableId(i as u32)))
        .sum();
    assert!(
        (TARGET..TARGET * 2).contains(&total),
        "imdb_large(7, {TARGET}) produced {total} rows"
    );
    // Every row arrived through ColumnBatch appends, none through add_row.
    assert_eq!(db.ingest_report().batch_rows, total);
    let report = db.memory_report();
    assert!(
        report.peak_column_bytes() > 0,
        "ingest stats missing from {report}"
    );
}
