//! Property-based tests of the synthesized-task generator: whatever the
//! seed and resolution, tasks must be well-formed, parseable, and anchored
//! by their own ground truth.

use prism_datasets::{imdb, mondial, nba, Resolution, TaskGenConfig, TaskGenerator};
use prism_lang::{matches_value, parse_metadata_constraint, parse_value_constraint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn dbs() -> &'static [prism_db::Database; 3] {
    static DBS: OnceLock<[prism_db::Database; 3]> = OnceLock::new();
    DBS.get_or_init(|| [mondial(42, 1), imdb(42, 1), nba(42, 1)])
}

fn arb_resolution() -> impl Strategy<Value = Resolution> {
    prop_oneof![
        Just(Resolution::Exact),
        Just(Resolution::Disjunction),
        Just(Resolution::Range),
        Just(Resolution::Metadata),
        Just(Resolution::Missing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tasks_are_well_formed_for_any_seed(
        seed in 0u64..10_000,
        db_idx in 0usize..3,
        resolution in arb_resolution(),
    ) {
        let db = &dbs()[db_idx];
        let generator = TaskGenerator::new(db, TaskGenConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(task) = generator.generate(resolution, &mut rng) else {
            // Some (seed, resolution) combinations legitimately fail within
            // the attempt budget; that is not an error.
            return Ok(());
        };
        // Grid shape.
        prop_assert_eq!(task.metadata.len(), task.column_count);
        for row in &task.samples {
            prop_assert_eq!(row.len(), task.column_count);
            prop_assert!(row.iter().any(Option::is_some),
                "every sample row keeps at least one constraint");
        }
        // Everything parses.
        for cell in task.samples.iter().flatten().flatten() {
            parse_value_constraint(cell)
                .unwrap_or_else(|e| panic!("cell `{cell}` failed: {e}"));
        }
        for m in task.metadata.iter().flatten() {
            parse_metadata_constraint(m)
                .unwrap_or_else(|e| panic!("metadata `{m}` failed: {e}"));
        }
        // Ground truth is executable and non-empty.
        let rows = task.truth.execute(db, 4_000).unwrap();
        prop_assert!(!rows.is_empty());
        // The ground truth satisfies every sample row it generated.
        for sample in &task.samples {
            let parsed: Vec<_> = sample
                .iter()
                .map(|c| c.as_ref().map(|s| parse_value_constraint(s).unwrap()))
                .collect();
            let witness = rows.iter().any(|row| {
                row.iter().zip(&parsed).all(|(v, c)| {
                    c.as_ref().map(|c| matches_value(c, v)).unwrap_or(true)
                })
            });
            prop_assert!(witness, "ground truth lost its own sample: {}", task.truth_sql);
        }
        // Canonical key is stable.
        prop_assert_eq!(
            &task.truth_key,
            &prism_db::canonical_key(&task.truth, db)
        );
    }

    #[test]
    fn sample_row_count_is_respected(
        seed in 0u64..2_000,
        rows in 1usize..3,
    ) {
        let db = &dbs()[0];
        let generator = TaskGenerator::new(
            db,
            TaskGenConfig {
                sample_rows: rows,
                ..TaskGenConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(task) = generator.generate(Resolution::Exact, &mut rng) {
            prop_assert_eq!(task.samples.len(), rows);
            // Distinct sample rows.
            if rows == 2 {
                prop_assert_ne!(&task.samples[0], &task.samples[1]);
            }
        }
    }
}
