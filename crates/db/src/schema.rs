//! Schema catalog: tables, columns, and foreign keys.
//!
//! The catalog is the static half of the database. Foreign keys declared here
//! become the edges of the [`crate::graph::SchemaGraph`] that candidate
//! discovery walks.

use crate::error::DbError;
use crate::types::DataType;
use std::collections::HashMap;
use std::fmt;

/// Identifies a table within one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a column by table and ordinal position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    pub table: TableId,
    pub column: u32,
}

impl ColumnRef {
    pub fn new(table: TableId, column: u32) -> ColumnRef {
        ColumnRef { table, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.c{}", self.table.0, self.column)
    }
}

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

/// A table declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Position of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<u32> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .map(|i| i as u32)
    }

    pub fn column(&self, idx: u32) -> &ColumnDef {
        &self.columns[idx as usize]
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A foreign-key (joinable column pair) declaration: `from` references `to`.
/// Both directions are traversable during join-tree search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    pub from: ColumnRef,
    pub to: ColumnRef,
}

/// All schema information for one database.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    foreign_keys: Vec<ForeignKey>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table schema, returning its id.
    pub fn add_table(&mut self, schema: TableSchema) -> Result<TableId, DbError> {
        let key = schema.name.to_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(DbError::DuplicateTable(schema.name));
        }
        let mut seen = HashMap::new();
        for c in &schema.columns {
            if seen.insert(c.name.to_lowercase(), ()).is_some() {
                return Err(DbError::DuplicateColumn {
                    table: schema.name.clone(),
                    column: c.name.clone(),
                });
            }
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(key, id);
        self.tables.push(schema);
        Ok(id)
    }

    /// Register a foreign key between already-declared columns. The two
    /// columns must have join-compatible types (numeric with numeric, or
    /// exactly equal otherwise).
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<(), DbError> {
        let from_t = self.table(fk.from.table);
        let to_t = self.table(fk.to.table);
        let from_c = from_t.column(fk.from.column);
        let to_c = to_t.column(fk.to.column);
        let compatible =
            from_c.dtype == to_c.dtype || (from_c.dtype.is_numeric() && to_c.dtype.is_numeric());
        if !compatible {
            return Err(DbError::ForeignKeyTypeMismatch {
                from: format!("{}.{}", from_t.name, from_c.name),
                to: format!("{}.{}", to_t.name, to_c.name),
            });
        }
        self.foreign_keys.push(fk);
        Ok(())
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    pub fn table(&self, id: TableId) -> &TableSchema {
        &self.tables[id.index()]
    }

    pub fn tables(&self) -> impl Iterator<Item = (TableId, &TableSchema)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Look up a table id by case-insensitive name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(&name.to_lowercase()).copied()
    }

    /// Resolve `table.column` names into a [`ColumnRef`].
    pub fn column_ref(&self, table: &str, column: &str) -> Result<ColumnRef, DbError> {
        let tid = self
            .table_id(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let cid = self
            .table(tid)
            .column_index(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok(ColumnRef::new(tid, cid))
    }

    /// Human-readable `Table.Column` name of a column reference.
    pub fn column_name(&self, col: ColumnRef) -> String {
        let t = self.table(col.table);
        format!("{}.{}", t.name, t.column(col.column).name)
    }

    /// Every column of every table, in deterministic order.
    pub fn all_columns(&self) -> impl Iterator<Item = ColumnRef> + '_ {
        self.tables.iter().enumerate().flat_map(|(ti, t)| {
            (0..t.columns.len() as u32).map(move |ci| ColumnRef::new(TableId(ti as u32), ci))
        })
    }

    pub fn column_def(&self, col: ColumnRef) -> &ColumnDef {
        self.table(col.table).column(col.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lake_schema() -> TableSchema {
        TableSchema {
            name: "Lake".into(),
            columns: vec![
                ColumnDef {
                    name: "Name".into(),
                    dtype: DataType::Text,
                    nullable: false,
                },
                ColumnDef {
                    name: "Area".into(),
                    dtype: DataType::Decimal,
                    nullable: true,
                },
            ],
        }
    }

    fn geo_lake_schema() -> TableSchema {
        TableSchema {
            name: "geo_lake".into(),
            columns: vec![
                ColumnDef {
                    name: "Lake".into(),
                    dtype: DataType::Text,
                    nullable: false,
                },
                ColumnDef {
                    name: "Province".into(),
                    dtype: DataType::Text,
                    nullable: false,
                },
            ],
        }
    }

    #[test]
    fn add_and_resolve_tables() {
        let mut cat = Catalog::new();
        let lake = cat.add_table(lake_schema()).unwrap();
        assert_eq!(cat.table_id("lake"), Some(lake));
        assert_eq!(cat.table_id("LAKE"), Some(lake));
        assert_eq!(cat.table_id("river"), None);
        let cref = cat.column_ref("Lake", "area").unwrap();
        assert_eq!(cref, ColumnRef::new(lake, 1));
        assert_eq!(cat.column_name(cref), "Lake.Area");
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(lake_schema()).unwrap();
        assert!(matches!(
            cat.add_table(lake_schema()),
            Err(DbError::DuplicateTable(_))
        ));
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut cat = Catalog::new();
        let mut s = lake_schema();
        s.columns.push(ColumnDef {
            name: "name".into(),
            dtype: DataType::Text,
            nullable: true,
        });
        assert!(matches!(
            cat.add_table(s),
            Err(DbError::DuplicateColumn { .. })
        ));
    }

    #[test]
    fn foreign_key_type_check() {
        let mut cat = Catalog::new();
        let lake = cat.add_table(lake_schema()).unwrap();
        let geo = cat.add_table(geo_lake_schema()).unwrap();
        // Text joined to Text is fine: geo_lake.Lake -> Lake.Name.
        cat.add_foreign_key(ForeignKey {
            from: ColumnRef::new(geo, 0),
            to: ColumnRef::new(lake, 0),
        })
        .unwrap();
        // Text joined to Decimal is rejected.
        let err = cat.add_foreign_key(ForeignKey {
            from: ColumnRef::new(geo, 1),
            to: ColumnRef::new(lake, 1),
        });
        assert!(matches!(err, Err(DbError::ForeignKeyTypeMismatch { .. })));
        assert_eq!(cat.foreign_keys().len(), 1);
    }

    #[test]
    fn unknown_lookups_error() {
        let mut cat = Catalog::new();
        cat.add_table(lake_schema()).unwrap();
        assert!(matches!(
            cat.column_ref("River", "Name"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            cat.column_ref("Lake", "Depth"),
            Err(DbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn all_columns_enumerates_in_order() {
        let mut cat = Catalog::new();
        cat.add_table(lake_schema()).unwrap();
        cat.add_table(geo_lake_schema()).unwrap();
        let cols: Vec<_> = cat.all_columns().collect();
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0], ColumnRef::new(TableId(0), 0));
        assert_eq!(cols[3], ColumnRef::new(TableId(1), 1));
    }
}
