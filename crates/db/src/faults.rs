//! Deterministic fault injection for chaos testing.
//!
//! The discovery stack promises to *degrade*, not die, when a filter
//! validation panics, a UDF misbehaves, or a CSV chunk parser hits a bug.
//! Exercising those paths needs faults that are **seeded and reproducible**:
//! the same spec must fire at the same sites regardless of thread count or
//! interleaving. This module provides that primitive.
//!
//! A spec is parsed from `PRISM_FAULT` (or passed programmatically through
//! `DiscoveryConfig` in `prism_core`):
//!
//! ```text
//! PRISM_FAULT=panic:0.01:seed42            # one kind
//! PRISM_FAULT=panic:0.01:seed42,delay:0.1:seed7   # several, comma-separated
//! ```
//!
//! Each injection *site* carries a stable token — a filter index, a chunk's
//! starting row, a UDF name hash — and the decision is a pure function of
//! `(seed, site, token)`: a splitmix64-style hash compared against
//! `rate * 2^64`. Thread scheduling cannot change which faults fire.
//! Retries salt the token with the attempt number, so an injected
//! *transient* fault can succeed on retry while a real bug keeps failing.
//!
//! When no spec is configured the per-site check is a single `is_none()`
//! branch — the layer is free when disabled.

use std::fmt;
use std::sync::OnceLock;

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic (unwinds into the containment layer above the site).
    Panic,
    /// Busy-wait a bounded number of virtual steps, then proceed normally.
    Delay,
    /// Fail in a retryable way; the retry (salted token) usually succeeds.
    Transient,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "delay" => Some(FaultKind::Delay),
            "transient" => Some(FaultKind::Transient),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Delay => write!(f, "delay"),
            FaultKind::Transient => write!(f, "transient"),
        }
    }
}

/// Where in the stack a fault may be injected. Each site hashes with a
/// distinct tag so one seed produces independent streams per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Inside user-defined-function evaluation (`prism_lang`).
    UdfEval,
    /// Inside one validation slot on the worker pool (`prism_core`).
    ValidationSlot,
    /// Inside speculative batch scoring on the coordinator (`prism_core`).
    SpeculativeScore,
    /// Inside one CSV chunk parse (`prism_db::csv`).
    CsvChunk,
}

impl FaultSite {
    fn tag(self) -> u64 {
        match self {
            FaultSite::UdfEval => 0x9d5c_f3a1,
            FaultSite::ValidationSlot => 0x51ce_22b7,
            FaultSite::SpeculativeScore => 0xc0de_5c03,
            FaultSite::CsvChunk => 0x05cc_41d9,
        }
    }
}

/// One `kind:rate:seedN` clause of a fault spec.
#[derive(Debug, Clone, PartialEq)]
struct FaultEntry {
    kind: FaultKind,
    /// `rate * 2^64`, saturating; a hash below this threshold fires.
    threshold: u64,
    seed: u64,
}

/// A parsed `PRISM_FAULT` specification: zero or more injection clauses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    entries: Vec<FaultEntry>,
}

/// Fold the attempt number into a site token so retries re-roll the dice.
pub fn attempt_token(token: u64, attempt: u32) -> u64 {
    token ^ ((attempt as u64) << 48)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultSpec {
    /// Parse `kind:rate:seedN[,kind:rate:seedN...]`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut entries = Vec::new();
        for clause in s.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let kind = parts
                .next()
                .and_then(FaultKind::parse)
                .ok_or_else(|| format!("unknown fault kind in `{clause}`"))?;
            let rate: f64 = parts
                .next()
                .and_then(|r| r.parse().ok())
                .ok_or_else(|| format!("bad fault rate in `{clause}`"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate out of [0,1] in `{clause}`"));
            }
            let seed: u64 = match parts.next() {
                Some(s) => s
                    .strip_prefix("seed")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad fault seed in `{clause}` (want seedN)"))?,
                None => 0,
            };
            if parts.next().is_some() {
                return Err(format!("trailing fields in `{clause}`"));
            }
            let threshold = if rate >= 1.0 {
                u64::MAX
            } else {
                (rate * (u64::MAX as f64)) as u64
            };
            entries.push(FaultEntry {
                kind,
                threshold,
                seed,
            });
        }
        Ok(FaultSpec { entries })
    }

    /// Parse the `PRISM_FAULT` environment variable; `None` when unset,
    /// empty, or malformed (malformed specs are ignored rather than
    /// aborting ingest — chaos is opt-in, never load-bearing).
    pub fn from_env() -> Option<FaultSpec> {
        let raw = std::env::var("PRISM_FAULT").ok()?;
        match FaultSpec::parse(&raw) {
            Ok(spec) if !spec.entries.is_empty() => Some(spec),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Should a fault fire at `site` for this `token`? Deterministic in
    /// `(spec, site, token)`; first matching clause wins.
    pub fn check(&self, site: FaultSite, token: u64) -> Option<FaultKind> {
        for e in &self.entries {
            let h = splitmix64(e.seed ^ site.tag().wrapping_mul(0x2545_f491_4f6c_dd1d) ^ token);
            if h < e.threshold {
                return Some(e.kind);
            }
        }
        None
    }
}

/// The process-wide spec from `PRISM_FAULT`, read once. Sites that have no
/// config plumbing (UDF eval, CSV chunks) consult this; `prism_core` sites
/// prefer the spec on `DiscoveryConfig` (which defaults from this).
pub fn env_spec() -> Option<&'static FaultSpec> {
    static SPEC: OnceLock<Option<FaultSpec>> = OnceLock::new();
    SPEC.get_or_init(FaultSpec::from_env).as_ref()
}

/// Burn a bounded number of virtual steps for a `Delay` fault. Wall-clock
/// free (no sleeps), so delay injection perturbs interleavings without
/// making tests slow or flaky.
pub fn delay_steps(steps: u32) {
    for i in 0..steps {
        if i % 64 == 0 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// The panic payload used by injected `Panic`/`Transient` faults, so
/// containment layers can label them distinctly from organic bugs.
pub fn injected_panic(site: FaultSite, token: u64) -> ! {
    panic!("injected fault at {site:?} (token {token:#x})")
}

/// FNV-1a over a string, for sites keyed by a name rather than an index.
pub fn name_token(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_clause() {
        let s = FaultSpec::parse("panic:0.01:seed42").unwrap();
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.entries[0].kind, FaultKind::Panic);
        assert_eq!(s.entries[0].seed, 42);
    }

    #[test]
    fn parses_multiple_clauses_and_defaults_seed() {
        let s = FaultSpec::parse("delay:0.5,transient:1.0:seed7").unwrap();
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.entries[0].kind, FaultKind::Delay);
        assert_eq!(s.entries[0].seed, 0);
        assert_eq!(s.entries[1].kind, FaultKind::Transient);
        assert_eq!(s.entries[1].threshold, u64::MAX);
    }

    #[test]
    fn rejects_malformed_clauses() {
        assert!(FaultSpec::parse("explode:0.1:seed1").is_err());
        assert!(FaultSpec::parse("panic:nan:seed1").is_err());
        assert!(FaultSpec::parse("panic:2.0:seed1").is_err());
        assert!(FaultSpec::parse("panic:0.1:42").is_err());
        assert!(FaultSpec::parse("panic:0.1:seed1:extra").is_err());
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let always = FaultSpec::parse("panic:1.0:seed3").unwrap();
        let never = FaultSpec::parse("panic:0.0:seed3").unwrap();
        for t in 0..64 {
            assert_eq!(
                always.check(FaultSite::ValidationSlot, t),
                Some(FaultKind::Panic)
            );
            assert_eq!(never.check(FaultSite::ValidationSlot, t), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultSpec::parse("panic:0.3:seed1").unwrap();
        let b = FaultSpec::parse("panic:0.3:seed2").unwrap();
        let hits_a: Vec<u64> = (0..256)
            .filter(|&t| a.check(FaultSite::CsvChunk, t).is_some())
            .collect();
        let again: Vec<u64> = (0..256)
            .filter(|&t| a.check(FaultSite::CsvChunk, t).is_some())
            .collect();
        assert_eq!(hits_a, again);
        let hits_b: Vec<u64> = (0..256)
            .filter(|&t| b.check(FaultSite::CsvChunk, t).is_some())
            .collect();
        assert_ne!(hits_a, hits_b);
        // Rate ≈ 0.3 over 256 tokens should land in a broad band.
        assert!(hits_a.len() > 40 && hits_a.len() < 140);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let s = FaultSpec::parse("panic:0.5:seed9").unwrap();
        let slot: Vec<bool> = (0..128)
            .map(|t| s.check(FaultSite::ValidationSlot, t).is_some())
            .collect();
        let udf: Vec<bool> = (0..128)
            .map(|t| s.check(FaultSite::UdfEval, t).is_some())
            .collect();
        assert_ne!(slot, udf);
    }

    #[test]
    fn attempt_salting_rerolls() {
        let s = FaultSpec::parse("transient:0.5:seed5").unwrap();
        // Over many tokens, at least one fault that fires on attempt 0
        // clears on attempt 1 — that's what makes transients retryable.
        let recovered = (0..256u64).any(|t| {
            s.check(FaultSite::ValidationSlot, attempt_token(t, 0))
                .is_some()
                && s.check(FaultSite::ValidationSlot, attempt_token(t, 1))
                    .is_none()
        });
        assert!(recovered);
    }

    #[test]
    fn name_token_distinguishes_names() {
        assert_ne!(name_token("is_zip"), name_token("is_zap"));
        assert_eq!(name_token("same"), name_token("same"));
    }
}
