//! The schema graph and join-tree enumeration.
//!
//! Nodes are tables; edges are joinable column pairs (the declared foreign
//! keys, traversable in both directions). Candidate discovery (Section 2.3:
//! *"we exhaustively search through the source database schema graph and find
//! all possible join paths"*) enumerates **join trees** — acyclic, connected
//! edge sets — up to a size bound. We enumerate edge sets rather than vertex
//! sets because schema graphs are cyclic (e.g. City→Province→Country and
//! City→Country) and different spanning trees of the same tables are
//! different join conditions, hence different PJ queries.

use crate::schema::{ColumnRef, TableId};
use std::collections::HashSet;

/// Index of an edge within the schema graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An undirected join edge. `a`/`b` order follows the foreign-key declaration
/// (`a` = referencing column, `b` = referenced column) but traversal ignores
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    pub a: ColumnRef,
    pub b: ColumnRef,
}

impl JoinEdge {
    /// The endpoint column on `table`, if this edge touches it.
    pub fn endpoint_on(&self, table: TableId) -> Option<ColumnRef> {
        if self.a.table == table {
            Some(self.a)
        } else if self.b.table == table {
            Some(self.b)
        } else {
            None
        }
    }

    /// The table on the other side of `table`.
    pub fn other(&self, table: TableId) -> Option<TableId> {
        if self.a.table == table {
            Some(self.b.table)
        } else if self.b.table == table {
            Some(self.a.table)
        } else {
            None
        }
    }
}

/// An acyclic connected set of join edges plus the tables it spans.
/// A single table with no edges is a valid (trivial) join tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinTree {
    /// Sorted edge ids — the canonical identity of the tree.
    pub edges: Vec<EdgeId>,
    /// Sorted table ids spanned by the edges (or the single trivial table).
    pub tables: Vec<TableId>,
}

impl JoinTree {
    /// A tree with one table and no joins.
    pub fn single(table: TableId) -> JoinTree {
        JoinTree {
            edges: Vec::new(),
            tables: vec![table],
        }
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    pub fn contains_table(&self, t: TableId) -> bool {
        self.tables.binary_search(&t).is_ok()
    }

    /// True if `other`'s edge set is a subset of this tree's and, for trivial
    /// (edgeless) `other`, its table is spanned by this tree.
    pub fn contains_tree(&self, other: &JoinTree) -> bool {
        if other.edges.is_empty() {
            return other.tables.iter().all(|t| self.contains_table(*t));
        }
        other
            .edges
            .iter()
            .all(|e| self.edges.binary_search(e).is_ok())
    }

    /// Tables with exactly one incident edge in this tree (tree leaves).
    /// Trivial single-table trees have no leaves by this definition.
    pub fn leaf_tables(&self, graph: &SchemaGraph) -> Vec<TableId> {
        if self.edges.is_empty() {
            return Vec::new();
        }
        self.tables
            .iter()
            .copied()
            .filter(|&t| {
                self.edges
                    .iter()
                    .filter(|&&e| graph.edge(e).endpoint_on(t).is_some())
                    .count()
                    == 1
            })
            .collect()
    }
}

/// The join graph of one database.
#[derive(Debug, Clone, Default)]
pub struct SchemaGraph {
    edges: Vec<JoinEdge>,
    /// adjacency[t] = edge ids incident to table t.
    adjacency: Vec<Vec<EdgeId>>,
}

impl SchemaGraph {
    pub fn new(table_count: usize, edges: Vec<JoinEdge>) -> SchemaGraph {
        let mut adjacency = vec![Vec::new(); table_count];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            adjacency[e.a.table.index()].push(id);
            if e.b.table != e.a.table {
                adjacency[e.b.table.index()].push(id);
            }
        }
        SchemaGraph { edges, adjacency }
    }

    pub fn edge(&self, id: EdgeId) -> &JoinEdge {
        &self.edges[id.index()]
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn table_count(&self) -> usize {
        self.adjacency.len()
    }

    pub fn incident_edges(&self, table: TableId) -> &[EdgeId] {
        &self.adjacency[table.index()]
    }

    /// Enumerate every join tree spanning at most `max_tables` tables whose
    /// table set intersects `anchor_tables` (trees that touch none of the
    /// anchors can never host a related column, so they are skipped at the
    /// source). Trees are produced in non-decreasing size order —
    /// single-table trees first, then two-table joins, and so on — which lets
    /// callers with a time budget see cheap candidates first.
    pub fn enumerate_trees(&self, max_tables: usize, anchor_tables: &[TableId]) -> Vec<JoinTree> {
        let mut out = Vec::new();
        if max_tables == 0 {
            return out;
        }
        let anchors: HashSet<TableId> = anchor_tables.iter().copied().collect();
        let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
        // Frontier of trees of the current size, grown breadth-first.
        let mut frontier: Vec<JoinTree> = Vec::new();
        for &t in anchor_tables {
            let tree = JoinTree::single(t);
            frontier.push(tree.clone());
            out.push(tree);
        }
        // Expansion: attach one incident edge leading to a table not yet in
        // the tree. Dedup by canonical sorted edge list; a tree reached via
        // different growth orders collapses to one entry.
        for _size in 2..=max_tables {
            let mut next: Vec<JoinTree> = Vec::new();
            for tree in &frontier {
                for &t in &tree.tables {
                    for &eid in self.incident_edges(t) {
                        let edge = self.edge(eid);
                        let Some(other) = edge.other(t) else { continue };
                        if tree.contains_table(other) {
                            continue; // would revisit a table (self-join: out of scope)
                        }
                        let mut edges = tree.edges.clone();
                        let pos = edges.binary_search(&eid).unwrap_err();
                        edges.insert(pos, eid);
                        if !seen.insert(edges.clone()) {
                            continue;
                        }
                        let mut tables = tree.tables.clone();
                        let tpos = tables.binary_search(&other).unwrap_err();
                        tables.insert(tpos, other);
                        let grown = JoinTree { edges, tables };
                        next.push(grown);
                    }
                }
            }
            // Anchored trees only — but growth must pass through non-anchored
            // intermediate tables, so filter at emission, not expansion.
            out.extend(
                next.iter()
                    .filter(|t| t.tables.iter().any(|x| anchors.contains(x)))
                    .cloned(),
            );
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// All connected sub-trees of the given tree that span ≥1 table
    /// (including the full tree itself and trivial single-table trees).
    /// Candidate trees are small (≤ ~5 tables), so the 2^edges worst case is
    /// negligible.
    pub fn subtrees(&self, tree: &JoinTree) -> Vec<JoinTree> {
        let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
        let mut out: Vec<JoinTree> = Vec::new();
        for &t in &tree.tables {
            out.push(JoinTree::single(t));
        }
        let mut frontier: Vec<JoinTree> = out.clone();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for sub in &frontier {
                for &t in &sub.tables {
                    for &eid in self.incident_edges(t) {
                        if tree.edges.binary_search(&eid).is_err() {
                            continue; // not an edge of the parent tree
                        }
                        let edge = self.edge(eid);
                        let Some(other) = edge.other(t) else { continue };
                        if sub.contains_table(other) {
                            continue;
                        }
                        let mut edges = sub.edges.clone();
                        let pos = edges.binary_search(&eid).unwrap_err();
                        edges.insert(pos, eid);
                        if !seen.insert(edges.clone()) {
                            continue;
                        }
                        let mut tables = sub.tables.clone();
                        let tpos = tables.binary_search(&other).unwrap_err();
                        tables.insert(tpos, other);
                        next.push(JoinTree { edges, tables });
                    }
                }
            }
            out.extend(next.iter().cloned());
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cref(t: u32, c: u32) -> ColumnRef {
        ColumnRef::new(TableId(t), c)
    }

    /// Triangle graph: 0-1, 1-2, 0-2 — cyclic, like City/Province/Country.
    fn triangle() -> SchemaGraph {
        SchemaGraph::new(
            3,
            vec![
                JoinEdge {
                    a: cref(0, 0),
                    b: cref(1, 0),
                },
                JoinEdge {
                    a: cref(1, 1),
                    b: cref(2, 0),
                },
                JoinEdge {
                    a: cref(0, 1),
                    b: cref(2, 1),
                },
            ],
        )
    }

    /// Path graph 0-1-2-3.
    fn path4() -> SchemaGraph {
        SchemaGraph::new(
            4,
            vec![
                JoinEdge {
                    a: cref(0, 0),
                    b: cref(1, 0),
                },
                JoinEdge {
                    a: cref(1, 1),
                    b: cref(2, 0),
                },
                JoinEdge {
                    a: cref(2, 1),
                    b: cref(3, 0),
                },
            ],
        )
    }

    fn all_tables(n: u32) -> Vec<TableId> {
        (0..n).map(TableId).collect()
    }

    #[test]
    fn single_table_trees_enumerated_first() {
        let g = triangle();
        let trees = g.enumerate_trees(1, &all_tables(3));
        assert_eq!(trees.len(), 3);
        assert!(trees.iter().all(|t| t.edges.is_empty()));
    }

    #[test]
    fn triangle_two_table_trees() {
        let g = triangle();
        let trees = g.enumerate_trees(2, &all_tables(3));
        // 3 singles + 3 edges.
        assert_eq!(trees.len(), 6);
        assert_eq!(trees.iter().filter(|t| t.edges.len() == 1).count(), 3);
    }

    #[test]
    fn triangle_three_table_trees_are_spanning_trees() {
        let g = triangle();
        let trees = g.enumerate_trees(3, &all_tables(3));
        // Spanning trees of a triangle: 3 (choose which edge to drop).
        let three: Vec<_> = trees.iter().filter(|t| t.table_count() == 3).collect();
        assert_eq!(three.len(), 3);
        for t in &three {
            assert_eq!(t.edges.len(), 2, "a tree on 3 tables has 2 edges");
        }
    }

    #[test]
    fn no_duplicate_trees() {
        let g = path4();
        let trees = g.enumerate_trees(4, &all_tables(4));
        let mut keys: Vec<_> = trees
            .iter()
            .map(|t| (t.edges.clone(), t.tables.clone()))
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before);
        // Path graph subtrees (contiguous segments): 4 singles + 3 pairs +
        // 2 triples + 1 quad = 10.
        assert_eq!(trees.len(), 10);
    }

    #[test]
    fn anchor_filter_drops_untouched_trees() {
        let g = path4();
        // Anchored only at table 3: trees must contain table 3.
        let trees = g.enumerate_trees(4, &[TableId(3)]);
        assert!(trees.iter().all(|t| t.contains_table(TableId(3))));
        // Segments containing 3: [3], [2,3], [1..3], [0..3].
        assert_eq!(trees.len(), 4);
    }

    #[test]
    fn trees_emitted_in_nondecreasing_size() {
        let g = triangle();
        let trees = g.enumerate_trees(3, &all_tables(3));
        let sizes: Vec<usize> = trees.iter().map(|t| t.table_count()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn leaf_tables_of_a_path() {
        let g = path4();
        let full = g
            .enumerate_trees(4, &all_tables(4))
            .into_iter()
            .find(|t| t.table_count() == 4)
            .unwrap();
        let mut leaves = full.leaf_tables(&g);
        leaves.sort();
        assert_eq!(leaves, vec![TableId(0), TableId(3)]);
    }

    #[test]
    fn subtrees_of_a_path_tree() {
        let g = path4();
        let full = g
            .enumerate_trees(4, &all_tables(4))
            .into_iter()
            .find(|t| t.table_count() == 4)
            .unwrap();
        let subs = g.subtrees(&full);
        // Contiguous sub-segments of a 4-path: 4+3+2+1 = 10.
        assert_eq!(subs.len(), 10);
        assert!(subs
            .iter()
            .any(|s| s.contains_tree(&full) && full.contains_tree(s)));
    }

    #[test]
    fn contains_tree_subset_semantics() {
        let g = path4();
        let trees = g.enumerate_trees(4, &all_tables(4));
        let full = trees.iter().find(|t| t.table_count() == 4).unwrap();
        let pair = trees
            .iter()
            .find(|t| t.edges.len() == 1 && t.contains_table(TableId(1)))
            .unwrap();
        assert!(full.contains_tree(pair));
        assert!(!pair.contains_tree(full));
        let trivial = JoinTree::single(TableId(2));
        assert!(full.contains_tree(&trivial));
    }

    #[test]
    fn parallel_edges_yield_distinct_trees() {
        // Two different FKs between tables 0 and 1 (e.g. HomeTeam/AwayTeam).
        let g = SchemaGraph::new(
            2,
            vec![
                JoinEdge {
                    a: cref(0, 0),
                    b: cref(1, 0),
                },
                JoinEdge {
                    a: cref(0, 1),
                    b: cref(1, 0),
                },
            ],
        );
        let trees = g.enumerate_trees(2, &all_tables(2));
        let pairs: Vec<_> = trees.iter().filter(|t| t.edges.len() == 1).collect();
        assert_eq!(pairs.len(), 2, "each parallel edge is its own join tree");
    }
}
