//! CSV ingestion with type inference.
//!
//! The demo ships synthetic databases, but a downstream user's first move is
//! loading their own data. This module parses RFC-4180-style CSV (quoted
//! fields, embedded commas/newlines, doubled-quote escapes), infers column
//! types in the order `int → decimal → date → time → text`, and feeds
//! [`crate::DatabaseBuilder`]. Empty fields become NULL.

use crate::database::DatabaseBuilder;
use crate::error::DbError;
use crate::schema::{ColumnDef, TableId};
use crate::types::{DataType, Date, Time, Value};

/// Parse CSV text into rows of string fields. The first row is typically a
/// header, but this function does not interpret it.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"'); // doubled quote escape
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => in_quotes = true,
            ',' => {
                row.push(std::mem::take(&mut field));
                saw_any = true;
            }
            '\r' => {} // swallow; \n terminates the row
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            other => field.push(other),
        }
    }
    if saw_any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    rows
}

/// Infer the narrowest type that fits every non-empty field of a column.
/// Empty columns default to text.
pub fn infer_type(fields: &[&str]) -> DataType {
    let non_empty: Vec<&str> = fields
        .iter()
        .map(|s| s.trim())
        .filter(|s| !s.is_empty())
        .collect();
    if non_empty.is_empty() {
        return DataType::Text;
    }
    if non_empty.iter().all(|s| s.parse::<i64>().is_ok()) {
        return DataType::Int;
    }
    if non_empty
        .iter()
        .all(|s| s.parse::<f64>().map(|x| x.is_finite()).unwrap_or(false))
    {
        return DataType::Decimal;
    }
    if non_empty.iter().all(|s| Date::parse(s).is_some()) {
        return DataType::Date;
    }
    if non_empty.iter().all(|s| Time::parse(s).is_some()) {
        return DataType::Time;
    }
    DataType::Text
}

/// Convert one CSV field to a typed value; empty → NULL.
fn field_to_value(field: &str, dtype: DataType) -> Result<Value, DbError> {
    let s = field.trim();
    if s.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match dtype {
        DataType::Int => Value::Int(s.parse::<i64>().map_err(|_| DbError::TypeMismatch {
            table: String::new(),
            column: String::new(),
            expected: dtype,
            got: "text",
        })?),
        DataType::Decimal => {
            Value::decimal(s.parse::<f64>().map_err(|_| DbError::TypeMismatch {
                table: String::new(),
                column: String::new(),
                expected: dtype,
                got: "text",
            })?)?
        }
        DataType::Date => Value::Date(Date::parse(s).ok_or(DbError::TypeMismatch {
            table: String::new(),
            column: String::new(),
            expected: dtype,
            got: "text",
        })?),
        DataType::Time => Value::Time(Time::parse(s).ok_or(DbError::TypeMismatch {
            table: String::new(),
            column: String::new(),
            expected: dtype,
            got: "text",
        })?),
        DataType::Text => Value::Text(s.to_string()),
    })
}

impl DatabaseBuilder {
    /// Declare a table from CSV text whose first row is the header, with
    /// inferred column types, and insert all data rows.
    pub fn add_table_from_csv(
        &mut self,
        name: impl Into<String>,
        csv_text: &str,
    ) -> Result<TableId, DbError> {
        let name = name.into();
        let rows = parse_csv(csv_text);
        let Some((header, data)) = rows.split_first() else {
            return Err(DbError::InvalidQuery(format!(
                "CSV for table `{name}` has no header row"
            )));
        };
        let arity = header.len();
        for (i, row) in data.iter().enumerate() {
            if row.len() != arity {
                return Err(DbError::ArityMismatch {
                    table: format!("{name} (csv row {})", i + 2),
                    expected: arity,
                    got: row.len(),
                });
            }
        }
        let columns: Vec<ColumnDef> = (0..arity)
            .map(|c| {
                let fields: Vec<&str> = data.iter().map(|r| r[c].as_str()).collect();
                ColumnDef::new(header[c].trim(), infer_type(&fields))
            })
            .collect();
        let dtypes: Vec<DataType> = columns.iter().map(|c| c.dtype).collect();
        let tid = self.add_table(name.clone(), columns)?;
        for row in data {
            let values: Result<Vec<Value>, DbError> = row
                .iter()
                .zip(&dtypes)
                .map(|(f, t)| field_to_value(f, *t))
                .collect();
            self.add_row(&name, values?)?;
        }
        Ok(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAKES_CSV: &str = "\
Name,Area,Discovered
Lake Tahoe,497,1844-02-14
Crater Lake,53.2,1853-06-12
Fort Peck Lake,981,
\"Lake of the Woods\",4350,1688-01-01
";

    #[test]
    fn parses_simple_rows() {
        let rows = parse_csv("a,b\n1,2\n3,4\n");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["a", "b"]);
        assert_eq!(rows[2], vec!["3", "4"]);
    }

    #[test]
    fn parses_quotes_commas_and_embedded_newlines() {
        let rows =
            parse_csv("name,note\n\"Tahoe, Lake\",\"line1\nline2\"\n\"He said \"\"hi\"\"\",x\n");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1][0], "Tahoe, Lake");
        assert_eq!(rows[1][1], "line1\nline2");
        assert_eq!(rows[2][0], "He said \"hi\"");
    }

    #[test]
    fn handles_missing_trailing_newline_and_crlf() {
        let rows = parse_csv("a,b\r\n1,2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
        assert!(parse_csv("").is_empty());
    }

    #[test]
    fn type_inference_order() {
        assert_eq!(infer_type(&["1", "2", "3"]), DataType::Int);
        assert_eq!(infer_type(&["1", "2.5"]), DataType::Decimal);
        assert_eq!(infer_type(&["2001-01-01", "1999-12-31"]), DataType::Date);
        assert_eq!(infer_type(&["09:30", "10:00:01"]), DataType::Time);
        assert_eq!(infer_type(&["1", "x"]), DataType::Text);
        assert_eq!(infer_type(&["", ""]), DataType::Text);
        // Empty fields don't break inference.
        assert_eq!(infer_type(&["1", "", "3"]), DataType::Int);
    }

    #[test]
    fn builds_a_table_with_inferred_schema_and_nulls() {
        let mut b = DatabaseBuilder::new("csv");
        let tid = b.add_table_from_csv("Lake", LAKES_CSV).unwrap();
        let db = b.build();
        let schema = db.catalog().table(tid);
        assert_eq!(schema.columns[0].dtype, DataType::Text);
        assert_eq!(schema.columns[1].dtype, DataType::Decimal);
        assert_eq!(schema.columns[2].dtype, DataType::Date);
        assert_eq!(db.row_count(tid), 4);
        // Empty Discovered field became NULL.
        let discovered = db.catalog().column_ref("Lake", "Discovered").unwrap();
        assert_eq!(db.value(discovered, 2), Value::Null);
        // Quoted name kept intact; index finds it.
        assert_eq!(db.index().columns_with_cell("Lake of the Woods").count(), 1);
    }

    #[test]
    fn csv_tables_join_with_builder_tables() {
        let mut b = DatabaseBuilder::new("csv");
        b.add_table_from_csv("Lake", LAKES_CSV).unwrap();
        b.add_table_from_csv(
            "geo_lake",
            "Lake,State\nLake Tahoe,California\nLake Tahoe,Nevada\nCrater Lake,Oregon\n",
        )
        .unwrap();
        b.add_foreign_key("geo_lake", "Lake", "Lake", "Name")
            .unwrap();
        let db = b.build();
        assert_eq!(db.graph().edge_count(), 1);
        let q = crate::exec::PjQuery {
            nodes: vec![
                db.catalog().table_id("Lake").unwrap(),
                db.catalog().table_id("geo_lake").unwrap(),
            ],
            joins: vec![crate::exec::JoinCond {
                left_node: 1,
                left_col: 0,
                right_node: 0,
                right_col: 0,
            }],
            projection: vec![(1, 1), (0, 0)],
        };
        assert_eq!(q.execute(&db, 100).unwrap().len(), 3);
    }

    #[test]
    fn ragged_rows_are_rejected_with_row_number() {
        let mut b = DatabaseBuilder::new("csv");
        let err = b.add_table_from_csv("T", "a,b\n1\n").unwrap_err();
        match err {
            DbError::ArityMismatch { table, .. } => assert!(table.contains("row 2")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn headerless_csv_is_rejected() {
        let mut b = DatabaseBuilder::new("csv");
        assert!(b.add_table_from_csv("T", "").is_err());
    }
}
