//! Streaming CSV ingestion with type inference.
//!
//! The demo ships synthetic databases, but a downstream user's first move is
//! loading their own data — often at a scale where a per-cell `Value` detour
//! dominates build time. This module parses RFC-4180-style CSV (quoted
//! fields, embedded commas/newlines, doubled-quote escapes) **straight into
//! typed column batches**: a byte-span scanner yields field slices without
//! materializing `Vec<Vec<String>>`, one bounded inference pass over a
//! prefix sample picks column types, and row chunks are parsed in parallel
//! on a `std::thread::scope` pool (split at newline boundaries outside
//! quotes), each worker filling a [`ColumnBatch`] that the coordinator
//! splices into storage in chunk order. Empty fields become NULL.
//!
//! ## Lexical grammar
//!
//! Types are inferred in the order `int → decimal → date → time → text`
//! over the trimmed non-empty fields of each column, and field parsing
//! delegates to the standard library so the accepted grammar is exactly
//! `str::parse`:
//!
//! * **int** — `i64::from_str`: optional `+`/`-` sign, decimal digits.
//!   `"+5"` is an int; `"1e3"` is **not** (no exponent form).
//! * **decimal** — `f64::from_str`, restricted to finite results: signs,
//!   fractions, and exponents (`"1e3"`, `"+5"`, `".5"`) are decimals, while
//!   `"nan"`/`"inf"`/overflowing exponents fail the finite check and fall
//!   through to text.
//! * **date** — `YYYY-MM-DD`; **time** — `HH:MM[:SS]`.
//!
//! Surrounding ASCII whitespace is ignored when *typing* any field (quoted
//! or not), and a field whose trimmed content is empty is NULL in every
//! column. Stored **text** keeps quoted fields verbatim — `" x "` quoted
//! retains its padding — while unquoted text is trimmed.

use crate::batch::ColumnBatch;
use crate::database::DatabaseBuilder;
use crate::error::DbError;
use crate::faults::{self, FaultKind, FaultSite, FaultSpec};
use crate::schema::{ColumnDef, TableId};
use crate::types::{DataType, Date, Time, Value};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Rows of the bounded type-inference sample. Columns still all-empty after
/// the sample keep being scanned (those columns only) until a non-empty
/// field or EOF, so sampled inference agrees with whole-column inference.
const SAMPLE_ROWS: usize = 4096;

/// Inputs below this size are parsed on the calling thread; chunk split +
/// thread spawn overhead would dominate.
const PARALLEL_MIN_BYTES: usize = 64 * 1024;

/// Parse threads for the streaming ingest: `PRISM_INGEST_THREADS`, else the
/// machine's available parallelism (capped — ingest is memory-bound well
/// before 8 cores).
fn env_ingest_threads() -> usize {
    std::env::var("PRISM_INGEST_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(64))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        })
}

/// One scanned field: a byte span of the raw input, plus whether any quote
/// character participated (`quoted`) and whether the effective content
/// differs from the raw slice (`dirty` — quote chars to strip/unescape or
/// carriage returns to swallow).
#[derive(Debug, Clone, Copy)]
struct FieldSpan {
    start: usize,
    end: usize,
    quoted: bool,
    dirty: bool,
}

impl FieldSpan {
    /// The field's effective text: the raw slice when clean, else rebuilt
    /// into `scratch` (quote toggles removed, `""` unescaped, unquoted
    /// `\r` swallowed).
    fn effective<'a>(&self, text: &'a str, scratch: &'a mut String) -> &'a str {
        let raw = &text[self.start..self.end];
        if !self.dirty {
            return raw;
        }
        scratch.clear();
        unescape_into(raw, scratch);
        scratch
    }
}

/// Rebuild a dirty field's effective content. Mirrors the char loop of the
/// sequential parser: quotes toggle, doubled quotes inside quotes emit one
/// quote, `\r` outside quotes is swallowed, everything else is copied.
fn unescape_into(raw: &str, out: &mut String) {
    let bytes = raw.as_bytes();
    let mut in_quotes = false;
    let mut run = 0usize; // start of the current clean run
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if in_quotes {
            if b == b'"' {
                out.push_str(&raw[run..i]);
                if bytes.get(i + 1) == Some(&b'"') {
                    out.push('"');
                    i += 2;
                } else {
                    in_quotes = false;
                    i += 1;
                }
                run = i;
                continue;
            }
        } else if b == b'"' || b == b'\r' {
            out.push_str(&raw[run..i]);
            if b == b'"' {
                in_quotes = true;
            }
            i += 1;
            run = i;
            continue;
        }
        i += 1;
    }
    out.push_str(&raw[run..]);
}

/// Scan one row's field spans starting at `*pos`, advancing `*pos` past the
/// terminating newline. Returns `false` when no row remains. The trailing
/// line without a newline is a row unless it is completely empty (matching
/// the sequential parser: `""` input has no rows, `"a,b\n"` has one).
fn scan_row(bytes: &[u8], pos: &mut usize, spans: &mut Vec<FieldSpan>) -> bool {
    spans.clear();
    if *pos >= bytes.len() {
        return false;
    }
    let mut start = *pos;
    let mut in_quotes = false;
    let mut quoted = false;
    let mut dirty = false;
    let mut i = *pos;
    while i < bytes.len() {
        let b = bytes[i];
        if in_quotes {
            if b == b'"' {
                if bytes.get(i + 1) == Some(&b'"') {
                    i += 2;
                    continue;
                }
                in_quotes = false;
            }
            i += 1;
            continue;
        }
        match b {
            b'"' => {
                in_quotes = true;
                quoted = true;
                dirty = true;
            }
            b'\r' => dirty = true,
            b',' => {
                spans.push(FieldSpan {
                    start,
                    end: i,
                    quoted,
                    dirty,
                });
                start = i + 1;
                quoted = false;
                dirty = false;
            }
            b'\n' => {
                spans.push(FieldSpan {
                    start,
                    end: i,
                    quoted,
                    dirty,
                });
                *pos = i + 1;
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    // EOF without a newline.
    let span = FieldSpan {
        start,
        end: bytes.len(),
        quoted,
        dirty,
    };
    *pos = bytes.len();
    if spans.is_empty() {
        let empty = if span.dirty {
            let mut s = String::new();
            // Safe: spans always lie on ASCII delimiter boundaries.
            unescape_into(
                std::str::from_utf8(&bytes[span.start..span.end]).expect("input is str-backed"),
                &mut s,
            );
            s.is_empty()
        } else {
            span.start == span.end
        };
        if empty {
            return false;
        }
    }
    spans.push(span);
    true
}

/// Parse CSV text into rows of string fields. The first row is typically a
/// header, but this function does not interpret it.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let mut spans = Vec::new();
    let mut scratch = String::new();
    let mut rows = Vec::new();
    while scan_row(bytes, &mut pos, &mut spans) {
        let mut row = Vec::with_capacity(spans.len());
        for s in &spans {
            row.push(s.effective(text, &mut scratch).to_string());
        }
        rows.push(row);
    }
    rows
}

/// Like [`parse_csv`] but keeping each field's quoted flag, for the legacy
/// loader's quote-aware trim.
fn parse_csv_flagged(text: &str) -> Vec<Vec<(String, bool)>> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let mut spans = Vec::new();
    let mut scratch = String::new();
    let mut rows = Vec::new();
    while scan_row(bytes, &mut pos, &mut spans) {
        let mut row = Vec::with_capacity(spans.len());
        for s in &spans {
            row.push((s.effective(text, &mut scratch).to_string(), s.quoted));
        }
        rows.push(row);
    }
    rows
}

/// Infer the narrowest type that fits every non-empty field of a column.
/// Empty columns default to text. See the module docs for the accepted
/// lexical grammar of each type.
pub fn infer_type(fields: &[&str]) -> DataType {
    let mut ladder = TypeLadder::new();
    for s in fields {
        let t = s.trim();
        if !t.is_empty() {
            ladder.feed(t);
        }
    }
    ladder.decide()
}

/// Incremental form of [`infer_type`]: each rung is an "all fields parse"
/// predicate, falsified independently as trimmed non-empty fields stream
/// through, so sampled and whole-column inference share one definition.
#[derive(Debug, Clone)]
struct TypeLadder {
    any: bool,
    int_ok: bool,
    dec_ok: bool,
    date_ok: bool,
    time_ok: bool,
}

impl TypeLadder {
    fn new() -> TypeLadder {
        TypeLadder {
            any: false,
            int_ok: true,
            dec_ok: true,
            date_ok: true,
            time_ok: true,
        }
    }

    /// Feed one trimmed, non-empty field.
    fn feed(&mut self, t: &str) {
        self.any = true;
        if self.int_ok {
            self.int_ok = t.parse::<i64>().is_ok();
        }
        if self.dec_ok {
            self.dec_ok = t.parse::<f64>().map(|x| x.is_finite()).unwrap_or(false);
        }
        if self.date_ok {
            self.date_ok = Date::parse(t).is_some();
        }
        if self.time_ok {
            self.time_ok = Time::parse(t).is_some();
        }
    }

    fn decide(&self) -> DataType {
        if !self.any {
            DataType::Text
        } else if self.int_ok {
            DataType::Int
        } else if self.dec_ok {
            DataType::Decimal
        } else if self.date_ok {
            DataType::Date
        } else if self.time_ok {
            DataType::Time
        } else {
            DataType::Text
        }
    }
}

/// Does a trimmed, non-empty field parse under `dtype`? (`Text` fits all.)
fn fits(t: &str, dtype: DataType) -> bool {
    match dtype {
        DataType::Int => t.parse::<i64>().is_ok(),
        DataType::Decimal => t.parse::<f64>().map(|x| x.is_finite()).unwrap_or(false),
        DataType::Date => Date::parse(t).is_some(),
        DataType::Time => Time::parse(t).is_some(),
        DataType::Text => true,
    }
}

/// The type a column falls back to when `t` failed to parse under
/// `current`. `Int` demotes to `Decimal` when the offending field is a
/// finite decimal (e.g. `"2.5"`, `"1e3"`); everything else demotes to
/// `Text` — int-parsable sample fields can never be dates or times, so no
/// other rung can hold (the grammars are disjoint).
fn demote_from(current: DataType, t: &str) -> DataType {
    match current {
        DataType::Int if t.parse::<f64>().map(|x| x.is_finite()).unwrap_or(false) => {
            DataType::Decimal
        }
        _ => DataType::Text,
    }
}

/// The wider of two column types along the demotion chain.
fn wider(a: DataType, b: DataType) -> DataType {
    if a == b {
        return a;
    }
    match (a, b) {
        (DataType::Text, _) | (_, DataType::Text) => DataType::Text,
        (DataType::Int, DataType::Decimal) | (DataType::Decimal, DataType::Int) => {
            DataType::Decimal
        }
        _ => DataType::Text,
    }
}

/// Split `bytes[from..]` into at most `parts` chunks cut at newline
/// boundaries outside quotes, in one pass. Every `"` toggles quote parity —
/// a doubled escape toggles twice, so parity at any unquoted newline agrees
/// with the escape-aware scanner and the cut is always at a true row
/// boundary. Each chunk carries the index of its first data row.
fn split_chunks(bytes: &[u8], from: usize, parts: usize) -> Vec<(Range<usize>, usize)> {
    let len = bytes.len();
    if parts <= 1 || len - from < PARALLEL_MIN_BYTES {
        return vec![(from..len, 0)];
    }
    let target = (len - from) / parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut chunk_start = from;
    let mut rows_before = 0usize;
    let mut rows_in_chunk = 0usize;
    let mut in_quotes = false;
    let mut next_cut = from + target;
    for (i, &b) in bytes.iter().enumerate().skip(from) {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes => {
                rows_in_chunk += 1;
                if i + 1 >= next_cut && chunks.len() + 1 < parts && i + 1 < len {
                    chunks.push((chunk_start..i + 1, rows_before));
                    rows_before += rows_in_chunk;
                    rows_in_chunk = 0;
                    chunk_start = i + 1;
                    next_cut = i + 1 + target;
                }
            }
            _ => {}
        }
    }
    if chunk_start < len {
        chunks.push((chunk_start..len, rows_before));
    }
    chunks
}

/// One worker's parse of one chunk.
struct ChunkOutcome {
    batch: ColumnBatch,
    rows: usize,
    /// Per-column types after any local demotions.
    local: Vec<DataType>,
    /// True when a field failed its column type — the batch is discarded
    /// and the coordinator re-parses under the folded wider types.
    changed: bool,
    /// First ragged row: (absolute data row index, field count).
    arity_err: Option<(usize, usize)>,
}

/// Parse one chunk of data rows into a typed [`ColumnBatch`]. On a type
/// conflict the worker stops storing but keeps *checking*, folding every
/// needed demotion into `local` so the coordinator restarts at most once
/// per ladder step (Int → Decimal → Text bounds it at two restarts total).
fn parse_chunk(chunk: &str, start_row: usize, dtypes: &[DataType]) -> ChunkOutcome {
    let bytes = chunk.as_bytes();
    let arity = dtypes.len();
    let mut local = dtypes.to_vec();
    let mut batch = ColumnBatch::from_dtypes(dtypes);
    let mut changed = false;
    let mut pos = 0usize;
    let mut rows = 0usize;
    let mut spans = Vec::with_capacity(arity);
    let mut scratch = String::new();
    while scan_row(bytes, &mut pos, &mut spans) {
        if spans.len() != arity {
            return ChunkOutcome {
                batch,
                rows,
                local,
                changed,
                arity_err: Some((start_row + rows, spans.len())),
            };
        }
        for (c, span) in spans.iter().enumerate() {
            let eff = span.effective(chunk, &mut scratch);
            if !changed {
                if push_field(&mut batch, c, eff, span.quoted, local[c]) {
                    continue;
                }
                local[c] = demote_from(local[c], eff.trim());
                changed = true;
            } else {
                let t = eff.trim();
                if !t.is_empty() && !fits(t, local[c]) {
                    local[c] = demote_from(local[c], t);
                }
            }
        }
        rows += 1;
    }
    ChunkOutcome {
        batch,
        rows,
        local,
        changed,
        arity_err: None,
    }
}

/// Fault-isolated wrapper around [`parse_chunk`]: a panicking worker (real
/// bug or injected chaos) is caught and retried once — an injected
/// transient clears on the attempt-salted re-roll, a genuine bug repeats
/// and surfaces as [`DbError::IngestPanic`] naming the chunk's first row.
/// The builder is untouched either way, so a failed ingest leaves no
/// partial table behind.
fn parse_chunk_guarded(
    chunk: &str,
    start_row: usize,
    dtypes: &[DataType],
    inj: Option<&FaultSpec>,
) -> Result<ChunkOutcome, DbError> {
    let mut last_panic = String::new();
    for attempt in 0..2u32 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(spec) = inj {
                let token = faults::attempt_token(start_row as u64, attempt);
                match spec.check(FaultSite::CsvChunk, token) {
                    Some(FaultKind::Panic) | Some(FaultKind::Transient) => {
                        faults::injected_panic(FaultSite::CsvChunk, token)
                    }
                    Some(FaultKind::Delay) => faults::delay_steps(4096),
                    None => {}
                }
            }
            parse_chunk(chunk, start_row, dtypes)
        }));
        match result {
            Ok(outcome) => return Ok(outcome),
            Err(payload) => last_panic = panic_message(&payload),
        }
    }
    Err(DbError::IngestPanic {
        chunk_row: start_row,
        message: last_panic,
    })
}

/// Best-effort text of a panic payload (the `&str`/`String` forms cover
/// `panic!` and `assert!`; anything else is opaque).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Push one effective field into the batch under `dtype`; `false` on a
/// parse conflict (nothing is pushed). NULL rule: trimmed-empty content is
/// NULL everywhere; stored text keeps quoted fields verbatim and trims
/// unquoted ones.
fn push_field(batch: &mut ColumnBatch, c: usize, eff: &str, quoted: bool, dtype: DataType) -> bool {
    // The batch was built from the same dtypes this function matches on,
    // so a kind mismatch is structurally impossible.
    const ALIGNED: &str = "batch columns are built from the dtypes being pushed";
    if dtype == DataType::Text {
        if quoted {
            if eff.is_empty() {
                batch.push_null(c);
            } else {
                batch.push_str(c, eff).expect(ALIGNED);
            }
        } else {
            let t = eff.trim();
            if t.is_empty() {
                batch.push_null(c);
            } else {
                batch.push_str(c, t).expect(ALIGNED);
            }
        }
        return true;
    }
    let t = eff.trim();
    if t.is_empty() {
        batch.push_null(c);
        return true;
    }
    match dtype {
        DataType::Int => match t.parse::<i64>() {
            Ok(v) => {
                batch.push_int(c, v).expect(ALIGNED);
                true
            }
            Err(_) => false,
        },
        DataType::Decimal => match t.parse::<f64>() {
            Ok(v) if v.is_finite() => {
                batch.push_decimal(c, v).expect(ALIGNED);
                true
            }
            _ => false,
        },
        DataType::Date => match Date::parse(t) {
            Some(d) => {
                batch.push_date(c, d).expect(ALIGNED);
                true
            }
            None => false,
        },
        DataType::Time => match Time::parse(t) {
            Some(v) => {
                batch.push_time(c, v).expect(ALIGNED);
                true
            }
            None => false,
        },
        DataType::Text => unreachable!("handled above"),
    }
}

/// Convert one CSV field to a typed value; trimmed-empty → NULL. Quoted
/// text keeps its padding; unquoted text is trimmed (numeric/date/time
/// parsing trims either way, matching inference).
fn field_to_value(field: &str, quoted: bool, dtype: DataType) -> Result<Value, DbError> {
    if dtype == DataType::Text {
        return Ok(if quoted {
            if field.is_empty() {
                Value::Null
            } else {
                Value::Text(field.to_string())
            }
        } else {
            let t = field.trim();
            if t.is_empty() {
                Value::Null
            } else {
                Value::Text(t.to_string())
            }
        });
    }
    let s = field.trim();
    if s.is_empty() {
        return Ok(Value::Null);
    }
    let mismatch = || DbError::TypeMismatch {
        table: String::new(),
        column: String::new(),
        expected: dtype,
        got: "text",
    };
    Ok(match dtype {
        DataType::Int => Value::Int(s.parse::<i64>().map_err(|_| mismatch())?),
        DataType::Decimal => Value::decimal(s.parse::<f64>().map_err(|_| mismatch())?)?,
        DataType::Date => Value::Date(Date::parse(s).ok_or_else(mismatch)?),
        DataType::Time => Value::Time(Time::parse(s).ok_or_else(mismatch)?),
        DataType::Text => unreachable!("handled above"),
    })
}

impl DatabaseBuilder {
    /// Declare a table from CSV text whose first row is the header, with
    /// inferred column types, and stream all data rows into typed columns.
    ///
    /// This is the zero-`Value` path: fields are parsed as byte spans
    /// straight into [`ColumnBatch`]es, in parallel chunks when the input
    /// is large (`PRISM_INGEST_THREADS` steers the pool). Semantics match
    /// the legacy per-row loader except for the quote-aware trim fix
    /// (quoted text keeps its padding).
    pub fn add_table_from_csv(
        &mut self,
        name: impl Into<String>,
        csv_text: &str,
    ) -> Result<TableId, DbError> {
        self.ingest_csv(name.into(), csv_text, env_ingest_threads())
    }

    /// [`DatabaseBuilder::add_table_from_csv`] with an explicit parse
    /// thread count (tests pin 1/2/4; `0` is treated as 1).
    pub fn add_table_from_csv_threads(
        &mut self,
        name: impl Into<String>,
        csv_text: &str,
        threads: usize,
    ) -> Result<TableId, DbError> {
        self.ingest_csv(name.into(), csv_text, threads.max(1))
    }

    /// Stream a CSV file from disk: the file is read into one buffer and
    /// ingested via [`DatabaseBuilder::add_table_from_csv`].
    pub fn add_table_from_csv_path(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<TableId, DbError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| DbError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        self.ingest_csv(name.into(), &text, env_ingest_threads())
    }

    /// The pre-streaming loader: materializes every row as
    /// `Vec<(String, _)>`, converts each cell through [`Value`], and
    /// inserts row by row. Kept as the bench baseline the streaming path
    /// is gated against, and as an independent oracle for equivalence
    /// tests. Trim semantics match the streaming path (quote-aware).
    pub fn add_table_from_csv_legacy(
        &mut self,
        name: impl Into<String>,
        csv_text: &str,
    ) -> Result<TableId, DbError> {
        let name = name.into();
        let rows = parse_csv_flagged(csv_text);
        let Some((header, data)) = rows.split_first() else {
            return Err(DbError::InvalidQuery(format!(
                "CSV for table `{name}` has no header row"
            )));
        };
        let arity = header.len();
        for (i, row) in data.iter().enumerate() {
            if row.len() != arity {
                return Err(DbError::ArityMismatch {
                    table: format!("{name} (csv row {})", i + 2),
                    expected: arity,
                    got: row.len(),
                });
            }
        }
        let columns: Vec<ColumnDef> = (0..arity)
            .map(|c| {
                let fields: Vec<&str> = data.iter().map(|r| r[c].0.as_str()).collect();
                ColumnDef::new(header[c].0.trim(), infer_type(&fields))
            })
            .collect();
        let dtypes: Vec<DataType> = columns.iter().map(|c| c.dtype).collect();
        let tid = self.add_table(name.clone(), columns)?;
        for row in data {
            let values: Result<Vec<Value>, DbError> = row
                .iter()
                .zip(&dtypes)
                .map(|((f, quoted), t)| field_to_value(f, *quoted, *t))
                .collect();
            self.add_row(&name, values?)?;
        }
        Ok(tid)
    }

    /// The streaming ingest core: header scan → bounded sample inference →
    /// parallel chunk parse (with demote-and-restart on sample misses) →
    /// in-order batch splice. All parsing completes before the builder is
    /// touched, so an error leaves it unchanged.
    fn ingest_csv(&mut self, name: String, text: &str, threads: usize) -> Result<TableId, DbError> {
        let started = std::time::Instant::now();
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let mut spans = Vec::new();
        let mut scratch = String::new();
        if !scan_row(bytes, &mut pos, &mut spans) {
            return Err(DbError::InvalidQuery(format!(
                "CSV for table `{name}` has no header row"
            )));
        }
        let mut header: Vec<String> = Vec::with_capacity(spans.len());
        for s in &spans {
            header.push(s.effective(text, &mut scratch).trim().to_string());
        }
        let arity = header.len();
        let data_start = pos;

        // Bounded inference pass over a prefix sample. Past the horizon,
        // only columns that have not yet seen a non-empty field keep
        // scanning, so the sampled decision can only disagree with the
        // whole-column one in ways the verify-and-demote loop repairs.
        let mut ladders = vec![TypeLadder::new(); arity];
        let mut row = 0usize;
        while scan_row(bytes, &mut pos, &mut spans) {
            if spans.len() != arity {
                return Err(DbError::ArityMismatch {
                    table: format!("{name} (csv row {})", row + 2),
                    expected: arity,
                    got: spans.len(),
                });
            }
            let sampling = row < SAMPLE_ROWS;
            for (c, span) in spans.iter().enumerate() {
                if !sampling && ladders[c].any {
                    continue;
                }
                let t = span.effective(text, &mut scratch).trim();
                if !t.is_empty() {
                    // Feed owns no reference to scratch past this call.
                    let mut l = std::mem::replace(&mut ladders[c], TypeLadder::new());
                    l.feed(t);
                    ladders[c] = l;
                }
            }
            row += 1;
            if row >= SAMPLE_ROWS && ladders.iter().all(|l| l.any) {
                break;
            }
        }
        let mut dtypes: Vec<DataType> = ladders.iter().map(TypeLadder::decide).collect();

        // Parse rounds: conflicts fold into wider types and restart; the
        // demotion ladder (Int → Decimal → Text) bounds this at 3 rounds.
        let inj = faults::env_spec();
        let (outcomes, used_threads) = loop {
            let chunks = split_chunks(bytes, data_start, threads);
            let outcomes: Vec<ChunkOutcome> = if chunks.len() <= 1 {
                chunks
                    .into_iter()
                    .map(|(r, sr)| parse_chunk_guarded(&text[r], sr, &dtypes, inj))
                    .collect::<Result<_, DbError>>()?
            } else {
                let dt: &[DataType] = &dtypes;
                std::thread::scope(|s| {
                    let handles: Vec<_> = chunks
                        .iter()
                        .map(|(r, sr)| {
                            let (r, sr) = (r.clone(), *sr);
                            s.spawn(move || parse_chunk_guarded(&text[r], sr, dt, inj))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("guarded CSV worker cannot unwind"))
                        .collect::<Result<_, DbError>>()
                })?
            };
            if let Some((row, got)) = outcomes.iter().filter_map(|o| o.arity_err).min() {
                return Err(DbError::ArityMismatch {
                    table: format!("{name} (csv row {})", row + 2),
                    expected: arity,
                    got,
                });
            }
            if outcomes.iter().any(|o| o.changed) {
                for o in &outcomes {
                    for (c, &t) in o.local.iter().enumerate() {
                        dtypes[c] = wider(dtypes[c], t);
                    }
                }
                continue;
            }
            let n = outcomes.len();
            break (outcomes, n);
        };

        let columns: Vec<ColumnDef> = header
            .iter()
            .zip(&dtypes)
            .map(|(h, &d)| ColumnDef::new(h.clone(), d))
            .collect();
        let tid = self.add_table(name, columns)?;
        let mut total_rows = 0usize;
        for o in outcomes {
            total_rows += o.rows;
            self.append_batch_internal(tid, o.batch)?;
        }
        let ing = self.ingest_mut();
        ing.csv_bytes += text.len();
        ing.csv_rows += total_rows;
        ing.csv_parse_nanos += started.elapsed().as_nanos() as u64;
        ing.parse_threads = ing.parse_threads.max(used_threads);
        Ok(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAKES_CSV: &str = "\
Name,Area,Discovered
Lake Tahoe,497,1844-02-14
Crater Lake,53.2,1853-06-12
Fort Peck Lake,981,
\"Lake of the Woods\",4350,1688-01-01
";

    #[test]
    fn parses_simple_rows() {
        let rows = parse_csv("a,b\n1,2\n3,4\n");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["a", "b"]);
        assert_eq!(rows[2], vec!["3", "4"]);
    }

    #[test]
    fn parses_quotes_commas_and_embedded_newlines() {
        let rows =
            parse_csv("name,note\n\"Tahoe, Lake\",\"line1\nline2\"\n\"He said \"\"hi\"\"\",x\n");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1][0], "Tahoe, Lake");
        assert_eq!(rows[1][1], "line1\nline2");
        assert_eq!(rows[2][0], "He said \"hi\"");
    }

    #[test]
    fn handles_missing_trailing_newline_and_crlf() {
        let rows = parse_csv("a,b\r\n1,2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
        assert!(parse_csv("").is_empty());
    }

    #[test]
    fn trailing_line_rules_match_the_sequential_parser() {
        // A trailing quoted-empty or bare-CR line is no row at all...
        assert_eq!(parse_csv("a,b\n\"\"").len(), 1);
        assert_eq!(parse_csv("a,b\n\r").len(), 1);
        // ...but any comma or content makes it one.
        assert_eq!(parse_csv("a,b\n,").len(), 2);
        assert_eq!(parse_csv("a,b\n\" \"")[1], vec![" "]);
        // A lone newline is one row with one empty field.
        assert_eq!(parse_csv("\n"), vec![vec![String::new()]]);
    }

    #[test]
    fn type_inference_order() {
        assert_eq!(infer_type(&["1", "2", "3"]), DataType::Int);
        assert_eq!(infer_type(&["1", "2.5"]), DataType::Decimal);
        assert_eq!(infer_type(&["2001-01-01", "1999-12-31"]), DataType::Date);
        assert_eq!(infer_type(&["09:30", "10:00:01"]), DataType::Time);
        assert_eq!(infer_type(&["1", "x"]), DataType::Text);
        assert_eq!(infer_type(&["", ""]), DataType::Text);
        // Empty fields don't break inference.
        assert_eq!(infer_type(&["1", "", "3"]), DataType::Int);
    }

    /// The accepted lexical grammar is exactly `str::parse` (module docs):
    /// `+5` is an int, `1e3` is a decimal (i64 has no exponent form), and
    /// non-finite spellings fall through to text.
    #[test]
    fn numeric_grammar_is_str_parse() {
        assert_eq!(infer_type(&["+5", "-3"]), DataType::Int);
        assert_eq!(infer_type(&["1e3", "2"]), DataType::Decimal);
        assert_eq!(infer_type(&[".5", "+2.5", "1E-2"]), DataType::Decimal);
        assert_eq!(infer_type(&["nan"]), DataType::Text);
        assert_eq!(infer_type(&["inf", "1"]), DataType::Text);
        assert_eq!(infer_type(&["1e400"]), DataType::Text); // overflows to inf
        assert_eq!(infer_type(&[" 5 "]), DataType::Int); // typing trims
    }

    #[test]
    fn builds_a_table_with_inferred_schema_and_nulls() {
        let mut b = DatabaseBuilder::new("csv");
        let tid = b.add_table_from_csv("Lake", LAKES_CSV).unwrap();
        let db = b.build();
        let schema = db.catalog().table(tid);
        assert_eq!(schema.columns[0].dtype, DataType::Text);
        assert_eq!(schema.columns[1].dtype, DataType::Decimal);
        assert_eq!(schema.columns[2].dtype, DataType::Date);
        assert_eq!(db.row_count(tid), 4);
        // Empty Discovered field became NULL.
        let discovered = db.catalog().column_ref("Lake", "Discovered").unwrap();
        assert_eq!(db.value(discovered, 2), Value::Null);
        // Quoted name kept intact; index finds it.
        assert_eq!(db.index().columns_with_cell("Lake of the Woods").count(), 1);
        // Ingest accounting reached the report.
        assert_eq!(db.ingest_report().csv_rows, 4);
        assert_eq!(db.ingest_report().csv_bytes, LAKES_CSV.len());
    }

    #[test]
    fn csv_tables_join_with_builder_tables() {
        let mut b = DatabaseBuilder::new("csv");
        b.add_table_from_csv("Lake", LAKES_CSV).unwrap();
        b.add_table_from_csv(
            "geo_lake",
            "Lake,State\nLake Tahoe,California\nLake Tahoe,Nevada\nCrater Lake,Oregon\n",
        )
        .unwrap();
        b.add_foreign_key("geo_lake", "Lake", "Lake", "Name")
            .unwrap();
        let db = b.build();
        assert_eq!(db.graph().edge_count(), 1);
        let q = crate::exec::PjQuery {
            nodes: vec![
                db.catalog().table_id("Lake").unwrap(),
                db.catalog().table_id("geo_lake").unwrap(),
            ],
            joins: vec![crate::exec::JoinCond {
                left_node: 1,
                left_col: 0,
                right_node: 0,
                right_col: 0,
            }],
            projection: vec![(1, 1), (0, 0)],
        };
        assert_eq!(q.execute(&db, 100).unwrap().len(), 3);
    }

    #[test]
    fn ragged_rows_are_rejected_with_row_number() {
        let mut b = DatabaseBuilder::new("csv");
        let err = b.add_table_from_csv("T", "a,b\n1\n").unwrap_err();
        match err {
            DbError::ArityMismatch { table, .. } => assert!(table.contains("row 2")),
            other => panic!("unexpected {other:?}"),
        }
        // A late ragged row (past any sample prefix) is still caught before
        // the table is declared.
        let mut b = DatabaseBuilder::new("csv");
        let err = b
            .add_table_from_csv("T", "a,b\n1,2\n3,4\n5,6,7\n")
            .unwrap_err();
        match err {
            DbError::ArityMismatch { table, got, .. } => {
                assert!(table.contains("row 4"), "{table}");
                assert_eq!(got, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(b.new_batch("T").is_err(), "builder left untouched");
    }

    #[test]
    fn headerless_csv_is_rejected() {
        let mut b = DatabaseBuilder::new("csv");
        assert!(b.add_table_from_csv("T", "").is_err());
    }

    /// Satellite regression: quoted text keeps its padding; unquoted text
    /// is still trimmed (and quoted whitespace-only is not NULL).
    #[test]
    fn quoted_text_keeps_padding_unquoted_is_trimmed() {
        let csv = "name,tag\n\" padded \",  plain  \n\" \",x\n";
        for streaming in [true, false] {
            let mut b = DatabaseBuilder::new("trim");
            let tid = if streaming {
                b.add_table_from_csv("T", csv).unwrap()
            } else {
                b.add_table_from_csv_legacy("T", csv).unwrap()
            };
            let db = b.build();
            assert_eq!(
                db.value_ref(crate::schema::ColumnRef::new(tid, 0), 0)
                    .to_value(),
                Value::text(" padded "),
                "streaming={streaming}"
            );
            assert_eq!(
                db.value_ref(crate::schema::ColumnRef::new(tid, 1), 0)
                    .to_value(),
                Value::text("plain"),
                "streaming={streaming}"
            );
            assert_eq!(
                db.value_ref(crate::schema::ColumnRef::new(tid, 0), 1)
                    .to_value(),
                Value::text(" "),
                "streaming={streaming}"
            );
        }
    }

    /// Quoted padded numbers still parse (typing trims quoted fields too,
    /// matching `infer_type`).
    #[test]
    fn quoted_padded_numbers_stay_numeric() {
        let mut b = DatabaseBuilder::new("q");
        let tid = b.add_table_from_csv("T", "x\n\" 5 \"\n7\n").unwrap();
        let db = b.build();
        assert_eq!(db.catalog().table(tid).columns[0].dtype, DataType::Int);
        assert_eq!(
            db.value(crate::schema::ColumnRef::new(tid, 0), 0),
            Value::Int(5)
        );
    }

    /// A sample that says Int but a later field that is decimal (or text)
    /// demotes the column and re-parses — the final schema matches
    /// whole-column inference.
    #[test]
    fn late_conflicts_demote_like_whole_column_inference() {
        // Build a CSV whose first SAMPLE_ROWS rows are ints and whose last
        // row is wider.
        for (tail, want) in [
            ("2.5", DataType::Decimal),
            ("1e3", DataType::Decimal),
            ("x", DataType::Text),
            ("inf", DataType::Text),
        ] {
            let mut csv = String::from("v\n");
            for i in 0..(SAMPLE_ROWS + 10) {
                csv.push_str(&format!("{i}\n"));
            }
            csv.push_str(tail);
            csv.push('\n');
            let mut b = DatabaseBuilder::new("demote");
            let tid = b.add_table_from_csv("T", &csv).unwrap();
            let db = b.build();
            assert_eq!(
                db.catalog().table(tid).columns[0].dtype,
                want,
                "tail={tail}"
            );
            assert_eq!(db.row_count(tid), SAMPLE_ROWS + 11);
        }
    }

    /// Columns all-empty within the sample keep scanning until their first
    /// non-empty field, so the inferred type still matches whole-column
    /// inference.
    #[test]
    fn all_empty_sample_columns_extend_the_scan() {
        let mut csv = String::from("a,b\n");
        for i in 0..(SAMPLE_ROWS + 5) {
            csv.push_str(&format!("{i},\n"));
        }
        csv.push_str("9,42\n");
        let mut b = DatabaseBuilder::new("empty");
        let tid = b.add_table_from_csv("T", &csv).unwrap();
        let db = b.build();
        assert_eq!(db.catalog().table(tid).columns[1].dtype, DataType::Int);
        assert_eq!(
            db.stats()
                .column(crate::schema::ColumnRef::new(tid, 1))
                .null_count as usize,
            SAMPLE_ROWS + 5
        );
    }

    #[test]
    fn csv_path_ingest_reads_files() {
        let dir = std::env::temp_dir();
        let path = dir.join("prism_csv_path_test.csv");
        std::fs::write(&path, LAKES_CSV).unwrap();
        let mut b = DatabaseBuilder::new("file");
        let tid = b.add_table_from_csv_path("Lake", &path).unwrap();
        let db = b.build();
        assert_eq!(db.row_count(tid), 4);
        std::fs::remove_file(&path).ok();
        let mut b = DatabaseBuilder::new("file");
        let err = b
            .add_table_from_csv_path("Lake", dir.join("prism_no_such_file.csv"))
            .unwrap_err();
        assert!(matches!(err, DbError::Io { .. }));
    }

    /// The legacy `Value`-detour loader and the streaming loader build
    /// identical tables on the toy fixture.
    #[test]
    fn legacy_and_streaming_loaders_agree_on_lakes() {
        let mut a = DatabaseBuilder::new("s");
        let ta = a.add_table_from_csv("Lake", LAKES_CSV).unwrap();
        let da = a.build();
        let mut l = DatabaseBuilder::new("l");
        let tl = l.add_table_from_csv_legacy("Lake", LAKES_CSV).unwrap();
        let dl = l.build();
        assert_eq!(
            da.catalog().table(ta).columns,
            dl.catalog().table(tl).columns
        );
        assert_eq!(da.row_count(ta), dl.row_count(tl));
        for r in 0..da.row_count(ta) as u32 {
            assert_eq!(
                da.table(ta).row(da.symbols(), r),
                dl.table(tl).row(dl.symbols(), r)
            );
        }
    }
}
