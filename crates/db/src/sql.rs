//! SQL rendering of PJ queries.
//!
//! Prism's Result section displays each discovered schema mapping as a SQL
//! statement (Figure 4b). The rendering uses plain `FROM t1, t2 WHERE …`
//! join syntax exactly as the paper's example does:
//! `SELECT geo_lake.Province, Lake.Name, Lake.Area FROM Lake, geo_lake WHERE
//! Lake.Name = geo_lake.Lake`.

use crate::database::Database;
use crate::exec::PjQuery;
use std::collections::HashMap;

/// Render `q` as a SQL string against `db`'s catalog.
///
/// Node slots referring to distinct tables use bare table names; repeated
/// tables (future self-join support) get `AS t<slot>` aliases so the output
/// is always unambiguous.
pub fn render_sql(q: &PjQuery, db: &Database) -> String {
    let catalog = db.catalog();
    // Count table occurrences to decide whether aliases are needed.
    let mut occurrences: HashMap<u32, usize> = HashMap::new();
    for t in &q.nodes {
        *occurrences.entry(t.0).or_insert(0) += 1;
    }
    let node_name = |slot: usize| -> String {
        let tid = q.nodes[slot];
        let base = &catalog.table(tid).name;
        if occurrences[&tid.0] > 1 {
            format!("t{slot}")
        } else {
            base.clone()
        }
    };
    let col_name = |slot: usize, col: u32| -> String {
        let tid = q.nodes[slot];
        format!(
            "{}.{}",
            node_name(slot),
            catalog.table(tid).column(col).name
        )
    };

    let select: Vec<String> = q.projection.iter().map(|&(n, c)| col_name(n, c)).collect();

    let from: Vec<String> = (0..q.nodes.len())
        .map(|slot| {
            let tid = q.nodes[slot];
            let base = &catalog.table(tid).name;
            if occurrences[&tid.0] > 1 {
                format!("{base} AS t{slot}")
            } else {
                base.clone()
            }
        })
        .collect();

    let mut sql = format!("SELECT {} FROM {}", select.join(", "), from.join(", "));
    if !q.joins.is_empty() {
        let conds: Vec<String> = q
            .joins
            .iter()
            .map(|j| {
                format!(
                    "{} = {}",
                    col_name(j.left_node, j.left_col),
                    col_name(j.right_node, j.right_col)
                )
            })
            .collect();
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join(" AND "));
    }
    sql
}

/// A canonical identity for a PJ query, independent of node-slot numbering
/// and join-condition orientation: `(sorted table names, sorted normalized
/// join conditions, projected columns in order)`. Two queries with equal keys
/// produce identical SQL semantics (for the self-join-free queries Prism
/// synthesizes), so experiment harnesses use this to match discovered
/// queries against ground truth.
pub fn canonical_key(q: &PjQuery, db: &Database) -> String {
    let catalog = db.catalog();
    let col = |slot: usize, c: u32| -> String {
        let tid = q.nodes[slot];
        format!(
            "{}.{}",
            catalog.table(tid).name,
            catalog.table(tid).column(c).name
        )
    };
    let mut tables: Vec<&str> = q
        .nodes
        .iter()
        .map(|t| catalog.table(*t).name.as_str())
        .collect();
    tables.sort_unstable();
    let mut joins: Vec<String> = q
        .joins
        .iter()
        .map(|j| {
            let a = col(j.left_node, j.left_col);
            let b = col(j.right_node, j.right_col);
            if a <= b {
                format!("{a}={b}")
            } else {
                format!("{b}={a}")
            }
        })
        .collect();
    joins.sort_unstable();
    let proj: Vec<String> = q.projection.iter().map(|&(n, c)| col(n, c)).collect();
    format!(
        "T[{}] J[{}] P[{}]",
        tables.join(","),
        joins.join(","),
        proj.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::lakes_db;
    use crate::exec::JoinCond;
    use crate::schema::TableId;

    #[test]
    fn canonical_key_ignores_slot_order_and_join_orientation() {
        let db = lakes_db();
        let q1 = PjQuery {
            nodes: vec![TableId(0), TableId(1)],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(1, 1), (0, 0)],
        };
        let q2 = PjQuery {
            nodes: vec![TableId(1), TableId(0)],
            joins: vec![JoinCond {
                left_node: 1,
                left_col: 0,
                right_node: 0,
                right_col: 0,
            }],
            projection: vec![(0, 1), (1, 0)],
        };
        assert_eq!(canonical_key(&q1, &db), canonical_key(&q2, &db));
        // A different projection changes the key.
        let q3 = PjQuery {
            projection: vec![(0, 0), (1, 1)],
            ..q1.clone()
        };
        assert_ne!(canonical_key(&q1, &db), canonical_key(&q3, &db));
    }

    #[test]
    fn renders_the_papers_motivating_query() {
        let db = lakes_db();
        let q = PjQuery {
            nodes: vec![TableId(0), TableId(1)],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(1, 1), (0, 0), (0, 1)],
        };
        assert_eq!(
            render_sql(&q, &db),
            "SELECT geo_lake.Province, Lake.Name, Lake.Area \
             FROM Lake, geo_lake WHERE Lake.Name = geo_lake.Lake"
        );
    }

    #[test]
    fn renders_single_table_projection() {
        let db = lakes_db();
        let q = PjQuery {
            nodes: vec![TableId(0)],
            joins: vec![],
            projection: vec![(0, 0), (0, 1)],
        };
        assert_eq!(render_sql(&q, &db), "SELECT Lake.Name, Lake.Area FROM Lake");
    }

    #[test]
    fn repeated_tables_get_aliases() {
        let db = lakes_db();
        let q = PjQuery {
            nodes: vec![TableId(0), TableId(0)],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(0, 1), (1, 1)],
        };
        let sql = render_sql(&q, &db);
        assert_eq!(
            sql,
            "SELECT t0.Area, t1.Area FROM Lake AS t0, Lake AS t1 WHERE t0.Name = t1.Name"
        );
    }
}
