//! Project–Join query execution.
//!
//! The only query shape Prism synthesizes is the Project–Join query
//! (Section 2.1: *"we restrict the space of synthesized schema mapping
//! queries to support Project-Join (PJ) queries"*), and the only two
//! operations discovery needs are:
//!
//! * **existence checking** — "does the result of this (sub-)query contain a
//!   tuple matching this sample constraint?" — the unit of filter
//!   validation, and
//! * **full evaluation** — materializing result rows for display in the
//!   Result section.
//!
//! Both are implemented as backtracking search over the join tree: rows of a
//! start node are scanned, and each further node is reached through the
//! precomputed hash join index of its connecting column. Existence checks
//! terminate at the first full assignment, so successful validations are
//! usually much cheaper than full evaluation.
//!
//! The probe/backtrack loops never hash or clone a [`Value`]: join probes
//! and residual join checks compare the compact `u64` keys of
//! [`crate::column::Column::join_key`], and predicates receive zero-copy
//! [`ValueRef`] views. Owned `Value`s appear only at the projection
//! boundary ([`PjQuery::execute`]).
//!
//! ## Prepared execution
//!
//! Query compilation is split from execution. [`PjQuery::prepare`] runs
//! structural validation **once**, builds the internal plan **once**, and
//! sizes the dictionary-memo shapes **once**; the resulting
//! [`PreparedQuery`] can then be executed any number of times against an
//! [`ExecScratch`] that owns the per-run mutable state (the node-assignment
//! vector, the per-slot verdict bitmaps) and **clears it instead of
//! reallocating** between runs; the projection row buffer borrows database
//! cells and is therefore per-run, but lazily allocated — existence misses
//! never touch it. The interactive loop
//! issues thousands of tiny existence probes per refinement round, so
//! amortizing compilation is the difference between allocation-bound and
//! scan-bound probes ([`ExecStats::plans_built`] /
//! [`ExecStats::scratch_reuses`] make the amortization observable).
//! [`PjQuery::for_each_row`] and friends remain as thin prepare-then-run
//! wrappers for one-shot queries.
//!
//! ## Block pruning and dictionary memoization
//!
//! Scans are block-partitioned (see the `column` module docs): before a
//! start-node scan or a key-filtered scan touches a row, the block's zone
//! map is tested against the probe key and against any [`ScanPred`] numeric
//! range hints, and provably-empty blocks are skipped wholesale
//! ([`ExecStats::blocks_skipped`]). An *empty* numeric hull (`lo > hi`)
//! skips the whole scan outright — no zone maps needed, so even
//! single-block columns (which carry none) benefit. Predicates on
//! dictionary-encoded columns (text/date/time) are evaluated once per
//! distinct symbol code: a per-slot verdict bitmap is shared by *every*
//! path that tests the predicate — full scans, key-filtered scans, and
//! index-probed rows alike.

use crate::column::{Column, ColumnData};
use crate::database::Database;
use crate::error::DbError;
use crate::types::{KeySpace, Value, ValueRef};

/// One projection-slot predicate of a scan: the test closure plus optional
/// structural hints the executor can push below the row loop. Predicates
/// see borrowed cell views; no text is cloned to evaluate them.
#[derive(Clone, Copy)]
pub struct ScanPred<'a> {
    test: &'a (dyn Fn(ValueRef<'_>) -> bool + 'a),
    range: Option<(f64, f64)>,
}

impl<'a> ScanPred<'a> {
    /// A predicate with no structural hints (never prunes, always sound).
    pub fn new(test: &'a (dyn Fn(ValueRef<'_>) -> bool + 'a)) -> ScanPred<'a> {
        ScanPred { test, range: None }
    }

    /// Attach a numeric hull: the caller asserts that a non-NULL **numeric**
    /// cell can satisfy the predicate only if its value lies in the closed
    /// interval `[lo, hi]` (`lo > hi` asserts no numeric cell can). The
    /// executor prunes whole blocks of `Int`/`Decimal` columns against zone
    /// maps with it; the hint carries no meaning on other column types.
    pub fn with_range(mut self, lo: f64, hi: f64) -> ScanPred<'a> {
        self.range = Some((lo, hi));
        self
    }

    /// Evaluate the predicate on one cell view.
    #[inline]
    pub fn matches(&self, v: ValueRef<'_>) -> bool {
        (self.test)(v)
    }

    /// The numeric hull hint, if any.
    pub fn range(&self) -> Option<(f64, f64)> {
        self.range
    }
}

impl std::fmt::Debug for ScanPred<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanPred")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

/// Optional predicate applied to one projection slot.
pub type ProjPred<'a> = Option<ScanPred<'a>>;

/// Callback receiving each result row as borrowed views; return `false` to
/// stop enumeration.
pub type RowCallback<'a> = &'a mut dyn FnMut(&[ValueRef<'_>]) -> bool;

/// Work counters for cost accounting. Scheduling experiments report both
/// validation counts and the raw row effort behind them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows tested against local predicates or join conditions.
    pub rows_examined: u64,
    /// Hash-index probes performed.
    pub index_probes: u64,
    /// Result rows produced (existence checks stop at 1).
    pub rows_emitted: u64,
    /// Whole blocks skipped by zone-map pruning before any row was touched.
    pub blocks_skipped: u64,
    /// Query plans actually compiled ([`PjQuery::prepare`] + the one-shot
    /// wrappers). With a prepared-plan cache in front, this stays far below
    /// the number of executions — the observable half of amortization.
    pub plans_built: u64,
    /// Executions that reused an already-dirty [`ExecScratch`] (its buffers
    /// were cleared, not reallocated) — the other half of amortization.
    pub scratch_reuses: u64,
    /// Join-tree nodes the cost-based planner visited at a different
    /// position than declaration-order planning would have. Counted once
    /// per plan compiled (like [`ExecStats::plans_built`]), so a warm plan
    /// cache reports 0.
    pub nodes_reordered: u64,
    /// Prepared plans recompiled by the adaptive fan-out guard after the
    /// observed rows-examined diverged from the planner's estimate.
    pub plan_recompiles: u64,
    /// Rows the planner *expected* each run to examine, summed over runs —
    /// the denominator of [`ExecStats::fanout_ratio`].
    pub rows_estimated: u64,
}

impl ExecStats {
    /// Fold another counter set into this one. The parallel validation
    /// engine gives each worker thread its own `ExecStats` and merges them
    /// when the pool drains, so counting never contends on shared state.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_examined += other.rows_examined;
        self.index_probes += other.index_probes;
        self.rows_emitted += other.rows_emitted;
        self.blocks_skipped += other.blocks_skipped;
        self.plans_built += other.plans_built;
        self.scratch_reuses += other.scratch_reuses;
        self.nodes_reordered += other.nodes_reordered;
        self.plan_recompiles += other.plan_recompiles;
        self.rows_estimated += other.rows_estimated;
    }

    pub fn add(&mut self, other: &ExecStats) {
        self.merge(other);
    }

    /// Observed-vs-estimated fan-out: rows actually examined per row the
    /// planner expected, or `None` before any estimated run. Values well
    /// above 1 mean the cost model under-estimated (the adaptive guard
    /// recompiles past that point); early-exiting existence probes pull the
    /// ratio below 1. Both counters merge additively across workers, so the
    /// ratio stays meaningful for pooled stats.
    pub fn fanout_ratio(&self) -> Option<f64> {
        (self.rows_estimated > 0).then(|| self.rows_examined as f64 / self.rows_estimated as f64)
    }
}

impl std::ops::AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.merge(&rhs);
    }
}

impl std::ops::AddAssign<&ExecStats> for ExecStats {
    fn add_assign(&mut self, rhs: &ExecStats) {
        self.merge(rhs);
    }
}

/// Join-order planning mode for [`PjQuery::prepare_with`].
///
/// `Cost` (the default) orders join nodes by ascending estimated fan-out —
/// start at the most selective scan, expand cheapest-first — using
/// `StatsStore` distinct counts, CSR per-key run lengths, and numeric-hull
/// selectivity, and sorts each node's residual predicates most-selective /
/// cheapest first. `Fixed` is the pre-cost escape hatch: declaration-order
/// BFS from the most-predicated node, predicates in declaration order, no
/// adaptive recompiles. Both modes enumerate identical rows; only the visit
/// order (and therefore rows examined) differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrder {
    /// Declaration-order planning (legacy behavior).
    Fixed,
    /// Cardinality-guided planning (default).
    Cost,
}

impl JoinOrder {
    /// Reads `PRISM_JOIN_ORDER` (`fixed` | `cost`); anything else — or an
    /// unset variable — means `Cost`.
    pub fn from_env() -> JoinOrder {
        match std::env::var("PRISM_JOIN_ORDER") {
            Ok(v) if v.eq_ignore_ascii_case("fixed") => JoinOrder::Fixed,
            _ => JoinOrder::Cost,
        }
    }
}

/// An equi-join condition between two node slots of a [`PjQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinCond {
    pub left_node: usize,
    pub left_col: u32,
    pub right_node: usize,
    pub right_col: u32,
}

/// A Project–Join query over node slots.
///
/// Node slots (rather than raw table ids) keep the representation ready for
/// self-joins even though candidate generation currently never repeats a
/// table. `joins` must connect all nodes; redundant (cycle-closing) join
/// conditions are permitted and enforced as residual checks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PjQuery {
    pub nodes: Vec<crate::schema::TableId>,
    pub joins: Vec<JoinCond>,
    /// Output columns: (node slot, column index). Order matches the target
    /// schema of the mapping task.
    pub projection: Vec<(usize, u32)>,
}

impl PjQuery {
    /// Structural validation: slots in range, join/projection columns exist,
    /// graph connected.
    pub fn validate(&self, db: &Database) -> Result<(), DbError> {
        if self.nodes.is_empty() {
            return Err(DbError::InvalidQuery("no nodes".into()));
        }
        let col_ok = |node: usize, col: u32| -> Result<(), DbError> {
            let tid = *self
                .nodes
                .get(node)
                .ok_or_else(|| DbError::InvalidQuery(format!("node slot {node} out of range")))?;
            let arity = db.catalog().table(tid).arity() as u32;
            if col >= arity {
                return Err(DbError::InvalidQuery(format!(
                    "column {col} out of range for node {node}"
                )));
            }
            Ok(())
        };
        for j in &self.joins {
            col_ok(j.left_node, j.left_col)?;
            col_ok(j.right_node, j.right_col)?;
            // Join keys are compared as compact u64s, which is only sound
            // between join-compatible columns (the same rule the catalog
            // enforces for foreign keys): numeric with numeric, otherwise
            // exactly equal types. Reject cross-kind conditions here so an
            // ad-hoc query can never compare, say, text codes against date
            // codes.
            let dtype_of =
                |node: usize, col: u32| db.catalog().table(self.nodes[node]).column(col).dtype;
            let lt = dtype_of(j.left_node, j.left_col);
            let rt = dtype_of(j.right_node, j.right_col);
            if lt != rt && !(lt.is_numeric() && rt.is_numeric()) {
                return Err(DbError::InvalidQuery(format!(
                    "join condition compares incompatible types {lt} and {rt}"
                )));
            }
        }
        for &(n, c) in &self.projection {
            col_ok(n, c)?;
        }
        // Connectivity via union-find over join conditions.
        let mut parent: Vec<usize> = (0..self.nodes.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for j in &self.joins {
            let (a, b) = (
                find(&mut parent, j.left_node),
                find(&mut parent, j.right_node),
            );
            if a != b {
                parent[a] = b;
            }
        }
        let root = find(&mut parent, 0);
        for n in 1..self.nodes.len() {
            if find(&mut parent, n) != root {
                return Err(DbError::InvalidQuery(format!(
                    "node slot {n} is not connected by any join condition"
                )));
            }
        }
        Ok(())
    }

    /// Number of joins — the "join path length" used by the baseline filter
    /// scheduler of \[8\].
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }

    /// Compile this query against `db`: validate once, build the execution
    /// plan once, size the dictionary-memo shapes once. The plan depends on
    /// *which* projection slots carry a predicate, so `preds` fixes that
    /// shape; every later [`PreparedQuery::for_each_row`] call must supply
    /// predicates on exactly the same slots (their closures and range hints
    /// may differ freely). The prepared query borrows nothing and may be
    /// cached and shared across threads, but is only meaningful against the
    /// database it was prepared for.
    pub fn prepare(&self, db: &Database, preds: &[ProjPred<'_>]) -> Result<PreparedQuery, DbError> {
        self.prepare_with(db, preds, JoinOrder::from_env())
    }

    /// [`PjQuery::prepare`] with an explicit join-order mode, bypassing the
    /// `PRISM_JOIN_ORDER` environment knob. Benchmarks and property tests
    /// use this to compare cost-ordered and declaration-ordered plans over
    /// the same query.
    pub fn prepare_with(
        &self,
        db: &Database,
        preds: &[ProjPred<'_>],
        mode: JoinOrder,
    ) -> Result<PreparedQuery, DbError> {
        self.validate(db)?;
        if !preds.is_empty() && preds.len() != self.projection.len() {
            return Err(DbError::InvalidQuery(format!(
                "{} predicates supplied for {} projection slots",
                preds.len(),
                self.projection.len()
            )));
        }
        let plan = Plan::build(self, db, preds, mode, None);
        let memo_shapes = MemoShape::for_query(self, db, preds);
        let pred_mask = (0..self.projection.len())
            .map(|s| preds.get(s).copied().flatten().is_some())
            .collect();
        let guard = PlanGuard::for_nodes(self.nodes.len());
        Ok(PreparedQuery {
            query: self.clone(),
            plan,
            memo_shapes,
            pred_mask,
            guard,
        })
    }

    /// Evaluate the query, invoking `cb` for each projected result row and
    /// applying `preds` (one optional predicate per projection slot) before
    /// emission. Enumeration stops when `cb` returns `false`.
    ///
    /// One-shot wrapper: prepares (and counts one plan built) and runs with
    /// a fresh scratch. Repeated callers should [`PjQuery::prepare`] once
    /// and reuse an [`ExecScratch`].
    pub fn for_each_row(
        &self,
        db: &Database,
        preds: &[ProjPred<'_>],
        stats: &mut ExecStats,
        cb: RowCallback<'_>,
    ) -> Result<(), DbError> {
        let prepared = self.prepare(db, preds)?;
        stats.plans_built += 1;
        stats.nodes_reordered += prepared.nodes_reordered();
        let mut scratch = ExecScratch::new();
        prepared.for_each_row(db, preds, &mut scratch, stats, cb)
    }

    /// Materialize up to `limit` result rows. This is the projection
    /// boundary where owned [`Value`]s come into existence.
    pub fn execute(&self, db: &Database, limit: usize) -> Result<Vec<Vec<Value>>, DbError> {
        let mut out = Vec::new();
        let mut stats = ExecStats::default();
        self.for_each_row(db, &[], &mut stats, &mut |row| {
            out.push(row.iter().map(|v| v.to_value()).collect());
            out.len() < limit
        })?;
        Ok(out)
    }

    /// Does any result row satisfy all supplied predicates? Early-exits on
    /// the first witness. This is the unit of filter validation.
    pub fn exists_matching(
        &self,
        db: &Database,
        preds: &[ProjPred<'_>],
        stats: &mut ExecStats,
    ) -> Result<bool, DbError> {
        let mut found = false;
        self.for_each_row(db, preds, stats, &mut |_row| {
            found = true;
            false // stop at first match
        })?;
        Ok(found)
    }

    /// Count result rows satisfying the predicates (up to `cap`, to bound
    /// effort on explosive joins).
    pub fn count_matching(
        &self,
        db: &Database,
        preds: &[ProjPred<'_>],
        cap: u64,
        stats: &mut ExecStats,
    ) -> Result<u64, DbError> {
        let mut n = 0u64;
        self.for_each_row(db, preds, stats, &mut |_row| {
            n += 1;
            n < cap
        })?;
        Ok(n)
    }
}

/// A compiled [`PjQuery`]: validated, planned, and memo-shaped exactly once
/// (see [`PjQuery::prepare`]). Owns no borrows, so it can live in caches
/// shared across validation worker threads.
#[derive(Debug)]
pub struct PreparedQuery {
    query: PjQuery,
    plan: Plan,
    memo_shapes: Vec<MemoShape>,
    /// Which projection slots carried a predicate at prepare time; every
    /// run must match (the plan's start node and local-predicate lists
    /// were chosen from it).
    pred_mask: Vec<bool>,
    /// Adaptive fan-out guard state (see [`PlanGuard`]).
    guard: PlanGuard,
}

/// Runs the adaptive guard observes before it will consider recompiling:
/// enough to average out one unlucky probe. This is the generation-0
/// threshold; each recompile doubles it (see [`MAX_RECOMPILES`]).
const GUARD_MIN_RUNS: u64 = 8;

/// Observed-vs-estimated rows-examined ratio beyond which a cost-ordered
/// plan is recompiled with feedback. Estimates model full enumeration, so
/// early-exiting existence probes sit well below 1 and never trigger.
const FANOUT_DIVERGENCE: f64 = 4.0;

/// Recompiles one prepared plan may accumulate over its lifetime. Each
/// generation's observation window doubles ([`GUARD_MIN_RUNS`] `<< gen`:
/// 8, 16, 32 runs), so a plan that keeps diverging — a workload shift
/// after the first correction — gets up to two more chances at
/// progressively higher evidence bars, then settles.
const MAX_RECOMPILES: usize = 3;

/// Adaptive fan-out guard of one prepared plan. Plans live in write-once
/// cache slots shared across sessions, so the guard works through interior
/// mutability: per-node rows-examined accumulate in relaxed atomics, and
/// when the running average diverges from the active plan's estimate by
/// more than [`FANOUT_DIVERGENCE`], the plan is recompiled (into the next
/// `replans` slot) with the observed per-node fan-out as feedback — every
/// sharer of the cached [`PreparedQuery`] switches to the corrected order.
/// Each recompile **re-arms** the guard: the counters reset so the next
/// window observes only the new plan, the run threshold doubles, and
/// after [`MAX_RECOMPILES`] generations the guard disarms for good.
#[derive(Debug)]
struct PlanGuard {
    runs: std::sync::atomic::AtomicU64,
    rows: std::sync::atomic::AtomicU64,
    node_rows: Vec<std::sync::atomic::AtomicU64>,
    /// Write-once recompile slots, filled in order; the active plan is
    /// the last filled slot (or the base plan when none is).
    replans: [std::sync::OnceLock<Plan>; MAX_RECOMPILES],
}

impl PlanGuard {
    fn for_nodes(n: usize) -> PlanGuard {
        PlanGuard {
            runs: std::sync::atomic::AtomicU64::new(0),
            rows: std::sync::atomic::AtomicU64::new(0),
            node_rows: (0..n)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            replans: [const { std::sync::OnceLock::new() }; MAX_RECOMPILES],
        }
    }
}

impl PreparedQuery {
    /// The underlying query.
    pub fn query(&self) -> &PjQuery {
        &self.query
    }

    /// Join-tree nodes this plan visits at a different position than
    /// declaration-order planning would (0 for `Fixed`-mode plans). The
    /// one-shot wrappers and the cached-validation path fold this into
    /// [`ExecStats::nodes_reordered`] once per compile.
    pub fn nodes_reordered(&self) -> u64 {
        self.plan.moved_nodes as u64
    }

    /// The plan to run: the guard's newest recompiled plan when one
    /// exists, else the plan compiled at prepare time — possibly
    /// recompiling right now if enough divergent runs have accumulated
    /// against the *current* generation's estimates. Each generation
    /// doubles the run threshold and [`MAX_RECOMPILES`] caps the total.
    fn active_plan(&self, db: &Database, preds: &[ProjPred<'_>], stats: &mut ExecStats) -> &Plan {
        use std::sync::atomic::Ordering::Relaxed;
        if self.plan.mode != JoinOrder::Cost {
            return &self.plan; // Fixed mode is a full escape hatch
        }
        // Generation = replans compiled so far; slots fill strictly in
        // order, so the active plan is the last filled slot.
        let generation = self
            .guard
            .replans
            .iter()
            .take_while(|slot| slot.get().is_some())
            .count();
        let current: &Plan = match generation {
            0 => &self.plan,
            g => self.guard.replans[g - 1]
                .get()
                .expect("slot counted as filled"),
        };
        if generation == MAX_RECOMPILES {
            return current; // guard disarmed for good
        }
        let runs = self.guard.runs.load(Relaxed);
        if runs < (GUARD_MIN_RUNS << generation) {
            return current;
        }
        let avg = self.guard.rows.load(Relaxed) as f64 / runs as f64;
        if avg <= FANOUT_DIVERGENCE * current.est_rows.max(1.0) {
            return current;
        }
        let mut recompiled = false;
        let p = self.guard.replans[generation].get_or_init(|| {
            recompiled = true;
            // Per-node multipliers: how far each node's observed average
            // rows-examined overshot its estimate. Replanning with them
            // steers the order away from the nodes that actually exploded.
            // Both vectors are indexed by join-tree node id, so zipping
            // against any generation's estimates lines up.
            let mult: Vec<f64> = self
                .guard
                .node_rows
                .iter()
                .zip(&current.est_node_rows)
                .map(|(obs, &est)| {
                    let obs = obs.load(Relaxed) as f64 / runs as f64;
                    (obs / est.max(1.0)).max(1.0)
                })
                .collect();
            Plan::build(&self.query, db, preds, JoinOrder::Cost, Some(&mult))
        });
        if recompiled {
            stats.plan_recompiles += 1;
            // Re-arm: start a fresh observation window so the doubled
            // threshold judges only the new plan's behavior. Relaxed
            // stores may drop a concurrent run's increment — acceptable
            // slack for a 4x heuristic trigger.
            self.guard.runs.store(0, Relaxed);
            self.guard.rows.store(0, Relaxed);
            for acc in &self.guard.node_rows {
                acc.store(0, Relaxed);
            }
        }
        p
    }

    /// Execute against `db` (which must be the database this was prepared
    /// for), reusing `scratch` for all per-run mutable state. `preds` must
    /// put predicates on exactly the slots prepared with — their closures
    /// and range hints may differ per run; verdict memos are cleared.
    pub fn for_each_row(
        &self,
        db: &Database,
        preds: &[ProjPred<'_>],
        scratch: &mut ExecScratch,
        stats: &mut ExecStats,
        cb: RowCallback<'_>,
    ) -> Result<(), DbError> {
        let shape_ok = if preds.is_empty() {
            self.pred_mask.iter().all(|&m| !m)
        } else {
            preds.len() == self.query.projection.len()
                && preds
                    .iter()
                    .zip(&self.pred_mask)
                    .all(|(p, &m)| p.is_some() == m)
        };
        if !shape_ok {
            return Err(DbError::InvalidQuery(
                "predicate shape differs from the prepared plan".into(),
            ));
        }
        if std::mem::replace(&mut scratch.used, true) {
            stats.scratch_reuses += 1;
        }
        scratch.reset_for(self);
        let plan = self.active_plan(db, preds, stats);
        // Zone-map pruners from range-hinted local predicates on numeric
        // columns, hoisted out of the scan loops: they are constant for the
        // whole run (hulls travel with the predicates, not the plan). None
        // when no predicate carries a usable hull — the common text-probe
        // case allocates nothing here.
        let mut pruners: Option<Vec<Vec<Pruner<'_>>>> = None;
        for (node, local) in plan.local_preds.iter().enumerate() {
            for &(col, slot) in local {
                let pred = preds[slot].expect("shape-checked above");
                let Some((lo, hi)) = pred.range() else {
                    continue;
                };
                let column = db.table(self.query.nodes[node]).column(col);
                if matches!(column.data(), ColumnData::Int(_) | ColumnData::Decimal(_)) {
                    pruners.get_or_insert_with(|| {
                        (0..self.query.nodes.len()).map(|_| Vec::new()).collect()
                    })[node]
                        .push(Pruner {
                            col: column,
                            kind: PrunerKind::Range(lo, hi),
                        });
                }
            }
        }
        let search = Search {
            db,
            q: &self.query,
            plan,
            preds,
            pruners,
        };
        let mut st = SearchState {
            row_buf: Vec::new(),
            stats,
            cb,
            steps: 0,
            cancel: scratch.cancel.clone(),
            deadline: scratch.deadline,
            assignment: &mut scratch.assignment,
            memos: &mut scratch.memos,
            node_rows: &mut scratch.node_rows,
        };
        let result = search.run(0, &mut st).map(|_| ());
        // Feed the run back to the adaptive guard (relaxed atomics — exact
        // cross-thread interleaving doesn't matter for a 4x trigger) and
        // record the planner's expectation for the fan-out ratio.
        use std::sync::atomic::Ordering::Relaxed;
        let run_rows: u64 = scratch.node_rows.iter().sum();
        self.guard.runs.fetch_add(1, Relaxed);
        self.guard.rows.fetch_add(run_rows, Relaxed);
        for (acc, &r) in self.guard.node_rows.iter().zip(scratch.node_rows.iter()) {
            if r > 0 {
                acc.fetch_add(r, Relaxed);
            }
        }
        stats.rows_estimated += plan.est_rows as u64;
        result
    }

    /// Prepared existence check (see [`PjQuery::exists_matching`]).
    pub fn exists_matching(
        &self,
        db: &Database,
        preds: &[ProjPred<'_>],
        scratch: &mut ExecScratch,
        stats: &mut ExecStats,
    ) -> Result<bool, DbError> {
        let mut found = false;
        self.for_each_row(db, preds, scratch, stats, &mut |_row| {
            found = true;
            false
        })?;
        Ok(found)
    }

    /// Prepared counting (see [`PjQuery::count_matching`]).
    pub fn count_matching(
        &self,
        db: &Database,
        preds: &[ProjPred<'_>],
        cap: u64,
        scratch: &mut ExecScratch,
        stats: &mut ExecStats,
    ) -> Result<u64, DbError> {
        let mut n = 0u64;
        self.for_each_row(db, preds, scratch, stats, &mut |_row| {
            n += 1;
            n < cap
        })?;
        Ok(n)
    }
}

/// Reusable per-run executor state: the node-assignment vector and the
/// per-slot dictionary verdict memos. `reset` clears (and reshapes) the
/// buffers without giving their allocations back, so a scratch held across
/// thousands of existence probes settles into zero steady-state allocation.
/// One scratch serves any sequence of prepared queries — sizes adapt.
#[derive(Debug, Default)]
pub struct ExecScratch {
    assignment: Vec<u32>,
    memos: Vec<SlotMemo>,
    /// Rows examined per node slot during the current run; flushed into the
    /// plan's adaptive guard when the run ends. Plain counters here, one
    /// atomic add per node per *run* there — the row loop stays contention-
    /// free.
    node_rows: Vec<u64>,
    /// Whether any run has used this scratch (drives
    /// [`ExecStats::scratch_reuses`]).
    used: bool,
    /// Cooperative cancellation probe: row loops poll this every 1024
    /// steps and abandon the run with [`DbError::Cancelled`] when raised.
    /// Survives [`ExecScratch::reset_for`] — the attachment outlives runs.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Hard deadline checked on the same stride (for callers with no flag
    /// to raise, e.g. the sequential scheduler inside one long scan).
    deadline: Option<std::time::Instant>,
}

impl ExecScratch {
    pub fn new() -> ExecScratch {
        ExecScratch::default()
    }

    /// Attach (or detach) a shared cancellation flag. While attached, any
    /// run on this scratch returns [`DbError::Cancelled`] within ~1024 row
    /// steps of the flag being raised — this is what lets a coordinator's
    /// watchdog converge even when a validation is mid-scan.
    pub fn set_cancel(&mut self, cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) {
        self.cancel = cancel;
    }

    /// Attach (or detach) a hard deadline checked inside row loops.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Clear and reshape for one run of `pq`, keeping allocations.
    fn reset_for(&mut self, pq: &PreparedQuery) {
        self.assignment.clear();
        self.assignment.resize(pq.query.nodes.len(), 0);
        self.node_rows.clear();
        self.node_rows.resize(pq.query.nodes.len(), 0);
        self.memos.truncate(pq.memo_shapes.len());
        for (i, &shape) in pq.memo_shapes.iter().enumerate() {
            match self.memos.get_mut(i) {
                Some(m) => m.reset(shape),
                None => self.memos.push(SlotMemo::fresh(shape)),
            }
        }
    }
}

/// One spanning link of the plan: how a node is reached from an
/// already-assigned parent.
#[derive(Debug)]
struct Link {
    parent_node: usize,
    parent_col: u32,
    my_col: u32,
    /// Common key space of the two columns; both sides key in it.
    pair_space: crate::types::KeySpace,
    /// Whether the probed column's hash index is keyed in `pair_space`
    /// (always true for FK-aligned conditions; an ad-hoc condition across
    /// key-space components falls back to a filtered scan).
    index_usable: bool,
}

/// Per-node execution info, derived once per *prepared* query (not per
/// run — the prepare/execute split exists so this is never rebuilt on the
/// existence-probe hot path).
#[derive(Debug)]
struct Plan {
    /// Visit order of node slots.
    order: Vec<usize>,
    /// For order[i] (i>0): the spanning link to an already-visited node.
    link: Vec<Option<Link>>,
    /// Cycle-closing join conditions checked once both sides are assigned:
    /// evaluated at the depth where the *later* endpoint gets its row,
    /// compared in the endpoints' common key space.
    residual_at: Vec<Vec<(JoinCond, crate::types::KeySpace)>>,
    /// Local predicates per node slot: (column, projection slot index).
    local_preds: Vec<Vec<(u32, usize)>>,
    /// Planning mode this plan was built under; the adaptive guard only
    /// arms for `Cost` plans (`Fixed` is a full escape hatch).
    mode: JoinOrder,
    /// Estimated rows one full enumeration examines — the guard's baseline
    /// and the numerator feed of [`ExecStats::rows_estimated`].
    est_rows: f64,
    /// The same estimate attributed per node slot, so recompiles can see
    /// *which* node's fan-out was mispredicted.
    est_node_rows: Vec<f64>,
    /// Nodes visited at a different position than declaration-order BFS
    /// would put them (always 0 in `Fixed` mode).
    moved_nodes: u32,
}

/// Selectivity floor: keeps estimates off exact zero so relative ordering
/// stays meaningful even for "provably empty" hulls.
const MIN_SEL: f64 = 1e-4;

/// Estimated fraction of `node`'s rows passing one local predicate. A
/// numeric hull consults the column histogram; an opaque predicate is
/// assumed to be an equality probe — one distinct value's share.
fn pred_selectivity(
    q: &PjQuery,
    db: &Database,
    preds: &[ProjPred<'_>],
    node: usize,
    col: u32,
    slot: usize,
) -> f64 {
    let st = db
        .stats()
        .column(crate::schema::ColumnRef::new(q.nodes[node], col));
    let range = preds.get(slot).copied().flatten().and_then(|p| p.range());
    match range {
        Some((lo, hi)) if lo > hi => MIN_SEL * MIN_SEL,
        Some((lo, hi)) if st.dtype.is_numeric() => st.selectivity_range(lo, hi).max(MIN_SEL),
        _ => (1.0 / st.distinct_count.max(1) as f64).max(MIN_SEL),
    }
}

/// Prepare-time cardinality estimator. All inputs are already materialized
/// by the substrate: `StatsStore` distinct counts and histograms, CSR
/// per-key run lengths, and the numeric hulls riding on the predicates.
struct Estimator<'a> {
    q: &'a PjQuery,
    db: &'a Database,
    local_preds: &'a [Vec<(u32, usize)>],
    preds: &'a [ProjPred<'a>],
    /// Per-node cost multipliers from the adaptive guard's observed
    /// fan-out (recompiles only); `None` on the first compile.
    feedback: Option<&'a [f64]>,
}

impl Estimator<'_> {
    fn mult(&self, node: usize) -> f64 {
        self.feedback.map_or(1.0, |m| m[node])
    }

    /// Product of all local-predicate selectivities on `node`.
    fn pred_sel(&self, node: usize) -> f64 {
        self.local_preds[node]
            .iter()
            .map(|&(col, slot)| pred_selectivity(self.q, self.db, self.preds, node, col, slot))
            .product()
    }

    /// Selectivity of the *prunable* part only — numeric hulls that zone
    /// maps can push below the row loop. Opaque predicates don't reduce
    /// rows examined (every row is tested), so they don't appear here.
    fn hull_sel(&self, node: usize) -> f64 {
        self.local_preds[node]
            .iter()
            .map(|&(col, slot)| {
                let st = self
                    .db
                    .stats()
                    .column(crate::schema::ColumnRef::new(self.q.nodes[node], col));
                match self
                    .preds
                    .get(slot)
                    .copied()
                    .flatten()
                    .and_then(|p| p.range())
                {
                    Some((lo, hi)) if lo > hi => MIN_SEL * MIN_SEL,
                    Some((lo, hi)) if st.dtype.is_numeric() => {
                        st.selectivity_range(lo, hi).max(MIN_SEL)
                    }
                    _ => 1.0,
                }
            })
            .product()
    }

    /// Rows a full scan of `node` examines (hulls prune, opaque predicates
    /// don't) and rows it yields after all predicates.
    fn scan_cost(&self, node: usize) -> f64 {
        let rows = self.db.row_count(self.q.nodes[node]) as f64;
        (rows * self.hull_sel(node)).max(1.0) * self.mult(node)
    }

    fn scan_card(&self, node: usize) -> f64 {
        self.db.row_count(self.q.nodes[node]) as f64 * self.pred_sel(node)
    }

    /// Per-parent-row probe estimate into `to.tcol`:
    /// `(rows examined, rows matching after the join key)`. An indexed
    /// probe examines one posting run — estimated as the geometric mean of
    /// the average and the *longest* run, so a Zipf hub key cannot hide
    /// behind a benign average. Without a usable index the executor falls
    /// back to a key-filtered scan: every (hull-surviving) row is examined.
    fn probe(&self, to: usize, tcol: u32, index_usable: bool) -> (f64, f64) {
        let tid = self.q.nodes[to];
        let cref = crate::schema::ColumnRef::new(tid, tcol);
        match self.db.join_index(cref) {
            Some(ix) if index_usable && !ix.is_empty() => {
                let avg = ix.avg_run();
                let skew_aware = (avg * ix.max_run() as f64).sqrt().max(avg);
                (skew_aware, avg)
            }
            _ => {
                let rows = self.db.row_count(tid) as f64;
                let distinct = self.db.stats().distinct_count(tid, tcol).max(1) as f64;
                ((rows * self.hull_sel(to)).max(1.0), rows / distinct)
            }
        }
    }

    /// Total and per-node estimated rows-examined of one concrete visit
    /// order — the number the adaptive guard compares observed work to.
    fn cost_of(&self, order: &[usize], link: &[Option<Link>]) -> (f64, Vec<f64>) {
        let mut node_est = vec![0.0; self.q.nodes.len()];
        let start = order[0];
        node_est[start] = self.scan_cost(start);
        let mut card = self.scan_card(start).max(1.0);
        for (d, &to) in order.iter().enumerate().skip(1) {
            let l = link[d].as_ref().expect("non-start nodes are linked");
            let (examine, matches) = self.probe(to, l.my_col, l.index_usable);
            node_est[to] = (card * examine * self.mult(to)).max(1.0);
            card *= matches * self.pred_sel(to);
        }
        (node_est.iter().sum(), node_est)
    }
}

impl Plan {
    /// Compile a visit order for `q`. `Fixed` reproduces the legacy
    /// declaration-order BFS; `Cost` searches every start node and greedily
    /// expands the cheapest estimated probe first (see [`Estimator`]), then
    /// orders each node's local predicates and residual checks most
    /// selective / cheapest first. `feedback` carries per-node observed
    /// fan-out multipliers when the adaptive guard recompiles.
    fn build(
        q: &PjQuery,
        db: &Database,
        preds: &[ProjPred<'_>],
        mode: JoinOrder,
        feedback: Option<&[f64]>,
    ) -> Plan {
        let n = q.nodes.len();
        // Local predicate lists, in declaration (projection) order.
        let mut local_preds: Vec<Vec<(u32, usize)>> = vec![Vec::new(); n];
        for (slot, &(node, col)) in q.projection.iter().enumerate() {
            if preds.get(slot).copied().flatten().is_some() {
                local_preds[node].push((col, slot));
            }
        }
        if mode == JoinOrder::Cost {
            // Local predicates: most selective first, dictionary-memoized
            // (cheap per-row after warmup) before direct evaluation on
            // ties. Selectivity products are order-independent, so this
            // can't change any estimate — only how fast a doomed row dies.
            type RankedPred = ((f64, u8, usize), (u32, usize));
            for (node, locals) in local_preds.iter_mut().enumerate() {
                let mut keyed: Vec<RankedPred> = locals
                    .iter()
                    .map(|&(col, slot)| {
                        let column = db.table(q.nodes[node]).column(col);
                        let memoized = matches!(column.data(), ColumnData::Sym(_));
                        let sel = pred_selectivity(q, db, preds, node, col, slot);
                        ((sel, u8::from(!memoized), slot), (col, slot))
                    })
                    .collect();
                keyed.sort_by(|a, b| {
                    a.0 .0
                        .total_cmp(&b.0 .0)
                        .then(a.0 .1.cmp(&b.0 .1))
                        .then(a.0 .2.cmp(&b.0 .2))
                });
                *locals = keyed.into_iter().map(|(_, p)| p).collect();
            }
        }
        let est = Estimator {
            q,
            db,
            local_preds: &local_preds,
            preds,
            feedback,
        };
        let (order, link, used_join, moved_nodes) = match mode {
            JoinOrder::Fixed => {
                let (order, link, used) = fixed_order(q, db, &local_preds);
                (order, link, used, 0)
            }
            JoinOrder::Cost => {
                let (order, link, used) = cost_order(q, db, &est);
                // How far did cost planning move the tree? Compare against
                // what declaration-order planning would have done.
                let (fixed, _, _) = fixed_order(q, db, &local_preds);
                let moved = order.iter().zip(&fixed).filter(|(a, b)| a != b).count() as u32;
                (order, link, used, moved)
            }
        };
        // Remaining joins are redundant cycle-closers: schedule each at the
        // depth where its later endpoint is assigned.
        let depth_of = |node: usize| order.iter().position(|&x| x == node).expect("visited");
        let mut residual_at: Vec<Vec<(JoinCond, crate::types::KeySpace)>> = vec![Vec::new(); n];
        for (ji, j) in q.joins.iter().enumerate() {
            if !used_join[ji] {
                let d = depth_of(j.left_node).max(depth_of(j.right_node));
                let pair = pair_space_of(q, db, j.left_node, j.left_col, j.right_node, j.right_col);
                residual_at[d].push((*j, pair));
            }
        }
        if mode == JoinOrder::Cost {
            // Residual checks: most selective first — a residual's chance of
            // passing shrinks with the larger distinct count of its
            // endpoints, so check the sharpest key equality first.
            for residuals in &mut residual_at {
                residuals.sort_by_key(|(j, _)| {
                    let d = db
                        .stats()
                        .distinct_count(q.nodes[j.left_node], j.left_col)
                        .max(
                            db.stats()
                                .distinct_count(q.nodes[j.right_node], j.right_col),
                        );
                    std::cmp::Reverse(d)
                });
            }
        }
        let (est_rows, est_node_rows) = est.cost_of(&order, &link);
        Plan {
            order,
            link,
            residual_at,
            local_preds,
            mode,
            est_rows,
            est_node_rows,
            moved_nodes,
        }
    }
}

/// The key space a join condition compares in. FK-aligned conditions have
/// equal assigned spaces and keep them (and their index). An ad-hoc
/// condition across components compares exactly when both *declared* types
/// are Int — a Decimal-demoted Int column still stores i64 data, so
/// exactness must not be lost to its component assignment — and in F64
/// otherwise.
fn pair_space_of(
    q: &PjQuery,
    db: &Database,
    an: usize,
    ac: u32,
    bn: usize,
    bc: u32,
) -> crate::types::KeySpace {
    let space_of =
        |node: usize, col: u32| db.key_space(crate::schema::ColumnRef::new(q.nodes[node], col));
    let (sa, sb) = (space_of(an, ac), space_of(bn, bc));
    if sa == sb {
        return sa;
    }
    let dtype_of = |node: usize, col: u32| db.catalog().table(q.nodes[node]).column(col).dtype;
    if dtype_of(an, ac) == crate::types::DataType::Int
        && dtype_of(bn, bc) == crate::types::DataType::Int
    {
        crate::types::KeySpace::Int
    } else {
        crate::types::KeySpace::F64
    }
}

fn make_link(q: &PjQuery, db: &Database, from: usize, fcol: u32, to: usize, tcol: u32) -> Link {
    let pair_space = pair_space_of(q, db, from, fcol, to, tcol);
    let index_usable = pair_space == db.key_space(crate::schema::ColumnRef::new(q.nodes[to], tcol));
    Link {
        parent_node: from,
        parent_col: fcol,
        my_col: tcol,
        pair_space,
        index_usable,
    }
}

/// Legacy declaration-order planning: start at the node with the most
/// local predicates (tie-broken by smallest table), then BFS over join
/// conditions in declaration order. Returns the visit order, spanning
/// links, and which joins the spanning tree consumed.
#[allow(clippy::type_complexity)]
fn fixed_order(
    q: &PjQuery,
    db: &Database,
    local_preds: &[Vec<(u32, usize)>],
) -> (Vec<usize>, Vec<Option<Link>>, Vec<bool>) {
    let n = q.nodes.len();
    let start = (0..n)
        .min_by_key(|&i| {
            (
                std::cmp::Reverse(local_preds[i].len()),
                db.row_count(q.nodes[i]),
                i,
            )
        })
        .expect("validated: at least one node");
    let mut order = vec![start];
    let mut link: Vec<Option<Link>> = vec![None];
    let mut visited = vec![false; n];
    visited[start] = true;
    let mut used_join = vec![false; q.joins.len()];
    while order.len() < n {
        let mut progressed = false;
        for (ji, j) in q.joins.iter().enumerate() {
            if used_join[ji] {
                continue;
            }
            let (from, fcol, to, tcol) = if visited[j.left_node] && !visited[j.right_node] {
                (j.left_node, j.left_col, j.right_node, j.right_col)
            } else if visited[j.right_node] && !visited[j.left_node] {
                (j.right_node, j.right_col, j.left_node, j.left_col)
            } else {
                continue;
            };
            used_join[ji] = true;
            visited[to] = true;
            order.push(to);
            link.push(Some(make_link(q, db, from, fcol, to, tcol)));
            progressed = true;
        }
        if !progressed {
            break; // validated connectivity makes this unreachable
        }
    }
    (order, link, used_join)
}

/// Cost-based planning: try every node as the scan root and greedily
/// attach the frontier join with the cheapest estimated probe until the
/// tree is spanned; keep the start whose whole order estimates cheapest.
/// Node counts are tiny (candidate trees are ≤ a handful of tables), so
/// the exhaustive-start greedy is both near-optimal and effectively free
/// next to the once-per-query-class compile it runs inside.
#[allow(clippy::type_complexity)]
fn cost_order(
    q: &PjQuery,
    db: &Database,
    est: &Estimator<'_>,
) -> (Vec<usize>, Vec<Option<Link>>, Vec<bool>) {
    let n = q.nodes.len();
    let mut best: Option<(f64, Vec<usize>, Vec<Option<Link>>, Vec<bool>)> = None;
    for start in 0..n {
        let mut order = vec![start];
        let mut link: Vec<Option<Link>> = vec![None];
        let mut visited = vec![false; n];
        visited[start] = true;
        let mut used_join = vec![false; q.joins.len()];
        let mut total = est.scan_cost(start);
        let mut card = est.scan_card(start).max(1.0);
        while order.len() < n {
            // Cheapest expansion across the frontier: joins with exactly
            // one visited endpoint. Declaration order breaks exact ties.
            let mut pick: Option<(f64, usize)> = None;
            for (ji, j) in q.joins.iter().enumerate() {
                if used_join[ji] {
                    continue;
                }
                let (_, _, to, tcol) = match (visited[j.left_node], visited[j.right_node]) {
                    (true, false) => (j.left_node, j.left_col, j.right_node, j.right_col),
                    (false, true) => (j.right_node, j.right_col, j.left_node, j.left_col),
                    _ => continue,
                };
                let usable =
                    pair_space_of(q, db, j.left_node, j.left_col, j.right_node, j.right_col)
                        == db.key_space(crate::schema::ColumnRef::new(q.nodes[to], tcol));
                let (examine, _) = est.probe(to, tcol, usable);
                let step = card * examine * est.mult(to);
                if pick.is_none_or(|(c, _)| step < c) {
                    pick = Some((step, ji));
                }
            }
            let Some((step, ji)) = pick else {
                break; // validated connectivity makes this unreachable
            };
            let j = &q.joins[ji];
            let (from, fcol, to, tcol) = if visited[j.left_node] {
                (j.left_node, j.left_col, j.right_node, j.right_col)
            } else {
                (j.right_node, j.right_col, j.left_node, j.left_col)
            };
            used_join[ji] = true;
            visited[to] = true;
            order.push(to);
            let l = make_link(q, db, from, fcol, to, tcol);
            let (_, matches) = est.probe(to, tcol, l.index_usable);
            link.push(Some(l));
            total += step;
            card = (card * matches * est.pred_sel(to)).max(MIN_SEL);
        }
        if best.as_ref().is_none_or(|(c, ..)| total < *c) {
            best = Some((total, order, link, used_join));
        }
    }
    let (_, order, link, used_join) = best.expect("validated: at least one node");
    (order, link, used_join)
}

/// The shared (immutable) context of one query run.
struct Search<'a> {
    db: &'a Database,
    q: &'a PjQuery,
    plan: &'a Plan,
    preds: &'a [ProjPred<'a>],
    /// Run-constant zone-map pruners per node slot (from range-hinted
    /// numeric local predicates); `None` when no predicate carries a hull.
    pruners: Option<Vec<Vec<Pruner<'a>>>>,
}

/// The mutable state threaded through the backtracking recursion. The
/// assignment vector and memos borrow an [`ExecScratch`], so repeated runs
/// reuse their allocations.
struct SearchState<'a, 'cb, 'st> {
    assignment: &'st mut Vec<u32>,
    /// Per-projection-slot dictionary verdict memos, shared by every path
    /// that evaluates the slot's predicate during this run.
    memos: &'st mut Vec<SlotMemo>,
    /// Rows examined per node slot this run (adaptive-guard feedback).
    node_rows: &'st mut Vec<u64>,
    /// Projection row buffer, reused across emissions within a run (lazy:
    /// existence misses never allocate it).
    row_buf: Vec<ValueRef<'a>>,
    stats: &'st mut ExecStats,
    cb: RowCallback<'cb>,
    /// Row steps since the run started; every 1024th step polls the
    /// cancellation probe below. One increment + mask test per row when no
    /// probe is attached — the blind-spot fix stays off the hot path.
    steps: u64,
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    deadline: Option<std::time::Instant>,
}

impl SearchState<'_, '_, '_> {
    /// One row step: poll the cancellation probe on a 1024-step stride.
    #[inline]
    fn tick(&mut self) -> Result<(), DbError> {
        self.steps = self.steps.wrapping_add(1);
        if self.steps & 0x3FF == 0 && self.interrupted() {
            return Err(DbError::Cancelled);
        }
        Ok(())
    }

    #[cold]
    fn interrupted(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if std::time::Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

impl<'a> Search<'a> {
    /// Extend the partial assignment at `depth`. Returns `false` when the
    /// callback asked to stop enumeration.
    fn run(&self, depth: usize, st: &mut SearchState<'a, '_, '_>) -> Result<bool, DbError> {
        if depth == self.plan.order.len() {
            st.stats.rows_emitted += 1;
            st.row_buf.clear();
            for &(node, col) in &self.q.projection {
                let v = self.db.value_ref(
                    crate::schema::ColumnRef::new(self.q.nodes[node], col),
                    st.assignment[node],
                );
                st.row_buf.push(v);
            }
            return Ok((st.cb)(&st.row_buf));
        }
        let node = self.plan.order[depth];
        let tid = self.q.nodes[node];
        let table = self.db.table(tid);

        // Candidate rows for this node: compact join keys only, no `Value`.
        let candidates: CandidateRows = match &self.plan.link[depth] {
            None => CandidateRows::Scan(table.row_count() as u32),
            Some(link) => {
                let parent_key = self
                    .db
                    .table(self.q.nodes[link.parent_node])
                    .column(link.parent_col)
                    .join_key_in(st.assignment[link.parent_node] as usize, link.pair_space);
                let Some(pk) = parent_key else {
                    return Ok(true); // NULL never equi-joins
                };
                let col_ref = crate::schema::ColumnRef::new(tid, link.my_col);
                st.stats.index_probes += 1;
                match self.db.join_index(col_ref) {
                    Some(ix) if link.index_usable => CandidateRows::List(ix.rows(pk)),
                    _ => CandidateRows::FilteredScan(
                        table.row_count() as u32,
                        link.my_col,
                        pk,
                        link.pair_space,
                    ),
                }
            }
        };

        match candidates {
            CandidateRows::Scan(n) => {
                // Fast path for the engine's single most common scan: a
                // start node with exactly one dictionary predicate and no
                // zone pruners. The column, code slice, and memo are hoisted
                // out of the loop, so each row costs a code load and a
                // bitmap test — the generic path re-derives them per row.
                if let Some(fast) = self.dict_scan_target(node, st) {
                    return self.dict_scan(depth, node, n, fast, st);
                }
                self.scan_blocks(node, n, None, st, |s, row, st| {
                    s.try_row(depth, node, table, row, st)
                })
            }
            // Index-probed rows carry no pruners: the probe already keyed
            // the exact rows.
            CandidateRows::List(rows) => {
                for &row in rows {
                    if !self.try_row(depth, node, table, row, st)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            CandidateRows::FilteredScan(n, col, pk, space) => {
                let column = table.column(col);
                // The key pruner rides alongside the node's range pruners as
                // a borrowed extra — no per-parent-row Vec is built.
                let key_pruner = Pruner {
                    col: column,
                    kind: PrunerKind::Key(pk, space),
                };
                self.scan_blocks(node, n, Some(&key_pruner), st, |s, row, st| {
                    if column.join_key_in(row as usize, space) != Some(pk) {
                        // Key-rejected rows are counted here; key-matching
                        // rows are counted once inside try_row.
                        st.tick()?;
                        st.stats.rows_examined += 1;
                        st.node_rows[node] += 1;
                        return Ok(true);
                    }
                    s.try_row(depth, node, table, row, st)
                })
            }
        }
    }

    /// Is the full scan of `node` a single dictionary predicate with an
    /// eligible memo and no pruners? Returns its `(column, slot)`.
    fn dict_scan_target(&self, node: usize, st: &SearchState<'a, '_, '_>) -> Option<(u32, usize)> {
        if self.pruners.as_ref().is_some_and(|p| !p[node].is_empty()) {
            return None;
        }
        match self.plan.local_preds[node][..] {
            [(col, slot)] if st.memos[slot].eligible => Some((col, slot)),
            _ => None,
        }
    }

    /// Tight memoized scan over one dictionary column: per row, one code
    /// load plus one verdict-bitmap test; surviving rows continue through
    /// [`Search::advance`]. Row work is counted in a loop-local register
    /// and flushed once on every exit path, so early-exit probes charge
    /// exactly the rows they touched without per-row traffic through the
    /// stats reference.
    fn dict_scan(
        &self,
        depth: usize,
        node: usize,
        n: u32,
        (col, slot): (u32, usize),
        st: &mut SearchState<'a, '_, '_>,
    ) -> Result<bool, DbError> {
        let table = self.db.table(self.q.nodes[node]);
        let column = table.column(col);
        let ColumnData::Sym(codes) = column.data() else {
            unreachable!("memo-eligible slots sit on dictionary columns");
        };
        let codes = &codes[..n as usize];
        let syms = self.db.symbols();
        let pred = self.preds[slot].expect("local_preds only lists Some preds");
        let no_nulls = column.nulls().none_null();
        // Take the slot's memo out of the scratch for the loop (deeper
        // nodes own different slots, so `advance` never needs this one);
        // restore it before returning so the run's sharing contract holds.
        let mut memo = std::mem::replace(
            &mut st.memos[slot],
            SlotMemo::fresh(MemoShape {
                eligible: false,
                code_range: 0,
            }),
        );
        let mut examined = 0u64;
        let mut result = Ok(true);
        'scan: {
            if no_nulls {
                for (r, &code) in codes.iter().enumerate() {
                    examined += 1;
                    if examined & 0x3FF == 0 && st.interrupted() {
                        result = Err(DbError::Cancelled);
                        break 'scan;
                    }
                    if !memo.check(code, || pred.matches(column.value_ref(syms, r))) {
                        continue;
                    }
                    match self.advance(depth, node, r as u32, st) {
                        Ok(true) => {}
                        stop => {
                            result = stop;
                            break 'scan;
                        }
                    }
                }
            } else {
                for (r, &code) in codes.iter().enumerate() {
                    examined += 1;
                    if examined & 0x3FF == 0 && st.interrupted() {
                        result = Err(DbError::Cancelled);
                        break 'scan;
                    }
                    let ok = if column.is_null(r) {
                        *memo
                            .null_verdict
                            .get_or_insert_with(|| pred.matches(ValueRef::Null))
                    } else {
                        memo.check(code, || pred.matches(column.value_ref(syms, r)))
                    };
                    if !ok {
                        continue;
                    }
                    match self.advance(depth, node, r as u32, st) {
                        Ok(true) => {}
                        stop => {
                            result = stop;
                            break 'scan;
                        }
                    }
                }
            }
        }
        st.stats.rows_examined += examined;
        st.node_rows[node] += examined;
        st.memos[slot] = memo;
        result
    }

    /// Drive `per_row` over `0..n`, skipping whole blocks every pruner
    /// proves empty. With no pruners (or an unfrozen / single-block column)
    /// this is one plain loop — no per-block overhead.
    fn scan_blocks(
        &self,
        node: usize,
        n: u32,
        extra: Option<&Pruner<'_>>,
        st: &mut SearchState<'a, '_, '_>,
        mut per_row: impl FnMut(&Self, u32, &mut SearchState<'a, '_, '_>) -> Result<bool, DbError>,
    ) -> Result<bool, DbError> {
        let node_pruners: &[Pruner<'_>] = self
            .pruners
            .as_ref()
            .map(|p| p[node].as_slice())
            .unwrap_or(&[]);
        // An empty numeric hull (`lo > hi`) rejects every numeric cell
        // outright: skip the entire scan without consulting zone maps, so
        // single-block columns (which carry none) prune just as hard.
        if n > 0 && node_pruners.iter().any(Pruner::rejects_all) {
            let blocks = node_pruners
                .iter()
                .chain(extra)
                .find_map(|p| p.col.block_rows())
                .map(|bs| (n as usize).div_ceil(bs) as u64)
                .unwrap_or(1);
            st.stats.blocks_skipped += blocks;
            return Ok(true);
        }
        let block_rows = node_pruners
            .iter()
            .chain(extra)
            .find_map(|p| p.col.block_rows());
        let Some(bs) = block_rows else {
            // No per-block zones (unfrozen, or a single-block column that
            // skipped them): one whole-column summary test per pruner can
            // still prove the entire scan empty.
            if n > 0
                && node_pruners
                    .iter()
                    .chain(extra)
                    .any(|p| !p.admits_whole_column())
            {
                st.stats.blocks_skipped += 1;
                return Ok(true);
            }
            for row in 0..n {
                if !per_row(self, row, st)? {
                    return Ok(false);
                }
            }
            return Ok(true);
        };
        let bs = bs as u32;
        for start in (0..n).step_by(bs as usize) {
            let block = (start / bs) as usize;
            if node_pruners.iter().chain(extra).any(|p| !p.admits(block)) {
                st.stats.blocks_skipped += 1;
                continue;
            }
            for row in start..(start + bs).min(n) {
                if !per_row(self, row, st)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Test one candidate row of `node`: local predicates (through the
    /// shared dictionary memos), then residual join checks, then recurse.
    /// `Ok(true)` means "keep searching" whether or not the row survived.
    fn try_row(
        &self,
        depth: usize,
        node: usize,
        table: &crate::table::Table,
        row: u32,
        st: &mut SearchState<'a, '_, '_>,
    ) -> Result<bool, DbError> {
        st.tick()?;
        st.stats.rows_examined += 1;
        st.node_rows[node] += 1;
        let syms = self.db.symbols();
        // Local predicates, on zero-copy cell views. Dictionary columns go
        // through the slot's verdict memo: one evaluation per distinct code
        // across every scan/probe path of this run.
        for &(col, slot) in &self.plan.local_preds[node] {
            let pred = self.preds[slot].expect("local_preds only lists Some preds");
            let column = table.column(col);
            let ok = match column.data() {
                ColumnData::Sym(codes) if st.memos[slot].eligible => {
                    let memo = &mut st.memos[slot];
                    if column.is_null(row as usize) {
                        *memo
                            .null_verdict
                            .get_or_insert_with(|| pred.matches(ValueRef::Null))
                    } else {
                        let code = codes[row as usize];
                        memo.check(code, || pred.matches(column.value_ref(syms, row as usize)))
                    }
                }
                _ => pred.matches(column.value_ref(syms, row as usize)),
            };
            if !ok {
                return Ok(true); // reject row, continue search
            }
        }
        self.advance(depth, node, row, st)
    }

    /// The post-predicate half of [`Search::try_row`]: record the
    /// assignment, enforce residual joins, recurse.
    fn advance(
        &self,
        depth: usize,
        node: usize,
        row: u32,
        st: &mut SearchState<'a, '_, '_>,
    ) -> Result<bool, DbError> {
        st.assignment[node] = row;
        // Residual (cycle-closing) join checks at this depth, on compact
        // keys in the pair's common space (NULL keys never match, matching
        // equi-join semantics).
        for (j, pair_space) in &self.plan.residual_at[depth] {
            let l = self
                .db
                .table(self.q.nodes[j.left_node])
                .column(j.left_col)
                .join_key_in(st.assignment[j.left_node] as usize, *pair_space);
            let r = self
                .db
                .table(self.q.nodes[j.right_node])
                .column(j.right_col)
                .join_key_in(st.assignment[j.right_node] as usize, *pair_space);
            match (l, r) {
                (Some(lk), Some(rk)) if lk == rk => {}
                _ => return Ok(true),
            }
        }
        self.run(depth + 1, st)
    }
}

enum CandidateRows<'a> {
    /// Scan all rows (start node).
    Scan(u32),
    /// Rows from a hash join index probe.
    List(&'a [u32]),
    /// No usable join index: scan comparing compact join keys (in the
    /// pair's common space) against the parent's.
    FilteredScan(u32, u32, u64, KeySpace),
}

/// One zone-map test applied per block of a scan.
struct Pruner<'t> {
    col: &'t Column,
    kind: PrunerKind,
}

enum PrunerKind {
    /// The block must possibly contain this compact join key.
    Key(u64, KeySpace),
    /// The block must possibly intersect this closed numeric interval.
    Range(f64, f64),
}

impl Pruner<'_> {
    #[inline]
    fn admits(&self, block: usize) -> bool {
        match self.kind {
            PrunerKind::Key(k, space) => self.col.block_may_contain_key(block, k, space),
            PrunerKind::Range(lo, hi) => self.col.block_may_overlap_range(block, lo, hi),
        }
    }

    /// True when no row anywhere can pass: an empty range hull. (Key
    /// pruners never reject unconditionally — key presence needs zones.)
    #[inline]
    fn rejects_all(&self) -> bool {
        matches!(self.kind, PrunerKind::Range(lo, hi) if lo > hi)
    }

    /// Test against the column's whole-column summary zone — the pruning
    /// level available when no per-block zone maps exist (single-block
    /// columns skip them).
    #[inline]
    fn admits_whole_column(&self) -> bool {
        match self.kind {
            PrunerKind::Key(k, space) => self.col.may_contain_key(k, space),
            PrunerKind::Range(lo, hi) => self.col.may_overlap_range(lo, hi),
        }
    }
}

/// Rows evaluated directly before a slot's memo bitmaps are allocated;
/// early-exit existence hits stay allocation-free. A reused scratch whose
/// bitmaps survived an earlier run skips the warmup — the allocation it
/// guards against already happened.
const MEMO_WARMUP: u32 = 32;

/// Prepare-time shape of one slot's dictionary memo: whether bitmaps pay
/// off on this column, and how many codes they must cover.
#[derive(Debug, Clone, Copy)]
struct MemoShape {
    eligible: bool,
    code_range: u32,
}

impl MemoShape {
    /// One shape per projection slot (ineligible for slots without a
    /// predicate or on non-dictionary columns). The query has already been
    /// validated, so slot/column indexing is in range.
    fn for_query(q: &PjQuery, db: &Database, preds: &[ProjPred<'_>]) -> Vec<MemoShape> {
        q.projection
            .iter()
            .enumerate()
            .map(|(slot, &(node, col))| {
                let mut m = MemoShape {
                    eligible: false,
                    code_range: 0,
                };
                if preds.get(slot).copied().flatten().is_none() {
                    return m;
                }
                let column = db.table(q.nodes[node]).column(col);
                if matches!(column.data(), ColumnData::Sym(_)) {
                    m.code_range = column.max_sym_code() + 1;
                    // Memoize only when the two bitmaps are small relative
                    // to the column; otherwise direct evaluation wins.
                    m.eligible = (m.code_range as usize).div_ceil(64) * 2 <= column.len();
                }
                m
            })
            .collect()
    }
}

/// Dictionary-code verdict memo of one projection slot for one query run.
/// A predicate is a pure function of the cell and equal cells share a code,
/// so the verdict is computed once per distinct code — no matter which scan
/// or probe path encounters the row. Lives in [`ExecScratch`]; `reset`
/// clears the verdicts (predicates differ between runs) but keeps the
/// bitmap allocations.
#[derive(Debug)]
struct SlotMemo {
    /// Slot predicate sits on a dictionary column whose code range is small
    /// enough for the bitmaps to pay off.
    eligible: bool,
    /// Bitmap size when allocated: the column's own code range, not the
    /// whole dictionary, so sparse columns in huge databases stay cheap.
    code_range: usize,
    evals: u32,
    null_verdict: Option<bool>,
    memo: Option<PredMemo>,
}

impl SlotMemo {
    fn fresh(shape: MemoShape) -> SlotMemo {
        SlotMemo {
            eligible: shape.eligible,
            code_range: shape.code_range as usize,
            evals: 0,
            null_verdict: None,
            memo: None,
        }
    }

    /// Clear for a new run of a (possibly different) prepared query:
    /// verdicts go, bitmap capacity stays.
    fn reset(&mut self, shape: MemoShape) {
        self.eligible = shape.eligible;
        self.code_range = shape.code_range as usize;
        self.evals = 0;
        self.null_verdict = None;
        if !shape.eligible {
            // Don't hold bitmaps for a slot that will never use them; the
            // next eligible slot would resize anyway.
            self.memo = None;
        } else if let Some(m) = &mut self.memo {
            m.reset(self.code_range);
        }
    }

    /// The predicate's verdict for `code`, evaluating at most once per code.
    /// The first [`MEMO_WARMUP`] calls evaluate directly so short-lived runs
    /// never allocate the bitmaps.
    #[inline]
    fn check(&mut self, code: u32, eval: impl FnOnce() -> bool) -> bool {
        if let Some(memo) = &mut self.memo {
            return memo.check(code, eval);
        }
        self.evals += 1;
        if self.evals <= MEMO_WARMUP {
            return eval();
        }
        self.memo
            .insert(PredMemo::new(self.code_range))
            .check(code, eval)
    }
}

/// Per-symbol predicate verdict cache: one bit records whether a code has
/// been evaluated, one bit the verdict.
#[derive(Debug)]
struct PredMemo {
    evaluated: Vec<u64>,
    verdict: Vec<u64>,
}

impl PredMemo {
    fn new(code_range: usize) -> PredMemo {
        let words = code_range.div_ceil(64);
        PredMemo {
            evaluated: vec![0; words],
            verdict: vec![0; words],
        }
    }

    /// Zero the evaluated bits (stale verdict bits are gated by them) and
    /// resize to a new code range, keeping capacity where possible.
    fn reset(&mut self, code_range: usize) {
        let words = code_range.div_ceil(64);
        self.evaluated.clear();
        self.evaluated.resize(words, 0);
        self.verdict.resize(words, 0);
    }

    /// The predicate's verdict for `code`, running `eval` only on the first
    /// encounter of that code.
    #[inline]
    fn check(&mut self, code: u32, eval: impl FnOnce() -> bool) -> bool {
        let (w, b) = ((code / 64) as usize, code % 64);
        if self.evaluated[w] >> b & 1 == 1 {
            return self.verdict[w] >> b & 1 == 1;
        }
        let r = eval();
        self.evaluated[w] |= 1 << b;
        if r {
            self.verdict[w] |= 1 << b;
        } else {
            self.verdict[w] &= !(1 << b);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{tests::lakes_db, DatabaseBuilder};
    use crate::schema::{ColumnDef, TableId};
    use crate::types::DataType;

    /// `SELECT geo_lake.Province, Lake.Name, Lake.Area FROM Lake, geo_lake
    ///  WHERE Lake.Name = geo_lake.Lake` — the paper's desired query.
    fn lakes_query() -> PjQuery {
        PjQuery {
            nodes: vec![TableId(0), TableId(1)], // Lake, geo_lake
            joins: vec![JoinCond {
                left_node: 1,
                left_col: 0, // geo_lake.Lake
                right_node: 0,
                right_col: 0, // Lake.Name
            }],
            projection: vec![(1, 1), (0, 0), (0, 1)], // Province, Name, Area
        }
    }

    #[test]
    fn execute_produces_join_result() {
        let db = lakes_db();
        let rows = lakes_query().execute(&db, 100).unwrap();
        assert_eq!(rows.len(), 4); // Dead Lake has no geo row
        assert!(rows.contains(&vec![
            "California".into(),
            "Lake Tahoe".into(),
            Value::Decimal(497.0)
        ]));
        assert!(rows.contains(&vec![
            "Nevada".into(),
            "Lake Tahoe".into(),
            Value::Decimal(497.0)
        ]));
    }

    #[test]
    fn execute_respects_limit() {
        let db = lakes_db();
        let rows = lakes_query().execute(&db, 2).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn exists_matching_finds_sample() {
        let db = lakes_db();
        let q = lakes_query();
        let is_cal = |v: ValueRef<'_>| v == ValueRef::Text("California");
        let is_tahoe = |v: ValueRef<'_>| v == ValueRef::Text("Lake Tahoe");
        let mut stats = ExecStats::default();
        let found = q
            .exists_matching(
                &db,
                &[
                    Some(ScanPred::new(&is_cal)),
                    Some(ScanPred::new(&is_tahoe)),
                    None,
                ],
                &mut stats,
            )
            .unwrap();
        assert!(found);
        assert!(stats.rows_emitted >= 1);
    }

    #[test]
    fn exists_matching_rejects_impossible_sample() {
        let db = lakes_db();
        let q = lakes_query();
        // Crater Lake is in Oregon, not California.
        let is_cal = |v: ValueRef<'_>| v == ValueRef::Text("California");
        let is_crater = |v: ValueRef<'_>| v == ValueRef::Text("Crater Lake");
        let mut stats = ExecStats::default();
        let found = q
            .exists_matching(
                &db,
                &[
                    Some(ScanPred::new(&is_cal)),
                    Some(ScanPred::new(&is_crater)),
                    None,
                ],
                &mut stats,
            )
            .unwrap();
        assert!(!found);
    }

    #[test]
    fn exists_early_exit_examines_fewer_rows_than_full_eval() {
        let db = lakes_db();
        let q = lakes_query();
        let mut full = ExecStats::default();
        q.count_matching(&db, &[], u64::MAX, &mut full).unwrap();
        let mut early = ExecStats::default();
        let t = |_: ValueRef<'_>| true;
        let p = || Some(ScanPred::new(&t));
        assert!(q
            .exists_matching(&db, &[p(), p(), p()], &mut early)
            .unwrap());
        assert!(early.rows_emitted == 1);
        assert!(early.rows_examined <= full.rows_examined);
    }

    /// Tentpole: a prepared query runs any number of times against one
    /// (dirty) scratch and returns exactly the rows of the per-call
    /// wrapper, with reuses counted.
    #[test]
    fn prepared_query_reuses_scratch_and_matches_wrapper() {
        let db = lakes_db();
        let q = lakes_query();
        let any_prov = |v: ValueRef<'_>| !v.is_null();
        let is_tahoe = |v: ValueRef<'_>| v == ValueRef::Text("Lake Tahoe");
        let preds = [
            Some(ScanPred::new(&any_prov)),
            Some(ScanPred::new(&is_tahoe)),
            None,
        ];
        let prepared = q.prepare(&db, &preds).unwrap();
        let mut scratch = ExecScratch::new();
        let mut stats = ExecStats::default();
        for round in 0..3 {
            let mut got: Vec<Vec<Value>> = Vec::new();
            prepared
                .for_each_row(&db, &preds, &mut scratch, &mut stats, &mut |r| {
                    got.push(r.iter().map(|v| v.to_value()).collect());
                    true
                })
                .unwrap();
            let mut want: Vec<Vec<Value>> = Vec::new();
            let mut wrapper_stats = ExecStats::default();
            q.for_each_row(&db, &preds, &mut wrapper_stats, &mut |r| {
                want.push(r.iter().map(|v| v.to_value()).collect());
                true
            })
            .unwrap();
            assert_eq!(got, want, "round {round}");
            assert_eq!(wrapper_stats.plans_built, 1, "wrapper compiles per call");
        }
        assert_eq!(stats.scratch_reuses, 2, "runs 2 and 3 reused the scratch");
        assert_eq!(stats.plans_built, 0, "prepared runs compile nothing");
    }

    /// Reused verdict bitmaps must not leak verdicts between runs: the
    /// same prepared query executed with an *inverted* predicate (same
    /// shape) flips every answer. The table is large enough that the
    /// bitmaps are really allocated (past the warmup) on the first run.
    #[test]
    fn scratch_reuse_does_not_leak_verdicts_across_runs() {
        let mut b = DatabaseBuilder::new("leak");
        b.add_table("T", vec![ColumnDef::new("tag", DataType::Text).not_null()])
            .unwrap();
        for i in 0..200 {
            let tag = if i % 2 == 0 { "even" } else { "odd" };
            b.add_row("T", vec![tag.into()]).unwrap();
        }
        let db = b.build();
        let q = PjQuery {
            nodes: vec![db.catalog().table_id("T").unwrap()],
            joins: vec![],
            projection: vec![(0, 0)],
        };
        let is_even = |v: ValueRef<'_>| v == ValueRef::Text("even");
        let is_odd = |v: ValueRef<'_>| v == ValueRef::Text("odd");
        let prepared = q.prepare(&db, &[Some(ScanPred::new(&is_even))]).unwrap();
        let mut scratch = ExecScratch::new();
        let mut stats = ExecStats::default();
        let n_even = prepared
            .count_matching(
                &db,
                &[Some(ScanPred::new(&is_even))],
                u64::MAX,
                &mut scratch,
                &mut stats,
            )
            .unwrap();
        let n_odd = prepared
            .count_matching(
                &db,
                &[Some(ScanPred::new(&is_odd))],
                u64::MAX,
                &mut scratch,
                &mut stats,
            )
            .unwrap();
        assert_eq!(n_even, 100);
        assert_eq!(n_odd, 100, "stale verdicts leaked through the scratch");
        assert_eq!(stats.scratch_reuses, 1);
    }

    /// The plan bakes in which slots carry predicates; running with a
    /// different shape must be rejected, not silently mis-planned.
    #[test]
    fn prepared_query_rejects_mismatched_predicate_shape() {
        let db = lakes_db();
        let q = lakes_query();
        let t = |_: ValueRef<'_>| true;
        let prepared = q
            .prepare(&db, &[Some(ScanPred::new(&t)), None, None])
            .unwrap();
        let mut scratch = ExecScratch::new();
        let mut stats = ExecStats::default();
        // Same arity, different slot: rejected.
        let err = prepared.exists_matching(
            &db,
            &[None, Some(ScanPred::new(&t)), None],
            &mut scratch,
            &mut stats,
        );
        assert!(matches!(err, Err(DbError::InvalidQuery(_))));
        // No predicates at all against a predicated plan: rejected.
        let err = prepared.exists_matching(&db, &[], &mut scratch, &mut stats);
        assert!(matches!(err, Err(DbError::InvalidQuery(_))));
        // The prepared shape itself still runs (with fresh closures).
        let t2 = |_: ValueRef<'_>| true;
        assert!(prepared
            .exists_matching(
                &db,
                &[Some(ScanPred::new(&t2)), None, None],
                &mut scratch,
                &mut stats
            )
            .unwrap());
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut b = DatabaseBuilder::new("nulls");
        b.add_table("A", vec![ColumnDef::new("k", DataType::Text)])
            .unwrap();
        b.add_table("B", vec![ColumnDef::new("k", DataType::Text)])
            .unwrap();
        b.add_rows("A", vec![vec![Value::Null], vec!["x".into()]])
            .unwrap();
        b.add_rows("B", vec![vec![Value::Null], vec!["y".into()]])
            .unwrap();
        b.add_foreign_key("A", "k", "B", "k").unwrap();
        let db = b.build();
        let q = PjQuery {
            nodes: vec![TableId(0), TableId(1)],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(0, 0)],
        };
        assert_eq!(q.execute(&db, 10).unwrap().len(), 0);
    }

    /// An ad-hoc Int↔Int join where one side's FK component was demoted to
    /// the f64 space (by a Decimal partner elsewhere) must still compare
    /// exactly: both declared types are Int, so the pair keys on raw i64
    /// bits via a filtered scan instead of probing the f64-keyed index.
    #[test]
    fn cross_component_int_join_stays_exact_beyond_f64_precision() {
        use crate::types::KeySpace;
        let mut b = DatabaseBuilder::new("xcomp");
        b.add_table("P", vec![ColumnDef::new("id", DataType::Int).not_null()])
            .unwrap();
        b.add_table("D", vec![ColumnDef::new("x", DataType::Decimal).not_null()])
            .unwrap();
        b.add_table("Q", vec![ColumnDef::new("p", DataType::Int).not_null()])
            .unwrap();
        // P.id ↔ D.x demotes P.id to the f64 space; Q.p (no FK) stays Int.
        b.add_foreign_key("P", "id", "D", "x").unwrap();
        b.add_rows(
            "P",
            vec![vec![Value::Int(i64::MAX)], vec![Value::Int(i64::MAX - 1)]],
        )
        .unwrap();
        b.add_row("D", vec![Value::Decimal(1.0)]).unwrap();
        b.add_row("Q", vec![Value::Int(i64::MAX - 1)]).unwrap();
        let db = b.build();
        let p_id = db.catalog().column_ref("P", "id").unwrap();
        let q_p = db.catalog().column_ref("Q", "p").unwrap();
        assert_eq!(db.key_space(p_id), KeySpace::F64);
        assert_eq!(db.key_space(q_p), KeySpace::Int);
        // Ad-hoc join Q.p = P.id: under f64 keys both P rows would match.
        let q = PjQuery {
            nodes: vec![
                db.catalog().table_id("Q").unwrap(),
                db.catalog().table_id("P").unwrap(),
            ],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(1, 0)],
        };
        let rows = q.execute(&db, 10).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(i64::MAX - 1)]]);
    }

    #[test]
    fn single_node_query_scans() {
        let db = lakes_db();
        let q = PjQuery {
            nodes: vec![TableId(0)],
            joins: vec![],
            projection: vec![(0, 0)],
        };
        let rows = q.execute(&db, 100).unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn cross_kind_join_condition_rejected() {
        // Text and Decimal columns share the compact-key space only within
        // their own kind, so a join condition between them must be rejected
        // (previously it compared Values and simply never matched).
        let db = lakes_db();
        let q = PjQuery {
            nodes: vec![TableId(0), TableId(1)],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 1, // Lake.Area (decimal)
                right_node: 1,
                right_col: 1, // geo_lake.Province (text)
            }],
            projection: vec![(0, 0)],
        };
        assert!(matches!(q.validate(&db), Err(DbError::InvalidQuery(_))));
    }

    #[test]
    fn disconnected_query_rejected() {
        let db = lakes_db();
        let q = PjQuery {
            nodes: vec![TableId(0), TableId(1)],
            joins: vec![],
            projection: vec![(0, 0)],
        };
        assert!(matches!(q.validate(&db), Err(DbError::InvalidQuery(_))));
        assert!(q.prepare(&db, &[]).is_err(), "prepare validates");
    }

    #[test]
    fn out_of_range_projection_rejected() {
        let db = lakes_db();
        let q = PjQuery {
            nodes: vec![TableId(0)],
            joins: vec![],
            projection: vec![(0, 9)],
        };
        assert!(q.validate(&db).is_err());
    }

    #[test]
    fn wrong_pred_arity_rejected() {
        let db = lakes_db();
        let q = lakes_query();
        let t = |_: ValueRef<'_>| true;
        let mut stats = ExecStats::default();
        let err = q.exists_matching(&db, &[Some(ScanPred::new(&t))], &mut stats);
        assert!(err.is_err());
    }

    #[test]
    fn cyclic_query_residual_joins_enforced() {
        // A(k1,k2) joins B twice: once via spanning link, once residual.
        let mut b = DatabaseBuilder::new("cyc");
        b.add_table(
            "A",
            vec![
                ColumnDef::new("k1", DataType::Int),
                ColumnDef::new("k2", DataType::Int),
            ],
        )
        .unwrap();
        b.add_table(
            "B",
            vec![
                ColumnDef::new("k1", DataType::Int),
                ColumnDef::new("k2", DataType::Int),
            ],
        )
        .unwrap();
        b.add_rows(
            "A",
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        b.add_rows(
            "B",
            vec![
                vec![Value::Int(1), Value::Int(10)], // matches row 0 on both
                vec![Value::Int(2), Value::Int(99)], // matches row 1 on k1 only
            ],
        )
        .unwrap();
        b.add_foreign_key("A", "k1", "B", "k1").unwrap();
        b.add_foreign_key("A", "k2", "B", "k2").unwrap();
        let db = b.build();
        let q = PjQuery {
            nodes: vec![TableId(0), TableId(1)],
            joins: vec![
                JoinCond {
                    left_node: 0,
                    left_col: 0,
                    right_node: 1,
                    right_col: 0,
                },
                JoinCond {
                    left_node: 0,
                    left_col: 1,
                    right_node: 1,
                    right_col: 1,
                },
            ],
            projection: vec![(0, 0)],
        };
        let rows = q.execute(&db, 10).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn exec_stats_accumulate() {
        let mut a = ExecStats {
            rows_examined: 1,
            index_probes: 2,
            rows_emitted: 3,
            blocks_skipped: 4,
            plans_built: 5,
            scratch_reuses: 6,
            nodes_reordered: 7,
            plan_recompiles: 8,
            rows_estimated: 9,
        };
        let b = ExecStats {
            rows_examined: 10,
            index_probes: 20,
            rows_emitted: 30,
            blocks_skipped: 40,
            plans_built: 50,
            scratch_reuses: 60,
            nodes_reordered: 70,
            plan_recompiles: 80,
            rows_estimated: 90,
        };
        a.add(&b);
        assert_eq!(a.rows_examined, 11);
        assert_eq!(a.index_probes, 22);
        assert_eq!(a.rows_emitted, 33);
        assert_eq!(a.blocks_skipped, 44);
        assert_eq!(a.plans_built, 55);
        assert_eq!(a.scratch_reuses, 66);
        assert_eq!(a.nodes_reordered, 77);
        assert_eq!(a.plan_recompiles, 88);
        assert_eq!(a.rows_estimated, 99);
        assert_eq!(a.fanout_ratio(), Some(11.0 / 99.0));
        assert_eq!(ExecStats::default().fanout_ratio(), None);
    }

    /// A Zipf-style hub: `Tag` 1 owns half of `Item`. Declaration-order
    /// planning starts at the small predicated `Tag` table and probes
    /// straight into the hub's 2500-row posting run; the cost-based planner
    /// sees the hull on `Item.score` and the skewed `max_run` and flips the
    /// order. Both must enumerate identical rows.
    fn hub_db() -> Database {
        let mut b = DatabaseBuilder::new("hub").with_block_rows(64);
        b.add_table(
            "Tag",
            vec![
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("id", DataType::Int),
            ],
        )
        .unwrap();
        b.add_table(
            "Item",
            vec![
                ColumnDef::new("tag", DataType::Int),
                ColumnDef::new("score", DataType::Int),
            ],
        )
        .unwrap();
        for k in 1..=100i64 {
            b.add_row("Tag", vec![format!("t{k}").into(), Value::Int(k)])
                .unwrap();
        }
        for i in 0..5000i64 {
            let tag = if i < 2500 { 1 } else { 2 + (i % 99) };
            b.add_row("Item", vec![Value::Int(tag), Value::Int(i)])
                .unwrap();
        }
        b.add_foreign_key("Item", "tag", "Tag", "id").unwrap();
        b.build()
    }

    fn hub_query(db: &Database) -> PjQuery {
        PjQuery {
            nodes: vec![
                db.catalog().table_id("Tag").unwrap(),
                db.catalog().table_id("Item").unwrap(),
            ],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 1, // Tag.id
                right_node: 1,
                right_col: 0, // Item.tag
            }],
            projection: vec![(0, 0), (1, 1)], // Tag.name, Item.score
        }
    }

    #[test]
    fn cost_order_resists_hub_skew_and_stays_row_identical() {
        let db = hub_db();
        let q = hub_query(&db);
        let is_t1 = |v: ValueRef<'_>| v == ValueRef::Text("t1");
        let in_range =
            |v: ValueRef<'_>| v.as_number().is_some_and(|x| (100.0..=120.0).contains(&x));
        let preds = [
            Some(ScanPred::new(&is_t1)),
            Some(ScanPred::new(&in_range).with_range(100.0, 120.0)),
        ];
        let collect = |mode: JoinOrder| {
            let prepared = q.prepare_with(&db, &preds, mode).unwrap();
            let mut scratch = ExecScratch::new();
            let mut stats = ExecStats::default();
            let mut rows: Vec<Vec<Value>> = Vec::new();
            prepared
                .for_each_row(&db, &preds, &mut scratch, &mut stats, &mut |r| {
                    rows.push(r.iter().map(|v| v.to_value()).collect());
                    true
                })
                .unwrap();
            rows.sort();
            (rows, stats, prepared.nodes_reordered())
        };
        let (fixed_rows, fixed_stats, fixed_moved) = collect(JoinOrder::Fixed);
        let (cost_rows, cost_stats, cost_moved) = collect(JoinOrder::Cost);
        assert_eq!(fixed_rows, cost_rows, "plans must be row-identical");
        assert_eq!(fixed_rows.len(), 21, "scores 100..=120 all live in the hub");
        assert_eq!(fixed_moved, 0, "fixed mode never reorders");
        assert!(cost_moved > 0, "cost mode flips the hub probe");
        assert!(
            cost_stats.rows_examined * 5 <= fixed_stats.rows_examined,
            "cost order should dodge the hub: {} vs {}",
            cost_stats.rows_examined,
            fixed_stats.rows_examined
        );
        assert!(cost_stats.rows_estimated > 0);
    }

    /// Hub-concentrated parent keys make every probe hit the longest
    /// posting run, so observed rows-examined diverges ~16x from the
    /// blended estimate. After [`GUARD_MIN_RUNS`] runs the guard recompiles
    /// exactly once here (through the shared prepared query, so every later
    /// run uses the replacement plan) and enumeration stays identical: the
    /// recompile re-arms the guard with a doubled 16-run window, and the
    /// two post-recompile runs fall well short of it.
    #[test]
    fn adaptive_guard_recompiles_once_on_divergence() {
        let mut b = DatabaseBuilder::new("diverge");
        b.add_table("A", vec![ColumnDef::new("fk", DataType::Int)])
            .unwrap();
        b.add_table("B", vec![ColumnDef::new("t", DataType::Int)])
            .unwrap();
        for _ in 0..10 {
            b.add_row("A", vec![Value::Int(1)]).unwrap();
        }
        for _ in 0..2000 {
            b.add_row("B", vec![Value::Int(1)]).unwrap();
        }
        for k in 2..302i64 {
            b.add_row("B", vec![Value::Int(k)]).unwrap();
        }
        b.add_foreign_key("A", "fk", "B", "t").unwrap();
        let db = b.build();
        let q = PjQuery {
            nodes: vec![
                db.catalog().table_id("A").unwrap(),
                db.catalog().table_id("B").unwrap(),
            ],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(0, 0)],
        };
        let prepared = q.prepare_with(&db, &[], JoinOrder::Cost).unwrap();
        let mut scratch = ExecScratch::new();
        let mut stats = ExecStats::default();
        for run in 0..GUARD_MIN_RUNS + 2 {
            let count = prepared
                .count_matching(&db, &[], u64::MAX, &mut scratch, &mut stats)
                .unwrap();
            assert_eq!(count, 10 * 2000, "run {run} must enumerate every match");
        }
        assert_eq!(
            stats.plan_recompiles, 1,
            "guard recompiles exactly once despite further divergent runs"
        );
        // The observed ratio that tripped the guard is visible to callers.
        assert!(stats.fanout_ratio().unwrap() > FANOUT_DIVERGENCE);
    }

    /// The re-armed guard doubles its run threshold each generation
    /// (8, 16, 32) and never recompiles more than [`MAX_RECOMPILES`]
    /// times. Feedback multipliers fold the observed fan-out into each
    /// replan's estimates, so a *natural* repeat divergence cannot be
    /// staged against a frozen database — this test drives the guard's
    /// counter windows directly and checks the state machine.
    #[test]
    fn rearmed_guard_doubles_thresholds_and_caps_recompiles() {
        let mut b = DatabaseBuilder::new("rearm");
        b.add_table("A", vec![ColumnDef::new("fk", DataType::Int)])
            .unwrap();
        b.add_table("B", vec![ColumnDef::new("t", DataType::Int)])
            .unwrap();
        for k in 0..16i64 {
            b.add_row("A", vec![Value::Int(k % 4)]).unwrap();
            b.add_row("B", vec![Value::Int(k)]).unwrap();
        }
        b.add_foreign_key("A", "fk", "B", "t").unwrap();
        let db = b.build();
        let q = PjQuery {
            nodes: vec![
                db.catalog().table_id("A").unwrap(),
                db.catalog().table_id("B").unwrap(),
            ],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(0, 0)],
        };
        let prepared = q.prepare_with(&db, &[], JoinOrder::Cost).unwrap();
        let mut stats = ExecStats::default();
        // Stage a divergent window of `runs` observations (a huge average
        // keeps every generation past the 4x bar; node counters stay 0 so
        // multipliers clamp to 1 and each replan's estimate stays small),
        // then consult the guard the way every execution path does.
        let window = |runs: u64, stats: &mut ExecStats| {
            use std::sync::atomic::Ordering::Relaxed;
            prepared.guard.runs.store(runs, Relaxed);
            prepared
                .guard
                .rows
                .store(runs.saturating_mul(1_000_000_000), Relaxed);
            let _ = prepared.active_plan(&db, &[], stats);
        };
        // Generation 0 trips at the base threshold.
        window(GUARD_MIN_RUNS, &mut stats);
        assert_eq!(stats.plan_recompiles, 1, "base window arms the guard");
        // Generation 1 needs a doubled window: 8 divergent runs no longer
        // suffice, 16 do.
        window(GUARD_MIN_RUNS, &mut stats);
        assert_eq!(stats.plan_recompiles, 1, "8 runs are below the doubled bar");
        window(GUARD_MIN_RUNS * 2, &mut stats);
        assert_eq!(stats.plan_recompiles, 2, "16 runs re-trip the guard");
        // Generation 2 doubles again to 32.
        window(GUARD_MIN_RUNS * 2, &mut stats);
        assert_eq!(
            stats.plan_recompiles, 2,
            "16 runs are below the tripled bar"
        );
        window(GUARD_MIN_RUNS * 4, &mut stats);
        assert_eq!(
            stats.plan_recompiles, 3,
            "32 runs exhaust the recompile cap"
        );
        // However divergent later windows get, there is no fourth recompile.
        window(GUARD_MIN_RUNS * 64, &mut stats);
        window(u64::MAX / 1_000_000_000, &mut stats);
        assert_eq!(
            stats.plan_recompiles, 3,
            "the guard is disarmed after MAX_RECOMPILES generations"
        );
        assert!(prepared.guard.replans.iter().all(|s| s.get().is_some()));
    }

    /// A selective range predicate with a hull hint skips whole blocks via
    /// zone maps, and the pruned scan returns exactly the unpruned rows.
    #[test]
    fn range_hint_prunes_blocks_without_changing_results() {
        let mut b = DatabaseBuilder::new("zones").with_block_rows(16);
        b.add_table("T", vec![ColumnDef::new("x", DataType::Int)])
            .unwrap();
        for i in 0..256 {
            b.add_row("T", vec![Value::Int(i)]).unwrap();
        }
        let db = b.build();
        let q = PjQuery {
            nodes: vec![db.catalog().table_id("T").unwrap()],
            joins: vec![],
            projection: vec![(0, 0)],
        };
        let in_range =
            |v: ValueRef<'_>| v.as_number().is_some_and(|x| (100.0..=110.0).contains(&x));
        let mut hinted = ExecStats::default();
        let got = {
            let mut rows = Vec::new();
            q.for_each_row(
                &db,
                &[Some(ScanPred::new(&in_range).with_range(100.0, 110.0))],
                &mut hinted,
                &mut |r| {
                    rows.push(r[0].to_value());
                    true
                },
            )
            .unwrap();
            rows
        };
        let mut unhinted = ExecStats::default();
        let want = {
            let mut rows = Vec::new();
            q.for_each_row(
                &db,
                &[Some(ScanPred::new(&in_range))],
                &mut unhinted,
                &mut |r| {
                    rows.push(r[0].to_value());
                    true
                },
            )
            .unwrap();
            rows
        };
        assert_eq!(got, want);
        assert_eq!(got.len(), 11);
        // 256 rows / 16 = 16 blocks; the hull [100, 110] sits entirely in
        // block 6 (rows 96..112), so the other 15 are skipped.
        assert_eq!(hinted.blocks_skipped, 15);
        assert_eq!(unhinted.blocks_skipped, 0);
        assert!(hinted.rows_examined < unhinted.rows_examined);
    }

    /// An empty hull (`lo > hi`) skips the whole scan even on a
    /// single-block column, which carries no zone maps at all.
    #[test]
    fn empty_hull_skips_single_block_scan_without_zone_maps() {
        let mut b = DatabaseBuilder::new("tiny");
        b.add_table("T", vec![ColumnDef::new("x", DataType::Int)])
            .unwrap();
        for i in 0..10 {
            b.add_row("T", vec![Value::Int(i)]).unwrap();
        }
        let db = b.build();
        let col = db.table(db.catalog().table_id("T").unwrap()).column(0);
        assert!(col.block_meta().is_empty(), "single block: no zone maps");
        let q = PjQuery {
            nodes: vec![db.catalog().table_id("T").unwrap()],
            joins: vec![],
            projection: vec![(0, 0)],
        };
        let never = |_: ValueRef<'_>| false;
        let mut stats = ExecStats::default();
        let n = q
            .count_matching(
                &db,
                &[Some(
                    ScanPred::new(&never).with_range(f64::INFINITY, f64::NEG_INFINITY),
                )],
                u64::MAX,
                &mut stats,
            )
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(stats.rows_examined, 0, "scan skipped outright");
        assert_eq!(stats.blocks_skipped, 1, "the whole table counts as one");
    }

    /// A single-block column carries no per-block zones, but its inline
    /// whole-column summary still proves disjoint (non-empty) hulls away.
    #[test]
    fn single_block_summary_prunes_disjoint_range_scans() {
        let mut b = DatabaseBuilder::new("summary");
        b.add_table("T", vec![ColumnDef::new("x", DataType::Int)])
            .unwrap();
        for i in 0..10 {
            b.add_row("T", vec![Value::Int(i)]).unwrap();
        }
        let db = b.build();
        let col = db.table(db.catalog().table_id("T").unwrap()).column(0);
        assert!(col.block_meta().is_empty(), "single block: no zone maps");
        let q = PjQuery {
            nodes: vec![db.catalog().table_id("T").unwrap()],
            joins: vec![],
            projection: vec![(0, 0)],
        };
        let in_range =
            |v: ValueRef<'_>| v.as_number().is_some_and(|x| (500.0..=600.0).contains(&x));
        let mut stats = ExecStats::default();
        let n = q
            .count_matching(
                &db,
                &[Some(ScanPred::new(&in_range).with_range(500.0, 600.0))],
                u64::MAX,
                &mut stats,
            )
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(stats.rows_examined, 0, "summary proved the column empty");
        assert_eq!(stats.blocks_skipped, 1);
        // A hull that does intersect still scans and finds its rows.
        let hit = |v: ValueRef<'_>| v.as_number().is_some_and(|x| (3.0..=4.0).contains(&x));
        let mut stats = ExecStats::default();
        let n = q
            .count_matching(
                &db,
                &[Some(ScanPred::new(&hit).with_range(3.0, 4.0))],
                u64::MAX,
                &mut stats,
            )
            .unwrap();
        assert_eq!(n, 2);
        assert!(stats.rows_examined > 0);
    }

    /// Regression (satellite): the dictionary verdict memo engages on the
    /// *filtered-scan* path too — a text predicate on a node reached by an
    /// indexless ad-hoc join is evaluated once per distinct code, and the
    /// result set matches the per-row semantics.
    #[test]
    fn filtered_scan_memoizes_text_predicates() {
        use std::cell::Cell;
        let mut b = DatabaseBuilder::new("fsmemo").with_block_rows(16);
        // P.id ↔ D.x demotes P.id to the f64 space; Q.p stays Int. The
        // ad-hoc join Q.p = P.id then runs as a filtered scan over P.
        b.add_table(
            "P",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("tag", DataType::Text).not_null(),
            ],
        )
        .unwrap();
        b.add_table("D", vec![ColumnDef::new("x", DataType::Decimal).not_null()])
            .unwrap();
        b.add_table("Q", vec![ColumnDef::new("p", DataType::Int).not_null()])
            .unwrap();
        b.add_foreign_key("P", "id", "D", "x").unwrap();
        // One join key shared by many P rows, alternating between two tags,
        // so the filtered scan evaluates the predicate far past the warmup.
        for i in 0..200 {
            let tag = if i % 2 == 0 { "even" } else { "odd" };
            b.add_row("P", vec![Value::Int(7), tag.into()]).unwrap();
        }
        b.add_row("D", vec![Value::Decimal(7.0)]).unwrap();
        b.add_row("Q", vec![Value::Int(7)]).unwrap();
        let db = b.build();
        // Both nodes carry a predicate, so the 1-row Q wins the start-node
        // tie-break and P is reached through the indexless ad-hoc join —
        // i.e. the text predicate runs on the filtered-scan path.
        let q = PjQuery {
            nodes: vec![
                db.catalog().table_id("Q").unwrap(),
                db.catalog().table_id("P").unwrap(),
            ],
            joins: vec![JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(1, 1), (0, 0)],
        };
        let evals = Cell::new(0u32);
        let is_even = |v: ValueRef<'_>| {
            evals.set(evals.get() + 1);
            v == ValueRef::Text("even")
        };
        let is_seven = |v: ValueRef<'_>| v.as_number() == Some(7.0);
        let mut stats = ExecStats::default();
        let n = q
            .count_matching(
                &db,
                &[
                    Some(ScanPred::new(&is_even)),
                    Some(ScanPred::new(&is_seven)),
                ],
                u64::MAX,
                &mut stats,
            )
            .unwrap();
        assert_eq!(n, 100, "every even-tagged P row joins");
        // 200 rows, 2 distinct codes: without the shared memo the closure
        // would run 200 times; with it, the warmup plus one evaluation per
        // code not seen during warmup.
        assert!(
            evals.get() <= MEMO_WARMUP + 2,
            "predicate ran {} times — filtered scan is not memoized",
            evals.get()
        );
    }

    /// The memo is shared across paths within one run: rows reaching the
    /// predicate through an index probe reuse verdicts cached by the scan.
    #[test]
    fn probed_rows_share_the_scan_memo() {
        let db = lakes_db();
        let q = lakes_query();
        use std::cell::Cell;
        let evals = Cell::new(0u32);
        let any_prov = |v: ValueRef<'_>| {
            evals.set(evals.get() + 1);
            !v.is_null()
        };
        let is_tahoe = |v: ValueRef<'_>| v == ValueRef::Text("Lake Tahoe");
        let mut stats = ExecStats::default();
        let n = q
            .count_matching(
                &db,
                &[
                    Some(ScanPred::new(&any_prov)),
                    Some(ScanPred::new(&is_tahoe)),
                    None,
                ],
                u64::MAX,
                &mut stats,
            )
            .unwrap();
        assert_eq!(n, 2, "Tahoe joins California and Nevada");
        // The toy table is below the warmup, so verdicts are direct here —
        // the assertion is about correctness of the shared-memo plumbing.
        assert!(evals.get() >= 2);
    }
}
