//! Typed bulk-append batches.
//!
//! [`ColumnBatch`] is the zero-`Value` ingest vehicle: callers push typed
//! cells straight into per-column primitive vectors (`Vec<i64>`, `Vec<f64>`,
//! local dictionary codes) and hand the whole batch to
//! [`crate::Table::append_batch`], which validates arity / types / NOT NULL
//! **per batch** instead of per cell and splices the vectors into column
//! storage with bulk bitmap appends. Text cells are interned into a
//! batch-local dictionary so a batch can be assembled off-thread (it holds
//! no reference to the database's shared [`crate::SymbolTable`]); the append
//! re-codes local ids into global ids in row-major first-occurrence order,
//! which keeps global code assignment identical to the per-row
//! [`crate::Table::push_row`] path.

use crate::column::NULL_SYM;
use crate::error::DbError;
use crate::schema::TableSchema;
use crate::types::{DataType, Date, Time};
use std::collections::HashMap;

/// A batch-local string dictionary: distinct strings stored once, cells
/// hold dense local ids. Re-coded into the database interner at append.
#[derive(Debug, Clone, Default)]
pub(crate) struct LocalDict {
    pub(crate) strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl LocalDict {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("batch dictionary overflow");
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    fn intern_owned(&mut self, s: String) -> u32 {
        if let Some(&id) = self.index.get(&s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("batch dictionary overflow");
        self.strings.push(s.clone());
        self.index.insert(s, id);
        id
    }

    pub(crate) fn len(&self) -> usize {
        self.strings.len()
    }
}

/// Typed payload of one batch column. NULL rows hold a placeholder in the
/// data vector (0 / 0.0 / `NULL_SYM` / epoch date / midnight) and are
/// flagged in the column's null bitmap, mirroring [`crate::Column`] layout.
#[derive(Debug, Clone)]
pub(crate) enum BatchData {
    Int(Vec<i64>),
    Decimal(Vec<f64>),
    Text { codes: Vec<u32>, dict: LocalDict },
    Date(Vec<Date>),
    Time(Vec<Time>),
}

impl BatchData {
    fn new(dtype: DataType) -> BatchData {
        match dtype {
            DataType::Int => BatchData::Int(Vec::new()),
            DataType::Decimal => BatchData::Decimal(Vec::new()),
            DataType::Text => BatchData::Text {
                codes: Vec::new(),
                dict: LocalDict::default(),
            },
            DataType::Date => BatchData::Date(Vec::new()),
            DataType::Time => BatchData::Time(Vec::new()),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            BatchData::Int(v) => v.len(),
            BatchData::Decimal(v) => v.len(),
            BatchData::Text { codes, .. } => codes.len(),
            BatchData::Date(v) => v.len(),
            BatchData::Time(v) => v.len(),
        }
    }

    /// The type name used in batch/column mismatch errors.
    pub(crate) fn kind_name(&self) -> &'static str {
        match self {
            BatchData::Int(_) => "int",
            BatchData::Decimal(_) => "decimal",
            BatchData::Text { .. } => "text",
            BatchData::Date(_) => "date",
            BatchData::Time(_) => "time",
        }
    }

    /// Can a batch column of this kind land in a stored column of `dtype`?
    /// Exactly the `push_row` rule: kinds match, plus Int widens to Decimal.
    pub(crate) fn storable_as(&self, dtype: DataType) -> bool {
        matches!(
            (self, dtype),
            (BatchData::Int(_), DataType::Int)
                | (BatchData::Int(_), DataType::Decimal)
                | (BatchData::Decimal(_), DataType::Decimal)
                | (BatchData::Text { .. }, DataType::Text)
                | (BatchData::Date(_), DataType::Date)
                | (BatchData::Time(_), DataType::Time)
        )
    }
}

/// One batch column: typed data plus a null bitmap.
#[derive(Debug, Clone)]
pub(crate) struct BatchColumn {
    pub(crate) data: BatchData,
    pub(crate) nulls: crate::column::NullBitmap,
}

/// A typed bulk-append batch for one table. Cells are pushed columnar and
/// append-ordered; [`crate::Table::append_batch`] (or
/// [`crate::DatabaseBuilder::append_batch`]) validates and splices it into
/// storage in one shot. The `push_*` methods return
/// [`DbError::BatchKindMismatch`] if the cell kind cannot land in the
/// column's declared type (`Int` into `Decimal` is the one allowed
/// widening), so ingest faults are catchable errors rather than unwinds;
/// data errors (arity, ragged columns, NOT NULL) surface as `Err` from the
/// append instead.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    pub(crate) cols: Vec<BatchColumn>,
}

impl ColumnBatch {
    /// An empty batch with one column per entry of `dtypes`.
    pub fn from_dtypes(dtypes: &[DataType]) -> ColumnBatch {
        ColumnBatch {
            cols: dtypes
                .iter()
                .map(|&d| BatchColumn {
                    data: BatchData::new(d),
                    nulls: crate::column::NullBitmap::default(),
                })
                .collect(),
        }
    }

    /// An empty batch shaped like `schema`.
    pub fn for_schema(schema: &TableSchema) -> ColumnBatch {
        let dtypes: Vec<DataType> = schema.columns.iter().map(|c| c.dtype).collect();
        ColumnBatch::from_dtypes(&dtypes)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Rows pushed into the first column (the append validates that every
    /// column agrees).
    pub fn rows(&self) -> usize {
        self.cols.first().map(|c| c.data.len()).unwrap_or(0)
    }

    /// Reserve capacity for `rows` more rows in every column.
    pub fn reserve(&mut self, rows: usize) {
        for col in &mut self.cols {
            match &mut col.data {
                BatchData::Int(v) => v.reserve(rows),
                BatchData::Decimal(v) => v.reserve(rows),
                BatchData::Text { codes, .. } => codes.reserve(rows),
                BatchData::Date(v) => v.reserve(rows),
                BatchData::Time(v) => v.reserve(rows),
            }
        }
    }

    /// Append an integer cell to column `col`. Accepted by `Int` and
    /// (widening at append) `Decimal` columns.
    #[inline]
    pub fn push_int(&mut self, col: usize, v: i64) -> Result<(), DbError> {
        let c = &mut self.cols[col];
        match &mut c.data {
            BatchData::Int(vec) => vec.push(v),
            BatchData::Decimal(vec) => vec.push(v as f64),
            other => return Err(kind_mismatch(col, "push_int", other)),
        }
        c.nulls.push(false);
        Ok(())
    }

    /// Append a decimal cell to column `col`. Like the raw storage path,
    /// NaN is accepted (zone maps track it); `-0.0` is normalized.
    #[inline]
    pub fn push_decimal(&mut self, col: usize, v: f64) -> Result<(), DbError> {
        let c = &mut self.cols[col];
        match &mut c.data {
            BatchData::Decimal(vec) => vec.push(if v == 0.0 { 0.0 } else { v }),
            other => return Err(kind_mismatch(col, "push_decimal", other)),
        }
        c.nulls.push(false);
        Ok(())
    }

    /// Append a text cell to column `col` (interned batch-locally).
    #[inline]
    pub fn push_str(&mut self, col: usize, s: &str) -> Result<(), DbError> {
        let c = &mut self.cols[col];
        match &mut c.data {
            BatchData::Text { codes, dict } => codes.push(dict.intern(s)),
            other => return Err(kind_mismatch(col, "push_str", other)),
        }
        c.nulls.push(false);
        Ok(())
    }

    /// Owned-string variant of [`ColumnBatch::push_str`] — one allocation
    /// fewer when the string was freshly built (e.g. `format!`).
    #[inline]
    pub fn push_string(&mut self, col: usize, s: String) -> Result<(), DbError> {
        let c = &mut self.cols[col];
        match &mut c.data {
            BatchData::Text { codes, dict } => codes.push(dict.intern_owned(s)),
            other => return Err(kind_mismatch(col, "push_string", other)),
        }
        c.nulls.push(false);
        Ok(())
    }

    /// Append a date cell to column `col`.
    #[inline]
    pub fn push_date(&mut self, col: usize, d: Date) -> Result<(), DbError> {
        let c = &mut self.cols[col];
        match &mut c.data {
            BatchData::Date(vec) => vec.push(d),
            other => return Err(kind_mismatch(col, "push_date", other)),
        }
        c.nulls.push(false);
        Ok(())
    }

    /// Append a time cell to column `col`.
    #[inline]
    pub fn push_time(&mut self, col: usize, t: Time) -> Result<(), DbError> {
        let c = &mut self.cols[col];
        match &mut c.data {
            BatchData::Time(vec) => vec.push(t),
            other => return Err(kind_mismatch(col, "push_time", other)),
        }
        c.nulls.push(false);
        Ok(())
    }

    /// Append a NULL cell to column `col` (placeholder in data, bit in the
    /// bitmap). NOT NULL enforcement happens at append, per batch.
    #[inline]
    pub fn push_null(&mut self, col: usize) {
        let c = &mut self.cols[col];
        match &mut c.data {
            BatchData::Int(vec) => vec.push(0),
            BatchData::Decimal(vec) => vec.push(0.0),
            BatchData::Text { codes, .. } => codes.push(NULL_SYM),
            BatchData::Date(vec) => vec.push(Date::new(0, 1, 1)),
            BatchData::Time(vec) => vec.push(Time::new(0, 0, 0)),
        }
        c.nulls.push(true);
    }
}

#[cold]
fn kind_mismatch(col: usize, pushed: &'static str, data: &BatchData) -> DbError {
    DbError::BatchKindMismatch {
        column: col,
        pushed,
        column_kind: data.kind_name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_tracks_rows_and_local_dictionary() {
        let mut b = ColumnBatch::from_dtypes(&[DataType::Text, DataType::Int]);
        b.push_str(0, "a").unwrap();
        b.push_int(1, 1).unwrap();
        b.push_str(0, "a").unwrap();
        b.push_int(1, 2).unwrap();
        b.push_null(0);
        b.push_null(1);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.rows(), 3);
        let BatchData::Text { codes, dict } = &b.cols[0].data else {
            panic!("text column expected");
        };
        assert_eq!(codes, &vec![0, 0, NULL_SYM]);
        assert_eq!(dict.len(), 1);
        assert_eq!(b.cols[0].nulls.count(), 1);
    }

    #[test]
    fn int_pushes_widen_into_decimal_batch_columns() {
        let mut b = ColumnBatch::from_dtypes(&[DataType::Decimal]);
        b.push_int(0, 7).unwrap();
        b.push_decimal(0, -0.0).unwrap();
        let BatchData::Decimal(v) = &b.cols[0].data else {
            panic!("decimal column expected");
        };
        assert_eq!(v, &vec![7.0, 0.0]);
        assert!(v[1].is_sign_positive(), "-0.0 normalized");
    }

    #[test]
    fn kind_mismatch_is_an_error_not_a_panic() {
        let mut b = ColumnBatch::from_dtypes(&[DataType::Int]);
        let err = b.push_str(0, "nope").unwrap_err();
        assert_eq!(
            err.to_string(),
            "push_str into a int batch column (column 0)"
        );
        // The failed push left the column untouched — no phantom row.
        assert_eq!(b.rows(), 0);
        assert_eq!(b.cols[0].nulls.count(), 0);
    }
}
