//! Typed values and data types.
//!
//! The Prism paper's metadata constraints speak about five data types —
//! *"decimal, int, text, date, time"* (Section 2.1) — so those are exactly the
//! types the substrate supports. [`Value`] is totally ordered and hashable
//! (decimals are required to be finite), which lets values serve directly as
//! hash-join keys and histogram bounds.

use crate::error::DbError;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    Int,
    Decimal,
    Text,
    Date,
    Time,
}

impl DataType {
    /// Name as written in metadata constraints (`DataType == 'decimal'`).
    /// Matching is case-insensitive on the constraint side.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Decimal => "decimal",
            DataType::Text => "text",
            DataType::Date => "date",
            DataType::Time => "time",
        }
    }

    /// Parse a type name as it appears in a metadata constraint. Accepts the
    /// common aliases found in real-world schema dumps: `bigint`/`smallint`
    /// map to `Int`, `datetime`/`timestamp` to `Date`.
    pub fn parse(s: &str) -> Option<DataType> {
        match s.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" | "smallint" | "tinyint" => Some(DataType::Int),
            "decimal" | "float" | "double" | "numeric" | "real" => Some(DataType::Decimal),
            "text" | "string" | "varchar" | "char" => Some(DataType::Text),
            "date" | "datetime" | "timestamp" => Some(DataType::Date),
            "time" => Some(DataType::Time),
            _ => None,
        }
    }

    /// True for `Int` and `Decimal`, which compare numerically with each
    /// other and participate in min/max statistics.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Decimal)
    }

    /// The key space this type keys joins in when considered alone. The
    /// database may demote an `Int` column to [`KeySpace::F64`] when its
    /// FK-connected component contains a `Decimal` column (see
    /// [`crate::Database::key_space`]).
    pub fn native_key_space(self) -> KeySpace {
        match self {
            DataType::Int => KeySpace::Int,
            DataType::Decimal => KeySpace::F64,
            DataType::Text | DataType::Date | DataType::Time => KeySpace::Sym,
        }
    }
}

/// Which `u64` encoding a column's compact join keys live in.
///
/// Two cells join-compare equal **iff** their keys in a *common* key space
/// are equal, so both sides of a comparison must key in the same space:
///
/// * [`KeySpace::Int`] — raw `i64` bit pattern. Exact over the full 64-bit
///   range; used for `Int` columns whose FK-connected component is
///   all-`Int` (the common case), fixing the >2⁵³ neighbor collisions of
///   the `f64` view.
/// * [`KeySpace::F64`] — bit pattern of the cell's `f64` numeric view
///   (`-0.0` normalized on insert). Used whenever a `Decimal` column is
///   reachable, so an `Int` FK can still probe a `Decimal` PK index.
///   Exact only for |v| < 2⁵³.
/// * [`KeySpace::Sym`] — dictionary code of the per-database interner
///   (text/date/time columns).
///
/// Ad-hoc (non-FK) join conditions across components compare in the
/// exact `Int` space whenever both *declared* types are `Int` (falling
/// back to a filtered scan when that disagrees with the probed index's
/// space), and in `F64` otherwise — see the executor's plan builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySpace {
    Int,
    F64,
    Sym,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A calendar date. Only ordering matters to the mapping algorithms, so no
/// calendar arithmetic is provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Date {
    pub year: i16,
    pub month: u8,
    pub day: u8,
}

impl Date {
    pub fn new(year: i16, month: u8, day: u8) -> Date {
        Date { year, month, day }
    }

    /// Days-since-epoch style ordinal used for numeric comparisons and
    /// histogram bucketing. A flat 31-day month approximation is fine because
    /// only relative order is ever consumed.
    pub fn ordinal(&self) -> f64 {
        self.year as f64 * 372.0 + self.month as f64 * 31.0 + self.day as f64
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Date> {
        let mut it = s.split('-');
        let year: i16 = it.next()?.parse().ok()?;
        let month: u8 = it.next()?.parse().ok()?;
        let day: u8 = it.next()?.parse().ok()?;
        if it.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        Some(Date { year, month, day })
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A time of day, to second precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Time {
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
}

impl Time {
    pub fn new(hour: u8, minute: u8, second: u8) -> Time {
        Time {
            hour,
            minute,
            second,
        }
    }

    /// Seconds since midnight, for numeric comparison.
    pub fn ordinal(&self) -> f64 {
        self.hour as f64 * 3600.0 + self.minute as f64 * 60.0 + self.second as f64
    }

    /// Parse `HH:MM` or `HH:MM:SS`.
    pub fn parse(s: &str) -> Option<Time> {
        let mut it = s.split(':');
        let hour: u8 = it.next()?.parse().ok()?;
        let minute: u8 = it.next()?.parse().ok()?;
        let second: u8 = match it.next() {
            Some(sec) => sec.parse().ok()?,
            None => 0,
        };
        if it.next().is_some() || hour > 23 || minute > 59 || second > 59 {
            return None;
        }
        Some(Time {
            hour,
            minute,
            second,
        })
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}:{:02}", self.hour, self.minute, self.second)
    }
}

/// A single cell value.
///
/// `Decimal` is guaranteed finite (enforced by [`Value::decimal`] and the
/// table insert path), so `Value` implements `Eq`, `Ord`, and `Hash` and can
/// be used directly as a hash-join key.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Decimal(f64),
    Text(String),
    Date(Date),
    Time(Time),
}

impl Value {
    /// Construct a decimal value, rejecting NaN and infinities.
    pub fn decimal(v: f64) -> Result<Value, DbError> {
        if v.is_finite() {
            // Normalize -0.0 to 0.0 so equal values hash equally.
            Ok(Value::Decimal(if v == 0.0 { 0.0 } else { v }))
        } else {
            Err(DbError::NonFiniteDecimal)
        }
    }

    /// Construct a text value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Runtime type, or `None` for NULL (NULL stores into any column).
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Decimal(_) => Some(DataType::Decimal),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Time(_) => Some(DataType::Time),
        }
    }

    /// Short name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Decimal(_) => "decimal",
            Value::Text(_) => "text",
            Value::Date(_) => "date",
            Value::Time(_) => "time",
        }
    }

    /// Numeric view of the value, if it has one. Int and Decimal compare on
    /// this; Date and Time expose their ordinals so range constraints like
    /// `>= '1990-01-01'` work uniformly.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Decimal(d) => Some(*d),
            Value::Date(d) => Some(d.ordinal()),
            Value::Time(t) => Some(t.ordinal()),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value may legally be stored in a column of type `dtype`.
    /// NULL is storable anywhere; Int widens into Decimal columns.
    pub fn storable_as(&self, dtype: DataType) -> bool {
        matches!(
            (self, dtype),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Decimal)
                | (Value::Decimal(_), DataType::Decimal)
                | (Value::Text(_), DataType::Text)
                | (Value::Date(_), DataType::Date)
                | (Value::Time(_), DataType::Time)
        )
    }

    /// Canonical key used by the inverted index so that the user keyword
    /// `497` finds the decimal cell `497.0` and the int cell `497` alike.
    /// Text is case-folded; numerics use a minimal decimal rendering.
    pub fn index_key(&self) -> Option<String> {
        match self {
            Value::Null => None,
            Value::Text(s) => Some(s.trim().to_lowercase()),
            Value::Int(i) => Some(i.to_string()),
            Value::Decimal(d) => Some(format_minimal(*d)),
            Value::Date(d) => Some(d.to_string()),
            Value::Time(t) => Some(t.to_string()),
        }
    }
}

/// A borrowed view of one cell, materialized from typed column storage
/// without cloning. This is what the execution hot path hands to predicates
/// and row callbacks; an owned [`Value`] is produced only at the
/// projection/preview boundary via [`ValueRef::to_value`].
///
/// Equality follows [`Value`]'s semantics: `Int` and `Decimal` holding the
/// same number compare equal, everything else compares within its own class.
#[derive(Debug, Clone, Copy)]
pub enum ValueRef<'a> {
    Null,
    Int(i64),
    Decimal(f64),
    Text(&'a str),
    Date(Date),
    Time(Time),
}

impl<'a> ValueRef<'a> {
    pub fn is_null(self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Numeric view, mirroring [`Value::as_number`].
    pub fn as_number(self) -> Option<f64> {
        match self {
            ValueRef::Int(i) => Some(i as f64),
            ValueRef::Decimal(d) => Some(d),
            ValueRef::Date(d) => Some(d.ordinal()),
            ValueRef::Time(t) => Some(t.ordinal()),
            _ => None,
        }
    }

    pub fn as_text(self) -> Option<&'a str> {
        match self {
            ValueRef::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Materialize an owned [`Value`] (clones text).
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(i) => Value::Int(i),
            ValueRef::Decimal(d) => Value::Decimal(d),
            ValueRef::Text(s) => Value::Text(s.to_string()),
            ValueRef::Date(d) => Value::Date(d),
            ValueRef::Time(t) => Value::Time(t),
        }
    }

    /// Canonical inverted-index key, mirroring [`Value::index_key`].
    pub fn index_key(self) -> Option<String> {
        match self {
            ValueRef::Null => None,
            ValueRef::Text(s) => Some(s.trim().to_lowercase()),
            ValueRef::Int(i) => Some(i.to_string()),
            ValueRef::Decimal(d) => Some(format_minimal(d)),
            ValueRef::Date(d) => Some(d.to_string()),
            ValueRef::Time(t) => Some(t.to_string()),
        }
    }
}

impl PartialEq for ValueRef<'_> {
    fn eq(&self, other: &ValueRef<'_>) -> bool {
        use ValueRef::*;
        match (self, other) {
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (Int(a), Decimal(b)) | (Decimal(b), Int(a)) => *a as f64 == *b,
            (Decimal(a), Decimal(b)) => a == b,
            (Text(a), Text(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            (Time(a), Time(b)) => a == b,
            _ => false,
        }
    }
}

impl Value {
    /// Borrowed view of this value, for comparing against column cells.
    pub fn as_value_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Null => ValueRef::Null,
            Value::Int(i) => ValueRef::Int(*i),
            Value::Decimal(d) => ValueRef::Decimal(*d),
            Value::Text(s) => ValueRef::Text(s),
            Value::Date(d) => ValueRef::Date(*d),
            Value::Time(t) => ValueRef::Time(*t),
        }
    }
}

/// Render a finite f64 without a trailing `.0` when it is integral, matching
/// how users type numbers into constraints.
pub fn format_minimal(d: f64) -> String {
    if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

/// Rank used to order values of different type classes deterministically:
/// NULL < numbers < text < date < time.
fn class_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) | Value::Decimal(_) => 1,
        Value::Text(_) => 2,
        Value::Date(_) => 3,
        Value::Time(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Decimal(b)) => cmp_f64(*a as f64, *b),
            (Decimal(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Decimal(a), Decimal(b)) => cmp_f64(*a, *b),
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            _ => class_rank(self).cmp(&class_rank(other)),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    // Decimals are guaranteed finite, so partial_cmp never fails.
    a.partial_cmp(&b).expect("finite decimals are comparable")
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Int and Decimal holding the same number must hash equally
            // because they compare equal (e.g. joining an Int FK against a
            // Decimal PK). Hash the f64 bits of the numeric view.
            Value::Int(i) => {
                state.write_u8(1);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Decimal(d) => {
                state.write_u8(1);
                state.write_u64(d.to_bits());
            }
            Value::Text(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(3);
                d.hash(state);
            }
            Value::Time(t) => {
                state.write_u8(4);
                t.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Decimal(d) => f.write_str(&format_minimal(*d)),
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
            Value::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Value {
        Value::Date(v)
    }
}

impl From<Time> for Value {
    fn from(v: Time) -> Value {
        Value::Time(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn decimal_rejects_non_finite() {
        assert_eq!(Value::decimal(f64::NAN), Err(DbError::NonFiniteDecimal));
        assert_eq!(
            Value::decimal(f64::INFINITY),
            Err(DbError::NonFiniteDecimal)
        );
        assert!(Value::decimal(497.0).is_ok());
    }

    #[test]
    fn negative_zero_normalizes() {
        let a = Value::decimal(-0.0).unwrap();
        let b = Value::decimal(0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn int_and_decimal_compare_numerically() {
        assert_eq!(Value::Int(497), Value::Decimal(497.0));
        assert!(Value::Int(3) < Value::Decimal(3.5));
        assert!(Value::Decimal(2.5) < Value::Int(3));
        assert_eq!(hash_of(&Value::Int(497)), hash_of(&Value::Decimal(497.0)));
    }

    #[test]
    fn cross_class_order_is_total_and_stable() {
        let vals = [
            Value::Null,
            Value::Int(1),
            Value::text("a"),
            Value::Date(Date::new(2000, 1, 1)),
            Value::Time(Time::new(1, 0, 0)),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn date_parse_and_order() {
        let a = Date::parse("1999-12-31").unwrap();
        let b = Date::parse("2000-01-01").unwrap();
        assert!(a < b);
        assert!(a.ordinal() < b.ordinal());
        assert_eq!(a.to_string(), "1999-12-31");
        assert!(Date::parse("2000-13-01").is_none());
        assert!(Date::parse("nope").is_none());
    }

    #[test]
    fn time_parse_and_order() {
        let a = Time::parse("09:30").unwrap();
        let b = Time::parse("09:30:01").unwrap();
        assert!(a < b);
        assert_eq!(a.to_string(), "09:30:00");
        assert!(Time::parse("24:00").is_none());
    }

    #[test]
    fn index_keys_unify_text_case_and_numeric_forms() {
        assert_eq!(Value::text("Lake Tahoe").index_key().unwrap(), "lake tahoe");
        assert_eq!(Value::Int(497).index_key().unwrap(), "497");
        assert_eq!(Value::Decimal(497.0).index_key().unwrap(), "497");
        assert_eq!(Value::Decimal(53.2).index_key().unwrap(), "53.2");
        assert!(Value::Null.index_key().is_none());
    }

    #[test]
    fn datatype_parse_aliases() {
        assert_eq!(DataType::parse("Decimal"), Some(DataType::Decimal));
        assert_eq!(DataType::parse("INTEGER"), Some(DataType::Int));
        assert_eq!(DataType::parse("varchar"), Some(DataType::Text));
        assert_eq!(DataType::parse("widget"), None);
    }

    #[test]
    fn datatype_parse_schema_dump_aliases() {
        // Real-world schema dumps spell integer and date types many ways.
        assert_eq!(DataType::parse("bigint"), Some(DataType::Int));
        assert_eq!(DataType::parse("SMALLINT"), Some(DataType::Int));
        assert_eq!(DataType::parse("datetime"), Some(DataType::Date));
        assert_eq!(DataType::parse("timestamp"), Some(DataType::Date));
        assert_eq!(DataType::parse("real"), Some(DataType::Decimal));
    }

    #[test]
    fn value_ref_roundtrips_and_compares_like_value() {
        let vals = [
            Value::Null,
            Value::Int(497),
            Value::Decimal(53.2),
            Value::text("Lake Tahoe"),
            Value::Date(Date::new(2000, 1, 1)),
            Value::Time(Time::new(9, 30, 0)),
        ];
        for v in &vals {
            assert_eq!(&v.as_value_ref().to_value(), v);
            assert_eq!(v.as_value_ref().index_key(), v.index_key());
            assert_eq!(v.as_value_ref().as_number(), v.as_number());
        }
        // Cross-class numeric equality mirrors Value.
        assert_eq!(ValueRef::Int(497), ValueRef::Decimal(497.0));
        assert_ne!(ValueRef::Int(497), ValueRef::Text("497"));
    }

    #[test]
    fn storable_as_allows_int_widening_only() {
        assert!(Value::Int(3).storable_as(DataType::Decimal));
        assert!(!Value::Decimal(3.0).storable_as(DataType::Int));
        assert!(Value::Null.storable_as(DataType::Date));
        assert!(!Value::text("x").storable_as(DataType::Int));
    }

    #[test]
    fn display_uses_minimal_decimal_form() {
        assert_eq!(Value::Decimal(981.0).to_string(), "981");
        assert_eq!(Value::Decimal(53.2).to_string(), "53.2");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
