//! Inverted keyword index.
//!
//! Section 2.3 of the paper: *"The way we validate a value constraint on a
//! column is … leveraging the inverted index provided in most DBMS systems."*
//! Commercial systems expose full-text indexes; this module is our own
//! equivalent. Two granularities are maintained:
//!
//! * **cell index** — the canonical form of the whole cell
//!   ([`crate::types::Value::index_key`]) maps to its postings; this answers
//!   the default equality semantics of a value constraint, and
//! * **token index** — individual lowercase words of text cells map to
//!   postings; this answers `CONTAINS`-style keyword constraints.
//!
//! Postings are grouped per column because related-column discovery asks
//! "which columns contain this keyword?" far more often than it needs the row
//! lists themselves.

use crate::schema::ColumnRef;
use crate::types::ValueRef;
use std::collections::HashMap;

/// The rows of one column matching one key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    pub column: ColumnRef,
    pub rows: Vec<u32>,
}

/// Keyword → postings map over an entire database.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    cells: HashMap<String, Vec<Posting>>,
    tokens: HashMap<String, Vec<Posting>>,
}

impl InvertedIndex {
    pub fn new() -> InvertedIndex {
        InvertedIndex::default()
    }

    /// Index one cell. Called by [`crate::Database`] during preprocessing.
    pub fn add(&mut self, column: ColumnRef, row: u32, value: ValueRef<'_>) {
        let Some(key) = value.index_key() else {
            return; // NULLs are not indexed.
        };
        self.add_key(column, row, &key, matches!(value, ValueRef::Text(_)));
    }

    /// Index one cell whose canonical key is already computed. Dictionary
    /// columns canonicalize each distinct symbol once and call this per row.
    pub fn add_key(&mut self, column: ColumnRef, row: u32, key: &str, is_text: bool) {
        push_posting(&mut self.cells, key, column, row);
        if is_text {
            for tok in tokenize(key) {
                if tok.len() < key.len() {
                    push_posting(&mut self.tokens, tok, column, row);
                }
            }
        }
    }

    /// Postings of cells whose canonical form equals `keyword`
    /// (case-insensitive for text, numeric-normalized for numbers).
    pub fn lookup_cell(&self, keyword: &str) -> &[Posting] {
        self.cells
            .get(&normalize(keyword))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Postings of cells *containing* `keyword` as a whole token, unioned
    /// with exact-cell matches.
    pub fn lookup_contains(&self, keyword: &str) -> Vec<Posting> {
        let key = normalize(keyword);
        let mut merged: HashMap<ColumnRef, Vec<u32>> = HashMap::new();
        for p in self.cells.get(&key).into_iter().flatten() {
            merged.entry(p.column).or_default().extend(&p.rows);
        }
        for p in self.tokens.get(&key).into_iter().flatten() {
            merged.entry(p.column).or_default().extend(&p.rows);
        }
        let mut out: Vec<Posting> = merged
            .into_iter()
            .map(|(column, mut rows)| {
                rows.sort_unstable();
                rows.dedup();
                Posting { column, rows }
            })
            .collect();
        out.sort_by_key(|p| p.column);
        out
    }

    /// Columns that contain `keyword` as an exact cell value.
    pub fn columns_with_cell(&self, keyword: &str) -> impl Iterator<Item = ColumnRef> + '_ {
        self.lookup_cell(keyword).iter().map(|p| p.column)
    }

    /// Rows of `column` whose cell equals `keyword`, if any.
    pub fn rows_in_column(&self, column: ColumnRef, keyword: &str) -> &[u32] {
        self.lookup_cell(keyword)
            .iter()
            .find(|p| p.column == column)
            .map(|p| p.rows.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct cell keys (diagnostics).
    pub fn distinct_keys(&self) -> usize {
        self.cells.len()
    }
}

fn push_posting(map: &mut HashMap<String, Vec<Posting>>, key: &str, column: ColumnRef, row: u32) {
    // Avoid allocating an owned key on the (overwhelmingly common) hit path.
    let postings = match map.get_mut(key) {
        Some(p) => p,
        None => map.entry(key.to_string()).or_default(),
    };
    // Cells are indexed in (table, column, row) order during preprocessing,
    // so the posting for this column, if present, is the last one.
    match postings.last_mut() {
        Some(p) if p.column == column => p.rows.push(row),
        _ => postings.push(Posting {
            column,
            rows: vec![row],
        }),
    }
}

fn normalize(s: &str) -> String {
    s.trim().to_lowercase()
}

fn tokenize(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    fn col(t: u32, c: u32) -> ColumnRef {
        ColumnRef::new(TableId(t), c)
    }

    fn sample_index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add(col(0, 0), 0, ValueRef::Text("Lake Tahoe"));
        ix.add(col(0, 0), 1, ValueRef::Text("Crater Lake"));
        ix.add(col(0, 1), 0, ValueRef::Decimal(497.0));
        ix.add(col(1, 0), 5, ValueRef::Text("Lake Tahoe"));
        ix.add(col(1, 1), 2, ValueRef::Text("California"));
        ix.add(col(0, 1), 1, ValueRef::Null);
        ix
    }

    #[test]
    fn exact_cell_lookup_is_case_insensitive() {
        let ix = sample_index();
        let posts = ix.lookup_cell("lake tahoe");
        assert_eq!(posts.len(), 2);
        assert_eq!(posts[0].column, col(0, 0));
        assert_eq!(posts[0].rows, vec![0]);
        assert_eq!(posts[1].column, col(1, 0));
        assert_eq!(posts[1].rows, vec![5]);
        assert_eq!(ix.lookup_cell("LAKE TAHOE").len(), 2);
    }

    #[test]
    fn numeric_cells_match_user_spelling() {
        let ix = sample_index();
        let posts = ix.lookup_cell("497");
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].column, col(0, 1));
    }

    #[test]
    fn contains_finds_tokens_inside_cells() {
        let ix = sample_index();
        let posts = ix.lookup_contains("lake");
        // "lake" occurs as a token of "Lake Tahoe" (two columns) and of
        // "Crater Lake"; no cell equals "lake" outright.
        let cols: Vec<ColumnRef> = posts.iter().map(|p| p.column).collect();
        assert_eq!(cols, vec![col(0, 0), col(1, 0)]);
        let rows0 = &posts[0].rows;
        assert_eq!(rows0, &vec![0, 1]);
    }

    #[test]
    fn contains_merges_exact_and_token_hits() {
        let mut ix = InvertedIndex::new();
        ix.add(col(0, 0), 0, ValueRef::Text("Tahoe"));
        ix.add(col(0, 0), 1, ValueRef::Text("Lake Tahoe"));
        let posts = ix.lookup_contains("tahoe");
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].rows, vec![0, 1]);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let ix = sample_index();
        assert!(ix.lookup_cell("NULL").is_empty());
        assert!(ix.lookup_cell("null").is_empty());
    }

    #[test]
    fn rows_in_column_narrows_to_one_column() {
        let ix = sample_index();
        assert_eq!(ix.rows_in_column(col(1, 0), "Lake Tahoe"), &[5]);
        assert_eq!(ix.rows_in_column(col(1, 1), "Lake Tahoe"), &[] as &[u32]);
    }

    #[test]
    fn missing_keyword_yields_empty() {
        let ix = sample_index();
        assert!(ix.lookup_cell("atlantis").is_empty());
        assert!(ix.lookup_contains("atlantis").is_empty());
    }
}
