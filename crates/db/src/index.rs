//! Index structures: the CSR hash join index and the inverted keyword index.
//!
//! ## Join indexes (CSR layout)
//!
//! [`JoinIndex`] maps a column's compact `u64` join keys
//! ([`crate::column::Column::join_key_in`]) to the rows carrying them. The
//! layout is CSR-style — one sorted key array, one offsets array, one
//! shared row-id arena — instead of the pointer-heavy
//! `HashMap<u64, Vec<u32>>` it replaces: three flat allocations total, no
//! per-key `Vec`, and the memory footprint is exactly auditable
//! ([`JoinIndex::heap_bytes`], surfaced by
//! [`crate::Database::memory_report`]). Probes go through a small
//! open-addressing hash header when the key count warrants one, falling
//! back to binary search on the sorted keys below that.
//!
//! ## Inverted keyword index
//!
//! Section 2.3 of the paper: *"The way we validate a value constraint on a
//! column is … leveraging the inverted index provided in most DBMS systems."*
//! Commercial systems expose full-text indexes; [`InvertedIndex`] is our own
//! equivalent. Two granularities are maintained:
//!
//! * **cell index** — the canonical form of the whole cell
//!   ([`crate::types::Value::index_key`]) maps to its postings; this answers
//!   the default equality semantics of a value constraint, and
//! * **token index** — individual lowercase words of text cells map to
//!   postings; this answers `CONTAINS`-style keyword constraints.
//!
//! Postings are grouped per column because related-column discovery asks
//! "which columns contain this keyword?" far more often than it needs the row
//! lists themselves.

use crate::column::Column;
use crate::schema::ColumnRef;
use crate::types::{KeySpace, ValueRef};
use std::collections::HashMap;

/// Distinct-key count at which a probe header is built; below it, binary
/// search over so few keys beats the header's extra cache line.
const HASH_HEADER_MIN_KEYS: usize = 16;

/// Fibonacci multiplier for the header slot hash (2⁶⁴ / φ).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// CSR hash join index of one column: compact join key → matching rows.
///
/// `keys` is sorted ascending; the rows carrying `keys[i]` are
/// `rows[offsets[i] .. offsets[i + 1]]`, in ascending row order. `header`,
/// when non-empty, is an open-addressing table of key indexes (+1; 0 marks
/// an empty slot) sized to a power of two ≥ 2× the key count.
#[derive(Debug, Default, Clone)]
pub struct JoinIndex {
    keys: Vec<u64>,
    offsets: Vec<u32>,
    rows: Vec<u32>,
    header: Vec<u32>,
    /// Longest single-key posting run, folded during `build` so the
    /// planner's estimation accessors stay O(1).
    max_run: u32,
}

impl JoinIndex {
    /// Build the index of `column`, keying every non-NULL cell in `space`.
    /// NULL cells are excluded: SQL equi-joins never match NULL = NULL.
    pub fn build(column: &Column, space: KeySpace) -> JoinIndex {
        let mut pairs: Vec<(u64, u32)> = (0..column.len())
            .filter_map(|r| column.join_key_in(r, space).map(|k| (k, r as u32)))
            .collect();
        // Sorting by (key, row) groups keys and keeps each group's rows
        // ascending — the same order the HashMap layout accumulated them in.
        pairs.sort_unstable();
        let mut keys: Vec<u64> = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        let mut rows: Vec<u32> = Vec::with_capacity(pairs.len());
        for (k, r) in pairs {
            if keys.last() != Some(&k) {
                keys.push(k);
                offsets.push(rows.len() as u32);
            }
            rows.push(r);
            *offsets.last_mut().expect("pushed above") = rows.len() as u32;
        }
        let header = build_header(&keys);
        let max_run = offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        JoinIndex {
            keys,
            offsets,
            rows,
            header,
            max_run,
        }
    }

    /// Index of `key` in the sorted key array, via the hash header when
    /// present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.header.is_empty() {
            return self.keys.binary_search(&key).ok();
        }
        let mask = self.header.len() - 1;
        let mut slot =
            (key.wrapping_mul(FIB) >> (64 - self.header.len().trailing_zeros())) as usize;
        loop {
            match self.header[slot] {
                0 => return None,
                e => {
                    let i = (e - 1) as usize;
                    if self.keys[i] == key {
                        return Some(i);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Rows whose cell carries `key` (empty for unknown keys), ascending.
    #[inline]
    pub fn rows(&self, key: u64) -> &[u32] {
        match self.find(key) {
            Some(i) => &self.rows[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            None => &[],
        }
    }

    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total row ids stored across all keys.
    pub fn indexed_rows(&self) -> usize {
        self.rows.len()
    }

    /// Length of the longest single-key posting run — the worst-case
    /// fan-out of one probe. The cost-based planner blends this with
    /// [`JoinIndex::avg_run`] so a Zipf hub key cannot hide behind a
    /// benign average.
    pub fn max_run(&self) -> usize {
        self.max_run as usize
    }

    /// Mean posting-run length (rows per distinct key); `0.0` when empty.
    pub fn avg_run(&self) -> f64 {
        if self.keys.is_empty() {
            0.0
        } else {
            self.rows.len() as f64 / self.keys.len() as f64
        }
    }

    /// Exact heap bytes of the CSR arrays and probe header — this is the
    /// whole index; there are no per-key allocations to estimate.
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * 8 + self.offsets.len() * 4 + self.rows.len() * 4 + self.header.len() * 4
    }
}

/// Open-addressing header over the sorted keys (empty below the size
/// threshold). Load factor ≤ 0.5, so probe chains stay short.
fn build_header(keys: &[u64]) -> Vec<u32> {
    if keys.len() < HASH_HEADER_MIN_KEYS {
        return Vec::new();
    }
    let size = (keys.len() * 2).next_power_of_two();
    let shift = 64 - size.trailing_zeros();
    let mask = size - 1;
    let mut header = vec![0u32; size];
    for (i, &k) in keys.iter().enumerate() {
        let mut slot = (k.wrapping_mul(FIB) >> shift) as usize;
        while header[slot] != 0 {
            slot = (slot + 1) & mask;
        }
        header[slot] = (i + 1) as u32;
    }
    header
}

/// The rows of one column matching one key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    pub column: ColumnRef,
    pub rows: Vec<u32>,
}

/// Keyword → postings map over an entire database.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    cells: HashMap<String, Vec<Posting>>,
    tokens: HashMap<String, Vec<Posting>>,
}

impl InvertedIndex {
    pub fn new() -> InvertedIndex {
        InvertedIndex::default()
    }

    /// Index one cell. Called by [`crate::Database`] during preprocessing.
    pub fn add(&mut self, column: ColumnRef, row: u32, value: ValueRef<'_>) {
        let Some(key) = value.index_key() else {
            return; // NULLs are not indexed.
        };
        self.add_key(column, row, &key, matches!(value, ValueRef::Text(_)));
    }

    /// Index one cell whose canonical key is already computed. Dictionary
    /// columns canonicalize each distinct symbol once and call this per row.
    pub fn add_key(&mut self, column: ColumnRef, row: u32, key: &str, is_text: bool) {
        push_posting(&mut self.cells, key, column, row);
        if is_text {
            for tok in tokenize(key) {
                if tok.len() < key.len() {
                    push_posting(&mut self.tokens, tok, column, row);
                }
            }
        }
    }

    /// Postings of cells whose canonical form equals `keyword`
    /// (case-insensitive for text, numeric-normalized for numbers).
    pub fn lookup_cell(&self, keyword: &str) -> &[Posting] {
        self.cells
            .get(&normalize(keyword))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Postings of cells *containing* `keyword` as a whole token, unioned
    /// with exact-cell matches.
    pub fn lookup_contains(&self, keyword: &str) -> Vec<Posting> {
        let key = normalize(keyword);
        let mut merged: HashMap<ColumnRef, Vec<u32>> = HashMap::new();
        for p in self.cells.get(&key).into_iter().flatten() {
            merged.entry(p.column).or_default().extend(&p.rows);
        }
        for p in self.tokens.get(&key).into_iter().flatten() {
            merged.entry(p.column).or_default().extend(&p.rows);
        }
        let mut out: Vec<Posting> = merged
            .into_iter()
            .map(|(column, mut rows)| {
                rows.sort_unstable();
                rows.dedup();
                Posting { column, rows }
            })
            .collect();
        out.sort_by_key(|p| p.column);
        out
    }

    /// Columns that contain `keyword` as an exact cell value.
    pub fn columns_with_cell(&self, keyword: &str) -> impl Iterator<Item = ColumnRef> + '_ {
        self.lookup_cell(keyword).iter().map(|p| p.column)
    }

    /// Rows of `column` whose cell equals `keyword`, if any.
    pub fn rows_in_column(&self, column: ColumnRef, keyword: &str) -> &[u32] {
        self.lookup_cell(keyword)
            .iter()
            .find(|p| p.column == column)
            .map(|p| p.rows.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct cell keys (diagnostics).
    pub fn distinct_keys(&self) -> usize {
        self.cells.len()
    }
}

fn push_posting(map: &mut HashMap<String, Vec<Posting>>, key: &str, column: ColumnRef, row: u32) {
    // Avoid allocating an owned key on the (overwhelmingly common) hit path.
    let postings = match map.get_mut(key) {
        Some(p) => p,
        None => map.entry(key.to_string()).or_default(),
    };
    // Cells are indexed in (table, column, row) order during preprocessing,
    // so the posting for this column, if present, is the last one.
    match postings.last_mut() {
        Some(p) if p.column == column => p.rows.push(row),
        _ => postings.push(Posting {
            column,
            rows: vec![row],
        }),
    }
}

fn normalize(s: &str) -> String {
    s.trim().to_lowercase()
}

fn tokenize(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    fn col(t: u32, c: u32) -> ColumnRef {
        ColumnRef::new(TableId(t), c)
    }

    fn sample_index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add(col(0, 0), 0, ValueRef::Text("Lake Tahoe"));
        ix.add(col(0, 0), 1, ValueRef::Text("Crater Lake"));
        ix.add(col(0, 1), 0, ValueRef::Decimal(497.0));
        ix.add(col(1, 0), 5, ValueRef::Text("Lake Tahoe"));
        ix.add(col(1, 1), 2, ValueRef::Text("California"));
        ix.add(col(0, 1), 1, ValueRef::Null);
        ix
    }

    #[test]
    fn exact_cell_lookup_is_case_insensitive() {
        let ix = sample_index();
        let posts = ix.lookup_cell("lake tahoe");
        assert_eq!(posts.len(), 2);
        assert_eq!(posts[0].column, col(0, 0));
        assert_eq!(posts[0].rows, vec![0]);
        assert_eq!(posts[1].column, col(1, 0));
        assert_eq!(posts[1].rows, vec![5]);
        assert_eq!(ix.lookup_cell("LAKE TAHOE").len(), 2);
    }

    #[test]
    fn numeric_cells_match_user_spelling() {
        let ix = sample_index();
        let posts = ix.lookup_cell("497");
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].column, col(0, 1));
    }

    #[test]
    fn contains_finds_tokens_inside_cells() {
        let ix = sample_index();
        let posts = ix.lookup_contains("lake");
        // "lake" occurs as a token of "Lake Tahoe" (two columns) and of
        // "Crater Lake"; no cell equals "lake" outright.
        let cols: Vec<ColumnRef> = posts.iter().map(|p| p.column).collect();
        assert_eq!(cols, vec![col(0, 0), col(1, 0)]);
        let rows0 = &posts[0].rows;
        assert_eq!(rows0, &vec![0, 1]);
    }

    #[test]
    fn contains_merges_exact_and_token_hits() {
        let mut ix = InvertedIndex::new();
        ix.add(col(0, 0), 0, ValueRef::Text("Tahoe"));
        ix.add(col(0, 0), 1, ValueRef::Text("Lake Tahoe"));
        let posts = ix.lookup_contains("tahoe");
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].rows, vec![0, 1]);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let ix = sample_index();
        assert!(ix.lookup_cell("NULL").is_empty());
        assert!(ix.lookup_cell("null").is_empty());
    }

    #[test]
    fn rows_in_column_narrows_to_one_column() {
        let ix = sample_index();
        assert_eq!(ix.rows_in_column(col(1, 0), "Lake Tahoe"), &[5]);
        assert_eq!(ix.rows_in_column(col(1, 1), "Lake Tahoe"), &[] as &[u32]);
    }

    #[test]
    fn missing_keyword_yields_empty() {
        let ix = sample_index();
        assert!(ix.lookup_cell("atlantis").is_empty());
        assert!(ix.lookup_contains("atlantis").is_empty());
    }

    mod csr {
        use crate::column::Column;
        use crate::index::JoinIndex;
        use crate::interner::SymbolTable;
        use crate::types::{DataType, KeySpace, Value};

        fn int_column(vals: &[Option<i64>]) -> Column {
            let mut syms = SymbolTable::new();
            let mut c = Column::new(DataType::Int);
            for v in vals {
                c.push(v.map(Value::Int).unwrap_or(Value::Null), &mut syms);
            }
            c
        }

        #[test]
        fn groups_rows_per_key_in_ascending_order() {
            let c = int_column(&[Some(7), Some(3), None, Some(7), Some(-1), Some(3)]);
            let ix = JoinIndex::build(&c, KeySpace::Int);
            assert_eq!(ix.len(), 3);
            assert_eq!(ix.indexed_rows(), 5, "NULL row excluded");
            assert_eq!(ix.rows(7i64 as u64), &[0, 3]);
            assert_eq!(ix.rows(3i64 as u64), &[1, 5]);
            assert_eq!(ix.rows(-1i64 as u64), &[4]);
            assert_eq!(ix.rows(99i64 as u64), &[] as &[u32]);
            assert!(ix.contains_key(7i64 as u64));
            assert!(!ix.contains_key(99i64 as u64));
        }

        #[test]
        fn hash_header_and_binary_search_paths_agree() {
            // 1000 distinct keys: well past the header threshold.
            let vals: Vec<Option<i64>> = (0..1000).map(|i| Some(i * 31 - 500)).collect();
            let c = int_column(&vals);
            let with_header = JoinIndex::build(&c, KeySpace::Int);
            assert!(!with_header.header.is_empty());
            let stripped = JoinIndex {
                header: Vec::new(),
                ..with_header.clone()
            };
            for probe in -600i64..600 {
                let k = probe as u64;
                assert_eq!(with_header.rows(k), stripped.rows(k), "key {probe}");
            }
        }

        #[test]
        fn empty_and_tiny_indexes_probe_safely() {
            let empty = JoinIndex::default();
            assert!(empty.is_empty());
            assert_eq!(empty.rows(0), &[] as &[u32]);
            let c = int_column(&[Some(i64::MAX), Some(i64::MIN)]);
            let ix = JoinIndex::build(&c, KeySpace::Int);
            assert!(ix.header.is_empty(), "below header threshold");
            assert_eq!(ix.rows(i64::MAX as u64), &[0]);
            assert_eq!(ix.rows(i64::MIN as u64), &[1]);
            assert_eq!(ix.rows((i64::MAX - 1) as u64), &[] as &[u32]);
        }

        #[test]
        fn heap_bytes_are_exact_over_the_flat_arrays() {
            let c = int_column(&[Some(1), Some(2), Some(2)]);
            let ix = JoinIndex::build(&c, KeySpace::Int);
            // 2 keys * 8 + 3 offsets * 4 + 3 rows * 4 (no header).
            assert_eq!(ix.heap_bytes(), 16 + 12 + 12);
        }
    }
}
