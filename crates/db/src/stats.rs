//! Per-column statistics collected during preprocessing.
//!
//! Section 2.3: *"To check a metadata constraint, we use metadata
//! information, e.g., min/max values, collected during preprocessing."*
//! Beyond the metadata fields the paper names (data type, min/max value,
//! maximum text length), this store keeps equi-depth histograms and
//! most-common-value lists — these feed both metadata-constraint checking and
//! the selectivity estimates used by filter scheduling.

use crate::column::ColumnData;
use crate::interner::SymbolTable;
use crate::schema::{ColumnRef, TableId};
use crate::table::Table;
use crate::types::{DataType, Value};
use std::collections::HashMap;

/// Equi-depth histogram over the numeric view of a column
/// (`Value::as_number`); Date/Time columns use their ordinals.
///
/// Each bucket `(bounds[i], bounds[i+1]]` tracks its row count split into an
/// interpolated part (values strictly below the upper bound) and a point mass
/// sitting exactly at the upper bound. The split keeps estimates accurate on
/// skewed columns where one value dominates (common in FK columns).
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// `bounds.len() == bucket_count + 1`; strictly increasing except for a
    /// single-value column, where it is `[v, v]`.
    bounds: Vec<f64>,
    /// Per bucket: values strictly inside `(bounds[i], bounds[i+1])`.
    below: Vec<u32>,
    /// Per bucket: values exactly equal to `bounds[i+1]`.
    at_upper: Vec<u32>,
    total: u32,
}

impl EquiDepthHistogram {
    /// Build from the non-null numeric values of a column.
    pub fn build(mut values: Vec<f64>, buckets: usize) -> Option<EquiDepthHistogram> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = values.len();
        let b = buckets.min(n);
        let mut bounds = vec![values[0]];
        let mut below = Vec::with_capacity(b);
        let mut at_upper = Vec::with_capacity(b);
        let mut prev_idx = 0usize;
        for i in 1..=b {
            if prev_idx >= n {
                break;
            }
            let mut idx = (i * n / b).max(prev_idx + 1).min(n);
            let upper = values[idx - 1];
            // Pull all duplicates of the boundary value into this bucket so
            // bounds stay strictly increasing and the point mass is exact.
            while idx < n && values[idx] == upper {
                idx += 1;
            }
            let at = values[prev_idx..idx]
                .iter()
                .rev()
                .take_while(|&&v| v == upper)
                .count() as u32;
            bounds.push(upper);
            at_upper.push(at);
            below.push((idx - prev_idx) as u32 - at);
            prev_idx = idx;
        }
        Some(EquiDepthHistogram {
            bounds,
            below,
            at_upper,
            total: n as u32,
        })
    }

    pub fn total(&self) -> u32 {
        self.total
    }

    /// Estimated fraction of values `<= x`, with linear interpolation inside
    /// the containing bucket. Point masses at bucket boundaries are counted
    /// exactly.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        let lo = self.bounds[0];
        let hi = *self.bounds.last().expect("nonempty");
        if x < lo {
            return 0.0;
        }
        if x >= hi {
            return 1.0;
        }
        let mut acc = 0.0f64;
        // bounds[0] itself carries the minimum value(s); they are part of the
        // first bucket's `below` mass only when distinct from its upper
        // bound, which `build` guarantees, so count them via interpolation.
        for i in 0..self.below.len() {
            let b_lo = self.bounds[i];
            let b_hi = self.bounds[i + 1];
            if x >= b_hi {
                acc += (self.below[i] + self.at_upper[i]) as f64;
                continue;
            }
            let width = b_hi - b_lo;
            let frac = if width > 0.0 {
                ((x - b_lo) / width).clamp(0.0, 1.0)
            } else {
                1.0
            };
            acc += self.below[i] as f64 * frac;
            break;
        }
        acc / self.total as f64
    }

    /// Estimated fraction of values in `[lo, hi]`.
    pub fn fraction_range(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        // Nudge below `lo` to approximate a closed lower bound.
        let below_lo = if lo <= self.bounds[0] {
            0.0
        } else {
            self.fraction_leq(lo - f64::EPSILON.max(lo.abs() * 1e-12))
        };
        (self.fraction_leq(hi) - below_lo).max(0.0)
    }
}

/// Statistics for a single column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub dtype: DataType,
    pub row_count: u32,
    pub null_count: u32,
    pub distinct_count: u32,
    /// Min/max of the numeric view (numbers, date/time ordinals).
    pub min_num: Option<f64>,
    pub max_num: Option<f64>,
    /// Lexicographic min/max for text columns.
    pub min_text: Option<String>,
    pub max_text: Option<String>,
    /// Longest text length in characters (the paper's "maximum text length").
    pub max_text_len: Option<u32>,
    pub histogram: Option<EquiDepthHistogram>,
    /// Up to `MCV_LIMIT` most common non-null values with their counts.
    pub most_common: Vec<(Value, u32)>,
    /// Occurrence count of the single most frequent non-null value. For a
    /// column covered by a CSR join index this equals the longest posting
    /// run (both exclude NULLs), so the planner can read worst-case probe
    /// fan-out without touching the index.
    pub max_key_run: u32,
}

const MCV_LIMIT: usize = 12;
const HISTOGRAM_BUCKETS: usize = 32;

/// Row budget of the sampled statistics path: a stride is chosen so roughly
/// this many rows are touched per column.
const SAMPLE_TARGET: usize = 65_536;

/// Default for `PRISM_STATS_EXACT_ROWS`: tables at or under this row count
/// get exact statistics at build; larger tables use the sampled path so a
/// 10M-row ingest does not pay a second full scan per column.
pub const DEFAULT_STATS_EXACT_ROWS: usize = 1_000_000;

/// The exact-stats row threshold from `PRISM_STATS_EXACT_ROWS`, else
/// [`DEFAULT_STATS_EXACT_ROWS`].
pub(crate) fn env_stats_exact_rows() -> usize {
    std::env::var("PRISM_STATS_EXACT_ROWS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_STATS_EXACT_ROWS)
}

impl ColumnStats {
    /// Collect exact statistics for column `column` of `table`, reading
    /// through the typed column storage: numeric columns scan raw
    /// `i64`/`f64` slices; dictionary columns count frequencies per symbol
    /// code and resolve each distinct value once.
    pub fn collect(table: &Table, syms: &SymbolTable, column: u32, dtype: DataType) -> ColumnStats {
        Self::collect_with_stride(table, syms, column, dtype, 1)
    }

    /// Sampled statistics for large columns: one deterministic stride walk
    /// touching ~[`SAMPLE_TARGET`] rows. Row and NULL counts stay exact
    /// (the null bitmap keeps a running count), numeric min/max come exact
    /// from the frozen zone summary, and distinct counts / MCV frequencies /
    /// histogram masses are scaled estimates from the sample. Text and
    /// date/time bounds are sample-approximate.
    pub fn collect_sampled(
        table: &Table,
        syms: &SymbolTable,
        column: u32,
        dtype: DataType,
    ) -> ColumnStats {
        let n = table.column(column).len();
        let stride = (n / SAMPLE_TARGET).max(2);
        Self::collect_with_stride(table, syms, column, dtype, stride)
    }

    fn collect_with_stride(
        table: &Table,
        syms: &SymbolTable,
        column: u32,
        dtype: DataType,
        stride: usize,
    ) -> ColumnStats {
        let col = table.column(column);
        let row_count = col.len() as u32;
        let null_count = col.null_count();
        let mut numbers: Vec<f64> = Vec::new();
        let mut min_text: Option<&str> = None;
        let mut max_text: Option<&str> = None;
        let mut max_text_len: Option<u32> = None;
        // Frequencies keyed on the column's compact representation; `Value`s
        // are materialized only for the truncated MCV list below. With
        // `stride > 1` these are sample frequencies, scaled afterwards.
        let mut mcv: Vec<(Value, u32)>;
        match col.data() {
            ColumnData::Int(vals) => {
                let mut freqs: HashMap<i64, u32> = HashMap::new();
                for r in (0..vals.len()).step_by(stride) {
                    if col.is_null(r) {
                        continue;
                    }
                    let x = vals[r];
                    *freqs.entry(x).or_insert(0) += 1;
                    numbers.push(x as f64);
                }
                mcv = freqs.into_iter().map(|(x, c)| (Value::Int(x), c)).collect();
            }
            ColumnData::Decimal(vals) => {
                // Finite decimals with -0.0 normalized: bit patterns are a
                // sound equality key.
                let mut freqs: HashMap<u64, u32> = HashMap::new();
                for r in (0..vals.len()).step_by(stride) {
                    if col.is_null(r) {
                        continue;
                    }
                    let x = vals[r];
                    *freqs.entry(x.to_bits()).or_insert(0) += 1;
                    numbers.push(x);
                }
                mcv = freqs
                    .into_iter()
                    .map(|(bits, c)| (Value::Decimal(f64::from_bits(bits)), c))
                    .collect();
            }
            ColumnData::Sym(codes) => {
                let mut freqs: HashMap<u32, u32> = HashMap::new();
                for r in (0..codes.len()).step_by(stride) {
                    if col.is_null(r) {
                        continue;
                    }
                    let code = codes[r];
                    *freqs.entry(code).or_insert(0) += 1;
                    // Date/time symbols still feed the numeric histogram
                    // through their ordinals.
                    match dtype {
                        DataType::Date => numbers.push(syms.date(code).ordinal()),
                        DataType::Time => numbers.push(syms.time(code).ordinal()),
                        _ => {}
                    }
                }
                // Text bounds need one pass over *distinct* symbols only.
                if dtype == DataType::Text {
                    for &code in freqs.keys() {
                        let s = syms.text(code);
                        let len = s.chars().count() as u32;
                        max_text_len = Some(max_text_len.map_or(len, |m| m.max(len)));
                        min_text = Some(min_text.map_or(s, |m| if s < m { s } else { m }));
                        max_text = Some(max_text.map_or(s, |m| if s > m { s } else { m }));
                    }
                }
                mcv = freqs
                    .into_iter()
                    .map(|(code, c)| (syms.value(dtype, code), c))
                    .collect();
            }
        }
        let non_null = row_count - null_count;
        // Distinct: exact at stride 1; otherwise scale up by assuming each
        // sample singleton stands for `stride` rows of an unseen value
        // (heavy values are sampled and counted, so only the singleton tail
        // is extrapolated). Capped by the exact non-null count.
        let sampled_distinct = mcv.len() as u32;
        let distinct_count = if stride == 1 {
            sampled_distinct
        } else {
            let singletons = mcv.iter().filter(|&&(_, c)| c == 1).count() as u64;
            let est = sampled_distinct as u64 + singletons * (stride as u64 - 1);
            est.min(non_null as u64) as u32
        };
        // Scale sample frequencies to full-table counts so MCV-based
        // selectivities divide by the exact non-null count.
        if stride > 1 {
            for (_, c) in &mut mcv {
                *c = (*c as u64 * stride as u64).min(non_null as u64) as u32;
            }
        }
        // Sort by descending frequency, tie-broken by value for determinism.
        mcv.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let max_key_run = mcv.first().map(|&(_, c)| c).unwrap_or(0);
        mcv.truncate(MCV_LIMIT);
        let (mut min_num, mut max_num) = if numbers.is_empty() {
            (None, None)
        } else {
            let mut mn = f64::INFINITY;
            let mut mx = f64::NEG_INFINITY;
            for &x in &numbers {
                mn = mn.min(x);
                mx = mx.max(x);
            }
            (Some(mn), Some(mx))
        };
        // Sampled numeric bounds are repaired from the frozen zone summary,
        // which covers every row exactly (`build` freezes before stats).
        if stride > 1 {
            if let Some(meta) = col.summary_meta() {
                match meta.zone {
                    crate::column::Zone::Int { min, max } => {
                        min_num = Some(min as f64);
                        max_num = Some(max as f64);
                    }
                    crate::column::Zone::Dec { min, max, .. } => {
                        min_num = Some(min);
                        max_num = Some(max);
                    }
                    _ => {}
                }
            }
        }
        let histogram = EquiDepthHistogram::build(numbers, HISTOGRAM_BUCKETS);
        ColumnStats {
            dtype,
            row_count,
            null_count,
            distinct_count,
            min_num,
            max_num,
            min_text: min_text.map(str::to_string),
            max_text: max_text.map(str::to_string),
            max_text_len,
            histogram,
            most_common: mcv,
            max_key_run,
        }
    }

    pub fn non_null_count(&self) -> u32 {
        self.row_count - self.null_count
    }

    /// Approximate heap bytes of this column's statistics (histogram
    /// arrays, MCV list, text bounds) — the stats line of
    /// [`crate::Database::memory_report`].
    pub fn heap_bytes(&self) -> usize {
        let hist = self
            .histogram
            .as_ref()
            .map(|h| h.bounds.len() * 8 + (h.below.len() + h.at_upper.len()) * 4)
            .unwrap_or(0);
        let mcv: usize = self
            .most_common
            .iter()
            .map(|(v, _)| std::mem::size_of::<Value>() + 4 + v.as_text().map(str::len).unwrap_or(0))
            .sum();
        let text = self.min_text.as_ref().map(String::len).unwrap_or(0)
            + self.max_text.as_ref().map(String::len).unwrap_or(0);
        hist + mcv + text
    }

    /// Estimated fraction of non-null values equal to `v`. Uses the MCV list
    /// when the value is listed, otherwise assumes the residual mass is
    /// spread uniformly over the unlisted distinct values.
    pub fn selectivity_eq(&self, v: &Value) -> f64 {
        let n = self.non_null_count();
        if n == 0 {
            return 0.0;
        }
        if let Some((_, c)) = self.most_common.iter().find(|(mv, _)| mv == v) {
            return *c as f64 / n as f64;
        }
        let mcv_mass: u32 = self.most_common.iter().map(|(_, c)| *c).sum();
        let rest_distinct = self
            .distinct_count
            .saturating_sub(self.most_common.len() as u32);
        if rest_distinct == 0 {
            return 0.0; // every distinct value is in the MCV list
        }
        let rest_mass = n.saturating_sub(mcv_mass) as f64;
        (rest_mass / rest_distinct as f64 / n as f64).min(1.0)
    }

    /// Estimated fraction of non-null values within `[lo, hi]` (numeric
    /// view). Falls back to a coarse min/max interpolation when no histogram
    /// exists.
    pub fn selectivity_range(&self, lo: f64, hi: f64) -> f64 {
        if let Some(h) = &self.histogram {
            return h.fraction_range(lo, hi);
        }
        match (self.min_num, self.max_num) {
            (Some(mn), Some(mx)) if mx > mn => {
                let lo_c = lo.max(mn);
                let hi_c = hi.min(mx);
                ((hi_c - lo_c) / (mx - mn)).clamp(0.0, 1.0)
            }
            (Some(mn), Some(_)) if lo <= mn && mn <= hi => 1.0,
            (Some(_), Some(_)) => 0.0,
            _ => 0.0,
        }
    }
}

/// All column statistics for one database.
#[derive(Debug, Default)]
pub struct StatsStore {
    per_table: Vec<Vec<ColumnStats>>,
}

impl StatsStore {
    pub fn new() -> StatsStore {
        StatsStore::default()
    }

    pub fn push_table(&mut self, stats: Vec<ColumnStats>) {
        self.per_table.push(stats);
    }

    pub fn column(&self, col: ColumnRef) -> &ColumnStats {
        &self.per_table[col.table.index()][col.column as usize]
    }

    pub fn table(&self, table: TableId) -> &[ColumnStats] {
        &self.per_table[table.index()]
    }

    /// Distinct non-null values of `(table, col)` — the planner's primary
    /// cardinality input for equality selectivity and probe fan-out.
    pub fn distinct_count(&self, table: TableId, col: u32) -> u32 {
        self.per_table[table.index()][col as usize].distinct_count
    }

    /// Longest single-key run of `(table, col)`: how many rows the most
    /// frequent value occupies. Mirrors the longest CSR posting run for
    /// indexed columns (see [`ColumnStats::max_key_run`]) and bounds the
    /// worst-case fan-out of one join probe on skewed data.
    pub fn max_key_run(&self, table: TableId, col: u32) -> u32 {
        self.per_table[table.index()][col as usize].max_key_run
    }

    /// Approximate heap bytes across every column's statistics.
    pub fn heap_bytes(&self) -> usize {
        self.per_table
            .iter()
            .flatten()
            .map(ColumnStats::heap_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};

    fn numeric_table(values: &[f64]) -> (TableSchema, Table, SymbolTable) {
        let s = TableSchema {
            name: "T".into(),
            columns: vec![ColumnDef {
                name: "x".into(),
                dtype: DataType::Decimal,
                nullable: true,
            }],
        };
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        for &v in values {
            t.push_row(&s, &mut syms, vec![Value::Decimal(v)]).unwrap();
        }
        (s, t, syms)
    }

    #[test]
    fn histogram_fractions_are_monotone_and_bounded() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = EquiDepthHistogram::build(vals, 16).unwrap();
        assert_eq!(h.total(), 1000);
        assert_eq!(h.fraction_leq(-1.0), 0.0);
        assert_eq!(h.fraction_leq(999.0), 1.0);
        let mid = h.fraction_leq(499.0);
        assert!((mid - 0.5).abs() < 0.05, "mid fraction {mid}");
        let mut prev = 0.0;
        for x in [10.0, 100.0, 250.0, 600.0, 900.0] {
            let f = h.fraction_leq(x);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn histogram_range_estimates() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = EquiDepthHistogram::build(vals, 16).unwrap();
        let f = h.fraction_range(250.0, 749.0);
        assert!((f - 0.5).abs() < 0.06, "range fraction {f}");
        assert_eq!(h.fraction_range(10.0, 5.0), 0.0);
    }

    #[test]
    fn histogram_handles_heavy_duplicates() {
        let mut vals = vec![5.0; 900];
        vals.extend((0..100).map(|i| i as f64 / 10.0));
        let h = EquiDepthHistogram::build(vals, 8).unwrap();
        // >= 90% of the mass sits at exactly 5.0.
        assert!(h.fraction_leq(5.0) > 0.89);
        assert!(h.fraction_leq(4.9) < 0.2);
    }

    #[test]
    fn collect_basic_numeric_stats() {
        let (s, t, syms) = numeric_table(&[3.0, 1.0, 2.0]);
        let st = ColumnStats::collect(&t, &syms, 0, s.columns[0].dtype);
        assert_eq!(st.row_count, 3);
        assert_eq!(st.null_count, 0);
        assert_eq!(st.distinct_count, 3);
        assert_eq!(st.min_num, Some(1.0));
        assert_eq!(st.max_num, Some(3.0));
        assert!(st.max_text_len.is_none());
    }

    #[test]
    fn collect_counts_nulls_and_text_lengths() {
        let s = TableSchema {
            name: "T".into(),
            columns: vec![ColumnDef {
                name: "name".into(),
                dtype: DataType::Text,
                nullable: true,
            }],
        };
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        for v in [
            Value::text("Lake Tahoe"),
            Value::Null,
            Value::text("Po"),
            Value::text("Lake Tahoe"),
        ] {
            t.push_row(&s, &mut syms, vec![v]).unwrap();
        }
        let st = ColumnStats::collect(&t, &syms, 0, DataType::Text);
        assert_eq!(st.null_count, 1);
        assert_eq!(st.distinct_count, 2);
        assert_eq!(st.max_text_len, Some(10));
        assert_eq!(st.min_text.as_deref(), Some("Lake Tahoe"));
        assert_eq!(st.max_text.as_deref(), Some("Po"));
        assert_eq!(st.most_common[0], (Value::text("Lake Tahoe"), 2));
    }

    #[test]
    fn selectivity_eq_uses_mcv_then_uniform_residual() {
        let s = TableSchema {
            name: "T".into(),
            columns: vec![ColumnDef {
                name: "x".into(),
                dtype: DataType::Int,
                nullable: false,
            }],
        };
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        // 50 copies of 1, then 50 distinct values 100..150.
        for _ in 0..50 {
            t.push_row(&s, &mut syms, vec![Value::Int(1)]).unwrap();
        }
        for i in 100..150 {
            t.push_row(&s, &mut syms, vec![Value::Int(i)]).unwrap();
        }
        let st = ColumnStats::collect(&t, &syms, 0, DataType::Int);
        assert!((st.selectivity_eq(&Value::Int(1)) - 0.5).abs() < 1e-9);
        let unlisted = st.selectivity_eq(&Value::Int(120));
        assert!(unlisted > 0.0 && unlisted < 0.05, "unlisted {unlisted}");
    }

    #[test]
    fn selectivity_range_with_and_without_histogram() {
        let (_, t, syms) = numeric_table(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let st = ColumnStats::collect(&t, &syms, 0, DataType::Decimal);
        let f = st.selectivity_range(0.0, 49.0);
        assert!((f - 0.5).abs() < 0.07, "got {f}");
        // Without a histogram (constant column), min==max fallback path:
        let (_, t2, syms2) = numeric_table(&[7.0, 7.0, 7.0]);
        let st2 = ColumnStats::collect(&t2, &syms2, 0, DataType::Decimal);
        assert_eq!(st2.selectivity_range(6.0, 8.0), 1.0);
        assert_eq!(st2.selectivity_range(8.0, 9.0), 0.0);
    }

    /// The sampled path keeps row/NULL counts exact, repairs numeric
    /// min/max from the frozen zone summary, and lands distinct/MCV
    /// estimates in the right ballpark on both uniform and skewed data.
    #[test]
    fn sampled_stats_track_exact_structure() {
        let s = TableSchema {
            name: "T".into(),
            columns: vec![
                ColumnDef {
                    name: "uniq".into(),
                    dtype: DataType::Int,
                    nullable: true,
                },
                ColumnDef {
                    name: "hub".into(),
                    dtype: DataType::Int,
                    nullable: false,
                },
            ],
        };
        let mut syms = SymbolTable::new();
        let mut t = Table::new(&s);
        let n: i64 = 200_000;
        for i in 0..n {
            let uniq = if i % 100 == 7 {
                Value::Null
            } else {
                Value::Int(i)
            };
            // 90% of hub rows carry one value; the rest are i.
            let hub = if i % 10 != 0 {
                Value::Int(-1)
            } else {
                Value::Int(i)
            };
            t.push_row(&s, &mut syms, vec![uniq, hub]).unwrap();
        }
        t.freeze_blocks(1024);
        let uniq = ColumnStats::collect_sampled(&t, &syms, 0, DataType::Int);
        assert_eq!(uniq.row_count, n as u32);
        assert_eq!(uniq.null_count, n as u32 / 100);
        // Zone-summary repair makes the bounds exact despite sampling.
        assert_eq!(uniq.min_num, Some(0.0));
        assert_eq!(uniq.max_num, Some((n - 1) as f64));
        // Mostly-unique column: the singleton scale-up should land within a
        // factor of two of the truth (and never exceed the non-null count).
        let truth = uniq.non_null_count() as f64;
        let est = uniq.distinct_count as f64;
        assert!(
            est > truth * 0.5 && est <= truth,
            "distinct est {est} vs {truth}"
        );

        let hub = ColumnStats::collect_sampled(&t, &syms, 1, DataType::Int);
        assert_eq!(hub.null_count, 0);
        // The dominant value is sampled densely; its scaled run should be
        // within 20% of the true 90% mass.
        let run = hub.max_key_run as f64 / hub.non_null_count() as f64;
        assert!((run - 0.9).abs() < 0.2, "hub run fraction {run}");
        assert_eq!(hub.most_common[0].0, Value::Int(-1));
        // Equality selectivity on the hub value stays near 0.9.
        let sel = hub.selectivity_eq(&Value::Int(-1));
        assert!((sel - 0.9).abs() < 0.2, "hub selectivity {sel}");
    }

    #[test]
    fn empty_column_stats() {
        let (_, t, syms) = numeric_table(&[]);
        let st = ColumnStats::collect(&t, &syms, 0, DataType::Decimal);
        assert_eq!(st.row_count, 0);
        assert!(st.histogram.is_none());
        assert_eq!(st.selectivity_eq(&Value::Int(1)), 0.0);
    }
}
