//! The immutable, preprocessed database.
//!
//! A [`Database`] is assembled once through [`DatabaseBuilder`] and then
//! frozen. `build()` performs the preprocessing the paper assumes happens "a
//! priori": it populates the inverted index, collects per-column statistics,
//! derives the schema graph from the declared foreign keys, and materializes
//! hash join indexes for every column that participates in a join edge.

use crate::error::DbError;
use crate::graph::{JoinEdge, SchemaGraph};
use crate::index::InvertedIndex;
use crate::schema::{Catalog, ColumnDef, ColumnRef, ForeignKey, TableId, TableSchema};
use crate::stats::{ColumnStats, StatsStore};
use crate::table::Table;
use crate::types::{DataType, Value};
use std::collections::HashMap;

impl ColumnDef {
    /// A nullable column (the common case in Mondial-style data).
    pub fn new(name: impl Into<String>, dtype: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// Mark this column NOT NULL.
    pub fn not_null(mut self) -> ColumnDef {
        self.nullable = false;
        self
    }
}

/// Incrementally assembles a [`Database`].
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    name: String,
    catalog: Catalog,
    tables: Vec<Table>,
}

impl DatabaseBuilder {
    pub fn new(name: impl Into<String>) -> DatabaseBuilder {
        DatabaseBuilder {
            name: name.into(),
            catalog: Catalog::new(),
            tables: Vec::new(),
        }
    }

    /// Declare a table.
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
    ) -> Result<TableId, DbError> {
        let schema = TableSchema {
            name: name.into(),
            columns,
        };
        let id = self.catalog.add_table(schema)?;
        self.tables.push(Table::new(self.catalog.table(id)));
        Ok(id)
    }

    /// Insert one row into a declared table.
    pub fn add_row(&mut self, table: &str, row: Vec<Value>) -> Result<(), DbError> {
        let tid = self
            .catalog
            .table_id(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let schema = self.catalog.table(tid);
        self.tables[tid.index()].push_row(schema, row)
    }

    /// Insert many rows into a declared table.
    pub fn add_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), DbError> {
        for row in rows {
            self.add_row(table, row)?;
        }
        Ok(())
    }

    /// Declare a joinable column pair: `from_table.from_col` references
    /// `to_table.to_col`. This becomes an edge of the schema graph.
    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_col: &str,
        to_table: &str,
        to_col: &str,
    ) -> Result<(), DbError> {
        let from = self.catalog.column_ref(from_table, from_col)?;
        let to = self.catalog.column_ref(to_table, to_col)?;
        self.catalog.add_foreign_key(ForeignKey { from, to })
    }

    /// Freeze the database and run all preprocessing.
    pub fn build(self) -> Database {
        let DatabaseBuilder {
            name,
            catalog,
            tables,
        } = self;

        // Inverted index over every cell.
        let mut index = InvertedIndex::new();
        for (tid, _) in catalog.tables() {
            let table = &tables[tid.index()];
            let arity = catalog.table(tid).arity() as u32;
            for c in 0..arity {
                let col = ColumnRef::new(tid, c);
                for (r, v) in table.column(c).iter().enumerate() {
                    index.add(col, r as u32, v);
                }
            }
        }

        // Column statistics.
        let mut stats = StatsStore::new();
        for (tid, schema) in catalog.tables() {
            let table = &tables[tid.index()];
            let per_col = schema
                .columns
                .iter()
                .enumerate()
                .map(|(c, def)| ColumnStats::collect(table, c as u32, def.dtype))
                .collect();
            stats.push_table(per_col);
        }

        // Schema graph from foreign keys.
        let edges: Vec<JoinEdge> = catalog
            .foreign_keys()
            .iter()
            .map(|fk| JoinEdge {
                a: fk.from,
                b: fk.to,
            })
            .collect();
        let graph = SchemaGraph::new(catalog.table_count(), edges);

        // Hash join indexes for every column touched by a join edge.
        // NULL keys are excluded: SQL equi-joins never match NULL = NULL.
        let mut join_indexes: HashMap<ColumnRef, HashMap<Value, Vec<u32>>> = HashMap::new();
        for fk in catalog.foreign_keys() {
            for col in [fk.from, fk.to] {
                join_indexes.entry(col).or_insert_with(|| {
                    let mut m: HashMap<Value, Vec<u32>> = HashMap::new();
                    for (r, v) in tables[col.table.index()]
                        .column(col.column)
                        .iter()
                        .enumerate()
                    {
                        if !v.is_null() {
                            m.entry(v.clone()).or_default().push(r as u32);
                        }
                    }
                    m
                });
            }
        }

        Database {
            name,
            catalog,
            tables,
            index,
            stats,
            graph,
            join_indexes,
        }
    }
}

/// A frozen, fully preprocessed database.
#[derive(Debug)]
pub struct Database {
    name: String,
    catalog: Catalog,
    tables: Vec<Table>,
    index: InvertedIndex,
    stats: StatsStore,
    graph: SchemaGraph,
    join_indexes: HashMap<ColumnRef, HashMap<Value, Vec<u32>>>,
}

impl Database {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    pub fn row_count(&self, id: TableId) -> usize {
        self.tables[id.index()].row_count()
    }

    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }

    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    pub fn stats(&self) -> &StatsStore {
        &self.stats
    }

    pub fn graph(&self) -> &SchemaGraph {
        &self.graph
    }

    /// The precomputed hash join index of a column, if it participates in
    /// any join edge.
    pub fn join_index(&self, col: ColumnRef) -> Option<&HashMap<Value, Vec<u32>>> {
        self.join_indexes.get(&col)
    }

    /// Cell accessor via a [`ColumnRef`].
    pub fn value(&self, col: ColumnRef, row: u32) -> &Value {
        self.tables[col.table.index()].value(row, col.column)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A two-table toy database shaped like the paper's motivating example.
    pub(crate) fn lakes_db() -> Database {
        let mut b = DatabaseBuilder::new("toy");
        b.add_table(
            "Lake",
            vec![
                ColumnDef::new("Name", DataType::Text).not_null(),
                ColumnDef::new("Area", DataType::Decimal),
            ],
        )
        .unwrap();
        b.add_table(
            "geo_lake",
            vec![
                ColumnDef::new("Lake", DataType::Text).not_null(),
                ColumnDef::new("Province", DataType::Text).not_null(),
            ],
        )
        .unwrap();
        b.add_rows(
            "Lake",
            vec![
                vec!["Lake Tahoe".into(), Value::Decimal(497.0)],
                vec!["Crater Lake".into(), Value::Decimal(53.2)],
                vec!["Fort Peck Lake".into(), Value::Decimal(981.0)],
                vec!["Dead Lake".into(), Value::Null],
            ],
        )
        .unwrap();
        b.add_rows(
            "geo_lake",
            vec![
                vec!["Lake Tahoe".into(), "California".into()],
                vec!["Lake Tahoe".into(), "Nevada".into()],
                vec!["Crater Lake".into(), "Oregon".into()],
                vec!["Fort Peck Lake".into(), "Montana".into()],
            ],
        )
        .unwrap();
        b.add_foreign_key("geo_lake", "Lake", "Lake", "Name")
            .unwrap();
        b.build()
    }

    #[test]
    fn build_populates_index_stats_graph() {
        let db = lakes_db();
        assert_eq!(db.total_rows(), 8);
        // Inverted index finds Lake Tahoe in both tables.
        let cols: Vec<_> = db.index().columns_with_cell("lake tahoe").collect();
        assert_eq!(cols.len(), 2);
        // Stats know Area's min/max (NULL excluded).
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        let st = db.stats().column(area);
        assert_eq!(st.min_num, Some(53.2));
        assert_eq!(st.max_num, Some(981.0));
        assert_eq!(st.null_count, 1);
        // Graph has the declared FK edge.
        assert_eq!(db.graph().edge_count(), 1);
    }

    #[test]
    fn join_index_excludes_nulls_and_covers_fk_columns() {
        let db = lakes_db();
        let name = db.catalog().column_ref("Lake", "Name").unwrap();
        let ji = db.join_index(name).expect("FK column has a join index");
        assert_eq!(ji.get(&Value::text("Lake Tahoe")).unwrap(), &vec![0]);
        assert!(!ji.contains_key(&Value::Null));
        // Non-FK column has no join index.
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        assert!(db.join_index(area).is_none());
    }

    #[test]
    fn unknown_table_insert_errors() {
        let mut b = DatabaseBuilder::new("x");
        let err = b.add_row("Nope", vec![]);
        assert!(matches!(err, Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn value_accessor_reads_cells() {
        let db = lakes_db();
        let prov = db.catalog().column_ref("geo_lake", "Province").unwrap();
        assert_eq!(db.value(prov, 1), &Value::text("Nevada"));
    }
}
