//! The immutable, preprocessed database.
//!
//! A [`Database`] is assembled once through [`DatabaseBuilder`] and then
//! frozen. `build()` performs the preprocessing the paper assumes happens "a
//! priori": it populates the inverted index, collects per-column statistics,
//! derives the schema graph from the declared foreign keys, and materializes
//! hash join indexes for every column that participates in a join edge.
//!
//! Join indexes are keyed on the compact `u64` join keys of
//! [`crate::column::Column::join_key`] — never on `Value` — so probe loops
//! stay allocation- and hash-heavy-`Value`-free (see the `column` module
//! docs for the key contract).

use crate::batch::ColumnBatch;
use crate::column::ColumnData;
use crate::error::DbError;
use crate::graph::{JoinEdge, SchemaGraph};
use crate::index::{InvertedIndex, JoinIndex};
use crate::interner::SymbolTable;
use crate::schema::{Catalog, ColumnDef, ColumnRef, ForeignKey, TableId, TableSchema};
use crate::stats::{ColumnStats, StatsStore};
use crate::table::Table;
use crate::types::{DataType, KeySpace, Value, ValueRef};
use std::collections::HashMap;

impl ColumnDef {
    /// A nullable column (the common case in Mondial-style data).
    pub fn new(name: impl Into<String>, dtype: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// Mark this column NOT NULL.
    pub fn not_null(mut self) -> ColumnDef {
        self.nullable = false;
        self
    }
}

/// Default rows per zone-map block when neither
/// [`DatabaseBuilder::with_block_rows`] nor `PRISM_BLOCK_ROWS` overrides it.
pub const DEFAULT_BLOCK_ROWS: usize = 1024;

/// Bounds on configurable block sizes: tiny blocks drown the data in
/// metadata, huge ones never prune.
const MIN_BLOCK_ROWS: usize = 16;
const MAX_BLOCK_ROWS: usize = 1 << 22;

/// Rows per block from the `PRISM_BLOCK_ROWS` environment variable,
/// clamped to sane bounds; the default when unset or unparsable.
fn env_block_rows() -> usize {
    std::env::var("PRISM_BLOCK_ROWS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.clamp(MIN_BLOCK_ROWS, MAX_BLOCK_ROWS))
        .unwrap_or(DEFAULT_BLOCK_ROWS)
}

/// Incrementally assembles a [`Database`].
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    name: String,
    catalog: Catalog,
    tables: Vec<Table>,
    symbols: SymbolTable,
    block_rows: Option<usize>,
    ingest: IngestReport,
}

impl DatabaseBuilder {
    pub fn new(name: impl Into<String>) -> DatabaseBuilder {
        DatabaseBuilder {
            name: name.into(),
            catalog: Catalog::new(),
            tables: Vec::new(),
            symbols: SymbolTable::new(),
            block_rows: None,
            ingest: IngestReport::default(),
        }
    }

    /// The block size `build()` will freeze at, resolved now. Columns get
    /// this as their incremental-zone hint at declaration so bulk appends
    /// fold zone maps block-by-block; if the effective size changes later
    /// (a late [`DatabaseBuilder::with_block_rows`]), the freeze falls back
    /// to a full re-scan — correctness never depends on the hint.
    fn resolved_block_rows(&self) -> usize {
        self.block_rows.unwrap_or_else(env_block_rows)
    }

    /// Mutable ingest accounting (the CSV ingest path updates it).
    pub(crate) fn ingest_mut(&mut self) -> &mut IngestReport {
        &mut self.ingest
    }

    /// Override the zone-map block size for this database (rows per block,
    /// clamped to sane bounds). Defaults to the `PRISM_BLOCK_ROWS`
    /// environment variable, else [`DEFAULT_BLOCK_ROWS`]. Tests use this to
    /// exercise many-block layouts without touching process environment.
    pub fn with_block_rows(mut self, rows: usize) -> DatabaseBuilder {
        self.block_rows = Some(rows.clamp(MIN_BLOCK_ROWS, MAX_BLOCK_ROWS));
        self
    }

    /// Declare a table.
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
    ) -> Result<TableId, DbError> {
        let schema = TableSchema {
            name: name.into(),
            columns,
        };
        let id = self.catalog.add_table(schema)?;
        let mut table = Table::new(self.catalog.table(id));
        table.set_zone_hint(self.resolved_block_rows());
        self.tables.push(table);
        Ok(id)
    }

    /// An empty [`ColumnBatch`] shaped like a declared table, for the typed
    /// bulk-append path.
    pub fn new_batch(&self, table: &str) -> Result<ColumnBatch, DbError> {
        let tid = self
            .catalog
            .table_id(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        Ok(ColumnBatch::for_schema(self.catalog.table(tid)))
    }

    /// Bulk-append a typed batch into a declared table — the zero-`Value`
    /// counterpart of [`DatabaseBuilder::add_rows`]. Arity, column lengths,
    /// types, and NOT NULL are validated per batch; see
    /// [`crate::Table::append_batch`].
    pub fn append_batch(&mut self, table: &str, batch: ColumnBatch) -> Result<(), DbError> {
        let tid = self
            .catalog
            .table_id(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let schema = self.catalog.table(tid);
        let rows = batch.rows();
        self.tables[tid.index()].append_batch(schema, &mut self.symbols, batch)?;
        self.ingest.batch_rows += rows;
        Ok(())
    }

    /// [`DatabaseBuilder::append_batch`] by table id, without the bulk-batch
    /// accounting — the CSV ingest path uses this and reports its rows under
    /// the CSV counters instead.
    pub(crate) fn append_batch_internal(
        &mut self,
        tid: TableId,
        batch: ColumnBatch,
    ) -> Result<(), DbError> {
        let schema = self.catalog.table(tid);
        self.tables[tid.index()].append_batch(schema, &mut self.symbols, batch)
    }

    /// Insert one row into a declared table.
    pub fn add_row(&mut self, table: &str, row: Vec<Value>) -> Result<(), DbError> {
        let tid = self
            .catalog
            .table_id(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let schema = self.catalog.table(tid);
        self.tables[tid.index()].push_row(schema, &mut self.symbols, row)
    }

    /// Insert many rows into a declared table.
    pub fn add_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), DbError> {
        for row in rows {
            self.add_row(table, row)?;
        }
        Ok(())
    }

    /// Declare a joinable column pair: `from_table.from_col` references
    /// `to_table.to_col`. This becomes an edge of the schema graph.
    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_col: &str,
        to_table: &str,
        to_col: &str,
    ) -> Result<(), DbError> {
        let from = self.catalog.column_ref(from_table, from_col)?;
        let to = self.catalog.column_ref(to_table, to_col)?;
        self.catalog.add_foreign_key(ForeignKey { from, to })
    }

    /// Freeze the database and run all preprocessing.
    pub fn build(self) -> Database {
        let DatabaseBuilder {
            name,
            catalog,
            mut tables,
            symbols,
            block_rows,
            ingest,
        } = self;

        // Partition every column into fixed-size blocks and compute zone
        // maps; the executor prunes against them (see `column` module docs).
        let block_rows = block_rows.unwrap_or_else(env_block_rows);
        for t in &mut tables {
            t.freeze_blocks(block_rows);
        }

        // Inverted index over every cell. Dictionary columns canonicalize
        // each distinct code once instead of re-normalizing per row.
        let mut index = InvertedIndex::new();
        for (tid, schema) in catalog.tables() {
            let table = &tables[tid.index()];
            for c in 0..schema.arity() as u32 {
                let col_ref = ColumnRef::new(tid, c);
                let col = table.column(c);
                if let ColumnData::Sym(codes) = col.data() {
                    let is_text = col.dtype() == DataType::Text;
                    let mut key_cache: HashMap<u32, String> = HashMap::new();
                    for (r, &code) in codes.iter().enumerate() {
                        if col.is_null(r) {
                            continue;
                        }
                        let key = key_cache.entry(code).or_insert_with(|| {
                            col.value_ref(&symbols, r)
                                .index_key()
                                .expect("non-null cell has a key")
                        });
                        index.add_key(col_ref, r as u32, key, is_text);
                    }
                } else {
                    for (r, v) in col.iter(&symbols).enumerate() {
                        index.add(col_ref, r as u32, v);
                    }
                }
            }
        }

        // Column statistics. Tables past the exact threshold use the
        // sampled path so a 10M-row ingest does not pay a second full
        // per-column scan (`PRISM_STATS_EXACT_ROWS` steers the cutover).
        let stats_exact_rows = crate::stats::env_stats_exact_rows();
        let mut stats = StatsStore::new();
        for (tid, schema) in catalog.tables() {
            let table = &tables[tid.index()];
            let sampled = table.row_count() > stats_exact_rows;
            let per_col = schema
                .columns
                .iter()
                .enumerate()
                .map(|(c, def)| {
                    if sampled {
                        ColumnStats::collect_sampled(table, &symbols, c as u32, def.dtype)
                    } else {
                        ColumnStats::collect(table, &symbols, c as u32, def.dtype)
                    }
                })
                .collect();
            stats.push_table(per_col);
        }

        // Schema graph from foreign keys.
        let edges: Vec<JoinEdge> = catalog
            .foreign_keys()
            .iter()
            .map(|fk| JoinEdge {
                a: fk.from,
                b: fk.to,
            })
            .collect();
        let graph = SchemaGraph::new(catalog.table_count(), edges);

        // Assign every column its join-key space: native per type, except
        // that Int columns in an FK-connected component containing a
        // Decimal column demote to F64 so the whole component shares one
        // space (an Int FK must be able to probe a Decimal PK index). A
        // fixpoint over the (few) FK edges settles the components.
        let mut key_spaces: Vec<Vec<KeySpace>> = catalog
            .tables()
            .map(|(_, schema)| {
                schema
                    .columns
                    .iter()
                    .map(|def| def.dtype.native_key_space())
                    .collect()
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for fk in catalog.foreign_keys() {
                let a = key_spaces[fk.from.table.index()][fk.from.column as usize];
                let b = key_spaces[fk.to.table.index()][fk.to.column as usize];
                if a != b && a != KeySpace::Sym && b != KeySpace::Sym {
                    key_spaces[fk.from.table.index()][fk.from.column as usize] = KeySpace::F64;
                    key_spaces[fk.to.table.index()][fk.to.column as usize] = KeySpace::F64;
                    changed = true;
                }
            }
        }

        // CSR join indexes for every column touched by a join edge, keyed
        // on compact join keys in the column's assigned space. NULL keys
        // are excluded: SQL equi-joins never match NULL = NULL.
        let mut join_indexes: HashMap<ColumnRef, JoinIndex> = HashMap::new();
        for fk in catalog.foreign_keys() {
            for col in [fk.from, fk.to] {
                let space = key_spaces[col.table.index()][col.column as usize];
                join_indexes.entry(col).or_insert_with(|| {
                    JoinIndex::build(tables[col.table.index()].column(col.column), space)
                });
            }
        }

        Database {
            name,
            catalog,
            tables,
            symbols,
            index,
            stats,
            graph,
            join_indexes,
            key_spaces,
            block_rows,
            ingest,
        }
    }
}

/// A frozen, fully preprocessed database.
#[derive(Debug)]
pub struct Database {
    name: String,
    catalog: Catalog,
    tables: Vec<Table>,
    symbols: SymbolTable,
    index: InvertedIndex,
    stats: StatsStore,
    graph: SchemaGraph,
    join_indexes: HashMap<ColumnRef, JoinIndex>,
    /// Per-table, per-column assigned join-key space (see `build`).
    key_spaces: Vec<Vec<KeySpace>>,
    /// Rows per zone-map block, fixed at build time.
    block_rows: usize,
    /// Ingest-side accounting accumulated by the builder.
    ingest: IngestReport,
}

impl Database {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// The database-wide value interner.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    pub fn row_count(&self, id: TableId) -> usize {
        self.tables[id.index()].row_count()
    }

    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }

    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    pub fn stats(&self) -> &StatsStore {
        &self.stats
    }

    pub fn graph(&self) -> &SchemaGraph {
        &self.graph
    }

    /// The precomputed hash join index of a column, if it participates in
    /// any join edge.
    pub fn join_index(&self, col: ColumnRef) -> Option<&JoinIndex> {
        self.join_indexes.get(&col)
    }

    /// The join-key space assigned to a column at build time: native per
    /// type, except Int columns whose FK component reaches a Decimal
    /// column (those key in [`KeySpace::F64`]). Both endpoints of every
    /// declared FK edge share a space by construction.
    #[inline]
    pub fn key_space(&self, col: ColumnRef) -> KeySpace {
        self.key_spaces[col.table.index()][col.column as usize]
    }

    /// Compact join key of one cell in the column's assigned key space
    /// (`None` for NULL). Keys of two columns compare meaningfully only
    /// when the columns share a space — FK edge endpoints always do.
    #[inline]
    pub fn join_key(&self, col: ColumnRef, row: u32) -> Option<u64> {
        self.tables[col.table.index()]
            .column(col.column)
            .join_key_in(row as usize, self.key_space(col))
    }

    /// Borrowed cell view via a [`ColumnRef`] (zero-copy).
    pub fn value_ref(&self, col: ColumnRef, row: u32) -> ValueRef<'_> {
        self.tables[col.table.index()].value_ref(&self.symbols, row, col.column)
    }

    /// Owned cell value via a [`ColumnRef`] (materializes text).
    pub fn value(&self, col: ColumnRef, row: u32) -> Value {
        self.value_ref(col, row).to_value()
    }

    /// Rows per zone-map block, fixed when the database was built
    /// (`PRISM_BLOCK_ROWS` / [`DatabaseBuilder::with_block_rows`]).
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Audit the frozen database's memory: per-table column bytes (data
    /// vectors + null bitmaps + zone maps) and per-join-index bytes. CSR
    /// made the index side exact — three flat arrays plus the probe header,
    /// no per-key allocations to estimate.
    pub fn memory_report(&self) -> MemoryReport {
        let tables = self
            .catalog
            .tables()
            .map(|(tid, schema)| {
                let t = &self.tables[tid.index()];
                TableMemory {
                    table: schema.name.clone(),
                    rows: t.row_count(),
                    column_bytes: t.column_bytes(),
                    zone_map_bytes: t.zone_map_bytes(),
                }
            })
            .collect();
        let mut indexes: Vec<JoinIndexMemory> = self
            .join_indexes
            .iter()
            .map(|(&col, ix)| JoinIndexMemory {
                table: self.catalog.table(col.table).name.clone(),
                column: self
                    .catalog
                    .table(col.table)
                    .column(col.column)
                    .name
                    .clone(),
                distinct_keys: ix.len(),
                indexed_rows: ix.indexed_rows(),
                bytes: ix.heap_bytes(),
            })
            .collect();
        indexes.sort_by(|a, b| (&a.table, &a.column).cmp(&(&b.table, &b.column)));
        MemoryReport {
            block_rows: self.block_rows,
            tables,
            indexes,
            interner_bytes: self.symbols.heap_bytes(),
            stats_bytes: self.stats.heap_bytes(),
            ingest: self.ingest.clone(),
        }
    }

    /// Ingest-side accounting: CSV bytes/rows/time and bulk-batch rows
    /// accumulated while the builder loaded data.
    pub fn ingest_report(&self) -> &IngestReport {
        &self.ingest
    }
}

/// Ingest-side accounting, accumulated by [`DatabaseBuilder`] across every
/// CSV ingest and bulk-batch append, and surfaced by
/// [`Database::memory_report`]. All fields are integers so the report stays
/// `Eq`; derived rates are methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// CSV bytes parsed by the streaming reader.
    pub csv_bytes: usize,
    /// Rows ingested through the streaming CSV reader.
    pub csv_rows: usize,
    /// Wall nanoseconds spent parsing CSV (scan + typed parse + append).
    pub csv_parse_nanos: u64,
    /// Widest parse-thread count used by any CSV ingest (1 = sequential).
    pub parse_threads: usize,
    /// Rows ingested through the typed bulk-append path.
    pub batch_rows: usize,
}

impl IngestReport {
    /// CSV rows per second (`None` when nothing was CSV-ingested).
    pub fn rows_per_sec(&self) -> Option<f64> {
        (self.csv_parse_nanos > 0)
            .then(|| self.csv_rows as f64 / (self.csv_parse_nanos as f64 / 1e9))
    }

    /// CSV megabytes per second (`None` when nothing was CSV-ingested).
    pub fn mb_per_sec(&self) -> Option<f64> {
        (self.csv_parse_nanos > 0)
            .then(|| self.csv_bytes as f64 / 1e6 / (self.csv_parse_nanos as f64 / 1e9))
    }
}

/// Memory audit of one table's column storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMemory {
    pub table: String,
    pub rows: usize,
    /// Data vectors + null bitmaps + zone maps.
    pub column_bytes: usize,
    /// Zone-map share of `column_bytes`.
    pub zone_map_bytes: usize,
}

/// Memory audit of one CSR join index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinIndexMemory {
    pub table: String,
    pub column: String,
    pub distinct_keys: usize,
    pub indexed_rows: usize,
    /// Exact heap bytes of the keys/offsets/rows arrays and probe header.
    pub bytes: usize,
}

/// The result of [`Database::memory_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryReport {
    pub block_rows: usize,
    pub tables: Vec<TableMemory>,
    pub indexes: Vec<JoinIndexMemory>,
    /// Approximate dictionary (interner) bytes, shared by every table.
    pub interner_bytes: usize,
    /// Approximate per-column statistics bytes.
    pub stats_bytes: usize,
    /// Ingest-side accounting (CSV parse throughput, bulk-batch rows).
    pub ingest: IngestReport,
}

impl MemoryReport {
    /// Column bytes summed over all tables.
    pub fn total_column_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.column_bytes).sum()
    }

    /// Column storage is append-only, so the ingest-time peak equals the
    /// final total: data vectors + null bitmaps + zone maps across tables.
    pub fn peak_column_bytes(&self) -> usize {
        self.total_column_bytes()
    }

    /// Join-index bytes summed over all indexed columns.
    pub fn total_index_bytes(&self) -> usize {
        self.indexes.iter().map(|i| i.bytes).sum()
    }
}

impl std::fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "columns: {} B across {} tables (zone maps {} B @ {} rows/block)",
            self.total_column_bytes(),
            self.tables.len(),
            self.tables.iter().map(|t| t.zone_map_bytes).sum::<usize>(),
            self.block_rows,
        )?;
        for t in &self.tables {
            writeln!(
                f,
                "  {:<16} {:>8} rows  {:>10} B",
                t.table, t.rows, t.column_bytes
            )?;
        }
        writeln!(
            f,
            "join indexes: {} B across {} columns (CSR)",
            self.total_index_bytes(),
            self.indexes.len(),
        )?;
        for i in &self.indexes {
            writeln!(
                f,
                "  {:<16} {:>8} keys  {:>10} B  ({} rows)",
                format!("{}.{}", i.table, i.column),
                i.distinct_keys,
                i.bytes,
                i.indexed_rows,
            )?;
        }
        if self.ingest.csv_rows > 0 || self.ingest.batch_rows > 0 {
            writeln!(
                f,
                "ingest: {} csv rows ({} B, {:.1} MB/s, {:.0} rows/s, {} threads), {} batch rows",
                self.ingest.csv_rows,
                self.ingest.csv_bytes,
                self.ingest.mb_per_sec().unwrap_or(0.0),
                self.ingest.rows_per_sec().unwrap_or(0.0),
                self.ingest.parse_threads.max(1),
                self.ingest.batch_rows,
            )?;
        }
        writeln!(
            f,
            "interner: ~{} B, column stats: ~{} B",
            self.interner_bytes, self.stats_bytes
        )
    }
}

/// The scheduler's parallel validation engine shares the frozen database
/// (and everything reachable from it) immutably across worker threads.
/// Keep the proof at the type level: an accidental `Rc`/`RefCell`/raw-ptr
/// regression in any reachable structure fails to compile here.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Database>();
    _assert_send_sync::<JoinIndex>();
    _assert_send_sync::<SymbolTable>();
    _assert_send_sync::<InvertedIndex>();
    _assert_send_sync::<StatsStore>();
    _assert_send_sync::<crate::column::Column>();
    _assert_send_sync::<crate::column::BlockMeta>();
    _assert_send_sync::<crate::exec::ExecStats>();
    // Prepared plans live in caches shared by validation workers; the
    // scratch is per-thread but must be movable into worker threads.
    _assert_send_sync::<crate::exec::PreparedQuery>();
    _assert_send_sync::<crate::exec::ExecScratch>();
    _assert_send_sync::<MemoryReport>();
};

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A two-table toy database shaped like the paper's motivating example.
    pub(crate) fn lakes_db() -> Database {
        let mut b = DatabaseBuilder::new("toy");
        b.add_table(
            "Lake",
            vec![
                ColumnDef::new("Name", DataType::Text).not_null(),
                ColumnDef::new("Area", DataType::Decimal),
            ],
        )
        .unwrap();
        b.add_table(
            "geo_lake",
            vec![
                ColumnDef::new("Lake", DataType::Text).not_null(),
                ColumnDef::new("Province", DataType::Text).not_null(),
            ],
        )
        .unwrap();
        b.add_rows(
            "Lake",
            vec![
                vec!["Lake Tahoe".into(), Value::Decimal(497.0)],
                vec!["Crater Lake".into(), Value::Decimal(53.2)],
                vec!["Fort Peck Lake".into(), Value::Decimal(981.0)],
                vec!["Dead Lake".into(), Value::Null],
            ],
        )
        .unwrap();
        b.add_rows(
            "geo_lake",
            vec![
                vec!["Lake Tahoe".into(), "California".into()],
                vec!["Lake Tahoe".into(), "Nevada".into()],
                vec!["Crater Lake".into(), "Oregon".into()],
                vec!["Fort Peck Lake".into(), "Montana".into()],
            ],
        )
        .unwrap();
        b.add_foreign_key("geo_lake", "Lake", "Lake", "Name")
            .unwrap();
        b.build()
    }

    #[test]
    fn build_populates_index_stats_graph() {
        let db = lakes_db();
        assert_eq!(db.total_rows(), 8);
        // Inverted index finds Lake Tahoe in both tables.
        let cols: Vec<_> = db.index().columns_with_cell("lake tahoe").collect();
        assert_eq!(cols.len(), 2);
        // Stats know Area's min/max (NULL excluded).
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        let st = db.stats().column(area);
        assert_eq!(st.min_num, Some(53.2));
        assert_eq!(st.max_num, Some(981.0));
        assert_eq!(st.null_count, 1);
        // Graph has the declared FK edge.
        assert_eq!(db.graph().edge_count(), 1);
    }

    #[test]
    fn join_index_excludes_nulls_and_covers_fk_columns() {
        let db = lakes_db();
        let name = db.catalog().column_ref("Lake", "Name").unwrap();
        let ji = db.join_index(name).expect("FK column has a join index");
        // Probe by the compact key of the geo_lake side: interning makes the
        // key of "Lake Tahoe" identical across tables.
        let geo_lake = db.catalog().column_ref("geo_lake", "Lake").unwrap();
        let key = db.join_key(geo_lake, 0).unwrap();
        assert_eq!(ji.rows(key), &[0]);
        // Dead Lake's NULL area produced no join-index entry anywhere; a
        // NULL cell has no key at all.
        let area = db.catalog().column_ref("Lake", "Area").unwrap();
        assert_eq!(db.join_key(area, 3), None);
        // Non-FK column has no join index.
        assert!(db.join_index(area).is_none());
    }

    #[test]
    fn symbols_are_shared_across_tables() {
        let db = lakes_db();
        let lake_name = db.catalog().column_ref("Lake", "Name").unwrap();
        let geo_lake = db.catalog().column_ref("geo_lake", "Lake").unwrap();
        // "Lake Tahoe" row 0 in Lake and rows 0/1 in geo_lake: same key.
        assert_eq!(db.join_key(lake_name, 0), db.join_key(geo_lake, 0));
        assert_eq!(db.join_key(geo_lake, 0), db.join_key(geo_lake, 1));
        assert_eq!(db.value_ref(geo_lake, 0), ValueRef::Text("Lake Tahoe"));
    }

    /// Regression for the ROADMAP `f64`-view collision: Int↔Int edges key
    /// on raw `i64` bits, so integers adjacent to `i64::MAX` (which share
    /// an `f64` image) must not join as equal.
    #[test]
    fn int_join_keys_are_exact_at_i64_max_adjacent_values() {
        let mut b = DatabaseBuilder::new("bigint");
        b.add_table("P", vec![ColumnDef::new("id", DataType::Int).not_null()])
            .unwrap();
        b.add_table("F", vec![ColumnDef::new("p", DataType::Int).not_null()])
            .unwrap();
        // i64::MAX and i64::MAX - 1 round to the same f64; under the old
        // f64-bit keys the FK row joined both parents.
        b.add_rows(
            "P",
            vec![vec![Value::Int(i64::MAX)], vec![Value::Int(i64::MAX - 1)]],
        )
        .unwrap();
        b.add_row("F", vec![Value::Int(i64::MAX - 1)]).unwrap();
        b.add_foreign_key("F", "p", "P", "id").unwrap();
        let db = b.build();
        let p_id = db.catalog().column_ref("P", "id").unwrap();
        let f_p = db.catalog().column_ref("F", "p").unwrap();
        assert_eq!(db.key_space(p_id), KeySpace::Int);
        assert_eq!(db.key_space(f_p), KeySpace::Int);
        let ix = db.join_index(p_id).expect("PK side indexed");
        let key = db.join_key(f_p, 0).unwrap();
        assert_eq!(ix.rows(key), &[1], "only the exact integer may match");
        // End-to-end: the join yields exactly one pair.
        let q = crate::exec::PjQuery {
            nodes: vec![
                db.catalog().table_id("F").unwrap(),
                db.catalog().table_id("P").unwrap(),
            ],
            joins: vec![crate::exec::JoinCond {
                left_node: 0,
                left_col: 0,
                right_node: 1,
                right_col: 0,
            }],
            projection: vec![(1, 0)],
        };
        let rows = q.execute(&db, 10).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(i64::MAX - 1)]]);
    }

    /// An Int FK into a Decimal PK demotes the whole component to the f64
    /// key space, keeping cross-type joins working.
    #[test]
    fn int_decimal_fk_component_shares_the_f64_space() {
        let mut b = DatabaseBuilder::new("mixed");
        b.add_table(
            "P",
            vec![ColumnDef::new("id", DataType::Decimal).not_null()],
        )
        .unwrap();
        b.add_table("F", vec![ColumnDef::new("p", DataType::Int).not_null()])
            .unwrap();
        // A second Int↔Int edge hanging off the same component must demote
        // too (spaces are a component property, not an edge property).
        b.add_table("G", vec![ColumnDef::new("f", DataType::Int).not_null()])
            .unwrap();
        b.add_rows(
            "P",
            vec![vec![Value::Decimal(7.0)], vec![Value::Decimal(8.5)]],
        )
        .unwrap();
        b.add_row("F", vec![Value::Int(7)]).unwrap();
        b.add_row("G", vec![Value::Int(7)]).unwrap();
        b.add_foreign_key("F", "p", "P", "id").unwrap();
        b.add_foreign_key("G", "f", "F", "p").unwrap();
        let db = b.build();
        for (t, c) in [("P", "id"), ("F", "p"), ("G", "f")] {
            let col = db.catalog().column_ref(t, c).unwrap();
            assert_eq!(db.key_space(col), KeySpace::F64, "{t}.{c}");
        }
        // Int 7 probes the Decimal index and matches 7.0.
        let p_id = db.catalog().column_ref("P", "id").unwrap();
        let f_p = db.catalog().column_ref("F", "p").unwrap();
        let ix = db.join_index(p_id).unwrap();
        assert_eq!(ix.rows(db.join_key(f_p, 0).unwrap()), &[0]);
    }

    #[test]
    fn build_freezes_zone_maps_at_the_configured_block_size() {
        let mut b = DatabaseBuilder::new("blocks").with_block_rows(16);
        b.add_table("T", vec![ColumnDef::new("x", DataType::Int)])
            .unwrap();
        for i in 0..100 {
            b.add_row("T", vec![Value::Int(i)]).unwrap();
        }
        let db = b.build();
        assert_eq!(db.block_rows(), 16);
        let col = db.table(db.catalog().table_id("T").unwrap()).column(0);
        assert_eq!(col.block_rows(), Some(16));
        assert_eq!(col.block_meta().len(), 7);
        // Block 0 holds 0..=15, so key 50 is provably absent from it.
        assert!(!col.block_may_contain_key(0, 50i64 as u64, KeySpace::Int));
        assert!(col.block_may_contain_key(3, 50i64 as u64, KeySpace::Int));
        // Multi-block columns surface zone-map bytes in the memory audit.
        let report = db.memory_report();
        assert!(report.tables.iter().all(|t| t.zone_map_bytes > 0));
    }

    #[test]
    fn tiny_block_size_requests_are_clamped() {
        let mut b = DatabaseBuilder::new("clamp").with_block_rows(1);
        b.add_table("T", vec![ColumnDef::new("x", DataType::Int)])
            .unwrap();
        b.add_row("T", vec![Value::Int(1)]).unwrap();
        assert_eq!(b.build().block_rows(), 16);
    }

    #[test]
    fn memory_report_audits_columns_and_csr_indexes() {
        let db = lakes_db();
        let report = db.memory_report();
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.indexes.len(), 2, "both FK endpoints indexed");
        assert!(report.total_column_bytes() > 0);
        assert!(report.total_index_bytes() > 0);
        // The CSR accounting is exact: recompute one index by hand.
        let name = db.catalog().column_ref("Lake", "Name").unwrap();
        let ji = db.join_index(name).unwrap();
        let line = report
            .indexes
            .iter()
            .find(|i| i.table == "Lake" && i.column == "Name")
            .expect("Lake.Name audited");
        assert_eq!(line.bytes, ji.heap_bytes());
        assert_eq!(line.distinct_keys, ji.len());
        assert_eq!(line.indexed_rows, 4);
        // The toy tables fit one block each, so no zone maps are allocated
        // (single-block columns skip them); the display still renders.
        assert!(report.tables.iter().all(|t| t.zone_map_bytes == 0));
        let rendered = report.to_string();
        assert!(rendered.contains("join indexes"));
        assert!(rendered.contains("geo_lake.Lake"));
    }

    #[test]
    fn unknown_table_insert_errors() {
        let mut b = DatabaseBuilder::new("x");
        let err = b.add_row("Nope", vec![]);
        assert!(matches!(err, Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn value_accessor_reads_cells() {
        let db = lakes_db();
        let prov = db.catalog().column_ref("geo_lake", "Province").unwrap();
        assert_eq!(db.value(prov, 1), Value::text("Nevada"));
        assert_eq!(db.value_ref(prov, 1), ValueRef::Text("Nevada"));
    }
}
