//! Error type shared by the database substrate.

use std::fmt;

/// Errors raised while building or querying a [`crate::Database`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A table name was referenced that does not exist in the catalog.
    UnknownTable(String),
    /// A column name was referenced that does not exist in the given table.
    UnknownColumn { table: String, column: String },
    /// A table with this name was declared twice.
    DuplicateTable(String),
    /// A column with this name was declared twice within one table.
    DuplicateColumn { table: String, column: String },
    /// A row was inserted whose arity differs from the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// A value's runtime type disagrees with the declared column type.
    TypeMismatch {
        table: String,
        column: String,
        expected: crate::types::DataType,
        got: &'static str,
    },
    /// A NULL was inserted into a column declared NOT NULL.
    NullViolation { table: String, column: String },
    /// A bulk-append batch's columns disagree on row count.
    RaggedBatch {
        table: String,
        column: String,
        expected: usize,
        got: usize,
    },
    /// A file-backed ingest could not read its input.
    Io { path: String, message: String },
    /// `Value::Decimal` must hold a finite number; NaN/±inf are rejected so
    /// that values stay totally ordered and hashable.
    NonFiniteDecimal,
    /// A foreign key declaration referenced columns of differing types.
    ForeignKeyTypeMismatch { from: String, to: String },
    /// A PJ query referenced a node slot or column that is out of range.
    InvalidQuery(String),
    /// Execution was abandoned cooperatively (deadline or cancel flag).
    /// Not a query error: the caller asked the executor to stop.
    Cancelled,
    /// A typed batch push hit a column of a different kind (e.g.
    /// `push_str` into an int column).
    BatchKindMismatch {
        column: usize,
        pushed: &'static str,
        column_kind: &'static str,
    },
    /// A parallel CSV chunk parser panicked (twice, so not a transient
    /// fault); the chunk's starting row locates the bad input.
    IngestPanic { chunk_row: usize, message: String },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{table}.{column}`")
            }
            DbError::DuplicateTable(t) => write!(f, "table `{t}` declared twice"),
            DbError::DuplicateColumn { table, column } => {
                write!(f, "column `{table}.{column}` declared twice")
            }
            DbError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row for `{table}` has {got} values but the schema has {expected} columns"
            ),
            DbError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "value of type {got} cannot be stored in `{table}.{column}` of type {expected}"
            ),
            DbError::NullViolation { table, column } => {
                write!(f, "NULL inserted into NOT NULL column `{table}.{column}`")
            }
            DbError::RaggedBatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "batch column `{table}.{column}` has {got} rows but the batch's first column has {expected}"
            ),
            DbError::Io { path, message } => {
                write!(f, "cannot read `{path}`: {message}")
            }
            DbError::NonFiniteDecimal => {
                write!(f, "decimal values must be finite (no NaN or infinity)")
            }
            DbError::ForeignKeyTypeMismatch { from, to } => {
                write!(
                    f,
                    "foreign key `{from}` -> `{to}` joins columns of different types"
                )
            }
            DbError::InvalidQuery(msg) => write!(f, "invalid PJ query: {msg}"),
            DbError::Cancelled => write!(f, "execution cancelled (deadline or cancel flag)"),
            DbError::BatchKindMismatch {
                column,
                pushed,
                column_kind,
            } => write!(
                f,
                "{pushed} into a {column_kind} batch column (column {column})"
            ),
            DbError::IngestPanic { chunk_row, message } => write!(
                f,
                "CSV parse worker panicked on the chunk starting at row {chunk_row}: {message}"
            ),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_identifiers() {
        let e = DbError::UnknownTable("Lake".into());
        assert!(e.to_string().contains("Lake"));
        let e = DbError::UnknownColumn {
            table: "Lake".into(),
            column: "Area".into(),
        };
        assert!(e.to_string().contains("Lake.Area"));
        let e = DbError::ArityMismatch {
            table: "Lake".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DbError::NonFiniteDecimal);
    }
}
